// Client example: drive a running qpredictd daemon through the
// pkg/qpredictclient library — readiness probe, a batched prediction, an
// observation round-trip, model/shard introspection, and the client-side
// batcher. Start a daemon first:
//
//	go run ./cmd/qpredictd -addr 127.0.0.1:8080 -train 160 -shards 4
//	go run ./examples/client -addr http://127.0.0.1:8080
//
// With -burst N the example instead fires N concurrent single-query
// requests — against a daemon started with a tiny queue (-queue 1) this
// forces 429 shed-load responses and demonstrates the client's bounded
// retry with jittered backoff (the CI smoke test uses exactly this).
//
// With -observe N the example regenerates the daemon's workload locally
// (same -train/-seed/-dataseed) and replays N executed queries through
// /v1/observe with their true measured metrics, issuing a prediction after
// every batch to prove the daemon keeps serving. Against a daemon whose
// champion/challenger zoo is on, this is what drives shadow scoring and
// promotion (the CI zoo smoke uses exactly this).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
	"repro/pkg/qpredictclient"
)

var queries = []string{
	"SELECT COUNT(*) FROM store_sales",
	"SELECT ss_item_sk, SUM(ss_quantity) FROM store_sales GROUP BY ss_item_sk",
	"SELECT ss_customer_sk, AVG(ss_net_profit) FROM store_sales GROUP BY ss_customer_sk",
	"SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk",
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "qpredictd base URL")
	burst := flag.Int("burst", 0, "fire N concurrent requests instead (forces 429s against a tiny -queue daemon)")
	retries := flag.Int("retries", 3, "max retry attempts per request")
	observe := flag.Int("observe", 0, "replay N executed queries from the regenerated workload as observations")
	train := flag.Int("train", 160, "with -observe: the daemon's -train count")
	seed := flag.Int64("seed", 1, "with -observe: the daemon's workload seed")
	dataseed := flag.Int64("dataseed", 1000, "with -observe: the daemon's data seed")
	flag.Parse()

	c := qpredictclient.New(*addr, &qpredictclient.Options{MaxRetries: *retries})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Wait for the daemon to finish booting its model.
	for {
		if ok, err := c.Ready(ctx); err == nil && ok {
			break
		}
		select {
		case <-ctx.Done():
			log.Fatal("daemon never became ready")
		case <-time.After(200 * time.Millisecond):
		}
	}

	if *burst > 0 {
		runBurst(ctx, c, *burst)
		fmt.Printf("client retries: %d\n", c.Retries())
		return
	}

	if *observe > 0 {
		runObserve(ctx, c, *observe, *train, *seed, *dataseed)
		return
	}

	// One batched request: results come back aligned with the inputs,
	// per-query errors (if any) pinned to their slot.
	resp, err := c.Predict(ctx, queries...)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	for _, r := range resp.Results {
		if r.Error != nil {
			fmt.Printf("  %-70s ERROR %s\n", r.SQL, r.Error.Code)
			continue
		}
		shard := ""
		if r.Shard != "" {
			shard = " shard=" + r.Shard
		}
		fmt.Printf("  %-70s %.3fs %s%s\n", r.SQL, r.Metrics.ElapsedSec, r.Category, shard)
	}

	// Feed one "executed" query back: here we pretend the prediction was
	// exact, which is how a real deployment closes the loop with measured
	// metrics.
	first := resp.Results[0]
	if first.Error == nil {
		ores, err := c.Observe(ctx, api.Observation{SQL: first.SQL, Metrics: *first.Metrics})
		if err != nil {
			log.Fatalf("observe: %v", err)
		}
		fmt.Printf("observed %d query (window now %d)\n", ores.Accepted, ores.WindowSize)
	}

	// Introspection: the aggregate model view, then the per-shard breakdown
	// (which only a sharded daemon serves).
	model, err := c.Model(ctx)
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	fmt.Printf("model: generation %d, trained on %d, %d shards\n", model.Generation, model.TrainedOn, model.Shards)
	if shards, err := c.Shards(ctx); err == nil {
		for _, s := range shards.Shards {
			fmt.Printf("  shard %d: ready=%v gen=%d window=%d predictions=%d\n",
				s.ID, s.Ready, s.Generation, s.WindowSize, s.Predictions)
		}
	}

	// The client-side batcher: concurrent callers coalesce into batched
	// wire requests, mirroring the daemon's own micro-batch coalescer.
	b := qpredictclient.NewBatcher(c, 2*time.Millisecond, 64)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Predict(ctx, queries[i%len(queries)]); err != nil {
				log.Printf("batched predict: %v", err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("batched 16 concurrent predictions\n")
	fmt.Printf("client retries: %d\n", c.Retries())
}

// runObserve regenerates the daemon's training workload (the simulated
// executor is deterministic in its seeds, so the same parameters reproduce
// the same queries and metrics) and replays n of them as executed-query
// observations. A prediction is issued after every batch: the serving path
// must never drop a request while observations retrain, shadow-score, and
// possibly promote models behind it.
func runObserve(ctx context.Context, c *qpredictclient.Client, n, train int, seed, dataseed int64) {
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed: seed, DataSeed: dataseed, Machine: exec.Research4(),
		Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: train,
	})
	if err != nil {
		log.Fatalf("regenerating workload: %v", err)
	}
	const batch = 20
	sent := 0
	for sent < n {
		var obs []api.Observation
		for i := sent; i < n && i < sent+batch; i++ {
			q := pool.Queries[i%len(pool.Queries)]
			m := q.Metrics
			obs = append(obs, api.Observation{SQL: q.SQL, Metrics: api.Metrics{
				ElapsedSec: m.ElapsedSec, RecordsAccessed: m.RecordsAccessed,
				RecordsUsed: m.RecordsUsed, DiskIOs: m.DiskIOs,
				MessageCount: m.MessageCount, MessageBytes: m.MessageBytes,
			}})
		}
		if _, err := c.Observe(ctx, obs...); err != nil {
			log.Fatalf("observe at %d: %v", sent, err)
		}
		sent += len(obs)
		if res, err := c.PredictOne(ctx, queries[sent%len(queries)]); err != nil {
			log.Fatalf("predict during observe stream (after %d): %v", sent, err)
		} else if res.Metrics == nil {
			log.Fatalf("empty prediction during observe stream (after %d)", sent)
		}
	}
	fmt.Printf("observed %d executed queries, predictions served throughout\n", sent)
}

// runBurst fires n concurrent single-query predictions. Against a daemon
// with a tiny queue some will be shed with 429; the client retries them
// with backoff, so they still succeed — watch the retry counter.
func runBurst(ctx context.Context, c *qpredictclient.Client, n int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Predict(ctx, queries[i%len(queries)])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
			} else {
				ok++
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("burst: %d ok, %d failed\n", ok, failed)
}
