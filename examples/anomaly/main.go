// Anomaly detection from prediction confidence: the paper's Sec. VII-C.3
// observation that the Euclidean distance from a query to its nearest
// neighbors measures how much the prediction can be trusted — and
// therefore flags anomalous queries the model has never seen anything
// like.
//
// This example trains on the TPC-DS workload and then scores three groups
// of queries:
//
//  1. held-out TPC-DS queries (in-distribution — high confidence),
//  2. queries against the CUSTOMER schema the model never saw
//     (out-of-distribution — low confidence), and
//  3. the in-distribution group again, with predictions gated by a
//     confidence threshold chosen from the training data.
//
// The paper's anomalous bowling balls "were not as close to their
// neighbors as the better-predicted ones" — here the confidence score
// makes that observation operational.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

func main() {
	// Train on TPC-DS.
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed:      21,
		DataSeed:  1000,
		Machine:   exec.Research4(),
		Schema:    catalog.TPCDS(1),
		Templates: workload.TPCDSTemplates(),
		Count:     640,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := pool.Queries[:600]
	inDist := pool.Queries[600:]

	predictor, err := repro.Train(train, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Out-of-distribution queries: a different schema entirely.
	foreign, err := dataset.Generate(dataset.GenConfig{
		Seed:      22,
		DataSeed:  1001,
		Machine:   exec.Research4(),
		Schema:    catalog.CustomerSchema(),
		Templates: workload.CustomerTemplates(),
		Count:     40,
	})
	if err != nil {
		log.Fatal(err)
	}

	score := func(qs []*dataset.Query) []float64 {
		out := make([]float64, 0, len(qs))
		for _, q := range qs {
			p, err := predictor.PredictQuery(q)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, p.Confidence)
		}
		sort.Float64s(out)
		return out
	}
	quantile := func(sorted []float64, q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}

	confIn := score(inDist)
	confOut := score(foreign.Queries)

	fmt.Println("prediction confidence by group (median [p10, p90]):")
	fmt.Printf("  in-distribution TPC-DS queries:   %.2f  [%.2f, %.2f]\n",
		quantile(confIn, 0.5), quantile(confIn, 0.1), quantile(confIn, 0.9))
	fmt.Printf("  customer-schema queries (foreign): %.2f  [%.2f, %.2f]\n",
		quantile(confOut, 0.5), quantile(confOut, 0.1), quantile(confOut, 0.9))

	// Gate predictions on a confidence threshold: flag the rest for
	// conservative handling (run in the batch queue, or refuse to promise
	// a runtime).
	threshold := quantile(confIn, 0.1) // accept ~90% of in-distribution traffic
	flagged := 0
	for _, c := range confOut {
		if c < threshold {
			flagged++
		}
	}
	accepted := 0
	for _, c := range confIn {
		if c >= threshold {
			accepted++
		}
	}
	fmt.Printf("\nwith the threshold set at %.2f (the in-distribution p10):\n", threshold)
	fmt.Printf("  %d/%d in-distribution queries keep their predictions\n", accepted, len(confIn))
	fmt.Printf("  %d/%d foreign queries are flagged as anomalous\n", flagged, len(confOut))
}
