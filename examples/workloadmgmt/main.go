// Workload management: the paper's first motivating use case. A workload
// manager must decide, before each query starts, whether to admit it to
// the interactive queue, divert it to the batch queue, or reject it — and
// how long to wait before concluding something went wrong and killing it.
//
// This example compares three admission policies (internal/driver) on the
// same arriving query stream:
//
//   - blind:      admit everything interactively; kill at a fixed timeout,
//     wasting all the work the killed query did;
//   - predictive: route on the KCCA prediction, reject predicted wrecking
//     balls, gate on prediction confidence, and derive each
//     query's kill timeout from its own prediction;
//   - oracle:     the same decisions with perfect knowledge (upper bound).
//
// The predictive policy eliminates almost all kill-waste and collapses
// interactive latency, using only pre-execution information.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/statutil"
	"repro/internal/workload"
)

const interactiveLimit = 180.0 // seconds
const rejectBeyond = 7200.0    // predicted wrecking balls are refused

func main() {
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed:      11,
		DataSeed:  1000,
		Machine:   exec.Research4(),
		Schema:    catalog.TPCDS(1),
		Templates: workload.TPCDSTemplates(),
		Count:     1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Split the pool into training history and an arriving stream.
	r := statutil.NewRNG(3, "arrivals")
	idx := r.SampleInts(len(pool.Queries), 160)
	inStream := map[int]bool{}
	var stream, train []*dataset.Query
	for _, i := range idx {
		inStream[i] = true
	}
	for i, q := range pool.Queries {
		if inStream[i] {
			stream = append(stream, q)
		} else {
			train = append(train, q)
		}
	}

	predictor, err := repro.Train(train, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	outcomes, err := driver.Compare(stream,
		driver.BlindPolicy{KillAfterSec: interactiveLimit},
		driver.PredictivePolicy{
			Predictor:           predictor,
			InteractiveLimitSec: interactiveLimit,
			Headroom:            3,
			MinTimeoutSec:       10,
			RejectBeyondSec:     rejectBeyond,
			MinConfidence:       0.05,
		},
		driver.OraclePolicy{InteractiveLimitSec: interactiveLimit, RejectBeyondSec: rejectBeyond},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("arriving queries: %d  (interactive limit %.0fs, reject beyond %.0fs)\n\n",
		len(stream), interactiveLimit, rejectBeyond)
	fmt.Printf("%-12s %12s %7s %8s %7s %12s %18s\n",
		"policy", "interactive", "batch", "reject", "kills", "wasted (s)", "mean int. latency")
	for _, o := range outcomes {
		fmt.Printf("%-12s %12d %7d %8d %7d %12.0f %17.0fs\n",
			o.Policy, o.Interactive, o.Batch, o.Rejected, o.Killed,
			o.WastedSec, o.MeanInteractiveLatencySec)
	}

	blind, pred := outcomes[0], outcomes[1]
	fmt.Printf("\npredictive admission avoids %.0f seconds of killed work and cuts mean interactive\n"+
		"latency from %.0fs to %.0fs — using only pre-execution predictions.\n",
		blind.WastedSec-pred.WastedSec,
		blind.MeanInteractiveLatencySec, pred.MeanInteractiveLatencySec)
}
