// MapReduce job prediction: the paper's Sec. VIII future-work direction,
// implemented. "Our long-term vision is to use domain-specific models ...
// to answer what-if questions about workload performance on a variety of
// complex systems. Only the feature vectors need to be customized for each
// system. We are currently adapting our methodology to predict the
// performance of map-reduce jobs."
//
// This example trains the same KCCA + kNN pipeline on executed MapReduce
// jobs (simulated on a 10-node cluster), predicts held-out jobs' elapsed
// time, shuffle volume, and output size before they run, and answers a
// what-if question: how long would the workload take on a 100-node
// cluster?
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/mapreduce"
	"repro/internal/statutil"
)

func history(seed int64, n int, c mapreduce.Cluster) []mapreduce.Executed {
	tpls := mapreduce.Templates()
	out := make([]mapreduce.Executed, 0, n)
	for i := 0; i < n; i++ {
		tpl := tpls[i%len(tpls)]
		r := statutil.NewRNG(seed+int64(i), "mr:"+tpl.Name)
		job := tpl.Gen(r)
		m, err := mapreduce.Run(job, c, 17, statutil.NewRNG(seed+int64(i), "mrnoise"))
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, mapreduce.Executed{Job: job, Metrics: m})
	}
	return out
}

func main() {
	dev := mapreduce.SmallCluster()
	prod := mapreduce.LargeCluster()

	// Train on 400 executed jobs from the development cluster's history.
	train := history(100, 400, dev)
	test := history(9000, 30, dev)

	predictor, err := mapreduce.Train(train, knn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d executed jobs (dev cluster: %d nodes)\n\n", predictor.N(), dev.Nodes)

	fmt.Printf("%-16s %12s %12s %14s %14s\n", "job", "pred (s)", "actual (s)", "pred shuffle", "actual shuffle")
	var pe, ae []float64
	for _, ex := range test[:10] {
		pred, err := predictor.Predict(ex.Job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.0f %12.0f %13.1fG %13.1fG\n",
			ex.Job.Kind, pred.ElapsedSec, ex.Metrics.ElapsedSec,
			pred.ShuffleBytes/1e9, ex.Metrics.ShuffleBytes/1e9)
	}
	for _, ex := range test {
		pred, err := predictor.Predict(ex.Job)
		if err != nil {
			log.Fatal(err)
		}
		pe = append(pe, pred.ElapsedSec)
		ae = append(ae, ex.Metrics.ElapsedSec)
	}
	fmt.Printf("\nelapsed-time predictive risk over %d held-out jobs: %s (within 20%%: %.0f%%)\n",
		len(test), eval.FormatRisk(eval.PredictiveRisk(pe, ae)), eval.WithinFactor(pe, ae, 0.2)*100)

	// What-if: train a second model from the production cluster's history
	// and predict the same workload there — sizing across software/
	// hardware environments with zero production test runs.
	prodTrain := history(300, 400, prod)
	prodPredictor, err := mapreduce.Train(prodTrain, knn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var devTotal, prodTotal float64
	for _, ex := range test {
		d, err := predictor.Predict(ex.Job)
		if err != nil {
			log.Fatal(err)
		}
		p, err := prodPredictor.Predict(ex.Job)
		if err != nil {
			log.Fatal(err)
		}
		devTotal += d.ElapsedSec
		prodTotal += p.ElapsedSec
	}
	fmt.Printf("\nwhat-if for the %d-job workload:\n", len(test))
	fmt.Printf("  predicted total on %3d nodes: %8.0f s\n", dev.Nodes, devTotal)
	fmt.Printf("  predicted total on %3d nodes: %8.0f s (%.1fx speedup)\n",
		prod.Nodes, prodTotal, devTotal/prodTotal)
}
