// Quickstart: generate a training workload on the simulated 4-processor
// system, train the KCCA predictor, and predict the six performance
// metrics of held-out queries before "executing" them — the paper's core
// loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

func main() {
	// 1. Build a labeled training workload: template-generated queries,
	//    planned by the cost-based optimizer and executed on the simulated
	//    research system (the HP Neoview stand-in).
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed:      7,
		DataSeed:  1000,
		Machine:   exec.Research4(),
		Schema:    catalog.TPCDS(1),
		Templates: workload.TPCDSTemplates(),
		Count:     520,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := pool.Queries[:480]
	test := pool.Queries[480:]

	// 2. Train the predictor: KCCA correlates plan feature vectors with
	//    performance vectors; prediction averages the metrics of the three
	//    nearest neighbors in the learned projection.
	predictor, err := repro.Train(train, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d queries\n\n", predictor.N())

	// 3. Predict the held-out queries using only pre-execution information
	//    (their optimizer plans) and compare with the measured truth.
	fmt.Printf("%-26s %-13s %12s %12s %10s\n", "template", "type", "pred (s)", "actual (s)", "conf")
	for _, q := range test {
		pred, err := predictor.PredictQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-13s %12.2f %12.2f %10.2f\n",
			q.Template, pred.Category, pred.Metrics.ElapsedSec, q.Metrics.ElapsedSec, pred.Confidence)
	}

	// 4. All six metrics come out of the same prediction.
	q := test[0]
	pred, err := predictor.PredictQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull metric vector for one %s query:\n", q.Template)
	fmt.Printf("  predicted: %v\n", pred.Metrics)
	fmt.Printf("  actual:    %v\n", q.Metrics)
}
