// Capacity planning / system sizing: the paper's second and third
// motivating use cases. A new customer brings a workload and a nightly
// batch window; the vendor must recommend the smallest system
// configuration that completes the workload in time — BEFORE buying or
// building anything (Fig. 1's "purchase appropriate system
// configurations" / "do what-if modeling").
//
// For each candidate configuration of the 32-node production system we
// train a predictor from that configuration's historical workload, re-plan
// the customer's queries for the configuration, and let internal/sizing
// apply the batch-window constraint. The actual (simulated) runtimes then
// validate the recommendation.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/sizing"
	"repro/internal/workload"
)

// batchWindow is the time budget for the customer's nightly workload,
// in (simulated) seconds.
const batchWindow = 60.0

func main() {
	schema := catalog.TPCDS(1)

	// The customer's workload: 60 reporting queries the vendor has never
	// run (benchmark-class templates; the heavy "problem" templates are a
	// workload-management concern, not a sizing one).
	var reporting []workload.Template
	for _, t := range workload.TPCDSTemplates() {
		if t.Class == "tpcds" {
			reporting = append(reporting, t)
		}
	}
	customer, err := dataset.Generate(dataset.GenConfig{
		Seed:      77,
		DataSeed:  1000,
		Machine:   exec.Production32(32), // planning baseline; re-planned per config below
		Schema:    schema,
		Templates: reporting,
		Count:     60,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sizing a %d-query nightly workload for a %.0fs batch window\n\n", len(customer.Queries), batchWindow)
	fmt.Printf("%-12s %14s %14s %8s %10s\n", "config", "predicted (s)", "actual (s)", "fits?", "correct?")

	constraint := sizing.Constraint{MaxTotalElapsedSec: batchWindow}
	chosen := ""
	for _, procs := range []int{4, 8, 16, 32} {
		machine := exec.Production32(procs)

		// Historical workload for this configuration (the vendor's
		// training runs of Fig. 1) -> one predictor per candidate.
		history, err := dataset.Generate(dataset.GenConfig{
			Seed:      5,
			DataSeed:  1000,
			Machine:   machine,
			Schema:    schema,
			Templates: reporting,
			Count:     700,
		})
		if err != nil {
			log.Fatal(err)
		}
		predictor, err := repro.Train(history.Queries, repro.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}

		// Re-plan the customer's queries for this configuration (plans
		// differ across configurations, as the paper observed) and
		// assess the constraint on predictions only.
		replanned, err := dataset.ReExecute(customer, schema, 1000, machine, 99)
		if err != nil {
			log.Fatal(err)
		}
		assessments, rec, err := sizing.Plan(replanned.Queries,
			[]sizing.Candidate{{Machine: machine, Predictor: predictor}}, constraint)
		if err != nil {
			log.Fatal(err)
		}
		a := assessments[0]

		// Ground truth (the simulator's actual runtimes) for validation.
		var actualTotal float64
		for _, q := range replanned.Queries {
			actualTotal += q.Metrics.ElapsedSec
		}

		fits := rec == 0
		correct := fits == (actualTotal <= batchWindow)
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fmt.Printf("%-12s %14.0f %14.0f %8s %10s\n",
			fmt.Sprintf("%d cpus", procs), a.Totals.ElapsedSec, actualTotal, mark(fits), mark(correct))
		if fits && chosen == "" {
			chosen = fmt.Sprintf("%d cpus", procs)
		}
	}

	if chosen == "" {
		fmt.Println("\nno candidate configuration fits the window — recommend a larger system")
	} else {
		fmt.Printf("\nrecommendation: the smallest configuration predicted to fit is %s\n", chosen)
	}
}
