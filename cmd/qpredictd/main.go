// Command qpredictd is the online prediction service: the paper's Fig. 1
// vendor-trains / customer-predicts workflow as a long-running daemon. It
// trains (or loads) a performance predictor at boot, then serves JSON
// predictions over HTTP, micro-batching concurrent requests through the
// shared worker pool and hot-swapping in background retrains fed by
// /v1/observe execution feedback. See docs/API.md for the wire schema.
//
// Usage:
//
//	qpredictd -addr :8080 -train 800
//	qpredictd -addr :8080 -load model.bin -capacity 500 -retrain-every 100
//	qpredictd -config qpredictd.json
//
//	curl -s localhost:8080/v1/predict -d '{"sql": "SELECT COUNT(*) FROM store_sales"}'
//
// -config loads a qpredict.Options JSON file (example under
// examples/config/); any flag explicitly set on the command line overrides
// the corresponding config field. With challengers configured
// (champion.challengers in the config, or -challengers) the daemon runs
// the model zoo: every observation shadow-scores each challenger model
// kind against the champion, and a challenger that dominates on windowed
// relative error is promoted through the ordinary generation hot-swap.
//
// With -shards N the daemon runs the sharded multi-model tier instead of a
// single model: traffic is partitioned across N per-shard sliding
// predictors (-partitioner picks the policy, hash or category), each with
// its own coalescer, generation, and background retrain loop, and GET
// /v1/shards exposes the per-shard state. -shards 1 is byte-identical to
// the unsharded daemon on the wire.
//
// Endpoints: /v1/predict, /v1/observe, /v1/model, /v1/shards, /healthz,
// /readyz, plus the observability surface (/metrics, /timings,
// /debug/pprof) on the same listener. SIGINT/SIGTERM drain gracefully: the
// listener stops accepting, in-flight micro-batches and queued
// observations finish, then the process exits through the shared cleanup
// path (which also flushes -timings).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/catalog"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/pkg/qpredict"
)

func main() {
	def := qpredict.Default()
	cfgPath := flag.String("config", "", "JSON options file (pkg/qpredict Options; explicitly set flags override it)")
	addr := flag.String("addr", def.Serve.Addr, "listen address (use :0 for an ephemeral port)")
	trainCount := flag.Int("train", def.Train.Count, "training workload size (ignored with -load)")
	seed := flag.Int64("seed", def.Train.Seed, "workload seed")
	dataSeed := flag.Int64("dataseed", def.Train.DataSeed, "data realization seed")
	machineName := flag.String("machine", def.Train.Machine, "machine: research4 or prod32:<cpus>")
	twoStep := flag.Bool("twostep", def.Train.TwoStep, "use two-step (query-type-specific) prediction")
	loadFrom := flag.String("load", "", "load a previously saved model instead of training")
	window := flag.Duration("window", def.Serve.Window.Std(), "micro-batch coalescing window (0 batches only what is already queued)")
	maxBatch := flag.Int("max-batch", def.Serve.MaxBatch, "micro-batch size cap")
	queueCap := flag.Int("queue", def.Serve.QueueCap, "pending-query queue bound (beyond it requests get 429)")
	timeout := flag.Duration("timeout", def.Serve.Timeout.Std(), "per-request prediction deadline")
	capacity := flag.Int("capacity", def.Sliding.Capacity, "sliding retraining window capacity")
	retrainEvery := flag.Int("retrain-every", def.Sliding.RetrainEvery, "observations between background retrains")
	drainTimeout := flag.Duration("drain-timeout", def.Serve.DrainTimeout.Std(), "graceful shutdown deadline")
	timings := flag.Bool("timings", false, "print the per-stage timing table on exit")
	shards := flag.Int("shards", def.Shards.Count, "run the sharded multi-model tier with N shards (0 = single model)")
	partitioner := flag.String("partitioner", def.Shards.Partitioner, "shard routing policy: hash or category (with -shards)")
	stateDir := flag.String("state-dir", def.State.Dir, "durable state directory (observation WAL + model snapshots, one subdirectory per shard); a restart recovers the serving state from it")
	fsyncPolicy := flag.String("fsync", def.State.Fsync, "WAL fsync policy with -state-dir: always, batch, or none")
	fsyncEvery := flag.Int("fsync-every", def.State.FsyncEvery, "appends between fsyncs with -fsync batch")
	snapshotEvery := flag.Int("snapshot-every", def.State.SnapshotEvery, "applied observations between state snapshots with -state-dir")
	planCache := flag.Int("plan-cache", def.Serve.PlanCache, "plan/feature cache entries (0 = built-in default, negative disables caching)")
	champion := flag.String("champion", def.Champion.Kind, "initial champion model kind (kcca, planstruct, optcost)")
	challengers := flag.String("challengers", "", "comma-separated challenger model kinds to shadow-score (enables the model zoo)")
	flag.Parse()

	opts := def
	if *cfgPath != "" {
		var err error
		opts, err = qpredict.LoadFile(*cfgPath)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	}
	// Explicitly set flags override the config file; each override is
	// reported once so a drifting wrapper script is visible.
	var overridden []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			opts.Serve.Addr = *addr
		case "train":
			opts.Train.Count = *trainCount
		case "seed":
			opts.Train.Seed = *seed
		case "dataseed":
			opts.Train.DataSeed = *dataSeed
		case "machine":
			opts.Train.Machine = *machineName
		case "twostep":
			opts.Train.TwoStep = *twoStep
		case "load":
			opts.Train.Load = *loadFrom
		case "window":
			opts.Serve.Window = qpredict.Duration(*window)
		case "max-batch":
			opts.Serve.MaxBatch = *maxBatch
		case "queue":
			opts.Serve.QueueCap = *queueCap
		case "timeout":
			opts.Serve.Timeout = qpredict.Duration(*timeout)
		case "capacity":
			opts.Sliding.Capacity = *capacity
		case "retrain-every":
			opts.Sliding.RetrainEvery = *retrainEvery
		case "drain-timeout":
			opts.Serve.DrainTimeout = qpredict.Duration(*drainTimeout)
		case "shards":
			opts.Shards.Count = *shards
		case "partitioner":
			opts.Shards.Partitioner = *partitioner
		case "state-dir":
			opts.State.Dir = *stateDir
		case "fsync":
			opts.State.Fsync = *fsyncPolicy
		case "fsync-every":
			opts.State.FsyncEvery = *fsyncEvery
		case "snapshot-every":
			opts.State.SnapshotEvery = *snapshotEvery
		case "plan-cache":
			opts.Serve.PlanCache = *planCache
		case "champion":
			opts.Champion.Kind = *champion
		case "challengers":
			opts.Champion.Challengers = nil
			for _, k := range strings.Split(*challengers, ",") {
				if k = strings.TrimSpace(k); k != "" {
					opts.Champion.Challengers = append(opts.Champion.Challengers, k)
				}
			}
		default:
			return
		}
		if *cfgPath != "" {
			overridden = append(overridden, "-"+f.Name)
		}
	})
	if len(overridden) > 0 {
		fmt.Fprintf(os.Stderr, "note: %s override %s (flags beat config; move them into the file to silence this)\n",
			strings.Join(overridden, " "), *cfgPath)
	}
	if err := opts.Validate(); err != nil {
		cli.Fatalf("%v", err)
	}

	if *timings {
		obs.SetEnabled(true)
		cli.AtExit(func() { fmt.Fprint(os.Stderr, "\n"+obs.TimingsTable()) })
	}

	machine, err := exec.ParseMachine(opts.Train.Machine)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	schema := catalog.TPCDS(1)
	opt := core.DefaultOptions()
	opt.TwoStep = opts.Train.TwoStep

	// One plan/feature cache serves every SQL-planning consumer in the
	// process — the predict handlers, the observe path, and WAL replay —
	// so a query seen on any of them is planned once. Generation-free
	// keying (plans depend only on schema, data seed, and machine, all
	// fixed for the process) means hot swaps never invalidate it.
	planner := serve.NewPlanner(schema, opts.Train.DataSeed, machine, opts.Serve.PlanCache)
	if planner.Enabled() {
		fmt.Fprintf(os.Stderr, "plan cache: %d entries\n", planner.Cap())
	} else {
		fmt.Fprintln(os.Stderr, "plan cache: disabled")
	}

	// Champion/challenger operation rides on the shard tier (the zoo hangs
	// off each shard's observe loop), so a zoo-enabled unsharded daemon
	// quietly runs the single-shard router — byte-identical on the wire.
	nShards := opts.Shards.Count
	zooOn := opts.Champion.Enabled()
	if zooOn && nShards == 0 {
		nShards = 1
	}

	// Partition layout first (it decides the per-partition window knobs
	// durable state must be recovered under). Per-shard knobs divide the
	// single-model budget so the fleet-wide totals match: with one shard
	// this reduces exactly to the unsharded values, keeping the
	// single-shard daemon byte-identical.
	nPart := 1
	partCap, partEvery := opts.Sliding.Capacity, opts.Sliding.RetrainEvery
	var part shard.Partitioner
	if nShards > 0 {
		nPart = nShards
		partCap = max(5, opts.Sliding.Capacity/nShards)
		partEvery = max(1, opts.Sliding.RetrainEvery/nShards)
		if partEvery > partCap {
			partEvery = partCap
		}
		part, err = shard.NewPartitioner(opts.Shards.Partitioner, nShards, opt.Features)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	}

	// Durable state: open (and repair) each partition's WAL, install the
	// newest snapshot, and replay the tail before serving starts. A
	// partition that recovers a model skips boot training entirely.
	var stores []*wal.Store
	var slidings []*core.SlidingPredictor
	var bootGens []int64
	allWarm := false
	if opts.State.Dir != "" {
		policy, err := wal.ParseSyncPolicy(opts.State.Fsync)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		partName := "none"
		if part != nil {
			partName = part.Name()
		}
		if err := wal.CheckManifest(opts.State.Dir, wal.Manifest{
			Shards:       nPart,
			Partitioner:  partName,
			Capacity:     opts.Sliding.Capacity,
			RetrainEvery: opts.Sliding.RetrainEvery,
		}); err != nil {
			cli.Fatalf("%v", err)
		}
		plan := planner.Plan
		allWarm = true
		for i := 0; i < nPart; i++ {
			st, err := wal.OpenStore(wal.StoreOptions{
				Dir:           filepath.Join(opts.State.Dir, fmt.Sprintf("shard-%d", i)),
				Policy:        policy,
				SyncEvery:     opts.State.FsyncEvery,
				SnapshotEvery: opts.State.SnapshotEvery,
				Plan:          plan,
			})
			if err != nil {
				cli.Fatalf("opening state for shard %d: %v", i, err)
			}
			sl, gen, err := st.Recover(partCap, partEvery, opt)
			if err != nil {
				cli.Fatalf("recovering state for shard %d: %v", i, err)
			}
			if info := st.Info(); info.Recovered {
				fmt.Fprintf(os.Stderr, "shard %d: recovered snapshot seq %d, replayed %d records in %.3fs (generation %d)\n",
					i, info.SnapshotSeq, info.Replayed, info.ReplaySeconds, gen)
				if info.TornTail {
					fmt.Fprintf(os.Stderr, "shard %d: torn WAL tail repaired, %d bytes truncated\n", i, info.TruncatedBytes)
				}
			}
			stores = append(stores, st)
			slidings = append(slidings, sl)
			bootGens = append(bootGens, gen)
			if gen == 0 {
				allWarm = false
			}
		}
	}

	var predictor *core.Predictor
	var pool *dataset.Dataset
	if allWarm {
		fmt.Fprintf(os.Stderr, "recovered %d warm partition(s) from %s; skipping boot training\n", nPart, opts.State.Dir)
	} else if opts.Train.Load != "" {
		f, err := os.Open(opts.Train.Load)
		if err != nil {
			cli.Fatalf("opening model: %v", err)
		}
		predictor, err = core.Load(f)
		f.Close()
		if err != nil {
			cli.Fatalf("loading model: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded model trained on %d queries\n", predictor.N())
	} else {
		fmt.Fprintf(os.Stderr, "generating %d training queries on %s...\n", opts.Train.Count, machine)
		pool, err = dataset.Generate(dataset.GenConfig{
			Seed:      opts.Train.Seed,
			DataSeed:  opts.Train.DataSeed,
			Machine:   machine,
			Schema:    schema,
			Templates: workload.TPCDSTemplates(),
			Count:     opts.Train.Count,
		})
		if err != nil {
			cli.Fatalf("generating training workload: %v", err)
		}
		fmt.Fprintln(os.Stderr, "training KCCA model...")
		predictor, err = core.Train(pool.Queries, opt)
		if err != nil {
			cli.Fatalf("training: %v", err)
		}
	}

	// With the zoo on, every configured kind gets a seed model trained on
	// the same boot pool, so challengers shadow-score from the first
	// observation instead of waiting for their first window retrain. A
	// kind whose boot training fails just starts cold.
	var seeds map[string]model.Model
	if zooOn {
		seeds = map[string]model.Model{}
		if predictor != nil {
			seeds[model.KindKCCA] = model.WrapKCCA(predictor)
		}
		if pool != nil {
			for _, kind := range append([]string{opts.Champion.Kind}, opts.Champion.Challengers...) {
				if seeds[kind] != nil {
					continue
				}
				tr, err := model.NewTrainer(kind, opt)
				if err != nil {
					cli.Fatalf("%v", err)
				}
				m, err := tr.Train(pool.Queries)
				if err != nil {
					fmt.Fprintf(os.Stderr, "boot training %s model: %v (kind starts cold)\n", kind, err)
					continue
				}
				seeds[kind] = m
			}
		}
	}

	svcCfg := serve.Config{
		Schema:   schema,
		Machine:  machine,
		DataSeed: opts.Train.DataSeed,
		Plans:    planner,
		Window:   opts.Serve.Window.Std(),
		MaxBatch: opts.Serve.MaxBatch,
		QueueCap: opts.Serve.QueueCap,
		Timeout:  opts.Serve.Timeout.Std(),
	}
	if nShards > 0 {
		cfgs := make([]shard.ShardConfig, nShards)
		for i := range cfgs {
			sl := (*core.SlidingPredictor)(nil)
			if slidings != nil {
				sl = slidings[i]
			} else {
				var err error
				sl, err = core.NewSliding(partCap, partEvery, opt)
				if err != nil {
					cli.Fatalf("sliding window: %v", err)
				}
			}
			sc := shard.ShardConfig{Sliding: sl}
			if stores != nil {
				sc.Store = stores[i]
				sc.BootGen = bootGens[i]
			}
			// A shard that did not recover a model boots from the shared
			// trained model, then diverges as its own observations arrive;
			// a recovered shard keeps serving its own model at the
			// generation it held before the restart.
			if sc.BootGen == 0 {
				sc.Boot = predictor
			}
			if zooOn {
				zc := &shard.ZooConfig{
					Champion:    opts.Champion.Kind,
					Challengers: opts.Champion.Challengers,
					Seeds:       seeds,
					Policy:      opts.Champion.Policy(),
					Opt:         opt,
				}
				// A durably recorded promotion outlives the process: the
				// shard restarts under the champion it had promoted to.
				if stores != nil {
					if k := stores[i].ChampionKind(); k != "" {
						zc.Champion = k
					}
				}
				sc.Zoo = zc
			}
			cfgs[i] = sc
		}
		router, err := shard.NewRouter(cfgs, part, shard.Config{
			Window:   opts.Serve.Window.Std(),
			MaxBatch: opts.Serve.MaxBatch,
			QueueCap: opts.Serve.QueueCap,
		}, true)
		if err != nil {
			cli.Fatalf("shard router: %v", err)
		}
		svcCfg.Router = router
		if nShards > 1 {
			fmt.Fprintf(os.Stderr, "sharded tier: %d shards, %s partitioner, per-shard window %d\n",
				nShards, part.Name(), partCap)
		}
		if zooOn {
			fmt.Fprintf(os.Stderr, "model zoo: champion %s, challengers %v (margin %.0f%%, hysteresis %d)\n",
				opts.Champion.Kind, opts.Champion.Challengers, opts.Champion.Margin*100, opts.Champion.Hysteresis)
		}
	} else {
		sliding := (*core.SlidingPredictor)(nil)
		if slidings != nil {
			sliding = slidings[0]
		} else {
			var err error
			sliding, err = core.NewSliding(opts.Sliding.Capacity, opts.Sliding.RetrainEvery, opt)
			if err != nil {
				cli.Fatalf("sliding window: %v", err)
			}
		}
		svcCfg.Sliding = sliding
		if stores != nil {
			svcCfg.Store = stores[0]
			svcCfg.BootGen = bootGens[0]
		}
		if svcCfg.BootGen == 0 {
			svcCfg.Predictor = predictor
		}
	}
	svc, err := serve.New(svcCfg)
	if err != nil {
		cli.Fatalf("starting service: %v", err)
	}
	// The drain is an exit hook, so every exit route — signal, Fatalf, or
	// normal return — finishes in-flight work before the process dies.
	cli.AtExit(svc.Close)

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	oh := obs.Handler()
	mux.Handle("/metrics", oh)
	mux.Handle("/timings", oh)
	mux.Handle("/debug/", oh)

	ln, err := net.Listen("tcp", opts.Serve.Addr)
	if err != nil {
		cli.Fatalf("listening on %s: %v", opts.Serve.Addr, err)
	}
	httpSrv := &http.Server{Handler: mux}
	modelDesc := "model: recovered from state"
	if predictor != nil {
		modelDesc = fmt.Sprintf("model: %d queries", predictor.N())
	}
	fmt.Printf("qpredictd serving on http://%s (%s)\n", ln.Addr(), modelDesc)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received, draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.Serve.DrainTimeout.Std())
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		cli.Exit(0)
	case err := <-errc:
		cli.Fatalf("server: %v", err)
	}
}
