// Command qpredictd is the online prediction service: the paper's Fig. 1
// vendor-trains / customer-predicts workflow as a long-running daemon. It
// trains (or loads) a KCCA performance predictor at boot, then serves
// JSON predictions over HTTP, micro-batching concurrent requests through
// the shared worker pool and hot-swapping in background retrains fed by
// /v1/observe execution feedback. See docs/API.md for the wire schema.
//
// Usage:
//
//	qpredictd -addr :8080 -train 800
//	qpredictd -addr :8080 -load model.bin -capacity 500 -retrain-every 100
//
//	curl -s localhost:8080/v1/predict -d '{"sql": "SELECT COUNT(*) FROM store_sales"}'
//
// With -shards N the daemon runs the sharded multi-model tier instead of a
// single model: traffic is partitioned across N per-shard sliding
// predictors (-partitioner picks the policy, hash or category), each with
// its own coalescer, generation, and background retrain loop, and GET
// /v1/shards exposes the per-shard state. -shards 1 is byte-identical to
// the unsharded daemon on the wire.
//
// Endpoints: /v1/predict, /v1/observe, /v1/model, /v1/shards, /healthz,
// /readyz, plus the observability surface (/metrics, /timings,
// /debug/pprof) on the same listener. SIGINT/SIGTERM drain gracefully: the
// listener stops accepting, in-flight micro-batches and queued
// observations finish, then the process exits through the shared cleanup
// path (which also flushes -timings).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	trainCount := flag.Int("train", 800, "training workload size (ignored with -load)")
	seed := flag.Int64("seed", 1, "workload seed")
	dataSeed := flag.Int64("dataseed", 1000, "data realization seed")
	machineName := flag.String("machine", "research4", "machine: research4 or prod32:<cpus>")
	twoStep := flag.Bool("twostep", false, "use two-step (query-type-specific) prediction")
	loadFrom := flag.String("load", "", "load a previously saved model instead of training")
	window := flag.Duration("window", 2*time.Millisecond, "micro-batch coalescing window (0 batches only what is already queued)")
	maxBatch := flag.Int("max-batch", 64, "micro-batch size cap")
	queueCap := flag.Int("queue", 1024, "pending-query queue bound (beyond it requests get 429)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request prediction deadline")
	capacity := flag.Int("capacity", 500, "sliding retraining window capacity")
	retrainEvery := flag.Int("retrain-every", 100, "observations between background retrains")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown deadline")
	timings := flag.Bool("timings", false, "print the per-stage timing table on exit")
	shards := flag.Int("shards", 0, "run the sharded multi-model tier with N shards (0 = single model)")
	partitioner := flag.String("partitioner", "hash", "shard routing policy: hash or category (with -shards)")
	stateDir := flag.String("state-dir", "", "durable state directory (observation WAL + model snapshots, one subdirectory per shard); a restart recovers the serving state from it")
	fsyncPolicy := flag.String("fsync", "batch", "WAL fsync policy with -state-dir: always, batch, or none")
	fsyncEvery := flag.Int("fsync-every", wal.DefaultSyncEvery, "appends between fsyncs with -fsync batch")
	snapshotEvery := flag.Int("snapshot-every", wal.DefaultSnapshotEvery, "applied observations between state snapshots with -state-dir")
	flag.Parse()

	if *timings {
		obs.SetEnabled(true)
		cli.AtExit(func() { fmt.Fprint(os.Stderr, "\n"+obs.TimingsTable()) })
	}

	machine, err := exec.ParseMachine(*machineName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	schema := catalog.TPCDS(1)
	opt := core.DefaultOptions()
	opt.TwoStep = *twoStep

	// Partition layout first (it decides the per-partition window knobs
	// durable state must be recovered under). Per-shard knobs divide the
	// single-model budget so the fleet-wide totals match: with -shards 1
	// this reduces exactly to the unsharded values, keeping the single-shard
	// daemon byte-identical.
	nPart := 1
	partCap, partEvery := *capacity, *retrainEvery
	var part shard.Partitioner
	if *shards > 0 {
		nPart = *shards
		partCap = max(5, *capacity / *shards)
		partEvery = max(1, *retrainEvery / *shards)
		if partEvery > partCap {
			partEvery = partCap
		}
		part, err = shard.NewPartitioner(*partitioner, *shards, opt.Features)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	}

	// Durable state: open (and repair) each partition's WAL, install the
	// newest snapshot, and replay the tail before serving starts. A
	// partition that recovers a model skips boot training entirely.
	var stores []*wal.Store
	var slidings []*core.SlidingPredictor
	var bootGens []int64
	allWarm := false
	if *stateDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		partName := "none"
		if part != nil {
			partName = part.Name()
		}
		if err := wal.CheckManifest(*stateDir, wal.Manifest{
			Shards:       nPart,
			Partitioner:  partName,
			Capacity:     *capacity,
			RetrainEvery: *retrainEvery,
		}); err != nil {
			cli.Fatalf("%v", err)
		}
		plan := serve.PlannerFunc(schema, *dataSeed, machine)
		allWarm = true
		for i := 0; i < nPart; i++ {
			st, err := wal.OpenStore(wal.StoreOptions{
				Dir:           filepath.Join(*stateDir, fmt.Sprintf("shard-%d", i)),
				Policy:        policy,
				SyncEvery:     *fsyncEvery,
				SnapshotEvery: *snapshotEvery,
				Plan:          plan,
			})
			if err != nil {
				cli.Fatalf("opening state for shard %d: %v", i, err)
			}
			sl, gen, err := st.Recover(partCap, partEvery, opt)
			if err != nil {
				cli.Fatalf("recovering state for shard %d: %v", i, err)
			}
			if info := st.Info(); info.Recovered {
				fmt.Fprintf(os.Stderr, "shard %d: recovered snapshot seq %d, replayed %d records in %.3fs (generation %d)\n",
					i, info.SnapshotSeq, info.Replayed, info.ReplaySeconds, gen)
				if info.TornTail {
					fmt.Fprintf(os.Stderr, "shard %d: torn WAL tail repaired, %d bytes truncated\n", i, info.TruncatedBytes)
				}
			}
			stores = append(stores, st)
			slidings = append(slidings, sl)
			bootGens = append(bootGens, gen)
			if gen == 0 {
				allWarm = false
			}
		}
	}

	var predictor *core.Predictor
	if allWarm {
		fmt.Fprintf(os.Stderr, "recovered %d warm partition(s) from %s; skipping boot training\n", nPart, *stateDir)
	} else if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			cli.Fatalf("opening model: %v", err)
		}
		predictor, err = core.Load(f)
		f.Close()
		if err != nil {
			cli.Fatalf("loading model: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded model trained on %d queries\n", predictor.N())
	} else {
		fmt.Fprintf(os.Stderr, "generating %d training queries on %s...\n", *trainCount, machine)
		pool, err := dataset.Generate(dataset.GenConfig{
			Seed:      *seed,
			DataSeed:  *dataSeed,
			Machine:   machine,
			Schema:    schema,
			Templates: workload.TPCDSTemplates(),
			Count:     *trainCount,
		})
		if err != nil {
			cli.Fatalf("generating training workload: %v", err)
		}
		fmt.Fprintln(os.Stderr, "training KCCA model...")
		predictor, err = core.Train(pool.Queries, opt)
		if err != nil {
			cli.Fatalf("training: %v", err)
		}
	}

	svcCfg := serve.Config{
		Schema:   schema,
		Machine:  machine,
		DataSeed: *dataSeed,
		Window:   *window,
		MaxBatch: *maxBatch,
		QueueCap: *queueCap,
		Timeout:  *timeout,
	}
	if *shards > 0 {
		cfgs := make([]shard.ShardConfig, *shards)
		for i := range cfgs {
			sl := (*core.SlidingPredictor)(nil)
			if slidings != nil {
				sl = slidings[i]
			} else {
				var err error
				sl, err = core.NewSliding(partCap, partEvery, opt)
				if err != nil {
					cli.Fatalf("sliding window: %v", err)
				}
			}
			sc := shard.ShardConfig{Sliding: sl}
			if stores != nil {
				sc.Store = stores[i]
				sc.BootGen = bootGens[i]
			}
			// A shard that did not recover a model boots from the shared
			// trained model, then diverges as its own observations arrive;
			// a recovered shard keeps serving its own model at the
			// generation it held before the restart.
			if sc.BootGen == 0 {
				sc.Boot = predictor
			}
			cfgs[i] = sc
		}
		router, err := shard.NewRouter(cfgs, part, shard.Config{
			Window:   *window,
			MaxBatch: *maxBatch,
			QueueCap: *queueCap,
		}, true)
		if err != nil {
			cli.Fatalf("shard router: %v", err)
		}
		svcCfg.Router = router
		fmt.Fprintf(os.Stderr, "sharded tier: %d shards, %s partitioner, per-shard window %d\n",
			*shards, part.Name(), partCap)
	} else {
		sliding := (*core.SlidingPredictor)(nil)
		if slidings != nil {
			sliding = slidings[0]
		} else {
			var err error
			sliding, err = core.NewSliding(*capacity, *retrainEvery, opt)
			if err != nil {
				cli.Fatalf("sliding window: %v", err)
			}
		}
		svcCfg.Sliding = sliding
		if stores != nil {
			svcCfg.Store = stores[0]
			svcCfg.BootGen = bootGens[0]
		}
		if svcCfg.BootGen == 0 {
			svcCfg.Predictor = predictor
		}
	}
	svc, err := serve.New(svcCfg)
	if err != nil {
		cli.Fatalf("starting service: %v", err)
	}
	// The drain is an exit hook, so every exit route — signal, Fatalf, or
	// normal return — finishes in-flight work before the process dies.
	cli.AtExit(svc.Close)

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	oh := obs.Handler()
	mux.Handle("/metrics", oh)
	mux.Handle("/timings", oh)
	mux.Handle("/debug/", oh)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatalf("listening on %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: mux}
	modelDesc := "model: recovered from state"
	if predictor != nil {
		modelDesc = fmt.Sprintf("model: %d queries", predictor.N())
	}
	fmt.Printf("qpredictd serving on http://%s (%s)\n", ln.Addr(), modelDesc)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received, draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		cli.Exit(0)
	case err := <-errc:
		cli.Fatalf("server: %v", err)
	}
}
