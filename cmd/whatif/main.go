// Command whatif answers the paper's capacity-planning question from the
// command line: given a workload (a CSV produced by dsgen, or a generated
// one) and a batch window, which is the smallest configuration of the
// 32-node production system that completes the workload in time?
//
// For each candidate configuration it trains a predictor from that
// configuration's simulated history, re-plans the workload's SQL for that
// configuration, predicts every query, and applies the constraint — no
// workload query is ever executed on a candidate.
//
// Usage:
//
//	dsgen -count 60 -machine prod32:32 -out workload.csv
//	whatif -workload workload.csv -window 120
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sizing"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func main() {
	workloadPath := flag.String("workload", "", "workload CSV from dsgen (omit to generate one)")
	window := flag.Float64("window", 120, "batch window in seconds")
	maxQuery := flag.Float64("maxquery", 0, "per-query SLA in seconds (0 = none)")
	seed := flag.Int64("seed", 5, "history/workload generation seed")
	dataSeed := flag.Int64("dataseed", 1000, "data realization seed")
	histCount := flag.Int("history", 700, "training history size per configuration")
	genCount := flag.Int("gen", 60, "generated workload size when -workload is omitted")
	flag.Parse()

	schema := catalog.TPCDS(1)
	var reporting []workload.Template
	for _, t := range workload.TPCDSTemplates() {
		if t.Class == "tpcds" {
			reporting = append(reporting, t)
		}
	}

	// Load or generate the workload SQL.
	var sqls []string
	if *workloadPath != "" {
		f, err := os.Open(*workloadPath)
		if err != nil {
			fatal("opening workload: %v", err)
		}
		rows, err := dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal("reading workload: %v", err)
		}
		for _, row := range rows {
			sqls = append(sqls, row.SQL)
		}
	} else {
		ds, err := dataset.Generate(dataset.GenConfig{
			Seed: *seed + 77, DataSeed: *dataSeed, Machine: exec.Production32(32),
			Schema: schema, Templates: reporting, Count: *genCount,
		})
		if err != nil {
			fatal("generating workload: %v", err)
		}
		for _, q := range ds.Queries {
			sqls = append(sqls, q.SQL)
		}
	}
	fmt.Fprintf(os.Stderr, "workload: %d queries; window %.0fs\n", len(sqls), *window)

	// Build candidates: train one predictor per configuration.
	var candidates []sizing.Candidate
	workloads := map[string][]*dataset.Query{}
	for _, procs := range []int{4, 8, 16, 32} {
		m := exec.Production32(procs)
		fmt.Fprintf(os.Stderr, "training candidate %s from %d historical queries...\n", m.Name, *histCount)
		hist, err := dataset.Generate(dataset.GenConfig{
			Seed: *seed, DataSeed: *dataSeed, Machine: m,
			Schema: schema, Templates: reporting, Count: *histCount,
		})
		if err != nil {
			fatal("history for %s: %v", m.Name, err)
		}
		p, err := core.Train(hist.Queries, core.DefaultOptions())
		if err != nil {
			fatal("training %s: %v", m.Name, err)
		}
		candidates = append(candidates, sizing.Candidate{Machine: m, Predictor: p})

		// Re-plan the workload's SQL for this configuration.
		cfg := optimizer.DefaultConfig(procs)
		var qs []*dataset.Query
		for i, sqlText := range sqls {
			ast, err := sqlparse.Parse(sqlText)
			if err != nil {
				fatal("parsing workload query %d: %v", i, err)
			}
			plan, err := optimizer.BuildPlan(ast, schema, *dataSeed, cfg)
			if err != nil {
				fatal("planning workload query %d: %v", i, err)
			}
			qs = append(qs, &dataset.Query{ID: i, SQL: sqlText, AST: ast, Plan: plan})
		}
		workloads[m.Name] = qs
	}

	constraint := sizing.Constraint{MaxTotalElapsedSec: *window, MaxQueryElapsedSec: *maxQuery}
	fmt.Printf("%-14s %14s %14s %12s %8s\n", "config", "pred total (s)", "max query (s)", "min conf", "fits?")
	recommended := ""
	for _, cand := range candidates {
		assessments, rec, err := sizing.Plan(workloads[cand.Machine.Name], []sizing.Candidate{cand}, constraint)
		if err != nil {
			fatal("sizing %s: %v", cand.Machine.Name, err)
		}
		a := assessments[0]
		fits := "no"
		if rec == 0 {
			fits = "yes"
			if recommended == "" {
				recommended = cand.Machine.Name
			}
		}
		fmt.Printf("%-14s %14.0f %14.1f %12.2f %8s\n",
			cand.Machine.Name, a.Totals.ElapsedSec, a.MaxQueryElapsedSec, a.MinConfidence, fits)
	}
	if recommended == "" {
		fmt.Println("\nno candidate fits — recommend a larger system or a longer window")
		os.Exit(2)
	}
	fmt.Printf("\nrecommendation: %s\n", recommended)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
