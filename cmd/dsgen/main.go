// Command dsgen generates a query workload, runs it on a simulated machine
// configuration, and writes the labeled dataset (SQL, optimizer cost,
// measured metrics, runtime category) as CSV.
//
// Usage:
//
//	dsgen -schema tpcds -machine research4 -count 500 -seed 1 -out pool.csv
//	dsgen -schema customer -machine prod32:8 -count 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

func main() {
	schemaName := flag.String("schema", "tpcds", "schema: tpcds or customer")
	machineName := flag.String("machine", "research4", "machine: research4 or prod32:<cpus>")
	count := flag.Int("count", 500, "number of queries to generate")
	seed := flag.Int64("seed", 1, "workload seed")
	dataSeed := flag.Int64("dataseed", 1000, "data realization seed")
	sf := flag.Float64("sf", 1, "TPC-DS scale factor")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()

	var (
		schema    = catalog.TPCDS(*sf)
		templates = workload.TPCDSTemplates()
	)
	switch *schemaName {
	case "tpcds":
	case "customer":
		schema = catalog.CustomerSchema()
		templates = workload.CustomerTemplates()
	default:
		fatal("unknown schema %q (want tpcds or customer)", *schemaName)
	}

	machine, err := parseMachine(*machineName)
	if err != nil {
		fatal("%v", err)
	}

	ds, err := dataset.Generate(dataset.GenConfig{
		Seed:      *seed,
		DataSeed:  *dataSeed,
		Machine:   machine,
		Schema:    schema,
		Templates: templates,
		Count:     *count,
	})
	if err != nil {
		fatal("generating dataset: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fatal("writing CSV: %v", err)
	}

	counts := ds.CategoryCounts()
	fmt.Fprintf(os.Stderr, "generated %d queries on %s:", len(ds.Queries), machine)
	for cat, n := range counts {
		fmt.Fprintf(os.Stderr, " %s=%d", cat, n)
	}
	fmt.Fprintln(os.Stderr)
}

func parseMachine(name string) (exec.Machine, error) {
	if name == "research4" {
		return exec.Research4(), nil
	}
	if rest, ok := strings.CutPrefix(name, "prod32:"); ok {
		p, err := strconv.Atoi(rest)
		if err != nil || p <= 0 || p > 32 {
			return exec.Machine{}, fmt.Errorf("bad processor count %q (want 1..32)", rest)
		}
		return exec.Production32(p), nil
	}
	return exec.Machine{}, fmt.Errorf("unknown machine %q (want research4 or prod32:<cpus>)", name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
