// Command experiments reproduces every table and figure of the paper's
// evaluation and prints paper-style reports. Use -list to see experiment
// ids and -run to select a subset.
//
// Usage:
//
//	experiments [-seed N] [-run fig10,table1,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

type experiment struct {
	id, desc string
	run      func(l *experiments.Lab) (interface{ Report() string }, error)
}

func wrap[T interface{ Report() string }](f func(l *experiments.Lab) (T, error)) func(l *experiments.Lab) (interface{ Report() string }, error) {
	return func(l *experiments.Lab) (interface{ Report() string }, error) {
		return f(l)
	}
}

var registry = []experiment{
	{"fig2", "query census (feathers / golf balls / bowling balls)", wrap((*experiments.Lab).QueryCensus)},
	{"fig3", "linear regression baseline: elapsed time", wrap((*experiments.Lab).RegressionElapsed)},
	{"fig4", "linear regression baseline: records used", wrap((*experiments.Lab).RegressionRecords)},
	{"sec5", "K-means / PCA / classical-CCA baselines", wrap((*experiments.Lab).Baselines)},
	{"fig8", "KCCA on SQL-text features", wrap((*experiments.Lab).SQLTextKCCA)},
	{"table1", "Euclidean vs cosine neighbor distance", wrap((*experiments.Lab).DistanceMetricComparison)},
	{"table2", "neighbor count k=3..7", wrap((*experiments.Lab).NeighborCountComparison)},
	{"table3", "neighbor weighting schemes", wrap((*experiments.Lab).NeighborWeighting)},
	{"fig10", "Experiment 1: one-model KCCA (also Figs. 11-12)", wrap((*experiments.Lab).Experiment1)},
	{"fig13", "Experiment 2: balanced 30/30/30 training", wrap((*experiments.Lab).Experiment2)},
	{"fig14", "Experiment 3: two-step prediction", wrap((*experiments.Lab).Experiment3)},
	{"fig15", "Experiment 4: customer-database test", wrap((*experiments.Lab).Experiment4)},
	{"fig16", "32-node system configuration sweep", wrap((*experiments.Lab).ConfigSweep)},
	{"sec7c2", "feature influence analysis", wrap((*experiments.Lab).FeatureInfluences)},
	{"sec7c4", "continuous retraining under workload drift", wrap((*experiments.Lab).WorkloadDrift)},
	{"contention", "concurrent-workload makespan what-if", wrap((*experiments.Lab).ContentionWhatIf)},
	{"fig17", "optimizer cost baseline", wrap((*experiments.Lab).OptimizerCostBaseline)},
}

func main() {
	seed := flag.Int64("seed", 42, "root seed for workload generation and splits")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("out", "", "also write the reports as markdown to this file")
	timings := flag.Bool("timings", false, "print the per-stage timing table on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /timings, /debug/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *metricsAddr != "" {
		addr, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics at http://%s/metrics (timings, expvar, pprof alongside)\n", addr)
	}
	if *timings {
		obs.SetEnabled(true)
		defer func() { fmt.Fprint(os.Stderr, "\n"+obs.TimingsTable()) }()
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(id)] = true
		}
		for id := range selected {
			found := false
			for _, e := range registry {
				if e.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var md *strings.Builder
	if *out != "" {
		md = &strings.Builder{}
		fmt.Fprintf(md, "# Experiment reports (seed %d)\n", *seed)
	}
	lab := experiments.NewLab(*seed)
	for _, e := range registry {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		res, err := e.run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		report := res.Report()
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.id, time.Since(start).Seconds(), report)
		if md != nil {
			fmt.Fprintf(md, "\n## %s — %s\n\n```\n%s```\n", e.id, e.desc, report)
		}
	}
	if md != nil {
		if err := os.WriteFile(*out, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "markdown report written to %s\n", *out)
	}
}
