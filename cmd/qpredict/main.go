// Command qpredict trains a KCCA performance predictor on a generated
// training workload and predicts the six performance metrics of a query
// given only its SQL text — the vendor-trains / customer-predicts workflow
// of the paper's Fig. 1.
//
// Usage:
//
//	qpredict -sql "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 10"
//	qpredict -machine prod32:8 -train 800 -twostep -sql "..."
//	qpredict -json -sql "..."   # the daemon's wire schema, for scripts
//
// Without -sql, qpredict evaluates the model on a held-out test split and
// prints accuracy, which is useful for sanity-checking a configuration.
//
// All exits route through internal/cli, so cleanup hooks (like the
// -timings table) run on error paths too — the same exit path qpredictd's
// shutdown hook uses.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/statutil"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/pkg/qpredict"
)

func main() {
	cfgPath := flag.String("config", "", "JSON options file (pkg/qpredict Options; explicitly set flags override it)")
	sqlText := flag.String("sql", "", "SQL statement to predict (omit to run a self-evaluation)")
	trainCount := flag.Int("train", 1000, "training workload size")
	seed := flag.Int64("seed", 1, "workload seed")
	dataSeed := flag.Int64("dataseed", 1000, "data realization seed")
	machineName := flag.String("machine", "research4", "machine: research4 or prod32:<cpus>")
	twoStep := flag.Bool("twostep", false, "use two-step (query-type-specific) prediction")
	verbose := flag.Bool("v", false, "print the query plan")
	jsonOut := flag.Bool("json", false, "emit the prediction as JSON in the qpredictd wire schema (docs/API.md)")
	saveTo := flag.String("save", "", "after training, save the model to this file")
	loadFrom := flag.String("load", "", "load a previously saved model instead of training")
	timings := flag.Bool("timings", false, "print the per-stage timing table on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /timings, /debug/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	defer cli.RunHooks()

	// -config loads the shared qpredict.Options file; the CLI consumes its
	// train block (the serve/shard/champion blocks belong to qpredictd).
	// Explicitly set flags override the file, reported once.
	if *cfgPath != "" {
		opts, err := qpredict.LoadFile(*cfgPath)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		set := map[string]bool{}
		var overridden []string
		flag.Visit(func(f *flag.Flag) {
			set[f.Name] = true
			switch f.Name {
			case "train", "seed", "dataseed", "machine", "twostep", "load":
				overridden = append(overridden, "-"+f.Name)
			}
		})
		if !set["train"] {
			*trainCount = opts.Train.Count
		}
		if !set["seed"] {
			*seed = opts.Train.Seed
		}
		if !set["dataseed"] {
			*dataSeed = opts.Train.DataSeed
		}
		if !set["machine"] {
			*machineName = opts.Train.Machine
		}
		if !set["twostep"] {
			*twoStep = opts.Train.TwoStep
		}
		if !set["load"] && opts.Train.Load != "" {
			*loadFrom = opts.Train.Load
		}
		if len(overridden) > 0 {
			fmt.Fprintf(os.Stderr, "note: %s override %s (flags beat config; move them into the file to silence this)\n",
				strings.Join(overridden, " "), *cfgPath)
		}
	}

	if *metricsAddr != "" {
		addr, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			cli.Fatalf("metrics server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "metrics at http://%s/metrics (timings, expvar, pprof alongside)\n", addr)
	}
	if *timings {
		obs.SetEnabled(true)
		// Registered as an exit hook (not a defer), so cli.Fatalf error
		// paths print the table too.
		cli.AtExit(func() { fmt.Fprint(os.Stderr, "\n"+obs.TimingsTable()) })
	}

	machine, err := exec.ParseMachine(*machineName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	schema := catalog.TPCDS(1)
	opt := core.DefaultOptions()
	opt.TwoStep = *twoStep

	var predictor *core.Predictor
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			cli.Fatalf("opening model: %v", err)
		}
		predictor, err = core.Load(f)
		f.Close()
		if err != nil {
			cli.Fatalf("loading model: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded model trained on %d queries\n", predictor.N())
	} else {
		fmt.Fprintf(os.Stderr, "generating %d training queries on %s...\n", *trainCount, machine)
		pool, err := dataset.Generate(dataset.GenConfig{
			Seed:      *seed,
			DataSeed:  *dataSeed,
			Machine:   machine,
			Schema:    schema,
			Templates: workload.TPCDSTemplates(),
			Count:     *trainCount,
		})
		if err != nil {
			cli.Fatalf("generating training workload: %v", err)
		}
		fmt.Fprintln(os.Stderr, "training KCCA model...")
		if *sqlText == "" && *saveTo == "" {
			selfEvaluate(pool, opt)
			return
		}
		predictor, err = core.Train(pool.Queries, opt)
		if err != nil {
			cli.Fatalf("training: %v", err)
		}
	}

	if *saveTo != "" {
		// Atomic save: a crash mid-write must never leave a truncated model
		// where a valid one (or nothing) used to be.
		var buf bytes.Buffer
		if err := predictor.Save(&buf); err != nil {
			cli.Fatalf("saving model: %v", err)
		}
		if err := wal.WriteFileAtomic(*saveTo, buf.Bytes(), 0o644); err != nil {
			cli.Fatalf("writing %s: %v", *saveTo, err)
		}
		fmt.Fprintf(os.Stderr, "model saved to %s\n", *saveTo)
		if *sqlText == "" {
			return
		}
	}
	if *sqlText == "" {
		cli.Fatalf("-load requires -sql (nothing to self-evaluate a loaded model against)")
	}

	ast, err := sqlparse.Parse(*sqlText)
	if err != nil {
		cli.Fatalf("parsing SQL: %v", err)
	}
	plan, err := optimizer.BuildPlan(ast, schema, *dataSeed, optimizer.DefaultConfig(machine.Processors))
	if err != nil {
		cli.Fatalf("planning: %v", err)
	}
	if *verbose {
		fmt.Fprint(os.Stderr, optimizer.Explain(plan))
	}

	pred, err := predictor.PredictQuery(&dataset.Query{SQL: *sqlText, AST: ast, Plan: plan})
	if err != nil {
		cli.Fatalf("predicting: %v", err)
	}

	if *jsonOut {
		emitJSON(predictor, *sqlText, plan.Cost, pred)
		return
	}
	fmt.Printf("predicted query type:  %s\n", pred.Category)
	fmt.Printf("confidence:            %.2f\n", pred.Confidence)
	fmt.Printf("elapsed time:          %.2f s\n", pred.Metrics.ElapsedSec)
	fmt.Printf("records accessed:      %.0f\n", pred.Metrics.RecordsAccessed)
	fmt.Printf("records used:          %.0f\n", pred.Metrics.RecordsUsed)
	fmt.Printf("disk I/Os:             %.0f\n", pred.Metrics.DiskIOs)
	fmt.Printf("message count:         %.0f\n", pred.Metrics.MessageCount)
	fmt.Printf("message bytes:         %.0f\n", pred.Metrics.MessageBytes)
}

// emitJSON prints the prediction in the exact wire schema qpredictd
// serves, so scripted consumers parse one format regardless of binary.
func emitJSON(p *core.Predictor, sql string, cost float64, pred *core.Prediction) {
	opt := p.Options()
	m := api.MetricsFrom(pred.Metrics)
	resp := api.PredictResponse{
		Version: api.Version,
		Model: &api.ModelInfo{
			Generation: 1,
			TrainedOn:  p.N(),
			ModelKind:  model.KindKCCA,
			Features:   opt.Features.String(),
			TwoStep:    opt.TwoStep,
		},
		Results: []api.QueryResult{{
			SQL:           sql,
			Metrics:       &m,
			Category:      pred.Category.String(),
			Confidence:    pred.Confidence,
			OptimizerCost: cost,
			Generation:    1,
			ModelKind:     model.KindKCCA,
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		cli.Fatalf("encoding JSON: %v", err)
	}
}

// selfEvaluate holds out a fifth of the pool and reports accuracy.
func selfEvaluate(pool *dataset.Dataset, opt core.Options) {
	r := statutil.NewRNG(99, "qpredict-split")
	n := len(pool.Queries)
	testIdx := r.SampleInts(n, n/5)
	inTest := map[int]bool{}
	for _, i := range testIdx {
		inTest[i] = true
	}
	var train, test []*dataset.Query
	for i, q := range pool.Queries {
		if inTest[i] {
			test = append(test, q)
		} else {
			train = append(train, q)
		}
	}
	predictor, err := core.Train(train, opt)
	if err != nil {
		cli.Fatalf("training: %v", err)
	}
	preds, err := predictor.PredictBatch(test)
	if err != nil {
		cli.Fatalf("predicting: %v", err)
	}
	var pred, act []float64
	for i, q := range test {
		pred = append(pred, preds[i].Metrics.ElapsedSec)
		act = append(act, q.Metrics.ElapsedSec)
	}
	fmt.Printf("self-evaluation on %d held-out queries:\n", len(test))
	fmt.Printf("  elapsed-time predictive risk: %s\n", eval.FormatRisk(eval.PredictiveRisk(pred, act)))
	fmt.Printf("  within 20%% of actual:         %.0f%%\n", eval.WithinFactor(pred, act, 0.2)*100)
	fmt.Print(eval.ScatterLogLog(pred, act, 60, 18, "  predicted vs actual elapsed time"))
}
