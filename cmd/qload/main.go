// qload is a sustained-load generator for the qpredictd daemon: it drives
// mixed predict/observe traffic through pkg/qpredictclient at controlled
// arrival rates (open loop) or fixed concurrency (closed loop), measures
// past a warmup window, and reports throughput plus a latency distribution
// (p50/p95/p99/p99.9) per stage — machine-readable in BENCH_serve.json
// form with -out.
//
// The query mix is template-randomized: a pre-generated workload pool
// (the same generator the daemon trains from, under its own seed) is
// cycled deterministically, so runs are reproducible and observe traffic
// carries the pool's real simulated metrics.
//
// Retries are disabled: a 429 is the daemon shedding load, which is
// exactly what a load test must count rather than paper over.
//
// Usage:
//
//	qload -addr http://localhost:8080 -rate 200,400 -duration 10s -out BENCH_serve.json
//	qload -addr http://localhost:8080 -closed 4,16 -mix 0.8
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
	"repro/pkg/qpredictclient"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	rates := flag.String("rate", "200", "comma-separated open-loop arrival rates (requests/sec), one measurement stage per rate")
	closed := flag.String("closed", "", "comma-separated closed-loop worker counts, one stage per count (overrides -rate)")
	duration := flag.Duration("duration", 10*time.Second, "measurement window per stage")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before measurement per stage (requests issued but not recorded)")
	mix := flag.Float64("mix", 0.9, "fraction of requests that are predicts (the rest are observes)")
	batch := flag.Int("batch", 1, "queries per predict request")
	poolSize := flag.Int("pool", 200, "distinct queries in the generated workload pool")
	seed := flag.Int64("seed", 2, "workload pool seed")
	dataSeed := flag.Int64("dataseed", 1000, "data realization seed (match the daemon's)")
	machineName := flag.String("machine", "research4", "machine the pool's observe metrics are simulated on (match the daemon's)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	inflight := flag.Int("inflight", 512, "open-loop in-flight request cap (arrivals past it are counted as sloughed, not queued)")
	wait := flag.Duration("wait", 15*time.Second, "how long to wait for the daemon to report ready before starting")
	out := flag.String("out", "", "write the machine-readable result (BENCH_serve.json form) to this file")
	label := flag.String("label", "", "free-form label recorded in the output (e.g. cached / uncached)")
	flag.Parse()

	if *mix < 0 || *mix > 1 {
		cli.Fatalf("-mix must be in [0,1]")
	}
	if *batch < 1 {
		cli.Fatalf("-batch must be at least 1")
	}
	machine, err := exec.ParseMachine(*machineName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	stages, err := parseStages(*rates, *closed)
	if err != nil {
		cli.Fatalf("%v", err)
	}

	fmt.Fprintf(os.Stderr, "generating %d-query workload pool (seed %d)...\n", *poolSize, *seed)
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed:      *seed,
		DataSeed:  *dataSeed,
		Machine:   machine,
		Schema:    catalog.TPCDS(1),
		Templates: workload.TPCDSTemplates(),
		Count:     *poolSize,
	})
	if err != nil {
		cli.Fatalf("generating workload pool: %v", err)
	}
	pool := make([]poolEntry, len(ds.Queries))
	for i, q := range ds.Queries {
		pool[i] = poolEntry{sql: q.SQL, metrics: api.MetricsFrom(q.Metrics)}
	}

	c := qpredictclient.New(*addr, &qpredictclient.Options{
		MaxRetries: -1, // surface 429s; a load test must count shed load
		HTTPClient: &http.Client{Timeout: *timeout},
		UserAgent:  "qload/1",
	})
	if err := waitReady(c, *wait); err != nil {
		cli.Fatalf("%v", err)
	}

	l := &loader{client: c, pool: pool, mix: *mix, batch: *batch}
	results := make([]stageResult, 0, len(stages))
	for _, sp := range stages {
		fmt.Fprintf(os.Stderr, "stage %s: warmup %s, measuring %s...\n", sp.name(), warmup, duration)
		res := l.run(sp, *warmup, *duration, *inflight)
		results = append(results, res)
		fmt.Println(res.human(sp))
	}

	if *out != "" {
		if err := writeBench(*out, *label, *addr, *mix, *batch, *poolSize, stages, results); err != nil {
			cli.Fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	for _, r := range results {
		if r.Failed > 0 {
			cli.Exit(1)
		}
	}
}

// poolEntry is one pre-generated query: SQL for predicts, SQL+metrics for
// observes.
type poolEntry struct {
	sql     string
	metrics api.Metrics
}

// stageSpec is one load stage: open loop at Rate req/s, or closed loop
// with Workers concurrent callers.
type stageSpec struct {
	Mode    string  `json:"mode"` // "open" or "closed"
	Rate    float64 `json:"target_rate,omitempty"`
	Workers int     `json:"workers,omitempty"`
}

func (s stageSpec) name() string {
	if s.Mode == "closed" {
		return fmt.Sprintf("closed/%d workers", s.Workers)
	}
	return fmt.Sprintf("open/%.0f req/s", s.Rate)
}

func parseStages(rates, closed string) ([]stageSpec, error) {
	var out []stageSpec
	if closed != "" {
		for _, f := range strings.Split(closed, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -closed worker count %q", f)
			}
			out = append(out, stageSpec{Mode: "closed", Workers: n})
		}
		return out, nil
	}
	for _, f := range strings.Split(rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -rate %q", f)
		}
		out = append(out, stageSpec{Mode: "open", Rate: r})
	}
	return out, nil
}

func waitReady(c *qpredictclient.Client, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ok, err := c.Ready(ctx)
		cancel()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready after %s (last: ok=%v err=%v)", wait, ok, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// loader drives one daemon with a fixed query pool and traffic mix.
type loader struct {
	client *qpredictclient.Client
	pool   []poolEntry
	mix    float64
	batch  int

	mu       sync.Mutex
	latNs    []int64
	predicts int64
	observes int64
	complete int64
	failed   int64
	rej429   int64
}

// one issues request i (predict or observe per the deterministic mix) and
// records its outcome when record is true. The i-based scheme keeps the
// traffic reproducible and lock-free: query choice and op choice are pure
// functions of the request index.
func (l *loader) one(i int64, record bool) {
	e := &l.pool[int((i*2654435761)%int64(len(l.pool)))]
	predict := float64(i%1000) < l.mix*1000
	start := time.Now()
	var err error
	if predict {
		if l.batch == 1 {
			_, err = l.client.Predict(context.Background(), e.sql)
		} else {
			sqls := make([]string, l.batch)
			for j := range sqls {
				sqls[j] = l.pool[int((i*2654435761+int64(j))%int64(len(l.pool)))].sql
			}
			_, err = l.client.Predict(context.Background(), sqls...)
		}
	} else {
		_, err = l.client.Observe(context.Background(), api.Observation{SQL: e.sql, Metrics: e.metrics})
	}
	lat := time.Since(start)
	if !record {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		l.complete++
		l.latNs = append(l.latNs, int64(lat))
		if predict {
			l.predicts++
		} else {
			l.observes++
		}
		return
	}
	var apiErr *qpredictclient.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		l.rej429++
		return
	}
	l.failed++
}

func (l *loader) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latNs = l.latNs[:0]
	l.predicts, l.observes, l.complete, l.failed, l.rej429 = 0, 0, 0, 0, 0
}

// run executes one stage: warmup (unrecorded), then a measured window.
func (l *loader) run(sp stageSpec, warmup, duration time.Duration, inflight int) stageResult {
	l.reset()
	var sloughed int64
	start := time.Now()
	measureStart := start.Add(warmup)
	end := measureStart.Add(duration)

	var wg sync.WaitGroup
	var sent int64
	if sp.Mode == "closed" {
		var seq atomic.Int64
		var sentN atomic.Int64
		for w := 0; w < sp.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					now := time.Now()
					if now.After(end) {
						return
					}
					record := now.After(measureStart)
					if record {
						sentN.Add(1)
					}
					l.one(seq.Add(1), record)
				}
			}()
		}
		wg.Wait()
		sent = sentN.Load()
	} else {
		// Open loop: request i fires at start + i*interval regardless of
		// how long earlier requests take — the arrival process a real
		// client population generates. Arrivals that would exceed the
		// in-flight cap are sloughed (counted, not queued) so a saturated
		// server can't silently convert the test to closed-loop.
		interval := time.Duration(float64(time.Second) / sp.Rate)
		sem := make(chan struct{}, inflight)
		for i := int64(0); ; i++ {
			t := start.Add(time.Duration(i) * interval)
			if t.After(end) {
				break
			}
			if d := time.Until(t); d > 0 {
				time.Sleep(d)
			}
			record := time.Now().After(measureStart)
			select {
			case sem <- struct{}{}:
			default:
				if record {
					sloughed++
				}
				continue
			}
			if record {
				sent++
			}
			wg.Add(1)
			go func(i int64, record bool) {
				defer wg.Done()
				defer func() { <-sem }()
				l.one(i, record)
			}(i, record)
		}
		wg.Wait()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	res := stageResult{
		Stage:       sp,
		DurationSec: duration.Seconds(),
		Sent:        sent,
		Completed:   l.complete,
		Predicts:    l.predicts,
		Observes:    l.observes,
		Failed:      l.failed,
		Rejected429: l.rej429,
		Sloughed:    sloughed,
		Throughput:  float64(l.complete) / duration.Seconds(),
	}
	res.Latency = summarize(l.latNs)
	return res
}

// latencySummary is the measured distribution in milliseconds.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func summarize(latNs []int64) latencySummary {
	if len(latNs) == 0 {
		return latencySummary{}
	}
	s := append([]int64(nil), latNs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(q float64) float64 {
		idx := int(q * float64(len(s)-1))
		return float64(s[idx]) / 1e6
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	return latencySummary{
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
		P999: pct(0.999),
		Mean: float64(sum) / float64(len(s)) / 1e6,
		Max:  float64(s[len(s)-1]) / 1e6,
	}
}

// stageResult is one stage's measured outcome.
type stageResult struct {
	Stage       stageSpec      `json:"stage"`
	DurationSec float64        `json:"duration_sec"`
	Sent        int64          `json:"sent"`
	Completed   int64          `json:"completed"`
	Predicts    int64          `json:"predicts"`
	Observes    int64          `json:"observes"`
	Failed      int64          `json:"failed"`
	Rejected429 int64          `json:"rejected_429"`
	Sloughed    int64          `json:"sloughed,omitempty"`
	Throughput  float64        `json:"throughput_rps"`
	Latency     latencySummary `json:"latency_ms"`
}

func (r stageResult) human(sp stageSpec) string {
	return fmt.Sprintf("%-22s %8.1f req/s  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  p99.9 %7.2fms  (completed %d, 429 %d, failed %d, sloughed %d)",
		sp.name(), r.Throughput, r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999,
		r.Completed, r.Rejected429, r.Failed, r.Sloughed)
}

func writeBench(path, label, addr string, mix float64, batch, pool int, stages []stageSpec, results []stageResult) error {
	doc := struct {
		Bench       string        `json:"bench"`
		Description string        `json:"description"`
		Label       string        `json:"label,omitempty"`
		Date        string        `json:"date"`
		Addr        string        `json:"addr"`
		Host        hostInfo      `json:"host"`
		Mix         float64       `json:"mix"`
		Batch       int           `json:"batch"`
		Pool        int           `json:"pool"`
		Stages      []stageResult `json:"stages"`
		Note        string        `json:"note"`
	}{
		Bench:       "qload",
		Description: "Sustained mixed predict/observe load against qpredictd via pkg/qpredictclient; retries disabled so 429s are counted as shed load. Latency percentiles are measured client-side over the post-warmup window.",
		Label:       label,
		Date:        time.Now().Format("2006-01-02"),
		Addr:        addr,
		Host:        hostInfo{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()},
		Mix:         mix,
		Batch:       batch,
		Pool:        pool,
		Stages:      results,
		Note:        "Numbers are from a shared CI-class VM; treat ratios across labels at the same stage, not absolutes, as the signal.",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
}
