package eval

import (
	"math"
	"strings"
	"testing"
)

func TestPredictiveRiskPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r := PredictiveRisk(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect risk = %v, want 1", r)
	}
}

func TestPredictiveRiskMeanPredictor(t *testing.T) {
	act := []float64{1, 2, 3, 4, 5}
	pred := []float64{3, 3, 3, 3, 3} // predicting the mean gives risk 0
	if r := PredictiveRisk(pred, act); math.Abs(r) > 1e-12 {
		t.Errorf("mean-predictor risk = %v, want 0", r)
	}
}

func TestPredictiveRiskNegative(t *testing.T) {
	act := []float64{1, 2, 3}
	pred := []float64{100, -50, 300}
	if r := PredictiveRisk(pred, act); r >= 0 {
		t.Errorf("terrible predictions should give negative risk, got %v", r)
	}
}

func TestPredictiveRiskDegenerate(t *testing.T) {
	// Constant actuals (e.g. all-zero disk I/O on big-memory configs) give
	// NaN — rendered as Null like Fig. 16.
	if r := PredictiveRisk([]float64{0, 0}, []float64{0, 0}); !math.IsNaN(r) {
		t.Errorf("degenerate risk = %v, want NaN", r)
	}
	if FormatRisk(math.NaN()) != "Null" {
		t.Error("NaN should format as Null")
	}
	if FormatRisk(0.5512) != "0.55" {
		t.Errorf("FormatRisk = %q", FormatRisk(0.5512))
	}
	if !math.IsNaN(PredictiveRisk([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestPredictiveRiskTrimmed(t *testing.T) {
	act := []float64{1, 2, 3, 4, 1000}
	pred := []float64{1, 2, 3, 4, 1} // one huge outlier
	full := PredictiveRisk(pred, act)
	trimmed := PredictiveRiskTrimmed(pred, act, 1)
	if trimmed <= full {
		t.Errorf("trimming the outlier should improve risk: %v vs %v", full, trimmed)
	}
	if math.Abs(trimmed-1) > 1e-12 {
		t.Errorf("trimmed risk = %v, want 1", trimmed)
	}
	// No-op cases.
	if PredictiveRiskTrimmed(pred, act, 0) != full {
		t.Error("trim=0 should equal untrimmed")
	}
	if PredictiveRiskTrimmed(pred, act, 10) != full {
		t.Error("trim >= n should equal untrimmed")
	}
}

func TestWithinFactor(t *testing.T) {
	act := []float64{100, 100, 100, 100}
	pred := []float64{110, 119, 121, 250}
	// 10%% and 19%% qualify; 21%% and 150%% do not.
	if w := WithinFactor(pred, act, 0.2); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("within 20%% = %v, want 0.5", w)
	}
	// Zero actuals only match zero predictions.
	if w := WithinFactor([]float64{0, 1}, []float64{0, 0}, 0.2); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("zero-actual handling = %v, want 0.5", w)
	}
	if !math.IsNaN(WithinFactor(nil, nil, 0.2)) {
		t.Error("empty should be NaN")
	}
}

func TestCountNegative(t *testing.T) {
	if n := CountNegative([]float64{-82, 3, -1.8e6, 0}); n != 2 {
		t.Errorf("negatives = %d, want 2", n)
	}
}

func TestOrdersOfMagnitudeOff(t *testing.T) {
	pred := []float64{1, 10, 100, -5}
	act := []float64{1, 1, 1, 1}
	// 10/1 = 10x (counted), 100/1 (counted), -5 vs 1 (counted).
	if n := OrdersOfMagnitudeOff(pred, act, 10); n != 3 {
		t.Errorf("oom = %d, want 3", n)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if c := Correlation(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("correlation = %v, want 1", c)
	}
	c := Correlation(a, []float64{4, 3, 2, 1})
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("anticorrelation = %v, want -1", c)
	}
	if !math.IsNaN(Correlation(a, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance correlation should be NaN")
	}
}

func TestLogBestFit(t *testing.T) {
	// b = a² in log space: slope 2, intercept 0.
	a := []float64{1, 10, 100, 1000}
	b := []float64{1, 100, 10000, 1000000}
	slope, icept, f10, f100 := LogBestFit(a, b)
	if math.Abs(slope-2) > 1e-9 || math.Abs(icept) > 1e-9 {
		t.Errorf("fit = %v, %v; want 2, 0", slope, icept)
	}
	if f10 != 0 || f100 != 0 {
		t.Errorf("fractions off = %v, %v; want 0", f10, f100)
	}
	// A strong outlier against an otherwise clean identity relation.
	a2 := []float64{1, 10, 100, 1000, 10000}
	b2 := []float64{1, 10, 100, 1000, 1e7}
	_, _, f10b, _ := LogBestFit(a2, b2)
	if f10b == 0 {
		t.Error("outlier should register as off the fit")
	}
	if s, _, _, _ := LogBestFit([]float64{1}, []float64{1}); !math.IsNaN(s) {
		t.Error("single point should be NaN")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"Metric", "Value"}, [][]string{{"elapsed", "0.55"}, {"disk", "Null"}})
	if !strings.Contains(out, "Metric") || !strings.Contains(out, "Null") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestScatterLogLog(t *testing.T) {
	pred := []float64{0.1, 1, 10, 100}
	act := []float64{0.1, 1.2, 9, 200}
	plot := ScatterLogLog(pred, act, 40, 12, "test")
	if !strings.Contains(plot, "*") || !strings.Contains(plot, "test") {
		t.Errorf("plot missing marks:\n%s", plot)
	}
	// Degenerate data.
	if out := ScatterLogLog([]float64{-1}, []float64{-2}, 40, 12, "none"); !strings.Contains(out, "no positive data") {
		t.Errorf("degenerate plot = %q", out)
	}
}
