// Package eval implements the paper's evaluation machinery: the predictive
// risk metric of Sec. VI-C (an R²-style statistic computed on held-out test
// queries), the within-20% accuracy rate the paper headlines, outlier
// trimming, and text rendering of tables and log-log scatter plots for the
// experiment reports.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PredictiveRisk computes
//
//	1 − Σ(predᵢ − actᵢ)² / Σ(actᵢ − mean(act))²
//
// on test data. Values near 1 indicate near-perfect prediction; negative
// values are possible (and meaningful) because the test set is disjoint
// from training. NaN is returned when the actuals are degenerate (zero
// variance — the paper reports such cells as Null in Fig. 16).
func PredictiveRisk(pred, act []float64) float64 {
	if len(pred) != len(act) || len(act) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, a := range act {
		mean += a
	}
	mean /= float64(len(act))
	var sse, sst float64
	for i := range act {
		d := pred[i] - act[i]
		sse += d * d
		v := act[i] - mean
		sst += v * v
	}
	if sst == 0 {
		return math.NaN()
	}
	return 1 - sse/sst
}

// PredictiveRiskTrimmed removes the `trim` points with the largest squared
// error before computing predictive risk — the paper repeatedly notes how
// much one or two outliers move the metric.
func PredictiveRiskTrimmed(pred, act []float64, trim int) float64 {
	if trim <= 0 || len(pred) != len(act) || trim >= len(act) {
		return PredictiveRisk(pred, act)
	}
	type pa struct{ p, a float64 }
	items := make([]pa, len(act))
	for i := range act {
		items[i] = pa{pred[i], act[i]}
	}
	sort.Slice(items, func(i, j int) bool {
		di := (items[i].p - items[i].a) * (items[i].p - items[i].a)
		dj := (items[j].p - items[j].a) * (items[j].p - items[j].a)
		return di < dj
	})
	items = items[:len(items)-trim]
	p := make([]float64, len(items))
	a := make([]float64, len(items))
	for i, it := range items {
		p[i], a[i] = it.p, it.a
	}
	return PredictiveRisk(p, a)
}

// WithinFactor returns the fraction of predictions within the given
// relative error of the actual value (0.2 = the paper's "within 20%").
func WithinFactor(pred, act []float64, frac float64) float64 {
	if len(pred) != len(act) || len(act) == 0 {
		return math.NaN()
	}
	ok := 0
	for i := range act {
		denom := math.Abs(act[i])
		if denom == 0 {
			if pred[i] == 0 {
				ok++
			}
			continue
		}
		if math.Abs(pred[i]-act[i])/denom <= frac {
			ok++
		}
	}
	return float64(ok) / float64(len(act))
}

// RelativeError returns |pred − act| / |act| with the denominator floored
// at 1e-9 (so near-zero actuals don't explode the statistic) and the result
// capped at 1e6 (so one wild prediction can't saturate a windowed mean
// forever). This is the per-observation statistic the serving tier's
// champion/challenger scoreboard accumulates.
func RelativeError(pred, act float64) float64 {
	denom := math.Abs(act)
	if denom < 1e-9 {
		denom = 1e-9
	}
	e := math.Abs(pred-act) / denom
	if e > 1e6 {
		e = 1e6
	}
	return e
}

// MeanRelativeError returns the mean of RelativeError over the series.
func MeanRelativeError(pred, act []float64) float64 {
	if len(pred) != len(act) || len(act) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range act {
		s += RelativeError(pred[i], act[i])
	}
	return s / float64(len(act))
}

// CountNegative returns how many predictions are negative — the paper
// highlights regression predicting negative elapsed times (Fig. 3) and
// negative record counts (Fig. 4).
func CountNegative(pred []float64) int {
	n := 0
	for _, p := range pred {
		if p < 0 {
			n++
		}
	}
	return n
}

// OrdersOfMagnitudeOff returns how many predictions are off by at least
// the given factor (e.g. 10 for "an order of magnitude").
func OrdersOfMagnitudeOff(pred, act []float64, factor float64) int {
	n := 0
	for i := range pred {
		p, a := pred[i], act[i]
		if p <= 0 || a <= 0 {
			if p != a {
				n++
			}
			continue
		}
		r := p / a
		if r >= factor || r <= 1/factor {
			n++
		}
	}
	return n
}

// Correlation returns the Pearson correlation of two series (used for the
// optimizer-cost best-fit analysis of Fig. 17).
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sab, sa, sb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		sa += da * da
		sb += db * db
	}
	if sa == 0 || sb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(sa*sb)
}

// LogBestFit fits log(b) = slope·log(a) + intercept over positive pairs —
// the "line of best fit" of Fig. 17 — and returns the fit along with the
// fraction of points at least 10x and 100x away from it.
func LogBestFit(a, b []float64) (slope, intercept float64, frac10x, frac100x float64) {
	var xs, ys []float64
	for i := range a {
		if a[i] > 0 && b[i] > 0 {
			xs = append(xs, math.Log10(a[i]))
			ys = append(ys, math.Log10(b[i]))
		}
	}
	n := float64(len(xs))
	if n < 2 {
		return math.NaN(), math.NaN(), math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	off10, off100 := 0, 0
	for i := range xs {
		resid := math.Abs(ys[i] - (slope*xs[i] + intercept))
		if resid >= 1 {
			off10++
		}
		if resid >= 2 {
			off100++
		}
	}
	return slope, intercept, float64(off10) / n, float64(off100) / n
}

// FormatRisk renders a predictive risk value the way the paper's tables
// do, with NaN shown as Null (Fig. 16's disk-I/O cells).
func FormatRisk(r float64) string {
	if math.IsNaN(r) {
		return "Null"
	}
	return fmt.Sprintf("%.2f", r)
}

// Table renders a simple aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// ScatterLogLog renders an ASCII log-log scatter plot of predicted vs
// actual values (the shape of the paper's Figs. 3, 8, 10-15, 17). Points
// on the diagonal are perfect predictions. Nonpositive values are clamped
// to the axis minimum.
func ScatterLogLog(pred, act []float64, width, height int, title string) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range append(append([]float64{}, pred...), act...) {
		if v > 0 {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return title + ": no positive data\n"
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	if lhi-llo < 1e-9 {
		lhi = llo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	scale := func(v float64, cells int) int {
		if v <= 0 {
			v = lo
		}
		f := (math.Log10(v) - llo) / (lhi - llo)
		c := int(f * float64(cells-1))
		if c < 0 {
			c = 0
		}
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	// Diagonal (perfect prediction) first, points on top.
	for x := 0; x < width; x++ {
		y := int(float64(x) / float64(width-1) * float64(height-1))
		grid[height-1-y][x] = '.'
	}
	for i := range pred {
		x := scale(pred[i], width)
		y := scale(act[i], height)
		grid[height-1-y][x] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (x: predicted, y: actual, log-log %.2g..%.2g)\n", title, lo, hi)
	for _, row := range grid {
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	return sb.String()
}
