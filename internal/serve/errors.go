package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/kcca"
	"repro/internal/knn"
	"repro/internal/shard"
)

// Serving-layer sentinels for conditions that arise in the daemon itself
// rather than in the model.
var (
	errOverloaded   = errors.New("serve: request queue is full")
	errShuttingDown = errors.New("serve: daemon is draining")
	errNoFeedback   = errors.New("serve: daemon runs a static model (no observation feedback)")
)

// planStageError tags which stage of the SQL → plan pipeline failed, so
// handlers report parse_error vs plan_error even when the failure surfaces
// through the plan cache or WAL replay. Error() is the underlying message,
// unchanged — replay diagnostics and wire messages stay byte-identical to
// the pre-cache pipeline.
type planStageError struct {
	code string
	err  error
}

func (e *planStageError) Error() string { return e.err.Error() }
func (e *planStageError) Unwrap() error { return e.err }

// legacyText rewrites the shard tier's sentinel messages to the unsharded
// daemon's wording, keeping the single-shard wire format byte-identical to
// today's responses.
func legacyText(err error) error {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		return errOverloaded
	case errors.Is(err, shard.ErrDraining):
		return errShuttingDown
	}
	return err
}

// apiError maps any error from the prediction stack to a stable wire code,
// using the sentinel errors exported by core/kcca/knn. Unknown errors
// become CodeInternal so new failure modes fail loudly rather than being
// misclassified as caller mistakes.
func apiError(err error) *api.Error {
	code := api.CodeInternal
	switch {
	case errors.Is(err, core.ErrNotTrained):
		code = api.CodeNotTrained
	case errors.Is(err, core.ErrDimension), errors.Is(err, knn.ErrDimension):
		code = api.CodeDimension
	case errors.Is(err, core.ErrNoPlan),
		errors.Is(err, core.ErrEmptyRequest),
		errors.Is(err, core.ErrTooFewQueries),
		errors.Is(err, core.ErrEmptyWindow),
		errors.Is(err, kcca.ErrTooFew),
		errors.Is(err, kcca.ErrRowMismatch):
		code = api.CodeBadRequest
	case errors.Is(err, errOverloaded), errors.Is(err, shard.ErrOverloaded):
		code = api.CodeOverloaded
	case errors.Is(err, errShuttingDown), errors.Is(err, shard.ErrDraining):
		code = api.CodeShuttingDown
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = api.CodeTimeout
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// statusFor maps a wire error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case api.CodeBadRequest, api.CodeParse, api.CodePlan, api.CodeDimension:
		return http.StatusBadRequest
	case api.CodeNotTrained, api.CodeShuttingDown:
		return http.StatusServiceUnavailable
	case api.CodeOverloaded:
		return http.StatusTooManyRequests
	case api.CodeTimeout:
		return http.StatusGatewayTimeout
	case api.CodeMethod:
		return http.StatusMethodNotAllowed
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the standard error body for its code's status, with a
// drain-aware Retry-After hint:
//
//   - overloaded (429): "1" — a shed queue drains in milliseconds, so
//     well-behaved clients (including pkg/qpredictclient) back off briefly
//     and retry the same daemon.
//   - shutting_down (503): deliberately no Retry-After. The drain is
//     terminal for this process; any hint — short or long — tells clients
//     to aim retries at a dying server. Clients must treat the code as
//     final and redirect traffic (pkg/qpredictclient stops retrying on it).
func writeError(w http.ResponseWriter, code, message string) {
	if code == api.CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, statusFor(code), api.ErrorResponse{
		Version: api.Version,
		Error:   api.Error{Code: code, Message: message},
	})
}

// encBuf pairs a reusable buffer with a JSON encoder bound to it, so the
// steady-state response path allocates neither: json.NewEncoder per response
// allocates the encoder, and Marshal-then-Write would double-copy the body.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// readPool holds request-body scratch buffers for readJSON.
var readPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readJSON slurps the size-capped request body into a pooled buffer and
// unmarshals it. json.Unmarshal copies what it keeps (strings, slices), so
// returning the buffer to the pool is safe.
func readJSON(w http.ResponseWriter, r *http.Request, maxBody int64, into any) error {
	buf := readPool.Get().(*bytes.Buffer)
	defer readPool.Put(buf)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), into)
}

// writeJSON emits any response body with the right headers, encoding into a
// pooled buffer so the hot path does not allocate per response. Bytes on the
// wire are identical to encoding straight into the ResponseWriter.
func writeJSON(w http.ResponseWriter, status int, body any) {
	e := encPool.Get().(*encBuf)
	defer encPool.Put(e)
	e.buf.Reset()
	if err := e.enc.Encode(body); err != nil {
		// Encoding failures are programming errors (our own wire types);
		// surface them as a bare 500 rather than half a body.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(e.buf.Bytes())
}
