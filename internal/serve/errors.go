package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/kcca"
	"repro/internal/knn"
	"repro/internal/shard"
)

// Serving-layer sentinels for conditions that arise in the daemon itself
// rather than in the model.
var (
	errOverloaded   = errors.New("serve: request queue is full")
	errShuttingDown = errors.New("serve: daemon is draining")
	errNoFeedback   = errors.New("serve: daemon runs a static model (no observation feedback)")
)

// legacyText rewrites the shard tier's sentinel messages to the unsharded
// daemon's wording, keeping the single-shard wire format byte-identical to
// today's responses.
func legacyText(err error) error {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		return errOverloaded
	case errors.Is(err, shard.ErrDraining):
		return errShuttingDown
	}
	return err
}

// apiError maps any error from the prediction stack to a stable wire code,
// using the sentinel errors exported by core/kcca/knn. Unknown errors
// become CodeInternal so new failure modes fail loudly rather than being
// misclassified as caller mistakes.
func apiError(err error) *api.Error {
	code := api.CodeInternal
	switch {
	case errors.Is(err, core.ErrNotTrained):
		code = api.CodeNotTrained
	case errors.Is(err, core.ErrDimension), errors.Is(err, knn.ErrDimension):
		code = api.CodeDimension
	case errors.Is(err, core.ErrNoPlan),
		errors.Is(err, core.ErrEmptyRequest),
		errors.Is(err, core.ErrTooFewQueries),
		errors.Is(err, core.ErrEmptyWindow),
		errors.Is(err, kcca.ErrTooFew),
		errors.Is(err, kcca.ErrRowMismatch):
		code = api.CodeBadRequest
	case errors.Is(err, errOverloaded), errors.Is(err, shard.ErrOverloaded):
		code = api.CodeOverloaded
	case errors.Is(err, errShuttingDown), errors.Is(err, shard.ErrDraining):
		code = api.CodeShuttingDown
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = api.CodeTimeout
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// statusFor maps a wire error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case api.CodeBadRequest, api.CodeParse, api.CodePlan, api.CodeDimension:
		return http.StatusBadRequest
	case api.CodeNotTrained, api.CodeShuttingDown:
		return http.StatusServiceUnavailable
	case api.CodeOverloaded:
		return http.StatusTooManyRequests
	case api.CodeTimeout:
		return http.StatusGatewayTimeout
	case api.CodeMethod:
		return http.StatusMethodNotAllowed
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the standard error body for its code's status, with a
// drain-aware Retry-After hint:
//
//   - overloaded (429): "1" — a shed queue drains in milliseconds, so
//     well-behaved clients (including pkg/qpredictclient) back off briefly
//     and retry the same daemon.
//   - shutting_down (503): deliberately no Retry-After. The drain is
//     terminal for this process; any hint — short or long — tells clients
//     to aim retries at a dying server. Clients must treat the code as
//     final and redirect traffic (pkg/qpredictclient stops retrying on it).
func writeError(w http.ResponseWriter, code, message string) {
	if code == api.CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, statusFor(code), api.ErrorResponse{
		Version: api.Version,
		Error:   api.Error{Code: code, Message: message},
	})
}

// writeJSON emits any response body with the right headers.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}
