package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/wal"
)

// durableConfig wires a cold sliding server to a durable store in dir.
func durableConfig(t testing.TB, dir string) Config {
	t.Helper()
	fixture(t)
	st, err := wal.OpenStore(wal.StoreOptions{
		Dir: dir, Policy: wal.SyncNone, SnapshotEvery: 100,
		Plan: PlannerFunc(catalog.TPCDS(1), fixDataSeed, exec.Research4()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sliding, err := core.NewSliding(40, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Sliding:  sliding,
		Store:    st,
		Schema:   catalog.TPCDS(1),
		Machine:  exec.Research4(),
		DataSeed: fixDataSeed,
		Timeout:  10 * time.Second,
	}
}

// modelInfoOf fetches GET /v1/model, or nil while the server is still cold.
func modelInfoOf(t testing.TB, url string) *api.ModelInfo {
	t.Helper()
	resp, err := http.Get(url + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Model *api.ModelInfo `json:"model"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return body.Model
}

// TestWarmRestartByteIdentical is the serve-level durability contract: a
// daemon restarted against its state dir answers its first prediction
// immediately (no boot training, no warm-up observations) with the exact
// bytes — metrics, category, confidence, generation — the pre-restart
// process was serving.
func TestWarmRestartByteIdentical(t *testing.T) {
	pool, _ := fixture(t)
	dir := t.TempDir()

	// First life: boot cold, stream 25 executed queries (retrains at 10
	// and 20), capture a prediction once both swaps landed.
	s1, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var obsReq api.ObserveRequest
	for _, q := range pool.Queries[:25] {
		obsReq.Observations = append(obsReq.Observations, api.Observation{SQL: q.SQL, Metrics: api.MetricsFrom(q.Metrics)})
	}
	if resp, raw := postJSON(t, ts1.URL+"/v1/observe", obsReq); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe: %d %s", resp.StatusCode, raw)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if info := modelInfoOf(t, ts1.URL); info != nil && info.Generation >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrains never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	probe := api.PredictRequest{SQL: pool.Queries[150].SQL}
	respBefore, rawBefore := postJSON(t, ts1.URL+"/v1/predict", probe)
	if respBefore.StatusCode != http.StatusOK {
		t.Fatalf("predict before restart: %d %s", respBefore.StatusCode, rawBefore)
	}
	ts1.Close()
	s1.Close() // clean shutdown: drains the observe queue, final snapshot

	// Second life: recover from the state dir and serve at once.
	st2, err := wal.OpenStore(wal.StoreOptions{
		Dir: dir, Policy: wal.SyncNone, SnapshotEvery: 100,
		Plan: PlannerFunc(catalog.TPCDS(1), fixDataSeed, exec.Research4()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sliding2, gen, err := st2.Recover(40, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{
		Sliding: sliding2, Store: st2, BootGen: gen,
		Schema: catalog.TPCDS(1), Machine: exec.Research4(),
		DataSeed: fixDataSeed, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	respAfter, rawAfter := postJSON(t, ts2.URL+"/v1/predict", probe)
	if respAfter.StatusCode != http.StatusOK {
		t.Fatalf("predict after restart: %d %s", respAfter.StatusCode, rawAfter)
	}
	if string(rawAfter) != string(rawBefore) {
		t.Fatalf("prediction changed across restart:\nbefore %s\nafter  %s", rawBefore, rawAfter)
	}

	// The restarted daemon reports how it came back on GET /v1/model.
	info := modelInfoOf(t, ts2.URL)
	if info == nil {
		t.Fatal("restarted server is not ready")
	}
	if info.Recovery == nil || !info.Recovery.Recovered {
		t.Fatalf("no recovery info after warm restart: %+v", info)
	}
	if info.Recovery.Replayed != 0 {
		t.Errorf("clean shutdown replayed %d records, want 0 (final snapshot)", info.Recovery.Replayed)
	}
	if info.Generation != 2 {
		t.Errorf("generation %d after restart, want 2 (continuity)", info.Generation)
	}
}
