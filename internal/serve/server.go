// Package serve is the network-facing layer of the predictor: the handler,
// micro-batching coalescer, and hot-swappable model slot behind the
// qpredictd daemon — the paper's Fig. 1 vendor-trains / customer-predicts
// workflow turned into an online service. It is stdlib-only and built
// around httptest-friendly pieces: New wires a Server from a Config,
// Handler returns its mux, Close drains it.
//
// Request flow: /v1/predict parses and plans each SQL query, submits the
// planned queries to the coalescer (bounded queue, 429 on overflow), and
// waits with a per-request deadline. The coalescer gathers concurrent
// arrivals for up to Window (or MaxBatch) and answers each micro-batch
// with one atomic read of the model slot and one core Predict call.
// /v1/observe feeds executed queries into a sliding retraining window
// owned by a background goroutine; each completed retrain is swapped into
// the slot without blocking a single read.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Serving metrics: queue depths, micro-batch sizes, swaps, request
// outcomes, and handler latency.
var (
	queueDepth        = obs.GetGauge("serve.queue.depth")
	observeQueueDepth = obs.GetGauge("serve.observe.queue_depth")
	batchSizeHist     = obs.GetHistogram("serve.batch.size")
	modelSwaps        = obs.GetCounter("serve.model.swaps")
	retrainErrors     = obs.GetCounter("serve.retrain.errors")
	rejectedOverload  = obs.GetCounter("serve.rejected.overload")
	requestTimeouts   = obs.GetCounter("serve.request.timeouts")
	predictRequests   = obs.GetCounter("serve.requests.predict")
	observeRequests   = obs.GetCounter("serve.requests.observe")
	predictSeconds    = obs.GetHistogram("serve.predict.seconds")
	walSnapshotFails  = obs.GetCounter("wal.snapshot.errors")
)

// Config wires a Server.
type Config struct {
	// Predictor is the boot model. It may be nil when Sliding is set — the
	// daemon then starts cold and becomes ready after the first retrain.
	Predictor *core.Predictor
	// Sliding, when set, enables /v1/observe feedback and background
	// hot-swap retraining. The Server's observe goroutine takes sole
	// ownership of it.
	Sliding *core.SlidingPredictor
	// Router, when set, replaces the single Predictor/Sliding pair with the
	// sharded multi-model tier: predict and observe traffic is partitioned
	// across per-shard sliding predictors, each with its own coalescer,
	// generation, and background retrain loop. Predictor and Sliding must
	// be nil. The Server takes ownership and closes the router on Close.
	// With one shard the wire behavior is byte-identical to the unsharded
	// configuration (asserted by TestShardedSingleEquivalence).
	Router *shard.Router
	// Schema and Machine configure the planner that turns incoming SQL
	// into the plan feature vectors the model consumes.
	Schema   *catalog.Schema
	Machine  exec.Machine
	DataSeed int64

	// Plans, when set, is the plan/feature cache every handler plans SQL
	// through — qpredictd shares one cache between live traffic and WAL
	// replay so recovery pre-warms serving. Nil builds a private cache with
	// PlanCacheEntries capacity over the daemon's planner.
	Plans *core.PlanCache
	// PlanCacheEntries bounds the private plan cache when Plans is nil:
	// 0 selects the default, negative disables caching (every request pays
	// the full parse + optimize pipeline — the benchmark baseline).
	PlanCacheEntries int

	// Window is how long the coalescer holds an open micro-batch for more
	// arrivals. Zero still sweeps already-queued requests into the batch
	// but never waits.
	Window time.Duration
	// MaxBatch caps a micro-batch (default 64).
	MaxBatch int
	// QueueCap bounds the pending-query queue; submissions beyond it are
	// rejected with 429 (default 1024).
	QueueCap int
	// Timeout is the per-request deadline for /v1/predict (default 10s).
	Timeout time.Duration
	// MaxQueries caps the number of queries in one /v1/predict body
	// (default 256).
	MaxQueries int
	// MaxBody caps the request body size in bytes (default 4 MiB).
	MaxBody int64

	// Store, when set with Sliding, makes the daemon's serving state
	// durable: the observe loop WAL-logs every observation before applying
	// it and snapshots the sliding state periodically and at drain. The
	// Server takes ownership and closes it on Close. Sharded daemons
	// instead hang one store per shard off shard.ShardConfig.
	Store *wal.Store
	// BootGen, with Store, is the model generation recovered from durable
	// state; when positive (and Predictor is nil) the recovered Sliding
	// model is published at that generation instead of restarting at 1.
	BootGen int64
}

// Server is the prediction service. Create with New, mount with Handler,
// stop with Close.
type Server struct {
	cfg Config
	// plans is the fingerprint-keyed plan/feature cache (core.PlanCache):
	// generation-independent — plans are pure in (SQL, schema, data seed,
	// planner config), so hot swaps never invalidate it — and shared by the
	// predict path, the observe path, and (through the planned queries it
	// returns) the shard tier's shadow scorer.
	plans *core.PlanCache

	// router is non-nil in sharded mode; slot/sliding/queue are then unused
	// (each shard owns its own).
	router *shard.Router

	slot    slot
	sliding *core.SlidingPredictor
	// store, when non-nil, is the daemon's durable state (see Config.Store);
	// owned by the observe goroutine after New.
	store *wal.Store

	mu     sync.RWMutex // guards closed + sends on queue/observeCh
	closed bool

	queue        chan *batchItem
	coalesceDone chan struct{}
	// reqScratch is the coalescer's reusable micro-batch request slice,
	// owned exclusively by the coalesce goroutine (see runBatch).
	reqScratch []core.Request

	observeCh   chan *dataset.Query
	observeDone chan struct{}
	// windowSize mirrors the sliding window's occupancy so handlers can
	// report it without touching the goroutine-owned SlidingPredictor.
	windowSize atomic.Int64
}

// New validates the config, publishes the boot model (if any), and starts
// the coalescer and observe goroutines.
func New(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("serve: config needs a schema")
	}
	if cfg.Router != nil {
		if cfg.Predictor != nil || cfg.Sliding != nil {
			return nil, fmt.Errorf("serve: config sets both a shard router and a single-model predictor")
		}
		if cfg.Store != nil {
			return nil, fmt.Errorf("serve: sharded daemons carry stores per shard (shard.ShardConfig), not on serve.Config")
		}
	} else if cfg.Predictor == nil && cfg.Sliding == nil {
		return nil, fmt.Errorf("serve: config needs a boot predictor, a sliding predictor, or a shard router")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 4 << 20
	}
	if cfg.Plans == nil {
		cfg.Plans = NewPlanner(cfg.Schema, cfg.DataSeed, cfg.Machine, cfg.PlanCacheEntries)
	}
	s := &Server{
		cfg:    cfg,
		plans:  cfg.Plans,
		router: cfg.Router,
	}
	if s.router != nil {
		return s, nil
	}
	s.sliding = cfg.Sliding
	s.store = cfg.Store
	if s.store != nil && s.sliding == nil {
		return nil, fmt.Errorf("serve: a durable store needs a sliding predictor")
	}
	s.queue = make(chan *batchItem, cfg.QueueCap)
	s.coalesceDone = make(chan struct{})
	switch {
	case cfg.Predictor != nil && cfg.BootGen > 0:
		s.slot.restore(model.WrapKCCA(cfg.Predictor), cfg.BootGen)
	case cfg.Predictor != nil:
		s.slot.swap(model.WrapKCCA(cfg.Predictor))
	case cfg.Sliding.Ready() && cfg.BootGen > 0:
		s.slot.restore(model.WrapKCCA(cfg.Sliding.Current()), cfg.BootGen)
	case cfg.Sliding.Ready():
		s.slot.swap(model.WrapKCCA(cfg.Sliding.Current()))
	}
	go s.coalesceLoop()
	if s.sliding != nil {
		s.observeCh = make(chan *dataset.Query, cfg.QueueCap)
		s.observeDone = make(chan struct{})
		s.windowSize.Store(int64(s.sliding.WindowSize()))
		go s.observeLoop()
	}
	return s, nil
}

// Close drains the server: new submissions are refused (503), in-flight
// micro-batches and queued observations finish, and both background
// goroutines exit before Close returns. It is the shutdown hook qpredictd
// runs on SIGTERM, and it is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.router != nil {
		s.mu.Unlock()
		s.router.Close()
		return
	}
	close(s.queue)
	if s.observeCh != nil {
		close(s.observeCh)
	}
	s.mu.Unlock()
	<-s.coalesceDone
	if s.observeDone != nil {
		<-s.observeDone
	}
	if s.store != nil {
		// Final snapshot at drain: the next boot restores it directly
		// instead of replaying the tail.
		if err := s.store.Close(s.sliding, s.generation()); err != nil {
			walSnapshotFails.Inc()
		}
	}
}

// Handler returns the service mux:
//
//	POST /v1/predict   predict one or many queries
//	POST /v1/observe   feed executed queries to the retraining window
//	GET  /v1/model     current model metadata
//	GET  /v1/shards    per-shard model state (sharded daemon only)
//	GET  /healthz      process liveness
//	GET  /readyz       readiness (a model is being served and not draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/model", s.handleModel)
	mux.HandleFunc("/v1/shards", s.handleShards)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.closed
	s.mu.RUnlock()
	if draining {
		writeError(w, api.CodeShuttingDown, "draining")
		return
	}
	if !s.ready() {
		writeError(w, api.CodeNotTrained, "no model trained yet")
		return
	}
	w.Write([]byte("ready\n"))
}

// ready reports whether a model is being served — in sharded mode, whether
// any shard is (cold shards are rescued by the warm fallback or fail
// per-request).
func (s *Server) ready() bool {
	if s.router != nil {
		return s.router.AnyReady()
	}
	return s.slot.get() != nil
}

// PlannerFunc returns the deterministic SQL → planned-query pipeline the
// serving layer runs on every /v1/observe, packaged as a core.PlanFunc for
// WAL replay and snapshot restore. Plans and feature vectors are pure
// functions of (SQL, schema, data seed, planner config), so re-planning
// persisted SQL through this reproduces the live observation exactly.
func PlannerFunc(schema *catalog.Schema, dataSeed int64, machine exec.Machine) core.PlanFunc {
	planCfg := optimizer.DefaultConfig(machine.Processors)
	return func(sql string) (*dataset.Query, error) {
		ast, err := sqlparse.Parse(sql)
		if err != nil {
			// Stage-tagged so handlers report parse_error vs plan_error;
			// Error() passes the message through unchanged, keeping WAL
			// replay diagnostics byte-identical.
			return nil, &planStageError{code: api.CodeParse, err: err}
		}
		plan, err := optimizer.BuildPlan(ast, schema, dataSeed, planCfg)
		if err != nil {
			return nil, &planStageError{code: api.CodePlan, err: err}
		}
		return &dataset.Query{SQL: sql, AST: ast, Plan: plan}, nil
	}
}

// NewPlanner wraps the daemon's deterministic planner in a plan/feature
// cache (core.PlanCache). entries 0 selects the default capacity, negative
// disables caching. qpredictd builds one and shares it between WAL replay
// (wal.StoreOptions.Plan) and live serving (Config.Plans), so boot-time
// recovery pre-warms the cache the first requests hit.
func NewPlanner(schema *catalog.Schema, dataSeed int64, machine exec.Machine, entries int) *core.PlanCache {
	return core.NewPlanCache(entries, PlannerFunc(schema, dataSeed, machine))
}

// planQuery turns SQL text into a planned query through the plan cache,
// classifying failures as parse vs plan errors.
func (s *Server) planQuery(sql string) (*dataset.Query, float64, *api.Error) {
	q, err := s.plans.Plan(sql)
	if err != nil {
		var stage *planStageError
		if errors.As(err, &stage) {
			return nil, 0, &api.Error{Code: stage.code, Message: stage.err.Error()}
		}
		return nil, 0, &api.Error{Code: api.CodePlan, Message: err.Error()}
	}
	return q, q.Plan.Cost, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, api.CodeMethod, "use POST")
		return
	}
	predictRequests.Inc()
	defer predictSeconds.Time()()

	var req api.PredictRequest
	if err := readJSON(w, r, s.cfg.MaxBody, &req); err != nil {
		writeError(w, api.CodeBadRequest, "decoding body: "+err.Error())
		return
	}
	inputs := req.Inputs()
	if len(inputs) == 0 {
		writeError(w, api.CodeBadRequest, `no queries (use {"sql": ...} or {"queries": [...]})`)
		return
	}
	if len(inputs) > s.cfg.MaxQueries {
		writeError(w, api.CodeBadRequest,
			fmt.Sprintf("%d queries exceeds the per-request limit of %d", len(inputs), s.cfg.MaxQueries))
		return
	}
	if !s.ready() {
		writeError(w, api.CodeNotTrained, "no model trained yet")
		return
	}
	if s.router != nil {
		s.predictSharded(w, r, inputs)
		return
	}

	// The request context, bounded by the per-request deadline, rides into
	// every batch item: when the handler gives up, the coalescer skips the
	// abandoned items instead of predicting for nobody.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	// Parse + plan first: malformed queries fail in place without entering
	// the queue, so a batch mixing good and bad SQL still gets predictions
	// for the good part.
	results := make([]api.QueryResult, len(inputs))
	// One slab for the batch items: the slab is sized up front, so the
	// pointers handed to the coalescer stay valid for its whole life (items
	// may outlive this handler when a deadline abandons them).
	itemBuf := make([]batchItem, len(inputs))
	items := make([]*batchItem, 0, len(inputs))
	itemIdx := make([]int, 0, len(inputs))
	for i, in := range inputs {
		results[i].SQL = in.SQL
		q, cost, apiErr := s.planQuery(in.SQL)
		if apiErr != nil {
			results[i].Error = apiErr
			continue
		}
		results[i].OptimizerCost = cost
		it := &itemBuf[len(items)]
		*it = batchItem{ctx: ctx, req: core.Request{Query: q}, done: make(chan struct{})}
		items = append(items, it)
		itemIdx = append(itemIdx, i)
	}
	for _, it := range items {
		if err := s.submit(it); err != nil {
			// Reject the whole request: already-queued siblings are
			// abandoned (the coalescer answers them to nobody).
			e := apiError(err)
			writeError(w, e.Code, e.Message)
			return
		}
	}

	deadline := time.NewTimer(s.cfg.Timeout)
	defer deadline.Stop()
	for k, it := range items {
		select {
		case <-it.done:
			i := itemIdx[k]
			if it.res.Err != nil {
				// An item the coalescer skipped because this request's
				// context expired is the deadline path, just observed from
				// the other side of the queue — report it identically.
				if errors.Is(it.res.Err, context.DeadlineExceeded) {
					requestTimeouts.Inc()
					writeError(w, api.CodeTimeout,
						fmt.Sprintf("prediction did not complete within %v", s.cfg.Timeout))
					return
				}
				if errors.Is(it.res.Err, context.Canceled) {
					requestTimeouts.Inc()
					writeError(w, api.CodeTimeout, "client went away: "+it.res.Err.Error())
					return
				}
				results[i].Error = apiError(it.res.Err)
				continue
			}
			m := api.MetricsFrom(it.res.Prediction.Metrics)
			results[i].Metrics = &m
			results[i].Category = it.res.Prediction.Category.String()
			results[i].Confidence = it.res.Prediction.Confidence
			results[i].Generation = it.gen
			results[i].ModelKind = it.kind
		case <-deadline.C:
			requestTimeouts.Inc()
			writeError(w, api.CodeTimeout,
				fmt.Sprintf("prediction did not complete within %v", s.cfg.Timeout))
			return
		case <-r.Context().Done():
			requestTimeouts.Inc()
			writeError(w, api.CodeTimeout, "client went away: "+r.Context().Err().Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, api.PredictResponse{
		Version: api.Version,
		Model:   s.modelInfo(),
		Results: results,
	})
}

// predictSharded plans the batch, fans it across shards through the
// router, and merges the outcomes back in input order. Per-query failures
// (routing, cold shard without rescue, model errors) land in their own
// result slot; conditions the unsharded daemon rejects wholesale (a shed
// queue, draining, the request deadline) reject the whole request with the
// same code and message.
func (s *Server) predictSharded(w http.ResponseWriter, r *http.Request, inputs []api.QueryInput) {
	results := make([]api.QueryResult, len(inputs))
	qs := make([]*dataset.Query, 0, len(inputs))
	qIdx := make([]int, 0, len(inputs))
	for i, in := range inputs {
		results[i].SQL = in.SQL
		q, cost, apiErr := s.planQuery(in.SQL)
		if apiErr != nil {
			results[i].Error = apiErr
			continue
		}
		results[i].OptimizerCost = cost
		qs = append(qs, q)
		qIdx = append(qIdx, i)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	outs := s.router.Predict(ctx, qs)
	sharded := s.router.Sharded()
	for k, out := range outs {
		i := qIdx[k]
		err := out.Err
		if err == nil {
			err = out.Res.Err
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			requestTimeouts.Inc()
			writeError(w, api.CodeTimeout,
				fmt.Sprintf("prediction did not complete within %v", s.cfg.Timeout))
			return
		case errors.Is(err, context.Canceled):
			requestTimeouts.Inc()
			writeError(w, api.CodeTimeout, "client went away: "+err.Error())
			return
		case errors.Is(err, shard.ErrOverloaded), errors.Is(err, shard.ErrDraining):
			e := apiError(legacyText(err))
			writeError(w, e.Code, e.Message)
			return
		case err != nil:
			results[i].Error = apiError(err)
		default:
			m := api.MetricsFrom(out.Res.Prediction.Metrics)
			results[i].Metrics = &m
			results[i].Category = out.Res.Prediction.Category.String()
			results[i].Confidence = out.Res.Prediction.Confidence
			results[i].Generation = out.Gen
			// Attribute the answer to the model that actually produced it —
			// under the cold-start fallback that is the fallback shard's
			// kind, not the cold owner's.
			results[i].ModelKind = out.Kind
		}
		if sharded {
			results[i].Shard = strconv.Itoa(out.Shard)
			if err == nil && out.Served != out.Shard {
				results[i].FallbackShard = strconv.Itoa(out.Served)
			}
		}
	}
	writeJSON(w, http.StatusOK, api.PredictResponse{
		Version: api.Version,
		Model:   s.modelInfo(),
		Results: results,
	})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, api.CodeMethod, "use POST")
		return
	}
	observeRequests.Inc()
	if s.router != nil {
		if !s.router.HasFeedback() {
			writeError(w, api.CodeBadRequest, errNoFeedback.Error())
			return
		}
	} else if s.sliding == nil {
		writeError(w, api.CodeBadRequest, errNoFeedback.Error())
		return
	}
	var req api.ObserveRequest
	if err := readJSON(w, r, s.cfg.MaxBody, &req); err != nil {
		writeError(w, api.CodeBadRequest, "decoding body: "+err.Error())
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, api.CodeBadRequest, "no observations")
		return
	}
	accepted := 0
	owner, sameOwner := -1, true // single-owner tracking for the shard field
	for i, o := range req.Observations {
		q, _, apiErr := s.planQuery(o.SQL)
		if apiErr != nil {
			writeError(w, apiErr.Code, fmt.Sprintf("observation %d: %s", i, apiErr.Message))
			return
		}
		q.Metrics = o.Metrics.Exec()
		q.Category = workload.Categorize(q.Metrics.ElapsedSec)
		var err error
		if s.router != nil {
			var sh int
			if sh, err = s.router.Observe(q); err == nil {
				if owner == -1 {
					owner = sh
				} else if owner != sh {
					sameOwner = false
				}
			}
			err = legacyText(err)
		} else {
			err = s.enqueueObservation(q)
		}
		if err != nil {
			e := apiError(err)
			writeError(w, e.Code, fmt.Sprintf("observation %d: %s", i, e.Message))
			return
		}
		accepted++
	}
	if s.router != nil {
		resp := api.ObserveResponse{
			Version:    api.Version,
			Accepted:   accepted,
			Generation: s.router.MaxGeneration(),
		}
		if s.router.Sharded() && sameOwner && owner >= 0 {
			resp.Shard = strconv.Itoa(owner)
			resp.WindowSize = s.router.Shard(owner).WindowSize()
		} else {
			resp.WindowSize = s.router.TotalWindow()
		}
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	gen := int64(0)
	if m := s.slot.get(); m != nil {
		gen = m.gen
	}
	writeJSON(w, http.StatusAccepted, api.ObserveResponse{
		Version:    api.Version,
		Accepted:   accepted,
		WindowSize: int(s.windowSize.Load()),
		Generation: gen,
	})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, api.CodeMethod, "use GET")
		return
	}
	info := s.modelInfo()
	if info == nil {
		writeError(w, api.CodeNotTrained, "no model trained yet")
		return
	}
	// Recovery status rides only on GET /v1/model (not on every predict
	// response), and only when the daemon runs with durable state.
	info.Recovery = s.recoveryInfo()
	writeJSON(w, http.StatusOK, struct {
		Version string         `json:"version"`
		Model   *api.ModelInfo `json:"model"`
	}{api.Version, info})
}

// modelInfo snapshots the served model's metadata, or nil before boot. On a
// sharded daemon it aggregates: Generation is the highest per-shard
// generation, TrainedOn/Swaps/WindowSize are totals, and the Shards and
// Partitioner fields appear only when more than one shard runs (so the
// single-shard wire format stays byte-identical to the unsharded daemon).
func (s *Server) modelInfo() *api.ModelInfo {
	if s.router != nil {
		var info *api.ModelInfo
		trained := 0
		var swaps, maxGen int64
		kind, mixed := "", false
		for i := 0; i < s.router.NumShards(); i++ {
			m := s.router.Shard(i).Model()
			if m == nil {
				continue
			}
			if info == nil {
				info = &api.ModelInfo{}
			}
			switch k := m.Model.Kind(); {
			case kind == "":
				kind = k
			case kind != k:
				mixed = true
			}
			// KCCA-specific introspection (feature space, neighbor index)
			// reports only the shards serving that kind; other kinds have no
			// neighbor index. Index shape aggregates across shards
			// (single-shard daemons report exactly the unsharded form,
			// keeping the wire formats byte-identical).
			if pred := m.Pred(); pred != nil {
				if info.Features == "" {
					opt := pred.Options()
					info.Features = opt.Features.String()
					info.TwoStep = opt.TwoStep
				}
				if ii := indexInfo(pred); info.Index == nil {
					info.Index = ii
				} else {
					info.Index.Points += ii.Points
					info.Index.Nodes += ii.Nodes
					info.Index.Stragglers += ii.Stragglers
					if ii.Kind == "kdtree" {
						info.Index.Kind = "kdtree"
					}
				}
			}
			trained += m.Model.N()
			swaps += m.Gen - 1
			if m.Gen > maxGen {
				maxGen = m.Gen
			}
		}
		if info == nil {
			return nil
		}
		info.ModelKind = kind
		if mixed {
			info.ModelKind = "mixed"
		}
		info.Generation = maxGen
		info.TrainedOn = trained
		info.Swaps = swaps
		info.WindowSize = s.router.TotalWindow()
		if s.router.Sharded() {
			info.Shards = s.router.NumShards()
			info.Partitioner = s.router.Partitioner().Name()
		}
		info.Champion, info.Challengers = s.zooInfo()
		return info
	}
	m := s.slot.get()
	if m == nil {
		return nil
	}
	info := &api.ModelInfo{
		Generation: m.gen,
		TrainedOn:  m.model.N(),
		ModelKind:  m.model.Kind(),
		// Generation 1 is the boot model; every later generation was a swap.
		Swaps:      m.gen - 1,
		WindowSize: int(s.windowSize.Load()),
	}
	if pred := m.pred(); pred != nil {
		opt := pred.Options()
		info.Features = opt.Features.String()
		info.TwoStep = opt.TwoStep
		info.Index = indexInfo(pred)
	}
	return info
}

// zooInfo aggregates champion/challenger state across the router's shards
// into wire form, or (nil, nil) when no shard runs a zoo. Promotions sum
// across shards; a disagreeing champion reports "mixed"; per-kind shadow
// scores come from the first zoo shard (per-shard detail is on /v1/shards).
func (s *Server) zooInfo() (*api.ChampionInfo, []api.ChallengerInfo) {
	var champ *api.ChampionInfo
	var chals []api.ChallengerInfo
	for i := 0; i < s.router.NumShards(); i++ {
		zs := s.router.Shard(i).Zoo()
		if zs == nil {
			continue
		}
		c, cs := zooStatusInfo(zs)
		if champ == nil {
			champ, chals = c, cs
			continue
		}
		champ.Promotions += zs.Promotions
		if zs.Champion != champ.Kind {
			champ.Kind = "mixed"
			champ.SinceGeneration = 0
		}
	}
	return champ, chals
}

// zooStatusInfo converts one shard's champion/challenger snapshot to wire
// form.
func zooStatusInfo(zs *shard.ZooStatus) (*api.ChampionInfo, []api.ChallengerInfo) {
	if zs == nil {
		return nil, nil
	}
	champ := &api.ChampionInfo{
		Kind:            zs.Champion,
		Promotions:      zs.Promotions,
		SinceGeneration: zs.SinceGeneration,
	}
	chals := make([]api.ChallengerInfo, 0, len(zs.Scores))
	for _, ks := range zs.Scores {
		ci := api.ChallengerInfo{Kind: ks.Kind, Champion: ks.Kind == zs.Champion, Streak: ks.Streak}
		for _, cs := range ks.Categories {
			ci.Categories = append(ci.Categories, api.CategoryScore{
				Category:   cs.Category.String(),
				Samples:    cs.Samples,
				MeanRelErr: cs.MeanRelErr,
				Within20:   cs.Within20,
			})
		}
		chals = append(chals, ci)
	}
	return champ, chals
}

// apiRecovery converts a store's recovery record to its wire form.
func apiRecovery(info wal.RecoveryInfo) *api.RecoveryInfo {
	return &api.RecoveryInfo{
		Recovered:      info.Recovered,
		SnapshotSeq:    info.SnapshotSeq,
		Replayed:       info.Replayed,
		TornTail:       info.TornTail,
		TruncatedBytes: info.TruncatedBytes,
		ReplaySeconds:  info.ReplaySeconds,
	}
}

// recoveryInfo reports what boot-time recovery did, or nil when the daemon
// runs without durable state. On a sharded daemon it aggregates: Recovered
// and TornTail are ORs, Replayed and TruncatedBytes are totals,
// SnapshotSeq and ReplaySeconds are maxima (per-shard detail is on GET
// /v1/shards).
func (s *Server) recoveryInfo() *api.RecoveryInfo {
	if s.router != nil {
		var agg *api.RecoveryInfo
		for i := 0; i < s.router.NumShards(); i++ {
			ri := s.router.Shard(i).Recovery()
			if ri == nil {
				continue
			}
			if agg == nil {
				agg = &api.RecoveryInfo{}
			}
			agg.Recovered = agg.Recovered || ri.Recovered
			agg.TornTail = agg.TornTail || ri.TornTail
			agg.Replayed += ri.Replayed
			agg.TruncatedBytes += ri.TruncatedBytes
			if ri.SnapshotSeq > agg.SnapshotSeq {
				agg.SnapshotSeq = ri.SnapshotSeq
			}
			if ri.ReplaySeconds > agg.ReplaySeconds {
				agg.ReplaySeconds = ri.ReplaySeconds
			}
		}
		return agg
	}
	if s.store == nil {
		return nil
	}
	return apiRecovery(s.store.Info())
}

// indexInfo reports the static per-generation shape of a predictor's
// neighbor index: deterministic for a given training window, so sharded
// and unsharded daemons serving the same window report identical bytes.
func indexInfo(p *core.Predictor) *api.IndexInfo {
	st := p.Index().Stats()
	kind := "kdtree"
	if st.Flat {
		kind = "flat"
	}
	return &api.IndexInfo{
		Kind:       kind,
		Metric:     p.Index().Metric().String(),
		Points:     st.Points,
		Nodes:      st.Nodes,
		Stragglers: st.Stragglers,
		MinPoints:  st.MinPoints,
	}
}

// handleShards serves GET /v1/shards: the routing policy and per-shard
// model state of a sharded daemon.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, api.CodeMethod, "use GET")
		return
	}
	if s.router == nil {
		writeError(w, api.CodeBadRequest, "daemon is not sharded (start qpredictd with -shards)")
		return
	}
	resp := api.ShardsResponse{Version: api.Version, Partitioner: s.router.Partitioner().Name()}
	for i := 0; i < s.router.NumShards(); i++ {
		sh := s.router.Shard(i)
		si := api.ShardInfo{
			ID:           sh.ID,
			WindowSize:   sh.WindowSize(),
			Predictions:  sh.Predictions(),
			Observations: sh.Observed(),
		}
		if m := sh.Model(); m != nil {
			si.Ready = true
			si.Generation = m.Gen
			si.Swaps = m.Gen - 1
			si.TrainedOn = m.Model.N()
			si.ModelKind = m.Model.Kind()
		}
		si.Champion, si.Challengers = zooStatusInfo(sh.Zoo())
		if ri := sh.Recovery(); ri != nil {
			si.Recovery = apiRecovery(*ri)
		}
		resp.Shards = append(resp.Shards, si)
	}
	writeJSON(w, http.StatusOK, resp)
}
