package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/shard"
)

// newShardedServer builds a Server backed by the shard tier: n shards, each
// booted from the fixture model with its own sliding window.
func newShardedServer(t testing.TB, n int, part shard.Partitioner, capacity, every int) *Server {
	t.Helper()
	_, pred := fixture(t)
	cfgs := make([]shard.ShardConfig, n)
	for i := range cfgs {
		sl, err := core.NewSliding(capacity, every, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = shard.ShardConfig{Boot: pred, Sliding: sl}
	}
	router, err := shard.NewRouter(cfgs, part, shard.Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.Predictor = nil
	cfg.Router = router
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// getBody fetches a URL and returns status + body.
func getBody(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, readAll(t, resp)
}

// settleModel polls /v1/model until the reported window size and generation
// reach want, returning the settled body.
func settleModel(t testing.TB, url string, window int, gen int64) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, raw := getBody(t, url+"/v1/model")
		var body struct {
			Model *api.ModelInfo `json:"model"`
		}
		if json.Unmarshal(raw, &body) == nil && body.Model != nil &&
			body.Model.WindowSize == window && body.Model.Generation == gen {
			return raw
		}
		if time.Now().After(deadline) {
			t.Fatalf("model never settled to window %d generation %d: %s", window, gen, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedSingleEquivalence is the tier's compatibility contract: a
// one-shard sharded daemon must be byte-identical on the wire to the
// unsharded daemon — same success bodies, same error bodies, same headers
// that clients branch on — across predicts, observes, a background retrain
// and the resulting hot swap. The only deliberate difference is
// /v1/shards, which exists only on the sharded daemon.
func TestShardedSingleEquivalence(t *testing.T) {
	pool, _ := fixture(t)
	const capacity, every = 30, 10

	legacySliding, err := core.NewSliding(capacity, every, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	legacyCfg := baseConfig(t)
	legacyCfg.Sliding = legacySliding
	legacy, err := New(legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()

	sharded := newShardedServer(t, 1, shard.Passthrough{}, capacity, every)
	defer sharded.Close()

	lts := httptest.NewServer(legacy.Handler())
	defer lts.Close()
	sts := httptest.NewServer(sharded.Handler())
	defer sts.Close()

	// both drives one request against both servers and asserts the status,
	// the body, and the Retry-After header are byte-identical.
	both := func(label string, do func(base string) (*http.Response, []byte)) []byte {
		t.Helper()
		lresp, lraw := do(lts.URL)
		sresp, sraw := do(sts.URL)
		if lresp.StatusCode != sresp.StatusCode {
			t.Fatalf("%s: status %d (legacy) vs %d (sharded)", label, lresp.StatusCode, sresp.StatusCode)
		}
		if !bytes.Equal(lraw, sraw) {
			t.Fatalf("%s: bodies differ\nlegacy:  %s\nsharded: %s", label, lraw, sraw)
		}
		if la, sa := lresp.Header.Get("Retry-After"), sresp.Header.Get("Retry-After"); la != sa {
			t.Fatalf("%s: Retry-After %q (legacy) vs %q (sharded)", label, la, sa)
		}
		return lraw
	}
	get := func(path string) func(string) (*http.Response, []byte) {
		return func(base string) (*http.Response, []byte) {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatal(err)
			}
			return resp, readAll(t, resp)
		}
	}
	post := func(path string, body any) func(string) (*http.Response, []byte) {
		return func(base string) (*http.Response, []byte) {
			resp, raw := postJSON(t, base+path, body)
			return resp, raw
		}
	}

	// Boot state: readiness, model metadata.
	both("readyz", get("/readyz"))
	both("model", get("/v1/model"))

	// Predictions: single, batch, mixed good/bad SQL.
	both("predict single", post("/v1/predict", api.PredictRequest{SQL: pool.Queries[130].SQL}))
	both("predict batch", post("/v1/predict", api.PredictRequest{Queries: []api.QueryInput{
		{SQL: pool.Queries[121].SQL},
		{SQL: "SELEC nonsense FROM ("},
		{SQL: "SELECT COUNT(*) FROM no_such_table"},
		{SQL: pool.Queries[122].SQL},
	}}))

	// Error paths: empty body, wrong method.
	both("predict empty", post("/v1/predict", api.PredictRequest{}))
	both("predict method", get("/v1/predict"))
	both("observe empty", post("/v1/observe", api.ObserveRequest{}))

	// Observe enough to cross the retrain threshold: both daemons train on
	// the identical stream, and training is deterministic, so both swap in
	// generation 2 models that answer identically. Observe responses report
	// an asynchronously-updated window mirror, racy in *both*
	// implementations — settle via /v1/model, whose body is then compared
	// byte-for-byte, before comparing post-swap predictions.
	var obs []api.Observation
	for _, q := range pool.Queries[:every] {
		obs = append(obs, api.Observation{SQL: q.SQL, Metrics: api.MetricsFrom(q.Metrics)})
	}
	lresp, lraw := postJSON(t, lts.URL+"/v1/observe", api.ObserveRequest{Observations: obs})
	sresp, sraw := postJSON(t, sts.URL+"/v1/observe", api.ObserveRequest{Observations: obs})
	if lresp.StatusCode != http.StatusAccepted || sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe status %d / %d: %s / %s", lresp.StatusCode, sresp.StatusCode, lraw, sraw)
	}
	var lor, sor api.ObserveResponse
	if err := json.Unmarshal(lraw, &lor); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sraw, &sor); err != nil {
		t.Fatal(err)
	}
	if lor.Accepted != sor.Accepted || sor.Shard != "" {
		t.Fatalf("observe responses diverge: legacy %+v, sharded %+v", lor, sor)
	}

	lsettled := settleModel(t, lts.URL, every, 2)
	ssettled := settleModel(t, sts.URL, every, 2)
	if !bytes.Equal(lsettled, ssettled) {
		t.Fatalf("settled model bodies differ\nlegacy:  %s\nsharded: %s", lsettled, ssettled)
	}

	raw := both("predict after swap", post("/v1/predict", api.PredictRequest{Queries: []api.QueryInput{
		{SQL: pool.Queries[140].SQL}, {SQL: pool.Queries[141].SQL},
	}}))
	pr := decodePredict(t, raw)
	if pr.Model.Generation != 2 || pr.Model.Swaps != 1 {
		t.Fatalf("post-swap model %+v, want generation 2", pr.Model)
	}
	for i, res := range pr.Results {
		if res.Error != nil || res.Shard != "" || res.Generation != 2 {
			t.Fatalf("post-swap result %d: %+v", i, res)
		}
	}
	if strings.Contains(string(raw), `"shards"`) || strings.Contains(string(raw), `"partitioner"`) {
		t.Fatalf("single-shard response leaks shard fields: %s", raw)
	}

	// Drain: identical shutdown bodies.
	legacy.Close()
	sharded.Close()
	both("draining predict", post("/v1/predict", api.PredictRequest{SQL: pool.Queries[130].SQL}))
	both("draining readyz", get("/readyz"))

	// The one deliberate difference: /v1/shards.
	lst, _ := getBody(t, lts.URL+"/v1/shards")
	if lst != http.StatusBadRequest {
		t.Fatalf("unsharded /v1/shards status %d, want 400", lst)
	}
	sst, sbody := getBody(t, sts.URL+"/v1/shards")
	if sst != http.StatusOK {
		t.Fatalf("sharded /v1/shards status %d: %s", sst, sbody)
	}
	var sh api.ShardsResponse
	if err := json.Unmarshal(sbody, &sh); err != nil {
		t.Fatal(err)
	}
	if len(sh.Shards) != 1 || sh.Partitioner != "passthrough" || !sh.Shards[0].Ready {
		t.Fatalf("shards body %s", sbody)
	}
	if sh.Shards[0].Generation != 2 || sh.Shards[0].TrainedOn != every {
		t.Fatalf("shard 0 state %+v, want generation 2 trained on %d", sh.Shards[0], every)
	}
}

// TestShardedServeHTTP exercises the multi-shard daemon over HTTP: shard
// fields appear on results, the aggregate model view reports the tier, and
// /v1/shards breaks it down per shard.
func TestShardedServeHTTP(t *testing.T) {
	pool, pred := fixture(t)
	part := shard.NewHashPartitioner(4, core.DefaultOptions().Features)
	s := newShardedServer(t, 4, part, 20, 5)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var inputs []api.QueryInput
	for _, q := range pool.Queries[120:150] {
		inputs = append(inputs, api.QueryInput{SQL: q.SQL})
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{Queries: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict %d: %s", resp.StatusCode, raw)
	}
	pr := decodePredict(t, raw)
	if pr.Model == nil || pr.Model.Shards != 4 || pr.Model.Partitioner != "hash" {
		t.Fatalf("model info %+v, want 4 shards via hash", pr.Model)
	}
	if pr.Model.TrainedOn != 4*pred.N() {
		t.Errorf("trained_on %d, want %d (sum across shards)", pr.Model.TrainedOn, 4*pred.N())
	}
	seen := map[string]bool{}
	for i, r := range pr.Results {
		if r.Error != nil {
			t.Fatalf("result %d: %+v", i, r.Error)
		}
		if r.Shard == "" {
			t.Fatalf("result %d missing shard field: %+v", i, r)
		}
		if r.FallbackShard != "" {
			t.Fatalf("result %d reports a fallback on a fully warm tier: %+v", i, r)
		}
		seen[r.Shard] = true
		// Routing matches the partitioner run locally on the same plan.
		want, err := part.RoutePredict(planLocal(t, r.SQL))
		if err != nil {
			t.Fatal(err)
		}
		if r.Shard != fmt.Sprint(want) {
			t.Errorf("result %d routed to shard %s, partitioner says %d", i, r.Shard, want)
		}
	}
	if len(seen) < 2 {
		t.Errorf("30 queries all hashed to one shard: %v", seen)
	}

	// Observations land on their owning shards and /v1/shards reports them.
	var obs []api.Observation
	for _, q := range pool.Queries[:8] {
		obs = append(obs, api.Observation{SQL: q.SQL, Metrics: api.MetricsFrom(q.Metrics)})
	}
	oresp, oraw := postJSON(t, ts.URL+"/v1/observe", api.ObserveRequest{Observations: obs})
	if oresp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe %d: %s", oresp.StatusCode, oraw)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, body := getBody(t, ts.URL+"/v1/shards")
		if st != http.StatusOK {
			t.Fatalf("shards %d: %s", st, body)
		}
		var sh api.ShardsResponse
		if err := json.Unmarshal(body, &sh); err != nil {
			t.Fatal(err)
		}
		if len(sh.Shards) != 4 || sh.Partitioner != "hash" {
			t.Fatalf("shards body %s", body)
		}
		total, totalPred := 0, int64(0)
		for _, si := range sh.Shards {
			total += si.WindowSize
			totalPred += si.Predictions
		}
		if total == len(obs) {
			if totalPred < int64(len(inputs)) {
				t.Fatalf("predictions across shards %d, want at least %d", totalPred, len(inputs))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows never absorbed %d observations: %s", len(obs), body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
