package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

// TestHotSwapUnderLoad predicts continuously from several goroutines while
// observation feedback retrains and swaps the model underneath them. Run
// under -race in CI, it is the proof that the atomic model slot lets
// retraining happen without blocking (or corrupting) a single read. Every
// response must be a complete 200 prediction, and the generations seen
// must only ever move forward per client.
func TestHotSwapUnderLoad(t *testing.T) {
	pool, _ := fixture(t)
	sliding, err := core.NewSliding(60, 20, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.Sliding = sliding
	cfg.Window = 500 * time.Microsecond
	cfg.MaxBatch = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sqls := []string{pool.Queries[121].SQL, pool.Queries[125].SQL, pool.Queries[133].SQL}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastGen := int64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: sqls[(g+i)%len(sqls)]})
				if resp.StatusCode != http.StatusOK {
					errs <- string(raw)
					return
				}
				pr := decodePredict(t, raw)
				r := pr.Results[0]
				if r.Error != nil || r.Metrics == nil || r.Generation < 1 {
					errs <- "incomplete result under swap: " + string(raw)
					return
				}
				if r.Generation < lastGen {
					// One client's generations may only move forward: the
					// slot swap is atomic and never rolls back.
					errs <- "generation went backwards"
					return
				}
				lastGen = r.Generation
			}
		}(g)
	}

	// Stream 60 executed queries in; at retrainEvery=20 that is three
	// background retrains hot-swapped mid-traffic.
	for lo := 0; lo < 60; lo += 10 {
		var obs []api.Observation
		for _, q := range pool.Queries[lo : lo+10] {
			obs = append(obs, api.Observation{SQL: q.SQL, Metrics: api.MetricsFrom(q.Metrics)})
		}
		resp, raw := postJSON(t, ts.URL+"/v1/observe", api.ObserveRequest{Observations: obs})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d: %s", resp.StatusCode, raw)
		}
	}

	// Wait until all three swaps landed, with traffic still flowing.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, resp)
		var body struct {
			Model *api.ModelInfo `json:"model"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatal(err)
			}
			if body.Model.Swaps >= 3 {
				if body.Model.Generation != body.Model.Swaps+1 {
					t.Errorf("generation %d with %d swaps", body.Model.Generation, body.Model.Swaps)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("swaps never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
