package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/testutil"
)

// newServerPair returns the same fixture server twice: once with the plan
// cache enabled (default capacity) and once with it disabled (every
// request re-plans).
func newServerPair(t *testing.T) (cached, uncached *Server) {
	cfg := baseConfig(t)
	cfg.Plans = NewPlanner(catalog.TPCDS(1), fixDataSeed, exec.Research4(), 0)
	var err error
	if cached, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cached.Close)

	cfg = baseConfig(t)
	cfg.Plans = NewPlanner(catalog.TPCDS(1), fixDataSeed, exec.Research4(), -1)
	if uncached, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(uncached.Close)
	return cached, uncached
}

// TestServePlanCacheEquivalence asserts the cache is invisible on the
// wire: for the same requests — including repeats, so the cached server
// answers from hits — the cached and uncached servers produce byte-
// identical response bodies, for successes, parse errors, and plan
// errors alike. (Observe-path equivalence across retrains is proven at
// the core level by TestPlanCacheObserveEquivalence.)
func TestServePlanCacheEquivalence(t *testing.T) {
	pool, _ := fixture(t)
	cached, uncached := newServerPair(t)
	tsC := httptest.NewServer(cached.Handler())
	defer tsC.Close()
	tsU := httptest.NewServer(uncached.Handler())
	defer tsU.Close()

	requests := []api.PredictRequest{
		{SQL: pool.Queries[130].SQL},
		{Queries: []api.QueryInput{{SQL: pool.Queries[131].SQL}, {SQL: pool.Queries[132].SQL}}},
		{SQL: "SELECT FROM WHERE"},                           // parse error
		{SQL: "SELECT COUNT(*) FROM no_such_table_anywhere"}, // plan error
		{SQL: pool.Queries[133].SQL, Queries: []api.QueryInput{{SQL: "ALSO NOT SQL"}}},
	}
	for round := 0; round < 3; round++ { // round 2+ hits the cache
		for i, req := range requests {
			respC, rawC := postJSON(t, tsC.URL+"/v1/predict", req)
			respU, rawU := postJSON(t, tsU.URL+"/v1/predict", req)
			if respC.StatusCode != respU.StatusCode {
				t.Fatalf("round %d req %d: status %d (cached) vs %d (uncached)", round, i, respC.StatusCode, respU.StatusCode)
			}
			if string(rawC) != string(rawU) {
				t.Fatalf("round %d req %d: body diverged\ncached:   %s\nuncached: %s", round, i, rawC, rawU)
			}
		}
	}
	if cached.plans.Len() == 0 {
		t.Fatal("cached server's plan cache stayed empty")
	}
	if uncached.plans.Len() != 0 {
		t.Fatal("uncached server's plan cache has entries")
	}
}

// TestPredictHandlerAllocs is the AllocsPerOp regression guard for the
// serving hot path: with the plan cache warm, a predict request must
// allocate less than half of what the re-planning path does (the ISSUE's
// ≥50% reduction bar). The numeric bound is waived under -race.
func TestPredictHandlerAllocs(t *testing.T) {
	pool, _ := fixture(t)
	cached, uncached := newServerPair(t)
	sql := pool.Queries[134].SQL
	body := `{"queries":[{"sql":` + jsonQuote(sql) + `}]}`

	measure := func(s *Server) float64 {
		h := s.Handler()
		rec := httptest.NewRecorder()
		do := func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec.Body.Reset()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		for i := 0; i < 5; i++ { // warm the cache, pools, and scratch buffers
			do()
		}
		return testing.AllocsPerRun(50, do)
	}

	cachedAllocs := measure(cached)
	uncachedAllocs := measure(uncached)
	t.Logf("predict handler allocs/op: cached %.1f, uncached %.1f", cachedAllocs, uncachedAllocs)
	if testutil.RaceEnabled {
		t.Skip("race detector enabled; skipping alloc bound")
	}
	if cachedAllocs > uncachedAllocs/2 {
		t.Fatalf("cached predict path allocates %.1f/op, more than half of the uncached %.1f/op", cachedAllocs, uncachedAllocs)
	}
}

// jsonQuote is a minimal JSON string literal encoder for test bodies
// (fixture SQL is plain ASCII without quotes or backslashes).
func jsonQuote(s string) string {
	if strings.ContainsAny(s, `"\`+"\n\t") {
		panic("jsonQuote: fixture SQL needs real escaping")
	}
	return `"` + s + `"`
}
