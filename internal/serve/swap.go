package serve

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
)

// servedModel is one immutable model plus its generation tag. A trained
// Model is never mutated after training returns, so readers may use it
// lock-free for as long as they hold the pointer; a hot swap only replaces
// which pointer new readers pick up. For the KCCA kind the generation also
// scopes the predictor's internal projection cache: each Predictor carries
// its own, so swapping generations retires every cached projection of the
// previous model wholesale — results tagged with one generation were
// computed against exactly that model and its cache, never a stale one.
type servedModel struct {
	model model.Model
	gen   int64
}

// pred returns the underlying core predictor for the KCCA kind, or nil for
// any other kind (KCCA-specific introspection only).
func (m *servedModel) pred() *core.Predictor {
	if k, ok := m.model.(*model.KCCA); ok {
		return k.Predictor()
	}
	return nil
}

// slot is the atomically hot-swappable model holder: reads are a single
// atomic pointer load on the predict path, swaps publish a freshly trained
// model without blocking a single in-flight prediction.
type slot struct {
	cur  atomic.Pointer[servedModel]
	gens atomic.Int64
}

// get returns the current model, or nil before the first swap.
func (s *slot) get() *servedModel { return s.cur.Load() }

// swap publishes a new model and returns its generation (1 for the boot
// model).
func (s *slot) swap(m model.Model) int64 {
	gen := s.gens.Add(1)
	s.cur.Store(&servedModel{model: m, gen: gen})
	return gen
}

// restore publishes a model recovered from durable state at the generation
// it held before the restart, so generations keep moving forward across
// process lifetimes (the next swap publishes gen+1).
func (s *slot) restore(m model.Model, gen int64) {
	s.gens.Store(gen)
	s.cur.Store(&servedModel{model: m, gen: gen})
}

// observeLoop is the single goroutine driving the SlidingPredictor.
// Observations stream in from /v1/observe through a bounded channel; the
// sliding window's periodic retrains happen here, off the request path,
// and each completed retrain is atomically swapped into the model slot.
// In steady state those retrains are incremental (maintained kernel
// matrices patched per observation, warm-started top-rank eigensolves —
// see kcca.Incremental), falling back to full trainings when the τ-drift
// guard fires; either way this loop only sees Observe/Retrain complete and
// publishes whatever model they produced. Mirrored atomics (windowSize,
// retrains) let handlers report window state without locking the
// SlidingPredictor.
func (s *Server) observeLoop() {
	defer close(s.observeDone)
	for q := range s.observeCh {
		// Write-ahead: log the observation before applying it, so a crash
		// between the two replays it on restart. A failed append is counted
		// (wal.append.errors) but does not fail the observation —
		// availability over durability; the record is simply absent from a
		// future replay.
		var seq uint64
		if s.store != nil {
			seq, _ = s.store.Append(q.SQL, q.Metrics)
		}
		before := s.sliding.Retrains()
		if err := s.sliding.Observe(q); err != nil {
			// A failed retrain (for example a degenerate window) keeps the
			// previous model serving; the observation itself is retained.
			retrainErrors.Inc()
		}
		s.windowSize.Store(int64(s.sliding.WindowSize()))
		if s.sliding.Retrains() != before {
			s.slot.swap(model.WrapKCCA(s.sliding.Current()))
			modelSwaps.Inc()
		}
		if s.store != nil {
			s.store.Applied(seq)
			if err := s.store.MaybeSnapshot(s.sliding, s.generation()); err != nil {
				walSnapshotFails.Inc()
			}
		}
		observeQueueDepth.Set(int64(len(s.observeCh)))
	}
}

// generation returns the currently served model generation (0 while cold).
func (s *Server) generation() int64 {
	if m := s.slot.get(); m != nil {
		return m.gen
	}
	return 0
}

// enqueueObservation hands one executed query to the observe loop without
// blocking: a full feedback queue sheds load (the caller reports 429)
// rather than stalling the write path.
func (s *Server) enqueueObservation(q *dataset.Query) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errShuttingDown
	}
	if s.observeCh == nil {
		return errNoFeedback
	}
	select {
	case s.observeCh <- q:
		observeQueueDepth.Set(int64(len(s.observeCh)))
		return nil
	default:
		rejectedOverload.Inc()
		return errOverloaded
	}
}
