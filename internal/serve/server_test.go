package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Shared fixture: one generated pool and one trained model (generation
// dominates test time). The data seed is fixed so the server's planner and
// the tests' local planner produce identical plans for the same SQL.
const fixDataSeed = 77

var (
	fixOnce sync.Once
	fixPool *dataset.Dataset
	fixPred *core.Predictor
	fixErr  error
)

func fixture(t testing.TB) (*dataset.Dataset, *core.Predictor) {
	t.Helper()
	fixOnce.Do(func() {
		fixPool, fixErr = dataset.Generate(dataset.GenConfig{
			Seed: 5, DataSeed: fixDataSeed, Machine: exec.Research4(),
			Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 160,
		})
		if fixErr != nil {
			return
		}
		fixPred, fixErr = core.Train(fixPool.Queries[:120], core.DefaultOptions())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixPool, fixPred
}

// baseConfig returns a ready-to-serve config around the fixture model.
func baseConfig(t testing.TB) Config {
	_, pred := fixture(t)
	return Config{
		Predictor: pred,
		Schema:    catalog.TPCDS(1),
		Machine:   exec.Research4(),
		DataSeed:  fixDataSeed,
		Timeout:   10 * time.Second,
	}
}

// planLocal plans SQL exactly the way the server does.
func planLocal(t testing.TB, sql string) *dataset.Query {
	t.Helper()
	ast, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parsing %q: %v", sql, err)
	}
	plan, err := optimizer.BuildPlan(ast, catalog.TPCDS(1), fixDataSeed, optimizer.DefaultConfig(exec.Research4().Processors))
	if err != nil {
		t.Fatalf("planning %q: %v", sql, err)
	}
	return &dataset.Query{SQL: sql, AST: ast, Plan: plan}
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodePredict(t testing.TB, raw []byte) api.PredictResponse {
	t.Helper()
	var pr api.PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return pr
}

func TestPredictSingle(t *testing.T) {
	pool, pred := fixture(t)
	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := pool.Queries[130].SQL
	resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	pr := decodePredict(t, raw)
	if pr.Version != api.Version {
		t.Errorf("version %q, want %q", pr.Version, api.Version)
	}
	if pr.Model == nil || pr.Model.Generation != 1 || pr.Model.TrainedOn != pred.N() {
		t.Errorf("model info %+v", pr.Model)
	}
	if len(pr.Results) != 1 {
		t.Fatalf("%d results, want 1", len(pr.Results))
	}
	r := pr.Results[0]
	if r.Error != nil {
		t.Fatalf("unexpected error: %+v", r.Error)
	}
	if r.Metrics == nil || r.Category == "" || !(r.Confidence > 0 && r.Confidence <= 1) {
		t.Fatalf("incomplete result: %s", raw)
	}
	if r.Generation != 1 {
		t.Errorf("generation %d, want 1", r.Generation)
	}

	// The served numbers are bit-identical to a direct in-process predict,
	// and the optimizer baseline rides along.
	q := planLocal(t, sql)
	want, err := pred.PredictQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Exec() != want.Metrics {
		t.Errorf("served metrics %+v, direct %+v", r.Metrics.Exec(), want.Metrics)
	}
	if r.Confidence != want.Confidence || r.Category != want.Category.String() {
		t.Errorf("served (conf %v, cat %q), direct (conf %v, cat %q)",
			r.Confidence, r.Category, want.Confidence, want.Category)
	}
	if r.OptimizerCost != q.Plan.Cost {
		t.Errorf("optimizer cost %v, plan cost %v", r.OptimizerCost, q.Plan.Cost)
	}

	// The six metric names appear verbatim on the wire.
	for _, name := range exec.MetricNames {
		if !strings.Contains(string(raw), fmt.Sprintf("%q", name)) {
			t.Errorf("response is missing metric %q: %s", name, raw)
		}
	}
}

func TestPredictBatchMixedResults(t *testing.T) {
	pool, _ := fixture(t)
	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.PredictRequest{Queries: []api.QueryInput{
		{SQL: pool.Queries[121].SQL},
		{SQL: "SELEC nonsense FROM ("},
		{SQL: "SELECT COUNT(*) FROM no_such_table"},
		{SQL: pool.Queries[122].SQL},
	}}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	pr := decodePredict(t, raw)
	if len(pr.Results) != 4 {
		t.Fatalf("%d results, want 4", len(pr.Results))
	}
	if pr.Results[0].Error != nil || pr.Results[0].Metrics == nil {
		t.Errorf("result 0 should have predicted: %+v", pr.Results[0])
	}
	if pr.Results[1].Error == nil || pr.Results[1].Error.Code != api.CodeParse {
		t.Errorf("result 1 error = %+v, want %s", pr.Results[1].Error, api.CodeParse)
	}
	if pr.Results[2].Error == nil || pr.Results[2].Error.Code != api.CodePlan {
		t.Errorf("result 2 error = %+v, want %s", pr.Results[2].Error, api.CodePlan)
	}
	if pr.Results[3].Error != nil || pr.Results[3].Metrics == nil {
		t.Errorf("result 3 should have predicted: %+v", pr.Results[3])
	}
}

func TestPredictRequestValidation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.MaxQueries = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(status int, code string, raw []byte) {
		t.Helper()
		var er api.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
		if er.Error.Code != code {
			t.Errorf("code %q, want %q (%s)", er.Error.Code, code, raw)
		}
		if er.Version != api.Version {
			t.Errorf("error body missing version: %s", raw)
		}
	}

	// Not JSON.
	resp, err := http.Post(ts.URL+"/v1/predict", "text/plain", strings.NewReader("SELECT"))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	check(resp.StatusCode, api.CodeBadRequest, raw)

	// No queries.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp2.StatusCode)
	}
	check(resp2.StatusCode, api.CodeBadRequest, raw2)

	// Too many queries.
	resp3, raw3 := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{Queries: []api.QueryInput{
		{SQL: "a"}, {SQL: "b"}, {SQL: "c"},
	}})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp3.StatusCode)
	}
	check(resp3.StatusCode, api.CodeBadRequest, raw3)

	// Wrong method.
	resp4, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	raw4 := readAll(t, resp4)
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405: %s", resp4.StatusCode, raw4)
	}
	check(resp4.StatusCode, api.CodeMethod, raw4)
}

func readAll(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// TestOverload drives the bounded-queue 429 path deterministically: the
// server is assembled by hand with a full queue and no coalescer draining
// it, so the submit must shed.
func TestOverload(t *testing.T) {
	_, pred := fixture(t)
	s := &Server{
		cfg: Config{
			Schema: catalog.TPCDS(1), Machine: exec.Research4(), DataSeed: fixDataSeed,
			MaxBatch: 8, QueueCap: 1, Timeout: time.Second, MaxQueries: 16, MaxBody: 1 << 20,
		},
		plans:        NewPlanner(catalog.TPCDS(1), fixDataSeed, exec.Research4(), 0),
		queue:        make(chan *batchItem, 1),
		coalesceDone: make(chan struct{}),
	}
	s.slot.swap(model.WrapKCCA(pred))
	s.queue <- &batchItem{done: make(chan struct{})} // queue now full
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pool, _ := fixture(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: pool.Queries[121].SQL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != api.CodeOverloaded {
		t.Errorf("code %q, want %q", er.Error.Code, api.CodeOverloaded)
	}
}

// TestPredictTimeout drives the per-request deadline deterministically:
// the hand-assembled server has queue capacity but nothing answering, so
// the handler's wait must expire.
func TestPredictTimeout(t *testing.T) {
	_, pred := fixture(t)
	s := &Server{
		cfg: Config{
			Schema: catalog.TPCDS(1), Machine: exec.Research4(), DataSeed: fixDataSeed,
			MaxBatch: 8, QueueCap: 16, Timeout: 50 * time.Millisecond, MaxQueries: 16, MaxBody: 1 << 20,
		},
		plans:        NewPlanner(catalog.TPCDS(1), fixDataSeed, exec.Research4(), 0),
		queue:        make(chan *batchItem, 16),
		coalesceDone: make(chan struct{}),
	}
	s.slot.swap(model.WrapKCCA(pred))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pool, _ := fixture(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: pool.Queries[121].SQL})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, raw)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != api.CodeTimeout {
		t.Errorf("code %q, want %q", er.Error.Code, api.CodeTimeout)
	}
}

// TestColdStartAndReadiness boots the daemon with no model — only a
// sliding window — and watches it become ready after enough feedback.
func TestColdStartAndReadiness(t *testing.T) {
	pool, _ := fixture(t)
	sliding, err := core.NewSliding(30, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.Predictor = nil
	cfg.Sliding = sliding
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold: live but not ready, predicts refused with 503.
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold readyz %d, want 503", resp.StatusCode)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: pool.Queries[121].SQL})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold predict %d, want 503: %s", resp.StatusCode, raw)
	}

	// Feed ten executed queries; the background retrain must swap in a
	// first model and flip readiness.
	var obs []api.Observation
	for _, q := range pool.Queries[:10] {
		obs = append(obs, api.Observation{SQL: q.SQL, Metrics: api.MetricsFrom(q.Metrics)})
	}
	resp2, raw2 := postJSON(t, ts.URL+"/v1/observe", api.ObserveRequest{Observations: obs})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("observe %d, want 202: %s", resp2.StatusCode, raw2)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after observations")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp3, raw3 := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: pool.Queries[121].SQL})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("warm predict %d: %s", resp3.StatusCode, raw3)
	}
	pr := decodePredict(t, raw3)
	if pr.Model == nil || pr.Model.TrainedOn != 10 {
		t.Errorf("model info %+v, want trained_on 10", pr.Model)
	}
}

func TestModelEndpointAndDrain(t *testing.T) {
	pool, pred := fixture(t)
	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model %d: %s", resp.StatusCode, raw)
	}
	var body struct {
		Version string         `json:"version"`
		Model   *api.ModelInfo `json:"model"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Version != api.Version || body.Model == nil ||
		body.Model.TrainedOn != pred.N() || body.Model.Generation != 1 || body.Model.Swaps != 0 {
		t.Errorf("model body %s", raw)
	}

	// Drain: new work is refused, Close is idempotent, readyz flips.
	s.Close()
	s.Close()
	resp2, raw2 := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: pool.Queries[121].SQL})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining predict %d, want 503: %s", resp2.StatusCode, raw2)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(raw2, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != api.CodeShuttingDown {
		t.Errorf("code %q, want %q", er.Error.Code, api.CodeShuttingDown)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d, want 503", resp.StatusCode)
	}
}
