package serve

import (
	"context"
	"time"

	"repro/internal/core"
)

// batchItem is one query riding through the coalescer. The handler that
// submitted it waits on done; the coalescer fills res and gen, then closes
// done (the close is the happens-before edge that publishes the result).
// ctx is the submitting request's context: an item whose context is already
// done when its micro-batch runs is answered with the context error and
// excluded from the predict call, so an abandoned request (per-request
// timeout, client gone) costs nothing past its deadline and a backed-up
// queue drains in O(queue) instead of O(queue × predict).
type batchItem struct {
	ctx  context.Context
	req  core.Request
	res  core.Result
	gen  int64
	kind string
	done chan struct{}
}

// submit hands an item to the coalescer without blocking: a full queue
// sheds load with errOverloaded (the handler reports 429) instead of
// stacking goroutines.
func (s *Server) submit(it *batchItem) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errShuttingDown
	}
	select {
	case s.queue <- it:
		queueDepth.Set(int64(len(s.queue)))
		return nil
	default:
		rejectedOverload.Inc()
		return errOverloaded
	}
}

// coalesceLoop gathers concurrently submitted queries into micro-batches:
// the first arrival opens a batch, then up to Window elapses (or MaxBatch
// is reached, or the queue closes) before the batch is fed through one
// core Predict call — amortizing the worker-pool fan-out across requests
// that arrived together. With Window zero the loop still sweeps whatever
// is already queued, so bursts batch without adding any latency.
func (s *Server) coalesceLoop() {
	defer close(s.coalesceDone)
	// batch and the runBatch request scratch are owned by this goroutine and
	// reused across micro-batches: the steady-state loop allocates nothing.
	batch := make([]*batchItem, 0, s.cfg.MaxBatch)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if s.cfg.Window > 0 {
			timer := time.NewTimer(s.cfg.Window)
			for len(batch) < s.cfg.MaxBatch {
				stop := false
				select {
				case it, ok := <-s.queue:
					if !ok {
						stop = true
						break
					}
					batch = append(batch, it)
				case <-timer.C:
					stop = true
				}
				if stop {
					break
				}
			}
			timer.Stop()
		} else {
			for len(batch) < s.cfg.MaxBatch {
				stop := false
				select {
				case it, ok := <-s.queue:
					if !ok {
						stop = true
						break
					}
					batch = append(batch, it)
				default:
					stop = true
				}
				if stop {
					break
				}
			}
		}
		queueDepth.Set(int64(len(s.queue)))
		s.runBatch(batch)
		// Drop the item pointers so answered items are collectable while the
		// slice itself is reused for the next batch.
		for i := range batch {
			batch[i] = nil
		}
	}
}

// runBatch answers one micro-batch with one model: the slot is read once,
// so every item in the batch is served by the same generation even while
// retrains swap the slot concurrently. Predictions are delegated to the
// core Request/Result entrypoint, which fans out across the shared worker
// pool — responses are bit-identical to a direct PredictBatch on the same
// queries because they are the same code path.
func (s *Server) runBatch(batch []*batchItem) {
	live := batch[:0]
	for _, b := range batch {
		if b.ctx != nil {
			select {
			case <-b.ctx.Done():
				b.res.Err = b.ctx.Err()
				close(b.done)
				continue
			default:
			}
		}
		live = append(live, b)
	}
	if len(live) == 0 {
		return
	}
	batchSizeHist.Observe(float64(len(live)))
	m := s.slot.get()
	// reqScratch is reused across batches (runBatch is only ever called from
	// the coalesce goroutine); entries are cleared after the predict so query
	// pointers are not pinned past their batch.
	if cap(s.reqScratch) < len(live) {
		s.reqScratch = make([]core.Request, len(live))
	}
	reqs := s.reqScratch[:len(live)]
	for i, b := range live {
		reqs[i] = b.req
	}
	results := m.model.Predict(reqs...)
	for i := range reqs {
		reqs[i] = core.Request{}
	}
	for i, b := range live {
		b.res = results[i]
		b.gen = m.gen
		b.kind = m.model.Kind()
		close(b.done)
	}
}
