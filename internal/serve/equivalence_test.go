package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// TestCoalescedEquivalence is the acceptance test for the micro-batching
// coalescer: responses served through coalesced micro-batches must be
// bit-identical — metrics, category, confidence — to a direct serial
// PredictBatch on the same queries. The coalescing window is wide enough
// that concurrent arrivals really do share micro-batches (asserted via the
// batch-size histogram's observations), so the equality is exercised on
// genuinely coalesced work, not on 24 batches of one.
func TestCoalescedEquivalence(t *testing.T) {
	pool, pred := fixture(t)
	cfg := baseConfig(t)
	cfg.Window = 5 * time.Millisecond
	cfg.MaxBatch = 16
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := pool.Queries[120:144]
	planned := make([]*dataset.Query, len(queries))
	for i, q := range queries {
		planned[i] = planLocal(t, q.SQL)
	}
	want, err := pred.PredictBatch(planned)
	if err != nil {
		t.Fatal(err)
	}

	// Fire all queries concurrently as single-query requests, so the only
	// way they share a Predict call is through the coalescer.
	got := make([]api.QueryResult, len(queries))
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: queries[i].SQL})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			got[i] = decodePredict(t, raw).Results[0]
		}(i)
	}
	wg.Wait()

	for i := range queries {
		r := got[i]
		if r.Error != nil || r.Metrics == nil {
			t.Fatalf("query %d failed: %+v", i, r)
		}
		if r.Metrics.Exec() != want[i].Metrics {
			t.Errorf("query %d: served metrics %+v != direct %+v", i, r.Metrics.Exec(), want[i].Metrics)
		}
		if r.Confidence != want[i].Confidence {
			t.Errorf("query %d: served confidence %v != direct %v", i, r.Confidence, want[i].Confidence)
		}
		if r.Category != want[i].Category.String() {
			t.Errorf("query %d: served category %q != direct %q", i, r.Category, want[i].Category)
		}
		if r.Generation != 1 {
			t.Errorf("query %d: generation %d, want 1", i, r.Generation)
		}
	}
}

// TestHotSwapEquivalence is the stronger acceptance test: coalesced
// responses must stay bit-identical to direct prediction even while
// background retrains hot-swap the model mid-traffic. A local mirror
// SlidingPredictor is fed the exact observation sequence the server
// receives; training is deterministic, so the mirror reconstructs every
// generation's model, and each response — tagged with the generation that
// produced it — must match that generation's direct PredictQuery exactly.
// Run under -race in CI.
func TestHotSwapEquivalence(t *testing.T) {
	pool, pred := fixture(t)
	const capacity, retrainEvery = 40, 10
	sliding, err := core.NewSliding(capacity, retrainEvery, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.Sliding = sliding
	cfg.Window = 2 * time.Millisecond
	cfg.MaxBatch = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The mirror: same window geometry, same options, fed the same
	// observations in the same order. Generation g on the server is the
	// boot model (g=1) or the mirror's (g-1)-th retrain.
	mirror, err := core.NewSliding(capacity, retrainEvery, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	genModels := map[int64]*core.Predictor{1: pred}

	// Concurrent predict traffic over a fixed query set while observations
	// stream. Collect (query index, generation, wire result) triples.
	type obsResult struct {
		qi  int
		gen int64
		res api.QueryResult
	}
	testQueries := pool.Queries[120:132]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var seen []obsResult
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (g*5 + i) % len(testQueries)
				resp, raw := postJSON(t, ts.URL+"/v1/predict", api.PredictRequest{SQL: testQueries[qi].SQL})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
				r := decodePredict(t, raw).Results[0]
				if r.Error != nil {
					t.Errorf("predict failed: %+v", r.Error)
					return
				}
				mu.Lock()
				seen = append(seen, obsResult{qi, r.Generation, r})
				mu.Unlock()
			}
		}(g)
	}

	// Stream 30 observations one request at a time (a single sequential
	// client, so the server's observe channel sees them in this exact
	// order), mirroring each into the local sliding window.
	for _, q := range pool.Queries[:30] {
		wire := api.MetricsFrom(q.Metrics)
		resp, raw := postJSON(t, ts.URL+"/v1/observe", api.ObserveRequest{Observations: []api.Observation{
			{SQL: q.SQL, Metrics: wire},
		}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d: %s", resp.StatusCode, raw)
		}
		mq := planLocal(t, q.SQL)
		mq.Metrics = wire.Exec()
		mq.Category = workload.Categorize(mq.Metrics.ElapsedSec)
		before := mirror.Retrains()
		if err := mirror.Observe(mq); err != nil {
			t.Fatalf("mirror observe: %v", err)
		}
		if mirror.Retrains() != before {
			genModels[int64(mirror.Retrains())+1] = mirror.Current()
		}
	}

	// Let traffic overlap the last swap, then stop and drain.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, resp)
		var body struct {
			Model *api.ModelInfo `json:"model"`
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatal(err)
		}
		if body.Model != nil && body.Model.Swaps >= int64(mirror.Retrains()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server swaps trail mirror retrains (%d)", mirror.Retrains())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if mirror.Retrains() < 3 {
		t.Fatalf("mirror retrained %d times, want >= 3", mirror.Retrains())
	}
	gens := map[int64]int{}
	for _, o := range seen {
		model, ok := genModels[o.gen]
		if !ok {
			t.Fatalf("response carries unknown generation %d", o.gen)
		}
		gens[o.gen]++
		want, err := model.PredictQuery(planLocal(t, testQueries[o.qi].SQL))
		if err != nil {
			t.Fatal(err)
		}
		if o.res.Metrics.Exec() != want.Metrics ||
			o.res.Confidence != want.Confidence ||
			o.res.Category != want.Category.String() {
			t.Fatalf("generation %d response diverges from its model's direct prediction:\nserved %+v conf %v cat %q\ndirect %+v conf %v cat %q",
				o.gen, o.res.Metrics.Exec(), o.res.Confidence, o.res.Category,
				want.Metrics, want.Confidence, want.Category)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no predictions overlapped the retraining")
	}
	t.Logf("verified %d responses across generations %v", len(seen), gens)
}
