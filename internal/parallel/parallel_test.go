package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// workerCounts is the sweep used across the equivalence suites.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.NumCPU()}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range workerCounts() {
		defer SetMaxProcs(SetMaxProcs(w))
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 4096} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Fatalf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d grain=%d: index %d hit %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForSerialFallbackRunsOnCaller(t *testing.T) {
	// With n <= grain the body must run inline exactly once, so writes need
	// no synchronization at all.
	calls := 0
	For(10, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial fallback got [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial fallback ran %d times", calls)
	}
	defer SetMaxProcs(SetMaxProcs(1))
	calls = 0
	For(1000, 1, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("one-worker fallback chunked the range (%d calls)", calls)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range workerCounts() {
		defer SetMaxProcs(SetMaxProcs(w))
		out := Map(500, 7, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("w=%d: out[%d]=%d", w, i, v)
			}
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do()
	Do(func() { a.Add(1) })
	Do(func() { a.Add(1) }, func() { b.Add(1) }, func() { c.Add(1) })
	if a.Load() != 2 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("Do counts: %d %d %d", a.Load(), b.Load(), c.Load())
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	// Nested parallelism must degrade gracefully (inline execution when the
	// pool is saturated), never deadlock.
	var total atomic.Int64
	For(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 8, func(lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if total.Load() != 64*64 {
		t.Fatalf("nested For covered %d indexes, want %d", total.Load(), 64*64)
	}
}

func TestSetMaxProcs(t *testing.T) {
	old := SetMaxProcs(3)
	if MaxProcs() != 3 {
		t.Fatalf("MaxProcs=%d after SetMaxProcs(3)", MaxProcs())
	}
	if prev := SetMaxProcs(0); prev != 3 {
		t.Fatalf("SetMaxProcs returned %d, want 3", prev)
	}
	if MaxProcs() != runtime.GOMAXPROCS(0) {
		t.Fatalf("MaxProcs=%d, want GOMAXPROCS=%d", MaxProcs(), runtime.GOMAXPROCS(0))
	}
	if prev := SetMaxProcs(-5); prev != 0 {
		t.Fatalf("negative SetMaxProcs returned %d, want 0", prev)
	}
	SetMaxProcs(old)
}

func TestGrainFor(t *testing.T) {
	if g := GrainFor(100, 1000); g != 10 {
		t.Fatalf("GrainFor(100,1000)=%d", g)
	}
	if g := GrainFor(0, 8); g != 8 {
		t.Fatalf("GrainFor(0,8)=%d", g)
	}
	if g := GrainFor(1<<20, 10); g != 1 {
		t.Fatalf("GrainFor huge perItem = %d, want 1", g)
	}
}

// TestForStress hammers the pool from many concurrent callers; run under
// -race this is the core data-race check for the pool itself.
func TestForStress(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			sums := make([]int64, 256)
			for rep := 0; rep < 50; rep++ {
				For(len(sums), 16, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sums[i]++
					}
				})
			}
			for i, s := range sums {
				if s != 50 {
					t.Errorf("sums[%d]=%d, want 50", i, s)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestPoolGrowsAfterSmallStart is the regression test for the stale pool
// sizing bug: the pool used to be sized to GOMAXPROCS at the FIRST parallel
// call and never resized, so a pool born under GOMAXPROCS=1 (or a small
// SetMaxProcs override) permanently under-provisioned every later call.
// Here the pool is deliberately started 1-2 workers wide, the cap is then
// raised, and a rendezvous requires at least three chunk bodies to be in
// flight at once — impossible unless the pool grew.
func TestPoolGrowsAfterSmallStart(t *testing.T) {
	oldGMP := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(oldGMP)
	defer SetMaxProcs(SetMaxProcs(2))

	// First parallel call while narrow: the buggy pool froze its worker
	// count here.
	For(8, 1, func(lo, hi int) {})

	// Widen and demand real width. The rendezvous releases everyone once
	// three bodies are concurrently inside; with a frozen 1-worker pool only
	// the caller plus one worker can be inside simultaneously (queued and
	// inline helpers run strictly after the caller's own drain blocks), so
	// the timeout path fires.
	runtime.GOMAXPROCS(4)
	SetMaxProcs(4)
	var entered atomic.Int64
	var timedOut atomic.Bool
	release := make(chan struct{})
	var once sync.Once
	For(4, 1, func(lo, hi int) {
		if entered.Add(1) >= 3 {
			once.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			timedOut.Store(true)
		}
	})
	if timedOut.Load() {
		t.Fatalf("pool never reached width 3 after widening (workers=%d): stale pool sizing", poolWorkers.Load())
	}
	if got := int(poolWorkers.Load()); got < 4 {
		t.Fatalf("pool has %d workers after widening to 4, want >= 4", got)
	}
}
