// Package parallel provides the shared worker pool used by the numeric hot
// paths (kernel matrices, dense linear algebra, nearest-neighbor search,
// batch prediction). It is deliberately small: a lazily started,
// adaptively sized pool of goroutines (grown on demand to the effective
// worker cap, never shrunk), a chunked parallel For loop, a typed Map, and
// a Do for heterogeneous fan-out.
//
// Determinism contract: For partitions [0, n) into fixed contiguous chunks
// and every index is processed by exactly one worker, so callers that write
// only to per-index (or per-chunk) outputs — and that keep each element's
// summation order identical to their serial loop — produce bit-for-bit the
// same result at every worker count. The equivalence tests in the numeric
// packages hold every parallelized kernel to that contract.
//
// Grain-threshold fallback: when n <= grain, or when the effective worker
// count is 1, For invokes fn(0, n) directly on the calling goroutine — no
// goroutines, no channel traffic — so tiny inputs (and tests pinned to one
// worker via SetMaxProcs) take exactly the serial code path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool metrics. Counters and gauges are single atomic updates, cheap enough
// to keep on permanently; see the obs package for the snapshot surface.
var (
	forCalls      = obs.GetCounter("parallel.for.calls")
	serialCalls   = obs.GetCounter("parallel.for.serial")
	chunksClaimed = obs.GetCounter("parallel.pool.chunks_claimed")
	inlineRuns    = obs.GetCounter("parallel.pool.inline_runs")
	workersGauge  = obs.GetGauge("parallel.pool.workers")
	queueGauge    = obs.GetGauge("parallel.pool.queue_depth")
)

// maxProcs, when positive, caps the number of workers a single For/Map/Do
// call may use. Zero (the default) means "use GOMAXPROCS workers".
var maxProcs atomic.Int64

// SetMaxProcs overrides the per-call worker cap and returns the previous
// override (0 if none was set). Passing 0 restores the GOMAXPROCS default;
// passing 1 forces every subsequent For/Map/Do onto the serial path. Tests
// use it to sweep worker counts:
//
//	defer parallel.SetMaxProcs(parallel.SetMaxProcs(7))
func SetMaxProcs(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxProcs.Swap(int64(n)))
}

// MaxProcs reports the effective worker cap: the SetMaxProcs override if
// one is set, otherwise GOMAXPROCS.
func MaxProcs() int {
	if n := maxProcs.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// The shared pool: workers draining a task channel. The pool grows lazily
// and adaptively: every parallel call re-checks the effective worker cap
// and starts any missing workers, so a first call made under a small
// GOMAXPROCS (or a SetMaxProcs override) no longer freezes the pool at that
// width forever. The pool never shrinks — an idle worker costs only a
// goroutine blocked on the channel. Submission never blocks: when the queue
// is full (including the nested case where a worker itself calls For), the
// submitting goroutine runs the task inline, so nested parallelism degrades
// to serial instead of deadlocking.
const poolQueueCap = 256

var (
	poolMu      sync.Mutex
	poolWorkers atomic.Int64
	tasks       chan func()
)

// ensurePool grows the pool to the current effective worker cap.
func ensurePool() {
	want := MaxProcs()
	if want < 1 {
		want = 1
	}
	if int(poolWorkers.Load()) >= want {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if tasks == nil {
		tasks = make(chan func(), poolQueueCap)
	}
	for int(poolWorkers.Load()) < want {
		poolWorkers.Add(1)
		go func() {
			for task := range tasks {
				task()
			}
		}()
	}
	workersGauge.Set(poolWorkers.Load())
}

// submit hands a task to the pool, running it inline when the queue is
// full.
func submit(task func()) {
	select {
	case tasks <- task:
		queueGauge.Set(int64(len(tasks)))
	default:
		inlineRuns.Inc()
		task()
	}
}

// For runs fn over the index range [0, n) in contiguous chunks of at most
// grain indexes. fn(lo, hi) must process exactly the half-open range
// [lo, hi). When n <= grain or only one worker is available the call
// degrades to fn(0, n) on the calling goroutine.
//
// fn must be safe to call concurrently for disjoint ranges; the ranges
// handed to it are always disjoint and cover [0, n) exactly once.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	forCalls.Inc()
	if grain < 1 {
		grain = 1
	}
	w := MaxProcs()
	if w <= 1 || n <= grain {
		serialCalls.Inc()
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if w > chunks {
		w = chunks
	}
	ensurePool()

	// Completion is tracked by counting finished chunks, NOT by waiting for
	// the helper goroutines: a helper that is still sitting in the pool
	// queue when the caller has drained every chunk must not be waited for
	// (all workers could be blocked in nested For calls — waiting on queued
	// helpers would deadlock). Stale helpers that run after the job is done
	// find no chunks left and exit immediately.
	var next, done atomic.Int64
	finished := make(chan struct{})
	drain := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			chunksClaimed.Inc()
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			if int(done.Add(1)) == chunks {
				close(finished)
			}
		}
	}
	for i := 0; i < w-1; i++ {
		submit(drain)
	}
	// The caller participates too, so a saturated pool still makes progress;
	// by the time its drain returns, every chunk is at least claimed, and
	// each claimant is a running goroutine that will finish its chunk.
	drain()
	<-finished
}

// Map computes out[i] = fn(i) for i in [0, n) on the pool and returns the
// results in index order. The grain semantics match For.
func Map[T any](n, grain int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Do runs the functions concurrently on the pool and waits for all of them.
// It is the fan-out primitive for a handful of heterogeneous tasks (for
// example computing the query-side and performance-side kernel matrices of
// a KCCA fit at the same time).
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}

// GrainFor sizes a chunk so that it costs roughly targetOps units of work,
// given perItem units per index. It never returns less than 1. Callers use
// it to keep per-chunk work large enough to amortize scheduling:
//
//	parallel.For(rows, parallel.GrainFor(cols, 1<<15), body)
func GrainFor(perItem, targetOps int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := targetOps / perItem
	if g < 1 {
		g = 1
	}
	return g
}
