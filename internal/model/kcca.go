package model

import (
	"bytes"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
)

// KCCA adapts the paper's KCCA + kNN predictor (core.Predictor) to the
// Model interface. Predict delegates straight to the wrapped predictor, so
// predictions through the adapter are bit-identical to the direct path.
type KCCA struct {
	p      *core.Predictor
	fp     uint64
	fpOnce sync.Once
}

// WrapKCCA wraps a trained core predictor as a Model. The predictor must
// not be mutated afterwards.
func WrapKCCA(p *core.Predictor) *KCCA { return &KCCA{p: p} }

// Predictor exposes the wrapped core predictor for callers that need the
// KCCA-specific surface (options, kNN index, projection introspection).
func (m *KCCA) Predictor() *core.Predictor { return m.p }

// Kind implements Model.
func (m *KCCA) Kind() string { return KindKCCA }

// N implements Model.
func (m *KCCA) N() int { return m.p.N() }

// Predict implements Model by delegating to the wrapped predictor —
// bit-identical to calling it directly.
func (m *KCCA) Predict(reqs ...core.Request) []core.Result {
	return m.p.Predict(reqs...)
}

// Save implements Model. The payload is the core predictor's own framed
// save format nested inside the zoo envelope, so the core loader does all
// validation on the way back in.
func (m *KCCA) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := m.p.Save(&buf); err != nil {
		return err
	}
	return saveEnvelope(w, KindKCCA, buf.Bytes())
}

// Fingerprint implements Model. It hashes the learned query-space
// projection (the parameters every prediction flows through) rather than
// Save output, because gob's map encoding makes save bytes nondeterministic
// for two-step models.
func (m *KCCA) Fingerprint() uint64 {
	m.fpOnce.Do(func() {
		fp := newFingerprinter(KindKCCA)
		km := m.p.Model()
		proj := km.QueryProj
		fp.addInt(m.p.N())
		fp.addInt(proj.Rows)
		fp.addInt(proj.Cols)
		for i := 0; i < proj.Rows; i++ {
			fp.addFloats(proj.Row(i))
		}
		fp.addFloats(km.Correlations)
		m.fp = fp.sum()
	})
	return m.fp
}

// KCCATrainer trains KCCA models with the given core options.
type KCCATrainer struct {
	Opt core.Options
}

// Kind implements Trainer.
func (t *KCCATrainer) Kind() string { return KindKCCA }

// Train implements Trainer via core.Train — the exact pre-zoo training
// path.
func (t *KCCATrainer) Train(qs []*dataset.Query) (Model, error) {
	p, err := core.Train(qs, t.Opt)
	if err != nil {
		return nil, err
	}
	return WrapKCCA(p), nil
}
