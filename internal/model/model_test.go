package model

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

// Shared fixture: one generated pool (generation dominates test time).
var (
	fixOnce sync.Once
	fixPool *dataset.Dataset
	fixErr  error
)

const (
	fixSeed     = 7
	fixDataSeed = 42
	fixTrainN   = 110
)

func fixture(t testing.TB) *dataset.Dataset {
	t.Helper()
	fixOnce.Do(func() {
		fixPool, fixErr = dataset.Generate(dataset.GenConfig{
			Seed: fixSeed, DataSeed: fixDataSeed, Machine: exec.Research4(),
			Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 150,
		})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixPool
}

func splits(t testing.TB) (train, test []*dataset.Query) {
	pool := fixture(t)
	return pool.Queries[:fixTrainN], pool.Queries[fixTrainN:]
}

func metricVals(m exec.Metrics) []float64 {
	return []float64{m.ElapsedSec, m.RecordsAccessed, m.RecordsUsed,
		m.DiskIOs, m.MessageCount, m.MessageBytes}
}

func requests(qs []*dataset.Query) []core.Request {
	reqs := make([]core.Request, len(qs))
	for i, q := range qs {
		reqs[i] = core.Request{Query: q}
	}
	return reqs
}

// samePredictions asserts two result slices are bit-identical: same
// metrics, category, and confidence in every slot.
func samePredictions(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("result %d: error mismatch: got %v, want %v", i, g.Err, w.Err)
		}
		if g.Err != nil {
			continue
		}
		if g.Prediction.Metrics != w.Prediction.Metrics {
			t.Fatalf("result %d: metrics differ:\n got %+v\nwant %+v", i, g.Prediction.Metrics, w.Prediction.Metrics)
		}
		if g.Prediction.Category != w.Prediction.Category {
			t.Fatalf("result %d: category %v != %v", i, g.Prediction.Category, w.Prediction.Category)
		}
		if g.Prediction.Confidence != w.Prediction.Confidence {
			t.Fatalf("result %d: confidence %v != %v", i, g.Prediction.Confidence, w.Prediction.Confidence)
		}
	}
}

// TestConformance is the shared conformance suite every registered model
// kind must pass: train on a fixture workload, predict sane values for
// unseen planned queries, survive a save/load round trip bit-identically,
// and report a stable fingerprint that the round trip preserves.
func TestConformance(t *testing.T) {
	train, test := splits(t)
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := NewTrainer(kind, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if tr.Kind() != kind {
				t.Fatalf("trainer kind %q, want %q", tr.Kind(), kind)
			}
			m, err := tr.Train(train)
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind() != kind {
				t.Fatalf("model kind %q, want %q", m.Kind(), kind)
			}
			if m.N() <= 0 {
				t.Fatalf("model reports N=%d after training on %d queries", m.N(), len(train))
			}

			reqs := requests(test)
			res := m.Predict(reqs...)
			if len(res) != len(test) {
				t.Fatalf("got %d results for %d requests", len(res), len(test))
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("query %d: %v", i, r.Err)
				}
				p := r.Prediction
				if p == nil {
					t.Fatalf("query %d: nil prediction without error", i)
				}
				if !(p.Confidence > 0 && p.Confidence <= 1) {
					t.Errorf("query %d: confidence %v outside (0, 1]", i, p.Confidence)
				}
				for mi, v := range metricVals(p.Metrics) {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						t.Errorf("query %d metric %d: bad prediction %v", i, mi, v)
					}
				}
			}

			fp := m.Fingerprint()
			if m.Fingerprint() != fp {
				t.Fatal("fingerprint is not stable across calls")
			}

			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			m2, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if m2.Kind() != kind {
				t.Fatalf("loaded kind %q, want %q", m2.Kind(), kind)
			}
			if m2.N() != m.N() {
				t.Fatalf("loaded N=%d, want %d", m2.N(), m.N())
			}
			if m2.Fingerprint() != fp {
				t.Fatalf("fingerprint changed across save/load: %#x != %#x", m2.Fingerprint(), fp)
			}
			samePredictions(t, m2.Predict(reqs...), res)

			// A flipped payload byte must fail checksum validation, never
			// load a silently different model.
			corrupt := bytes.Clone(buf.Bytes())
			corrupt[len(corrupt)-1] ^= 0xff
			if _, err := Load(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadModelFile) {
				t.Fatalf("corrupted file: got %v, want ErrBadModelFile", err)
			}

			// Truncated container: the frame header promises more payload
			// than the file holds.
			if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
				t.Fatal("truncated file loaded without error")
			}
		})
	}
}

// TestTrainerDeterminism: the same window trains to the same fingerprint —
// what makes promoted-model bit-identity assertions meaningful.
func TestTrainerDeterminism(t *testing.T) {
	train, _ := splits(t)
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := NewTrainer(kind, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			a, err := tr.Train(train)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tr.Train(train)
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("two trainings of the same window disagree: %#x != %#x",
					a.Fingerprint(), b.Fingerprint())
			}
		})
	}
}

// TestFingerprintDistinguishesKinds: different kinds trained on the same
// window must not collide (kind is hashed in).
func TestFingerprintDistinguishesKinds(t *testing.T) {
	train, _ := splits(t)
	seen := map[uint64]string{}
	for _, kind := range Kinds() {
		tr, err := NewTrainer(kind, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		m, err := tr.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		fp := m.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("kinds %s and %s share fingerprint %#x", prev, kind, fp)
		}
		seen[fp] = kind
	}
}

// TestLoadLegacyFile: a pre-zoo model file (core.Predictor.Save's QPREDMDL
// framing) still loads, comes back as the KCCA kind, and predicts
// bit-identically to the predictor that wrote it.
func TestLoadLegacyFile(t *testing.T) {
	train, test := splits(t)
	p, err := core.Train(train, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	k, ok := m.(*KCCA)
	if !ok || m.Kind() != KindKCCA {
		t.Fatalf("legacy file loaded as %T (%s), want *KCCA", m, m.Kind())
	}
	if k.N() != p.N() {
		t.Fatalf("loaded N=%d, want %d", k.N(), p.N())
	}
	reqs := requests(test)
	samePredictions(t, m.Predict(reqs...), p.Predict(reqs...))
}

func TestUnknownKind(t *testing.T) {
	if _, err := NewTrainer("nope", core.DefaultOptions()); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

// TestPlanStructNeedsPlan: the plan-structured kinds fail cleanly on an
// unplanned query instead of panicking.
func TestPlanlessQueryFails(t *testing.T) {
	train, _ := splits(t)
	for _, kind := range []string{KindPlanStruct, KindOptCost} {
		tr, err := NewTrainer(kind, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		m, err := tr.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Predict(core.Request{Query: &dataset.Query{SQL: "SELECT 1"}})
		if res[0].Err == nil {
			t.Fatalf("%s: predicting an unplanned query succeeded", kind)
		}
	}
}
