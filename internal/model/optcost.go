package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/regress"
	"repro/internal/workload"
)

// OptCost is the calibrated optimizer-cost baseline (Kleerekoper et al.):
// each metric is regressed on the optimizer's scalar cost estimate in log
// space, log1p(metric) = a + b·log1p(cost). The paper's Fig. 17 shows raw
// optimizer cost correlates with runtime but in optimizer units; this
// learns the units conversion per metric. It is deliberately the weakest
// zoo member — two parameters per metric — and the cheapest to retrain,
// which is exactly what a champion/challenger loop needs as its floor.
type OptCost struct {
	// coef[m] = {intercept, slope} for metric m.
	coef   [exec.NumMetrics][2]float64
	n      int
	conf   float64
	fp     uint64
	fpOnce sync.Once
}

// Kind implements Model.
func (m *OptCost) Kind() string { return KindOptCost }

// N implements Model.
func (m *OptCost) N() int { return m.n }

// Predict implements Model. Requests must carry a planned query — the only
// input this kind reads is the plan's cost estimate.
func (m *OptCost) Predict(reqs ...core.Request) []core.Result {
	out := make([]core.Result, len(reqs))
	for i, r := range reqs {
		out[i].Prediction, out[i].Err = m.predictOne(r)
	}
	return out
}

func (m *OptCost) predictOne(r core.Request) (*core.Prediction, error) {
	if r.Query == nil {
		return nil, fmt.Errorf("model: optcost needs a planned query: %w", core.ErrNoPlan)
	}
	if r.Query.Plan == nil {
		return nil, core.ErrNoPlan
	}
	lc := math.Log1p(math.Max(r.Query.Plan.Cost, 0))
	var v [exec.NumMetrics]float64
	for mi := 0; mi < exec.NumMetrics; mi++ {
		v[mi] = clampMetric(math.Expm1(m.coef[mi][0] + m.coef[mi][1]*lc))
	}
	met := exec.MetricsFromVector(v[:])
	return &core.Prediction{
		Metrics:    met,
		Category:   workload.Categorize(met.ElapsedSec),
		Confidence: m.conf,
	}, nil
}

// optCostWire is the gob mirror of OptCost.
type optCostWire struct {
	N    int
	Coef [][2]float64
	Conf float64
}

// Save implements Model.
func (m *OptCost) Save(w io.Writer) error {
	wire := optCostWire{N: m.n, Conf: m.conf, Coef: m.coef[:]}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		return fmt.Errorf("model: encoding optcost: %w", err)
	}
	return saveEnvelope(w, KindOptCost, buf.Bytes())
}

func loadOptCost(payload []byte) (Model, error) {
	var wire optCostWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding optcost: %v", ErrBadModelFile, err)
	}
	if len(wire.Coef) != exec.NumMetrics {
		return nil, fmt.Errorf("%w: optcost has %d metric fits, want %d",
			ErrBadModelFile, len(wire.Coef), exec.NumMetrics)
	}
	m := &OptCost{n: wire.N, conf: wire.Conf}
	if m.n <= 0 {
		return nil, fmt.Errorf("%w: optcost trained on %d queries", ErrBadModelFile, m.n)
	}
	if !(m.conf > 0 && m.conf <= 1) {
		return nil, fmt.Errorf("%w: optcost confidence %v outside (0, 1]", ErrBadModelFile, m.conf)
	}
	for i, c := range wire.Coef {
		if math.IsNaN(c[0]) || math.IsInf(c[0], 0) || math.IsNaN(c[1]) || math.IsInf(c[1], 0) {
			return nil, fmt.Errorf("%w: optcost metric %d has a non-finite coefficient", ErrBadModelFile, i)
		}
		m.coef[i] = c
	}
	return m, nil
}

// Fingerprint implements Model.
func (m *OptCost) Fingerprint() uint64 {
	m.fpOnce.Do(func() {
		fp := newFingerprinter(KindOptCost)
		fp.addInt(m.n)
		for _, c := range m.coef {
			fp.addFloat(c[0])
			fp.addFloat(c[1])
		}
		m.fp = fp.sum()
	})
	return m.fp
}

// OptCostTrainer fits calibrated optimizer-cost models.
type OptCostTrainer struct{}

// Kind implements Trainer.
func (OptCostTrainer) Kind() string { return KindOptCost }

// Train implements Trainer.
func (OptCostTrainer) Train(qs []*dataset.Query) (Model, error) {
	planned := make([]*dataset.Query, 0, len(qs))
	for _, q := range qs {
		if q != nil && q.Plan != nil {
			planned = append(planned, q)
		}
	}
	if len(planned) < 5 {
		return nil, core.ErrTooFewQueries
	}
	x := linalg.NewMatrix(len(planned), 1)
	for i, q := range planned {
		x.Row(i)[0] = math.Log1p(math.Max(q.Plan.Cost, 0))
	}
	m := &OptCost{n: len(planned)}
	y := make([]float64, len(planned))
	for mi := 0; mi < exec.NumMetrics; mi++ {
		for i, q := range planned {
			y[i] = math.Log1p(math.Max(q.Metrics.Vector()[mi], 0))
		}
		fit, err := regress.Fit(x, y)
		if err != nil {
			return nil, fmt.Errorf("model: fitting optcost for %s: %w", exec.MetricNames[mi], err)
		}
		m.coef[mi] = [2]float64{fit.Intercept, fit.Coef[0]}
	}
	m.conf = trainingConfidence(m, planned)
	return m, nil
}
