package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/optimizer"
	"repro/internal/regress"
	"repro/internal/workload"
)

// The plan-structured predictor follows Marcus & Negi's QPPNet shape in
// miniature: one small learned unit per physical operator type, evaluated
// on that node's local features and composed bottom-up along the plan tree
// (a node's estimate is its own unit's output plus its children's). With
// linear units the tree fold is exact and trainable in closed form: a
// plan's total is the dot product of the concatenated per-op-type weight
// vector with per-op-type aggregated features, so least squares over the
// training plans fits every unit jointly. Targets are log1p(metric) —
// metrics span orders of magnitude and are nonnegative, and expm1 on the
// way out can never predict the negative elapsed times the paper ridicules
// linear regression for.

// psFeatures is the per-node local feature count: constant, log1p input
// cardinality, log1p output cardinality, log1p output volume (rows·width),
// broadcast flag, pairwise flag, log1p sort+group column count.
const psFeatures = 7

// psDims is the width of the concatenated design row: one unit per
// operator type, psFeatures weights each.
const psDims = optimizer.NumOpTypes * psFeatures

// nodeFeatures fills dst (length psFeatures) with one node's local
// features.
func nodeFeatures(n *optimizer.Node, dst []float64) {
	dst[0] = 1
	dst[1] = math.Log1p(n.EstRowsIn)
	dst[2] = math.Log1p(n.EstRows)
	dst[3] = math.Log1p(n.EstRows * float64(n.Width))
	dst[4] = 0
	if n.Broadcast {
		dst[4] = 1
	}
	dst[5] = 0
	if n.Pairwise {
		dst[5] = 1
	}
	dst[6] = math.Log1p(float64(n.SortCols + n.GroupCols))
}

// planDesignRow aggregates a plan's per-node features into one design row
// of psDims columns (features summed per operator type — exactly what the
// linear tree fold dots against).
func planDesignRow(p *optimizer.Plan, row []float64) {
	var f [psFeatures]float64
	p.Root.Walk(func(n *optimizer.Node) {
		op := int(n.Op)
		if op < 0 || op >= optimizer.NumOpTypes {
			return
		}
		nodeFeatures(n, f[:])
		base := op * psFeatures
		for j, v := range f {
			row[base+j] += v
		}
	})
}

// PlanStruct is a trained plan-structured per-operator model.
type PlanStruct struct {
	// units[m] holds the per-op-type unit weights for metric m,
	// concatenated in operator order (psFeatures weights per op type).
	units [exec.NumMetrics][]float64
	// intercepts[m] is the global intercept for metric m, applied once at
	// the plan root.
	intercepts [exec.NumMetrics]float64
	n          int
	// conf is the model-level confidence derived from training residuals
	// on elapsed time, in (0, 1].
	conf   float64
	fp     uint64
	fpOnce sync.Once
}

// Kind implements Model.
func (m *PlanStruct) Kind() string { return KindPlanStruct }

// N implements Model.
func (m *PlanStruct) N() int { return m.n }

// unitOut evaluates one node's learned unit for metric mi.
func (m *PlanStruct) unitOut(n *optimizer.Node, mi int) float64 {
	op := int(n.Op)
	if op < 0 || op >= optimizer.NumOpTypes {
		return 0
	}
	var f [psFeatures]float64
	nodeFeatures(n, f[:])
	w := m.units[mi][op*psFeatures : (op+1)*psFeatures]
	s := 0.0
	for j := range f {
		s += w[j] * f[j]
	}
	return s
}

// foldNode composes the tree bottom-up: a node's estimate is its unit's
// output plus the sum of its children's estimates.
func (m *PlanStruct) foldNode(n *optimizer.Node, mi int) float64 {
	s := m.unitOut(n, mi)
	for _, c := range n.Children {
		s += m.foldNode(c, mi)
	}
	return s
}

// Predict implements Model. Requests must carry a planned query — this
// kind predicts from plan structure, so a raw feature vector is not enough.
func (m *PlanStruct) Predict(reqs ...core.Request) []core.Result {
	out := make([]core.Result, len(reqs))
	for i, r := range reqs {
		out[i].Prediction, out[i].Err = m.predictOne(r)
	}
	return out
}

func (m *PlanStruct) predictOne(r core.Request) (*core.Prediction, error) {
	if r.Query == nil {
		return nil, fmt.Errorf("model: planstruct needs a planned query: %w", core.ErrNoPlan)
	}
	if r.Query.Plan == nil || r.Query.Plan.Root == nil {
		return nil, core.ErrNoPlan
	}
	var v [exec.NumMetrics]float64
	for mi := 0; mi < exec.NumMetrics; mi++ {
		v[mi] = clampMetric(math.Expm1(m.intercepts[mi] + m.foldNode(r.Query.Plan.Root, mi)))
	}
	met := exec.MetricsFromVector(v[:])
	return &core.Prediction{
		Metrics:    met,
		Category:   workload.Categorize(met.ElapsedSec),
		Confidence: m.conf,
	}, nil
}

// clampMetric guards the expm1 output: metrics are nonnegative and finite.
func clampMetric(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if math.IsInf(v, 1) || v > math.MaxFloat64/2 {
		return math.MaxFloat64 / 2
	}
	return v
}

// planStructWire is the gob mirror of PlanStruct (slices only — no maps, so
// encoding is deterministic).
type planStructWire struct {
	N          int
	Units      [][]float64
	Intercepts []float64
	Conf       float64
}

// Save implements Model.
func (m *PlanStruct) Save(w io.Writer) error {
	wire := planStructWire{N: m.n, Conf: m.conf, Intercepts: m.intercepts[:]}
	wire.Units = make([][]float64, exec.NumMetrics)
	for i := range m.units {
		wire.Units[i] = m.units[i]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		return fmt.Errorf("model: encoding planstruct: %w", err)
	}
	return saveEnvelope(w, KindPlanStruct, buf.Bytes())
}

func loadPlanStruct(payload []byte) (Model, error) {
	var wire planStructWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding planstruct: %v", ErrBadModelFile, err)
	}
	if len(wire.Units) != exec.NumMetrics || len(wire.Intercepts) != exec.NumMetrics {
		return nil, fmt.Errorf("%w: planstruct has %d metric units and %d intercepts, want %d",
			ErrBadModelFile, len(wire.Units), len(wire.Intercepts), exec.NumMetrics)
	}
	m := &PlanStruct{n: wire.N, conf: wire.Conf}
	if m.n <= 0 {
		return nil, fmt.Errorf("%w: planstruct trained on %d queries", ErrBadModelFile, m.n)
	}
	if !(m.conf > 0 && m.conf <= 1) {
		return nil, fmt.Errorf("%w: planstruct confidence %v outside (0, 1]", ErrBadModelFile, m.conf)
	}
	for i := range m.units {
		if len(wire.Units[i]) != psDims {
			return nil, fmt.Errorf("%w: planstruct unit vector %d has %d weights, want %d",
				ErrBadModelFile, i, len(wire.Units[i]), psDims)
		}
		for _, v := range wire.Units[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: planstruct unit vector %d has a non-finite weight", ErrBadModelFile, i)
			}
		}
		m.units[i] = wire.Units[i]
	}
	copy(m.intercepts[:], wire.Intercepts)
	return m, nil
}

// Fingerprint implements Model.
func (m *PlanStruct) Fingerprint() uint64 {
	m.fpOnce.Do(func() {
		fp := newFingerprinter(KindPlanStruct)
		fp.addInt(m.n)
		for i := range m.units {
			fp.addFloat(m.intercepts[i])
			fp.addFloats(m.units[i])
		}
		m.fp = fp.sum()
	})
	return m.fp
}

// PlanStructTrainer fits plan-structured models.
type PlanStructTrainer struct{}

// Kind implements Trainer.
func (PlanStructTrainer) Kind() string { return KindPlanStruct }

// Train implements Trainer: least squares of log1p(metric) on the per-plan
// aggregated per-op-type features (the linear tree fold in matrix form).
// linalg.LeastSquares falls back to a tiny ridge for rank-deficient
// designs, so small windows that don't exercise every operator type still
// train.
func (PlanStructTrainer) Train(qs []*dataset.Query) (Model, error) {
	planned := make([]*dataset.Query, 0, len(qs))
	for _, q := range qs {
		if q != nil && q.Plan != nil && q.Plan.Root != nil {
			planned = append(planned, q)
		}
	}
	if len(planned) < 5 {
		return nil, core.ErrTooFewQueries
	}
	x := linalg.NewMatrix(len(planned), psDims)
	y := linalg.NewMatrix(len(planned), exec.NumMetrics)
	for i, q := range planned {
		planDesignRow(q.Plan, x.Row(i))
		mv := q.Metrics.Vector()
		yr := y.Row(i)
		for j, v := range mv {
			yr[j] = math.Log1p(math.Max(v, 0))
		}
	}
	mm, err := regress.FitMulti(x, y)
	if err != nil {
		return nil, fmt.Errorf("model: fitting planstruct units: %w", err)
	}
	m := &PlanStruct{n: len(planned)}
	for mi := 0; mi < exec.NumMetrics; mi++ {
		m.intercepts[mi] = mm.Models[mi].Intercept
		m.units[mi] = mm.Models[mi].Coef
	}
	m.conf = trainingConfidence(m, planned)
	return m, nil
}

// trainingConfidence maps the model's mean relative error on training
// elapsed time to (0, 1] — crude, deterministic, and honest about fit
// quality; challengers with poor in-sample fit announce it.
func trainingConfidence(m Model, qs []*dataset.Query) float64 {
	reqs := make([]core.Request, len(qs))
	for i, q := range qs {
		reqs[i] = core.Request{Query: q}
	}
	var pred, act []float64
	for i, res := range m.Predict(reqs...) {
		if res.Err != nil || res.Prediction == nil {
			continue
		}
		pred = append(pred, res.Prediction.Metrics.ElapsedSec)
		act = append(act, qs[i].Metrics.ElapsedSec)
	}
	if len(pred) == 0 {
		return 0.5
	}
	c := 1 / (1 + eval.MeanRelativeError(pred, act))
	if !(c > 0) {
		c = 1e-3
	}
	if c > 1 {
		c = 1
	}
	return c
}
