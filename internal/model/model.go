// Package model defines the serving tier's model abstraction: a
// Model/Trainer interface pair that every predictor kind satisfies, so any
// kind can occupy a generation slot in the hot-swap machinery. Three kinds
// ship today:
//
//   - "kcca"       — the paper's KCCA + kNN pipeline (wraps core.Predictor)
//   - "planstruct" — a plan-structured per-operator predictor in the style
//     of Marcus & Negi: one small learned unit per optimizer plan-node
//     type, composed bottom-up along the plan tree
//   - "optcost"    — calibrated optimizer-cost regression in the style of
//     Kleerekoper et al.: each metric regressed on the scalar plan cost
//
// Saved models share one self-describing container (magic "QPREDZOO",
// versioned, CRC-checked) that records the kind, so Load dispatches to the
// right decoder without the caller knowing what was saved. Pre-zoo KCCA
// model files (magic "QPREDMDL") load transparently as the "kcca" kind.
package model

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Model is a trained predictor of any kind. Implementations are immutable
// after training, so a Model may serve concurrent Predict calls with no
// locking — the property the atomic hot-swap slots rely on.
type Model interface {
	// Kind identifies the model family ("kcca", "planstruct", "optcost").
	Kind() string
	// N is the number of training observations the model was fitted on.
	N() int
	// Predict evaluates every request and returns one Result per request,
	// positionally. A failed request carries its error in its own Result.
	Predict(reqs ...core.Request) []core.Result
	// Save writes the model in the self-describing zoo container; Load
	// reverses it for any kind.
	Save(w io.Writer) error
	// Fingerprint is a stable hash of the model's learned parameters —
	// stable across Save/Load round trips and across processes (it hashes
	// canonical parameter bits, never encoder output, because gob map
	// encoding is nondeterministic). Two models with equal fingerprints
	// make identical predictions.
	Fingerprint() uint64
}

// Trainer fits a Model of one kind from labeled queries.
type Trainer interface {
	// Kind is the kind of Model this trainer produces.
	Kind() string
	// Train fits a model on the queries. Implementations must not retain
	// the slice.
	Train(qs []*dataset.Query) (Model, error)
}

// Registered kind names.
const (
	KindKCCA       = "kcca"
	KindPlanStruct = "planstruct"
	KindOptCost    = "optcost"
)

// ErrUnknownKind marks a kind name with no registered trainer or loader.
// Matched with errors.Is.
var ErrUnknownKind = errors.New("model: unknown model kind")

// NewTrainer returns the trainer for a kind. The core options parameterize
// the KCCA pipeline; the other kinds take their (few) knobs from defaults.
func NewTrainer(kind string, opt core.Options) (Trainer, error) {
	switch kind {
	case KindKCCA:
		return &KCCATrainer{Opt: opt}, nil
	case KindPlanStruct:
		return &PlanStructTrainer{}, nil
	case KindOptCost:
		return &OptCostTrainer{}, nil
	default:
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownKind, kind, Kinds())
	}
}

// Kinds lists every registered model kind, sorted.
func Kinds() []string {
	out := []string{KindKCCA, KindPlanStruct, KindOptCost}
	sort.Strings(out)
	return out
}

// Zoo model files use the same container discipline as core model files
// (magic, version, length, CRC-32C, then payload) with their own magic, and
// the payload is a kind-tagged envelope so Load can dispatch.
const (
	zooMagic = "QPREDZOO"
	// FormatVersion is the zoo container format. Bump on any incompatible
	// wire change.
	FormatVersion = 1
	// frameHeaderLen: magic + uint32 version + uint64 length + uint32 CRC —
	// deliberately identical layout to core's model frame.
	frameHeaderLen = 8 + 4 + 8 + 4
	maxPayload     = 1 << 30
)

// ErrBadModelFile marks a zoo model file that failed container validation.
// Matched with errors.Is.
var ErrBadModelFile = errors.New("model: invalid model file")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// envelope is the kind-tagged payload inside the zoo frame.
type envelope struct {
	Kind    string
	Payload []byte
}

// saveEnvelope frames a kind-tagged payload into w.
func saveEnvelope(w io.Writer, kind string, payload []byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Kind: kind, Payload: payload}); err != nil {
		return fmt.Errorf("model: encoding %s envelope: %w", kind, err)
	}
	body := buf.Bytes()
	hdr := make([]byte, frameHeaderLen)
	copy(hdr, zooMagic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(body, crcTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("model: writing header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("model: writing payload: %w", err)
	}
	return nil
}

// Load reads any saved model — zoo-framed files of every kind, plus legacy
// core KCCA files ("QPREDMDL"), which load as the "kcca" kind so model
// files written before the zoo keep working.
func Load(r io.Reader) (Model, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadModelFile, err)
	}
	if string(hdr[:8]) != zooMagic {
		// Not a zoo file: hand the bytes (header included) to the core
		// loader, which validates its own magic and reports its own errors.
		p, err := core.Load(io.MultiReader(bytes.NewReader(hdr), r))
		if err != nil {
			return nil, err
		}
		return WrapKCCA(p), nil
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d",
			ErrBadModelFile, version, FormatVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[12:])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d limit",
			ErrBadModelFile, length, maxPayload)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrBadModelFile, err)
	}
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[20:]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadModelFile)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: decoding envelope: %v", ErrBadModelFile, err)
	}
	switch env.Kind {
	case KindKCCA:
		p, err := core.Load(bytes.NewReader(env.Payload))
		if err != nil {
			return nil, err
		}
		return WrapKCCA(p), nil
	case KindPlanStruct:
		return loadPlanStruct(env.Payload)
	case KindOptCost:
		return loadOptCost(env.Payload)
	default:
		return nil, fmt.Errorf("%w: %q in model file", ErrUnknownKind, env.Kind)
	}
}

// fingerprinter accumulates an FNV-1a hash over canonical parameter bits.
// float64s hash by IEEE bit pattern with NaNs normalized, so fingerprints
// are stable across processes and save/load round trips.
type fingerprinter struct {
	h interface {
		io.Writer
		Sum64() uint64
	}
	buf [8]byte
}

func newFingerprinter(kind string) *fingerprinter {
	fp := &fingerprinter{h: fnv.New64a()}
	io.WriteString(fp.h, kind)
	return fp
}

func (fp *fingerprinter) addUint64(v uint64) {
	binary.LittleEndian.PutUint64(fp.buf[:], v)
	fp.h.Write(fp.buf[:])
}

func (fp *fingerprinter) addInt(v int) { fp.addUint64(uint64(int64(v))) }

func (fp *fingerprinter) addFloat(v float64) {
	if math.IsNaN(v) {
		v = math.NaN() // canonical NaN bit pattern
	}
	fp.addUint64(math.Float64bits(v))
}

func (fp *fingerprinter) addFloats(vs []float64) {
	fp.addInt(len(vs))
	for _, v := range vs {
		fp.addFloat(v)
	}
}

func (fp *fingerprinter) sum() uint64 { return fp.h.Sum64() }
