package model

import (
	"testing"

	"repro/internal/workload"
)

// score feeds n observations with a fixed relative error into one
// (kind, category) cell: actual 10s, predicted 10·(1+relErr).
func score(b *Scoreboard, kind string, cat workload.Category, relErr float64, n int) {
	for i := 0; i < n; i++ {
		b.Record(kind, cat, 10*(1+relErr), 10)
	}
}

func testPolicy() PromotionPolicy {
	return PromotionPolicy{Window: 32, MinSamples: 5, Margin: 0.05, Hysteresis: 3, Cooldown: 10}
}

// TestPromotionHysteresis: a dominant challenger is promoted only after
// Hysteresis consecutive dominant ticks — not on the first.
func TestPromotionHysteresis(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.50, 8)
	score(b, "chal", workload.Feather, 0.10, 8)
	for tick := 1; tick <= 2; tick++ {
		if kind, ok := b.Tick("champ"); ok {
			t.Fatalf("tick %d: promoted %q before hysteresis threshold", tick, kind)
		}
	}
	kind, ok := b.Tick("champ")
	if !ok || kind != "chal" {
		t.Fatalf("tick 3: got (%q, %v), want (chal, true)", kind, ok)
	}
	if b.Promotions() != 1 {
		t.Fatalf("promotions %d, want 1", b.Promotions())
	}
}

// TestPromotionStreakResets: an interrupted dominance streak starts over —
// two dominant ticks, one non-dominant, then two more must not promote with
// hysteresis 3.
func TestPromotionStreakResets(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.50, 8)
	score(b, "chal", workload.Feather, 0.10, 8)
	b.Tick("champ")
	b.Tick("champ") // streak 2
	// Flood the challenger's ring with bad scores: no longer dominant.
	score(b, "chal", workload.Feather, 0.90, 32)
	if _, ok := b.Tick("champ"); ok {
		t.Fatal("non-dominant challenger promoted")
	}
	// Dominant again: the earlier streak must not be remembered.
	score(b, "chal", workload.Feather, 0.10, 32)
	b.Tick("champ")
	if kind, ok := b.Tick("champ"); ok {
		t.Fatalf("promoted %q on a 2-tick streak after a reset", kind)
	}
	if kind, ok := b.Tick("champ"); !ok || kind != "chal" {
		t.Fatalf("got (%q, %v) after rebuilt streak, want (chal, true)", kind, ok)
	}
}

// TestPromotionCooldownPreventsFlapping: after a promotion, the loser —
// however dominant against the new champion — cannot promote back until the
// cooldown expires. Near-equal models therefore swap at most once per
// cooldown period instead of flapping every tick.
func TestPromotionCooldownPreventsFlapping(t *testing.T) {
	p := testPolicy()
	b := NewScoreboard(p)
	score(b, "a", workload.Feather, 0.50, 8)
	score(b, "b", workload.Feather, 0.10, 8)
	for i := 0; i < p.Hysteresis; i++ {
		b.Tick("a")
	}
	if b.Promotions() != 1 {
		t.Fatalf("promotions %d, want 1 (b promoted)", b.Promotions())
	}
	// Roles reverse: "a" now dominates the new champion "b" on every tick.
	score(b, "a", workload.Feather, 0.01, 32)
	score(b, "b", workload.Feather, 0.60, 32)
	for i := 0; i < p.Cooldown; i++ {
		if kind, ok := b.Tick("b"); ok {
			t.Fatalf("cooldown tick %d: promoted %q", i, kind)
		}
	}
	// Cooldown spent; hysteresis still applies before the swap back.
	for i := 0; i < p.Hysteresis-1; i++ {
		if kind, ok := b.Tick("b"); ok {
			t.Fatalf("post-cooldown tick %d: promoted %q before hysteresis", i, kind)
		}
	}
	if kind, ok := b.Tick("b"); !ok || kind != "a" {
		t.Fatalf("got (%q, %v), want (a, true)", kind, ok)
	}
	if b.Promotions() != 2 {
		t.Fatalf("promotions %d, want 2", b.Promotions())
	}
}

// TestChallengerWorseEverywhereNeverPromotes: a challenger that is worse in
// every comparable category never accumulates a streak, however many ticks
// pass.
func TestChallengerWorseEverywhereNeverPromotes(t *testing.T) {
	b := NewScoreboard(testPolicy())
	for _, cat := range []workload.Category{workload.Feather, workload.GolfBall} {
		score(b, "champ", cat, 0.10, 8)
		score(b, "chal", cat, 0.50, 8)
	}
	for i := 0; i < 500; i++ {
		if kind, ok := b.Tick("champ"); ok {
			t.Fatalf("tick %d: promoted worse-everywhere challenger %q", i, kind)
		}
	}
	if b.Promotions() != 0 {
		t.Fatalf("promotions %d, want 0", b.Promotions())
	}
}

// TestMixedCategoriesBlockPromotion: dominance must hold in EVERY
// comparable category — much better in one but worse in another blocks.
func TestMixedCategoriesBlockPromotion(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.40, 8)
	score(b, "chal", workload.Feather, 0.05, 8) // far better here
	score(b, "champ", workload.GolfBall, 0.10, 8)
	score(b, "chal", workload.GolfBall, 0.30, 8) // worse here
	for i := 0; i < 50; i++ {
		if kind, ok := b.Tick("champ"); ok {
			t.Fatalf("promoted %q despite a worse category", kind)
		}
	}
}

// TestInsufficientSamplesBlockPromotion: below the MinSamples floor no
// category is comparable, so nothing promotes no matter the scores.
func TestInsufficientSamplesBlockPromotion(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.50, 4) // floor is 5
	score(b, "chal", workload.Feather, 0.01, 4)
	for i := 0; i < 50; i++ {
		if kind, ok := b.Tick("champ"); ok {
			t.Fatalf("promoted %q on insufficient samples", kind)
		}
	}
}

// TestMarginBlocksMarginalImprovement: a challenger inside the margin (2%
// better with a 5% margin) must not promote.
func TestMarginBlocksMarginalImprovement(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.100, 8)
	score(b, "chal", workload.Feather, 0.098, 8)
	for i := 0; i < 50; i++ {
		if kind, ok := b.Tick("champ"); ok {
			t.Fatalf("promoted %q on a sub-margin improvement", kind)
		}
	}
}

// TestBestOfMultipleChallengers: when several challengers clear hysteresis
// on the same tick, the lowest mean relative error wins.
func TestBestOfMultipleChallengers(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "champ", workload.Feather, 0.50, 8)
	score(b, "better", workload.Feather, 0.20, 8)
	score(b, "best", workload.Feather, 0.05, 8)
	var promoted string
	for i := 0; i < 10; i++ {
		if kind, ok := b.Tick("champ"); ok {
			promoted = kind
			break
		}
	}
	if promoted != "best" {
		t.Fatalf("promoted %q, want best", promoted)
	}
}

// TestSnapshotShape: the snapshot lists kinds sorted, omits empty
// categories, and reports ring-windowed sample counts.
func TestSnapshotShape(t *testing.T) {
	b := NewScoreboard(testPolicy())
	score(b, "zeta", workload.Feather, 0.1, 3)
	score(b, "alpha", workload.GolfBall, 0.2, 40) // overflows the 32-ring
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].Kind != "alpha" || snap[1].Kind != "zeta" {
		t.Fatalf("snapshot kinds wrong: %+v", snap)
	}
	if len(snap[0].Categories) != 1 || snap[0].Categories[0].Samples != 32 {
		t.Fatalf("alpha categories wrong: %+v", snap[0].Categories)
	}
	if snap[0].Categories[0].Category != workload.GolfBall {
		t.Fatalf("alpha category %v, want golf ball", snap[0].Categories[0].Category)
	}
}
