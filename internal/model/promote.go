package model

import (
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/workload"
)

// PromotionPolicy decides when a shadow challenger replaces the champion:
// windowed relative-error dominance with hysteresis. A challenger is
// dominant on a decision tick when, in every workload category where both
// it and the champion have at least MinSamples scored observations (and
// there is at least one such category), its windowed mean relative error on
// elapsed time beats the champion's by at least Margin. Promotion requires
// Hysteresis consecutive dominant ticks (so a lucky window can't flip the
// champion), and after a promotion no further promotion is considered for
// Cooldown ticks (so two near-equal models can't flap).
type PromotionPolicy struct {
	// Window is the per-(kind, category) score ring size.
	Window int
	// MinSamples is the per-category sample floor below which a category
	// is not comparable.
	MinSamples int
	// Margin is the required relative improvement: challenger mean ≤
	// (1 − Margin) · champion mean in every comparable category.
	Margin float64
	// Hysteresis is the number of consecutive dominant decision ticks
	// required before promoting.
	Hysteresis int
	// Cooldown is the number of decision ticks to ignore after a
	// promotion.
	Cooldown int
}

// DefaultPromotionPolicy returns the serving default: 256-deep windows,
// 20-sample comparability floor, 5% margin, 3-tick hysteresis, 200-tick
// cooldown.
func DefaultPromotionPolicy() PromotionPolicy {
	return PromotionPolicy{Window: 256, MinSamples: 20, Margin: 0.05, Hysteresis: 3, Cooldown: 200}
}

// withDefaults fills zero fields so a partially-specified policy behaves.
func (p PromotionPolicy) withDefaults() PromotionPolicy {
	d := DefaultPromotionPolicy()
	if p.Window <= 0 {
		p.Window = d.Window
	}
	if p.MinSamples <= 0 {
		p.MinSamples = d.MinSamples
	}
	if p.Margin < 0 {
		p.Margin = d.Margin
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = d.Hysteresis
	}
	if p.Cooldown < 0 {
		p.Cooldown = d.Cooldown
	}
	return p
}

// scoreRing is a fixed-size ring of (pred, act) elapsed-time pairs.
type scoreRing struct {
	pred, act []float64
	n, next   int
}

func newScoreRing(capacity int) *scoreRing {
	return &scoreRing{pred: make([]float64, capacity), act: make([]float64, capacity)}
}

func (r *scoreRing) push(pred, act float64) {
	r.pred[r.next] = pred
	r.act[r.next] = act
	r.next = (r.next + 1) % len(r.pred)
	if r.n < len(r.pred) {
		r.n++
	}
}

// series returns the live (pred, act) slices in ring order (order is
// irrelevant to the statistics computed on them).
func (r *scoreRing) series() (pred, act []float64) {
	return r.pred[:r.n], r.act[:r.n]
}

// Scoreboard accumulates shadow scores per (model kind, workload category)
// and applies a PromotionPolicy. Safe for concurrent use.
type Scoreboard struct {
	mu         sync.Mutex
	policy     PromotionPolicy
	rings      map[string][]*scoreRing // kind → per-category ring
	streak     map[string]int
	cooldown   int
	promotions int64
}

// NewScoreboard builds a scoreboard with the given policy (zero fields take
// defaults).
func NewScoreboard(policy PromotionPolicy) *Scoreboard {
	return &Scoreboard{
		policy: policy.withDefaults(),
		rings:  map[string][]*scoreRing{},
		streak: map[string]int{},
	}
}

// Policy returns the effective (default-filled) policy.
func (b *Scoreboard) Policy() PromotionPolicy { return b.policy }

// Record scores one observation for one model kind: the predicted and
// actual elapsed time, bucketed by the actual category. The observation's
// category comes from the measured runtime so champion and challengers are
// bucketed identically.
func (b *Scoreboard) Record(kind string, cat workload.Category, predElapsed, actElapsed float64) {
	if cat < 0 || int(cat) >= workload.NumCategories {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	rs := b.rings[kind]
	if rs == nil {
		rs = make([]*scoreRing, workload.NumCategories)
		for i := range rs {
			rs[i] = newScoreRing(b.policy.Window)
		}
		b.rings[kind] = rs
	}
	rs[cat].push(predElapsed, actElapsed)
}

// Promotions returns how many promotions this scoreboard has issued.
func (b *Scoreboard) Promotions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.promotions
}

// Tick runs one promotion decision against the current champion kind and
// returns the challenger to promote, if any. Call it once per scored
// observation (ticks are the policy's clock).
func (b *Scoreboard) Tick(champion string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cooldown > 0 {
		b.cooldown--
		return "", false
	}
	champ := b.rings[champion]
	type candidate struct {
		kind string
		mean float64
	}
	var ready []candidate
	// Deterministic iteration: sorted kinds, so equal scoreboards always
	// make the same decision.
	kinds := make([]string, 0, len(b.rings))
	for k := range b.rings {
		if k != champion {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		mean, dominant := b.dominates(b.rings[kind], champ)
		if !dominant {
			b.streak[kind] = 0
			continue
		}
		b.streak[kind]++
		if b.streak[kind] >= b.policy.Hysteresis {
			ready = append(ready, candidate{kind, mean})
		}
	}
	if len(ready) == 0 {
		return "", false
	}
	best := ready[0]
	for _, c := range ready[1:] {
		if c.mean < best.mean {
			best = c
		}
	}
	b.promotions++
	b.cooldown = b.policy.Cooldown
	for k := range b.streak {
		b.streak[k] = 0
	}
	return best.kind, true
}

// dominates reports whether the challenger beats the champion by the margin
// in every comparable category, and returns the challenger's overall mean
// relative error across comparable categories (for tie-breaking).
func (b *Scoreboard) dominates(chal, champ []*scoreRing) (mean float64, ok bool) {
	if chal == nil || champ == nil {
		return 0, false
	}
	comparable := 0
	var sum float64
	var n int
	for c := 0; c < workload.NumCategories; c++ {
		if chal[c].n < b.policy.MinSamples || champ[c].n < b.policy.MinSamples {
			continue
		}
		comparable++
		cp, ca := chal[c].series()
		chalErr := eval.MeanRelativeError(cp, ca)
		pp, pa := champ[c].series()
		champErr := eval.MeanRelativeError(pp, pa)
		if !(chalErr <= (1-b.policy.Margin)*champErr) {
			return 0, false
		}
		sum += chalErr * float64(chal[c].n)
		n += chal[c].n
	}
	if comparable == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// KindScore is one model kind's shadow-scoring summary.
type KindScore struct {
	Kind       string
	Streak     int
	Categories []CategoryScore
}

// CategoryScore is one (kind, category) cell: windowed sample count, mean
// relative error on elapsed time, and the paper's within-20% rate.
type CategoryScore struct {
	Category   workload.Category
	Samples    int
	MeanRelErr float64
	Within20   float64
}

// Snapshot returns the current per-kind, per-category scores, sorted by
// kind. Categories with no samples are omitted.
func (b *Scoreboard) Snapshot() []KindScore {
	b.mu.Lock()
	defer b.mu.Unlock()
	kinds := make([]string, 0, len(b.rings))
	for k := range b.rings {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]KindScore, 0, len(kinds))
	for _, kind := range kinds {
		ks := KindScore{Kind: kind, Streak: b.streak[kind]}
		for c := 0; c < workload.NumCategories; c++ {
			r := b.rings[kind][c]
			if r.n == 0 {
				continue
			}
			pred, act := r.series()
			ks.Categories = append(ks.Categories, CategoryScore{
				Category:   workload.Category(c),
				Samples:    r.n,
				MeanRelErr: eval.MeanRelativeError(pred, act),
				Within20:   eval.WithinFactor(pred, act, 0.2),
			})
		}
		out = append(out, ks)
	}
	return out
}
