package model

import (
	"bytes"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/wal"
	"repro/internal/workload"
)

// TestKCCAAdapterEquivalence: the KCCA adapter is a pass-through — every
// prediction through the Model interface is bit-identical to the wrapped
// core.Predictor's own answer, and a save/load round trip through the zoo
// container preserves that.
func TestKCCAAdapterEquivalence(t *testing.T) {
	train, test := splits(t)
	p, err := core.Train(train, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := WrapKCCA(p)
	if m.Predictor() != p {
		t.Fatal("adapter does not expose the wrapped predictor")
	}
	reqs := requests(test)
	direct := p.Predict(reqs...)
	samePredictions(t, m.Predict(reqs...), direct)

	// Per-query entrypoint agrees too (same code path, asserted anyway —
	// it is what the CLI serves).
	for i, q := range test {
		pred, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if direct[i].Prediction.Metrics != pred.Metrics {
			t.Fatalf("query %d: batch and single-query predictions differ", i)
		}
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	samePredictions(t, m2.Predict(reqs...), direct)
	if m2.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint changed across save/load: %#x != %#x", m2.Fingerprint(), m.Fingerprint())
	}
}

// TestKCCAIncrementalRetrainEquivalence: after a sliding window's
// incremental retrains, wrapping the current predictor and round-tripping
// it through the zoo container still predicts bit-identically to the live
// predictor — the invariant the observe loop's hot swap depends on.
func TestKCCAIncrementalRetrainEquivalence(t *testing.T) {
	pool := fixture(t)
	sl, err := core.NewSliding(60, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range pool.Queries[:80] {
		if err := sl.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if sl.Retrains() < 2 {
		t.Fatalf("fixture produced only %d retrains, need incremental coverage", sl.Retrains())
	}
	cur := sl.Current()
	test := pool.Queries[110:]
	reqs := requests(test)
	direct := cur.Predict(reqs...)

	m := WrapKCCA(cur)
	samePredictions(t, m.Predict(reqs...), direct)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	samePredictions(t, m2.Predict(reqs...), direct)
}

// testPlanFunc re-plans SQL exactly the way the serving layer does for WAL
// replay (plans are pure functions of SQL, schema, data seed, and planner
// config, so this reproduces the fixture's plans).
func testPlanFunc(t testing.TB) core.PlanFunc {
	t.Helper()
	schema := catalog.TPCDS(1)
	cfg := optimizer.DefaultConfig(exec.Research4().Processors)
	return func(sql string) (*dataset.Query, error) {
		ast, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		plan, err := optimizer.BuildPlan(ast, schema, fixDataSeed, cfg)
		if err != nil {
			return nil, err
		}
		return &dataset.Query{SQL: sql, AST: ast, Plan: plan}, nil
	}
}

// TestKCCASnapshotRestoreEquivalence: a predictor restored from a durable
// snapshot serves bit-identical predictions to the one that wrote the
// snapshot, through the Model interface on both sides.
func TestKCCASnapshotRestoreEquivalence(t *testing.T) {
	pool := fixture(t)
	dir := t.TempDir()
	plan := testPlanFunc(t)
	st, err := wal.OpenStore(wal.StoreOptions{Dir: dir, Policy: wal.SyncNone, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	sl, gen, err := st.Recover(60, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("fresh store recovered generation %d", gen)
	}
	var liveGen int64
	for _, src := range pool.Queries[:30] {
		q, err := plan(src.SQL)
		if err != nil {
			t.Fatal(err)
		}
		q.Metrics = src.Metrics
		q.Category = workload.Categorize(q.Metrics.ElapsedSec)
		seq, err := st.Append(q.SQL, q.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		before := sl.Retrains()
		if err := sl.Observe(q); err != nil {
			t.Fatal(err)
		}
		if sl.Retrains() != before {
			liveGen++
		}
		st.Applied(seq)
	}
	if !sl.Ready() {
		t.Fatal("sliding predictor not ready after 30 observations")
	}
	live := WrapKCCA(sl.Current())
	test := pool.Queries[110:]
	reqs := requests(test)
	want := live.Predict(reqs...)

	if err := st.Close(sl, liveGen); err != nil {
		t.Fatal(err)
	}

	st2, err := wal.OpenStore(wal.StoreOptions{Dir: dir, Policy: wal.SyncNone, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	sl2, gen2, err := st2.Recover(60, 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close(sl2, gen2)
	if gen2 != liveGen {
		t.Fatalf("recovered generation %d, want %d", gen2, liveGen)
	}
	restored := WrapKCCA(sl2.Current())
	samePredictions(t, restored.Predict(reqs...), want)
}
