// Package driver implements the paper's workload-management use case
// (Sec. I: "Should we run this query? If so, when? How long do we wait for
// it to complete before deciding that something went wrong?") as a small
// admission-control framework plus a queueing simulator.
//
// A Policy inspects an arriving query — for the predictive policy, only
// its pre-execution prediction — and routes it to the interactive queue,
// the batch queue, or rejection, together with a kill timeout. The
// simulator then runs the arrival stream through two FIFO queues and
// reports latency, throughput, and the work wasted by kills.
package driver

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Decision routes one arriving query.
type Decision int

const (
	// Interactive admits the query to the latency-sensitive queue.
	Interactive Decision = iota
	// Batch defers the query to the throughput queue.
	Batch
	// Reject refuses the query outright.
	Reject
)

func (d Decision) String() string {
	switch d {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Policy decides, before execution, where a query runs and how long to
// wait before killing it (0 = no kill timeout).
type Policy interface {
	Name() string
	Decide(q *dataset.Query) (Decision, float64)
}

// BlindPolicy admits everything to the interactive queue with one fixed
// kill timeout — the no-prediction baseline.
type BlindPolicy struct {
	// KillAfterSec is the fixed timeout (0 disables kills).
	KillAfterSec float64
}

func (p BlindPolicy) Name() string { return "blind" }

// Decide implements Policy.
func (p BlindPolicy) Decide(*dataset.Query) (Decision, float64) {
	return Interactive, p.KillAfterSec
}

// OraclePolicy routes on the query's true elapsed time — the unreachable
// upper bound.
type OraclePolicy struct {
	InteractiveLimitSec float64
	// RejectBeyondSec rejects queries longer than this (0 disables).
	RejectBeyondSec float64
}

func (p OraclePolicy) Name() string { return "oracle" }

// Decide implements Policy.
func (p OraclePolicy) Decide(q *dataset.Query) (Decision, float64) {
	actual := q.Metrics.ElapsedSec
	if p.RejectBeyondSec > 0 && actual > p.RejectBeyondSec {
		return Reject, 0
	}
	if actual <= p.InteractiveLimitSec {
		return Interactive, 0
	}
	return Batch, 0
}

// PredictivePolicy routes on the KCCA prediction: queries predicted to
// exceed the interactive limit go to the batch queue; queries predicted
// beyond RejectBeyondSec (or whose prediction confidence is below
// MinConfidence) are handled conservatively; each admitted query gets a
// kill timeout of Headroom times its own prediction.
type PredictivePolicy struct {
	Predictor           *core.Predictor
	InteractiveLimitSec float64
	// Headroom multiplies the prediction into a kill timeout.
	Headroom float64
	// MinTimeoutSec floors the kill timeout.
	MinTimeoutSec float64
	// RejectBeyondSec rejects queries predicted longer than this
	// (0 disables rejection).
	RejectBeyondSec float64
	// MinConfidence sends low-confidence predictions to the batch queue
	// regardless of their predicted time (anomalous queries should not
	// hold an interactive slot on an untrusted promise).
	MinConfidence float64
}

func (p PredictivePolicy) Name() string { return "predictive" }

// Decide implements Policy.
func (p PredictivePolicy) Decide(q *dataset.Query) (Decision, float64) {
	pred, err := p.Predictor.PredictQuery(q)
	if err != nil {
		// Unpredictable queries are handled conservatively.
		return Batch, 0
	}
	predicted := pred.Metrics.ElapsedSec
	if p.RejectBeyondSec > 0 && predicted > p.RejectBeyondSec {
		return Reject, 0
	}
	if pred.Confidence < p.MinConfidence {
		return Batch, 0
	}
	if predicted > p.InteractiveLimitSec {
		return Batch, 0
	}
	timeout := p.Headroom * predicted
	if timeout < p.MinTimeoutSec {
		timeout = p.MinTimeoutSec
	}
	return Interactive, timeout
}

// Outcome summarizes a simulated run of one policy over a stream.
type Outcome struct {
	Policy string

	Interactive int
	Batch       int
	Rejected    int
	Killed      int

	// WastedSec is work discarded by kills.
	WastedSec float64
	// MeanInteractiveLatencySec is the average wait + run time of queries
	// completed in the interactive queue.
	MeanInteractiveLatencySec float64
	// InteractiveBusySec and BatchBusySec are the queues' total busy time.
	InteractiveBusySec float64
	BatchBusySec       float64
}

// Simulate pushes the arrival stream (all arriving at once, processed
// FIFO) through the policy and a two-queue serial execution model.
func Simulate(stream []*dataset.Query, p Policy) (Outcome, error) {
	if len(stream) == 0 {
		return Outcome{}, errors.New("driver: empty stream")
	}
	if p == nil {
		return Outcome{}, errors.New("driver: nil policy")
	}
	out := Outcome{Policy: p.Name()}
	var interactiveClock float64
	var latencySum float64
	completedInteractive := 0
	for _, q := range stream {
		decision, timeout := p.Decide(q)
		actual := q.Metrics.ElapsedSec
		switch decision {
		case Reject:
			out.Rejected++
		case Batch:
			out.Batch++
			out.BatchBusySec += actual
		case Interactive:
			if timeout > 0 && actual > timeout {
				// The query is killed after `timeout` seconds of work; all
				// of it is wasted and the queue was blocked meanwhile.
				out.Killed++
				out.WastedSec += timeout
				interactiveClock += timeout
				continue
			}
			out.Interactive++
			interactiveClock += actual
			latencySum += interactiveClock // wait-in-queue + own runtime
			completedInteractive++
		}
	}
	out.InteractiveBusySec = interactiveClock
	if completedInteractive > 0 {
		out.MeanInteractiveLatencySec = latencySum / float64(completedInteractive)
	}
	return out, nil
}

// Compare runs several policies over the same stream.
func Compare(stream []*dataset.Query, policies ...Policy) ([]Outcome, error) {
	outcomes := make([]Outcome, 0, len(policies))
	for _, p := range policies {
		o, err := Simulate(stream, p)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}
