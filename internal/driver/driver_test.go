package driver

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/statutil"
	"repro/internal/workload"
)

type fixture struct {
	stream    []*dataset.Query
	predictor *core.Predictor
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed: 31, DataSeed: 2, Machine: exec.Research4(),
		Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 560,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := statutil.NewRNG(1, "driverstream")
	idx := r.SampleInts(len(pool.Queries), 120)
	inStream := map[int]bool{}
	var stream []*dataset.Query
	for _, i := range idx {
		stream = append(stream, pool.Queries[i])
		inStream[i] = true
	}
	var train []*dataset.Query
	for i, q := range pool.Queries {
		if !inStream[i] {
			train = append(train, q)
		}
	}
	p, err := core.Train(train, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{stream: stream, predictor: p}
	return cached
}

func TestBlindPolicyKillsLongQueries(t *testing.T) {
	f := setup(t)
	out, err := Simulate(f.stream, BlindPolicy{KillAfterSec: 180})
	if err != nil {
		t.Fatal(err)
	}
	long := 0
	for _, q := range f.stream {
		if q.Metrics.ElapsedSec > 180 {
			long++
		}
	}
	if out.Killed != long {
		t.Errorf("kills = %d, want every long query (%d)", out.Killed, long)
	}
	if out.WastedSec != float64(long)*180 {
		t.Errorf("wasted = %v, want %v", out.WastedSec, float64(long)*180)
	}
	if out.Interactive+out.Killed != len(f.stream) {
		t.Errorf("blind policy must admit everything: %+v", out)
	}
}

func TestPredictivePolicyReducesWaste(t *testing.T) {
	f := setup(t)
	blind, err := Simulate(f.stream, BlindPolicy{KillAfterSec: 180})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Simulate(f.stream, PredictivePolicy{
		Predictor:           f.predictor,
		InteractiveLimitSec: 180,
		Headroom:            3,
		MinTimeoutSec:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.WastedSec >= blind.WastedSec/2 {
		t.Errorf("predictive waste (%v) should be far below blind (%v)", pred.WastedSec, blind.WastedSec)
	}
	if pred.MeanInteractiveLatencySec >= blind.MeanInteractiveLatencySec {
		t.Errorf("predictive latency (%v) should beat blind (%v)",
			pred.MeanInteractiveLatencySec, blind.MeanInteractiveLatencySec)
	}
	if pred.Batch == 0 {
		t.Error("predictive policy should divert long queries to batch")
	}
}

func TestOraclePolicyNeverKills(t *testing.T) {
	f := setup(t)
	out, err := Simulate(f.stream, OraclePolicy{InteractiveLimitSec: 180})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 0 || out.WastedSec != 0 {
		t.Errorf("oracle should never kill: %+v", out)
	}
	if out.Interactive+out.Batch != len(f.stream) {
		t.Errorf("oracle without rejection must run everything: %+v", out)
	}
}

func TestRejection(t *testing.T) {
	f := setup(t)
	oracle, err := Simulate(f.stream, OraclePolicy{InteractiveLimitSec: 180, RejectBeyondSec: 7200})
	if err != nil {
		t.Fatal(err)
	}
	wrecking := 0
	for _, q := range f.stream {
		if q.Metrics.ElapsedSec > 7200 {
			wrecking++
		}
	}
	if oracle.Rejected != wrecking {
		t.Errorf("oracle rejections = %d, want %d", oracle.Rejected, wrecking)
	}
	pred, err := Simulate(f.stream, PredictivePolicy{
		Predictor:           f.predictor,
		InteractiveLimitSec: 180,
		Headroom:            3,
		RejectBeyondSec:     7200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrecking > 0 && pred.Rejected == 0 {
		t.Error("predictive policy should reject predicted wrecking balls")
	}
}

func TestConfidenceGating(t *testing.T) {
	f := setup(t)
	// An absurdly high confidence bar sends everything to batch.
	out, err := Simulate(f.stream, PredictivePolicy{
		Predictor:           f.predictor,
		InteractiveLimitSec: 180,
		Headroom:            3,
		MinConfidence:       2, // impossible
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Interactive != 0 {
		t.Errorf("impossible confidence bar admitted %d queries", out.Interactive)
	}
}

func TestSimulateErrors(t *testing.T) {
	f := setup(t)
	if _, err := Simulate(nil, BlindPolicy{}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Simulate(f.stream, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestCompare(t *testing.T) {
	f := setup(t)
	outs, err := Compare(f.stream,
		BlindPolicy{KillAfterSec: 180},
		OraclePolicy{InteractiveLimitSec: 180},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].Policy != "blind" || outs[1].Policy != "oracle" {
		t.Errorf("outcomes wrong: %+v", outs)
	}
}

func TestDecisionString(t *testing.T) {
	if Interactive.String() != "interactive" || Batch.String() != "batch" || Reject.String() != "reject" {
		t.Error("decision names wrong")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision must render")
	}
}
