package exec

import (
	"math"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/statutil"
)

// Per-operator simulated cost totals ("exec.op.<operator>.seconds") and
// node counts. Accounting is gated on obs.Enabled() so the bulk workload
// generation path pays nothing by default.
var (
	opCostSec   [optimizer.NumOpTypes]*obs.FloatTotal
	opNodeCount [optimizer.NumOpTypes]*obs.Counter
	execQueries = obs.GetCounter("exec.executed_queries")
)

func init() {
	for i := range opCostSec {
		name := optimizer.OpType(i).String()
		opCostSec[i] = obs.GetFloatTotal("exec.op." + name + ".seconds")
		opNodeCount[i] = obs.GetCounter("exec.op." + name + ".nodes")
	}
}

// Execute simulates running the plan on the machine and returns the
// measured performance metrics. The noise stream models run-to-run
// measurement variation in elapsed time; pass nil for a noiseless run.
// All other metrics are deterministic functions of the plan's true
// cardinalities and the machine configuration.
func Execute(p *optimizer.Plan, m Machine, noise *statutil.RNG) Metrics {
	c := m.costs()
	procs := float64(m.Processors)
	if procs < 1 {
		procs = 1
	}
	pageBytes := float64(c.PageSizeKB) * 1024

	execQueries.Inc()
	obsOn := obs.Enabled()

	var met Metrics
	cacheLeft := m.BufferPoolBytes()
	cached := map[string]bool{}
	elapsed := c.StartupSec + c.StartupPerProc*procs

	// chargeNet accounts for moving bytes across the interconnect and
	// returns the network seconds. senders is the number of processors
	// transferring in parallel (1 for the serial merge to the coordinator).
	chargeNet := func(rows, bytes, senders float64) float64 {
		if rows <= 0 {
			return 0
		}
		if senders < 1 {
			senders = 1
		}
		msgs := math.Ceil(rows/float64(c.RowsPerMessage)) + procs
		met.MessageCount += msgs
		met.MessageBytes += bytes
		return bytes/(c.NetMBPerSec*1e6*senders) + msgs*c.MsgOverheadSec/senders
	}
	// chargeIO accounts for disk page transfers and returns the I/O
	// seconds, spreading the transfer across the machine's disks.
	chargeIO := func(bytes float64) float64 {
		if bytes <= 0 {
			return 0
		}
		pages := math.Ceil(bytes / pageBytes)
		met.DiskIOs += pages
		return bytes / (c.DiskMBPerSec * 1e6 * float64(m.Disks))
	}

	p.Root.Walk(func(n *optimizer.Node) {
		var cpu, io, net float64
		switch n.Op {
		case optimizer.OpFileScan:
			met.RecordsAccessed += n.ActRowsIn
			met.RecordsUsed += n.ActRows
			cpu = n.ActRowsIn * c.ScanPerRow / procs
			bytes := n.ActRowsIn * float64(n.Width)
			if cached[n.Table] {
				// Already resident from an earlier scan in this query.
			} else if bytes <= cacheLeft {
				cached[n.Table] = true
				cacheLeft -= bytes
				// First touch still reads from disk into the pool? No:
				// the steady-state model assumes hot tables are resident
				// from prior workload activity, matching the paper's
				// observation that small queries did no I/O at all.
			} else {
				io = chargeIO(bytes)
			}
		case optimizer.OpNestedJoin:
			outer, inner := n.Children[0], n.Children[1]
			if n.Pairwise {
				pairs := outer.ActRows * inner.ActRows
				cpu = pairs * c.PairPerPair / procs
			} else {
				cpu = (outer.ActRows*c.ProbePerRow + inner.ActRows*c.HashPerRow) / procs
			}
			cpu += n.ActRows * c.MovePerRow / procs // result assembly
		case optimizer.OpHashJoin:
			cpu = (n.ActRowsIn*c.HashPerRow + n.ActRows*c.MovePerRow) / procs
		case optimizer.OpSemiJoin:
			cpu = n.ActRowsIn * c.HashPerRow / procs
		case optimizer.OpSort, optimizer.OpTopN:
			rows := n.ActRowsIn
			if rows > 1 {
				cpu = rows * math.Log2(rows) * c.SortPerRowLog / procs
			}
			if n.Op == optimizer.OpSort {
				// External sort: spill runs to disk when the per-CPU
				// share exceeds the sort memory budget.
				bytes := rows * float64(n.Width)
				budget := float64(m.MemPerCPUMB) * 1e6 * c.SpillMemFrac * procs
				if bytes > budget {
					io = chargeIO(2 * bytes) // write runs + read back
				}
			}
		case optimizer.OpHashGroupBy, optimizer.OpScalarAgg:
			cpu = n.ActRowsIn * c.AggPerRow / procs
		case optimizer.OpPartition:
			rows := n.ActRowsIn
			bytes := rows * float64(n.Width)
			if n.Broadcast {
				// Every row is replicated to all processors.
				moved := bytes * (procs - 1)
				if procs == 1 {
					moved = 0
				}
				net = chargeNet(rows*(procs-1), moved, procs)
			} else {
				// Hash repartitioning: a (P-1)/P fraction of rows changes
				// processors.
				frac := (procs - 1) / procs
				net = chargeNet(rows*frac, bytes*frac, procs)
			}
			cpu = rows * c.MovePerRow / procs
		case optimizer.OpExchange:
			// Merge to the coordinator: all rows cross to one node.
			rows := n.ActRowsIn
			net = chargeNet(rows, rows*float64(n.Width), 1)
			cpu = rows * c.MovePerRow // coordinator-side, serial
		case optimizer.OpSplit, optimizer.OpRoot:
			cpu = n.ActRowsIn * 2e-8 / procs
		}
		// Within one operator CPU, I/O, and network overlap; operators
		// themselves run largely in sequence along the pipeline.
		cost := math.Max(cpu, math.Max(io, net))
		elapsed += cost
		if obsOn && int(n.Op) >= 0 && int(n.Op) < optimizer.NumOpTypes {
			opCostSec[n.Op].Add(cost)
			opNodeCount[n.Op].Inc()
		}
	})

	if noise != nil {
		elapsed *= noise.NoiseFactor(c.NoiseSigma)
	}
	met.ElapsedSec = elapsed
	return met
}
