package exec

import (
	"testing"

	"repro/internal/obs"
)

func TestSimMetricsRecorded(t *testing.T) {
	before := obs.GetCounter("exec.simulate.queries").Value()
	if _, err := SimulateConcurrent([]float64{0, 1}, []float64{2, 2}, 0, 1); err != nil {
		t.Fatal(err)
	}
	after := obs.GetCounter("exec.simulate.queries").Value()
	if after-before != 2 {
		t.Fatalf("sim queries delta = %d", after-before)
	}
	if obs.GetHistogram("exec.simulate.makespan_sec").Count() == 0 {
		t.Fatal("makespan not observed")
	}
	s := obs.Take()
	if _, ok := s.Counters["exec.simulate.queries"]; !ok {
		t.Fatal("snapshot missing simulator counter")
	}
}
