package exec

import (
	"errors"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Simulator metrics: simulated-queries/sec is simQueries divided by the
// "exec.simulate" stage total in a snapshot.
var (
	simRuns        = obs.GetCounter("exec.simulate.runs")
	simQueries     = obs.GetCounter("exec.simulate.queries")
	simBatchSize   = obs.GetHistogram("exec.simulate.batch_queries")
	simMakespanSec = obs.GetHistogram("exec.simulate.makespan_sec")
)

// The paper predicts single-query-mode performance and uses the
// predictions to AVOID "extreme resource contention" between queries.
// SimulateConcurrent closes that loop: given per-query solo runtimes (the
// quantity the predictor outputs) and arrival times, it models what
// actually happens when queries share the machine, so workload managers
// can evaluate admission decisions end to end.
//
// The model is processor sharing with bounded multiprogramming: at most
// maxConcurrent queries run at once (zero = unbounded), later arrivals
// queue FIFO, and with k queries running each progresses at rate
// 1/k^interference. interference 0 models perfectly isolated queries;
// interference 1 models full contention (aggregate throughput fixed);
// values between model partially overlapping resource demands.

// ConcurrentOutcome reports a SimulateConcurrent run.
type ConcurrentOutcome struct {
	// Start and Completion give each query's admission and finish times,
	// indexed like the inputs.
	Start, Completion []float64
	// Makespan is the last completion time.
	Makespan float64
	// MaxRunning is the peak multiprogramming level observed.
	MaxRunning int
}

// Scenario is one admission-policy setting to evaluate: a multiprogramming
// bound and an interference exponent.
type Scenario struct {
	MaxConcurrent int
	Interference  float64
}

// SimulateScenarios evaluates many admission policies over the same
// workload, one SimulateConcurrent run per scenario, fanned out on the
// shared worker pool (each run reads the input slices and writes only its
// own outcome, so results are identical to a serial loop). Workload
// managers use it to sweep candidate multiprogramming levels in one call.
func SimulateScenarios(arrivalSec, soloSec []float64, scenarios []Scenario) ([]ConcurrentOutcome, error) {
	defer obs.Span("exec.simulate_scenarios")()
	outs := make([]ConcurrentOutcome, len(scenarios))
	errs := make([]error, len(scenarios))
	parallel.For(len(scenarios), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i], errs[i] = SimulateConcurrent(arrivalSec, soloSec, scenarios[i].MaxConcurrent, scenarios[i].Interference)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// SimulateConcurrent runs the processor-sharing simulation. arrivalSec and
// soloSec must have equal length; soloSec entries must be positive.
func SimulateConcurrent(arrivalSec, soloSec []float64, maxConcurrent int, interference float64) (ConcurrentOutcome, error) {
	defer obs.Span("exec.simulate")()
	n := len(arrivalSec)
	if n == 0 {
		return ConcurrentOutcome{}, errors.New("exec: no queries")
	}
	simRuns.Inc()
	simQueries.Add(int64(n))
	simBatchSize.Observe(float64(n))
	if len(soloSec) != n {
		return ConcurrentOutcome{}, errors.New("exec: arrival and solo lengths differ")
	}
	if interference < 0 || interference > 1 {
		return ConcurrentOutcome{}, errors.New("exec: interference must be in [0, 1]")
	}
	for i, s := range soloSec {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return ConcurrentOutcome{}, errors.New("exec: solo runtimes must be positive and finite")
		}
		if arrivalSec[i] < 0 || math.IsNaN(arrivalSec[i]) {
			return ConcurrentOutcome{}, errors.New("exec: arrivals must be nonnegative")
		}
	}

	// Process arrivals in time order, keeping original indexes.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivalSec[order[a]] < arrivalSec[order[b]] })

	out := ConcurrentOutcome{
		Start:      make([]float64, n),
		Completion: make([]float64, n),
	}
	type running struct {
		idx       int
		remaining float64 // remaining solo-equivalent work
	}
	var active []running
	var queue []int
	next := 0 // next arrival (position in order)
	t := 0.0

	rate := func(k int) float64 {
		if k <= 1 {
			return 1
		}
		return 1 / math.Pow(float64(k), interference)
	}
	admit := func(idx int) {
		active = append(active, running{idx: idx, remaining: soloSec[idx]})
		out.Start[idx] = t
		if len(active) > out.MaxRunning {
			out.MaxRunning = len(active)
		}
	}

	for next < n || len(active) > 0 || len(queue) > 0 {
		// Admit queued queries into free slots.
		for len(queue) > 0 && (maxConcurrent <= 0 || len(active) < maxConcurrent) {
			admit(queue[0])
			queue = queue[1:]
		}
		// If nothing is running, jump to the next arrival.
		if len(active) == 0 {
			if next >= n {
				break
			}
			t = math.Max(t, arrivalSec[order[next]])
			idx := order[next]
			next++
			if maxConcurrent > 0 && len(active) >= maxConcurrent {
				queue = append(queue, idx)
			} else {
				admit(idx)
			}
			continue
		}
		// Time to the earliest completion at the current rate.
		r := rate(len(active))
		minRem := math.Inf(1)
		for _, a := range active {
			if a.remaining < minRem {
				minRem = a.remaining
			}
		}
		tComplete := t + minRem/r
		// Time to the next arrival.
		tArrive := math.Inf(1)
		if next < n {
			tArrive = math.Max(t, arrivalSec[order[next]])
		}
		tNext := math.Min(tComplete, tArrive)
		// Progress everyone to tNext.
		progress := (tNext - t) * r
		for i := range active {
			active[i].remaining -= progress
		}
		t = tNext
		if tComplete <= tArrive {
			// Retire finished queries (ties finish together).
			kept := active[:0]
			for _, a := range active {
				if a.remaining <= 1e-12 {
					out.Completion[a.idx] = t
					if t > out.Makespan {
						out.Makespan = t
					}
				} else {
					kept = append(kept, a)
				}
			}
			active = kept
		} else {
			idx := order[next]
			next++
			if maxConcurrent > 0 && len(active) >= maxConcurrent {
				queue = append(queue, idx)
			} else {
				admit(idx)
			}
		}
	}
	simMakespanSec.Observe(out.Makespan)
	return out, nil
}
