package exec

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/statutil"
)

var schema = catalog.TPCDS(1)

func planFor(t *testing.T, sql string, m Machine) *optimizer.Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.BuildPlan(q, schema, 11, optimizer.DefaultConfig(m.Processors))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteBasicMetrics(t *testing.T) {
	m := Research4()
	p := planFor(t, "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 50", m)
	met := Execute(p, m, nil)
	if met.ElapsedSec <= 0 {
		t.Errorf("elapsed = %v", met.ElapsedSec)
	}
	if met.RecordsAccessed != 2880404 {
		t.Errorf("records accessed = %v, want full scan", met.RecordsAccessed)
	}
	if met.RecordsUsed <= 0 || met.RecordsUsed > met.RecordsAccessed {
		t.Errorf("records used = %v", met.RecordsUsed)
	}
	// store_sales does not fit in the research system's buffer pool.
	if met.DiskIOs <= 0 {
		t.Errorf("expected disk I/O on the small-memory system, got %v", met.DiskIOs)
	}
	if met.MessageCount <= 0 || met.MessageBytes <= 0 {
		t.Errorf("messages = %v / %v bytes", met.MessageCount, met.MessageBytes)
	}
}

func TestExecuteDeterministicWithoutNoise(t *testing.T) {
	m := Research4()
	p := planFor(t, "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk", m)
	a := Execute(p, m, nil)
	b := Execute(p, m, nil)
	if a != b {
		t.Errorf("noiseless execution must be deterministic: %v vs %v", a, b)
	}
}

func TestExecuteNoiseOnlyAffectsElapsed(t *testing.T) {
	m := Research4()
	p := planFor(t, "SELECT COUNT(*) FROM store_sales", m)
	a := Execute(p, m, statutil.NewRNG(1, "noise"))
	b := Execute(p, m, statutil.NewRNG(2, "noise"))
	if a.ElapsedSec == b.ElapsedSec {
		t.Error("noise should perturb elapsed time")
	}
	a.ElapsedSec, b.ElapsedSec = 0, 0
	if a != b {
		t.Errorf("non-elapsed metrics must be noise-free: %v vs %v", a, b)
	}
}

func TestMoreProcessorsFaster(t *testing.T) {
	sql := "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number = sr_ticket_number"
	m4, m32 := Production32(4), Production32(32)
	t4 := Execute(planFor(t, sql, m4), m4, nil)
	t32 := Execute(planFor(t, sql, m32), m32, nil)
	if t32.ElapsedSec >= t4.ElapsedSec {
		t.Errorf("32 cpus (%vs) should beat 4 cpus (%vs)", t32.ElapsedSec, t4.ElapsedSec)
	}
}

func TestLargeMemoryConfigDoesNoIO(t *testing.T) {
	sql := "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 50"
	small, large := Production32(4), Production32(32)
	ioSmall := Execute(planFor(t, sql, small), small, nil).DiskIOs
	ioLarge := Execute(planFor(t, sql, large), large, nil).DiskIOs
	if ioLarge != 0 {
		t.Errorf("32-cpu config should cache everything, got %v I/Os", ioLarge)
	}
	if ioSmall <= 0 {
		t.Errorf("4-cpu config should do I/O, got %v", ioSmall)
	}
}

func TestPairwiseJoinMuchSlowerThanProbe(t *testing.T) {
	m := Research4()
	probe := planFor(t, "SELECT COUNT(*) FROM store_sales, store WHERE ss_store_sk = s_store_sk", m)
	pair := planFor(t, "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number <= sr_ticket_number", m)
	tp := Execute(probe, m, nil).ElapsedSec
	tq := Execute(pair, m, nil).ElapsedSec
	if tq < 100*tp {
		t.Errorf("pairwise join (%vs) should dwarf probe join (%vs)", tq, tp)
	}
}

func TestRuntimeSpreadCoversPaperCategories(t *testing.T) {
	// The simulator must produce both sub-second queries and multi-hour
	// queries on the research system, like the paper's feathers and
	// (w)recking balls.
	m := Research4()
	fast := Execute(planFor(t, "SELECT COUNT(*) FROM store", m), m, nil).ElapsedSec
	slow := Execute(planFor(t, "SELECT COUNT(*) FROM store_sales, inventory WHERE ss_sold_date_sk <= inv_date_sk", m), m, nil).ElapsedSec
	if fast > 1 {
		t.Errorf("dimension count should be sub-second, got %v", fast)
	}
	if slow < 1800 {
		t.Errorf("fact-fact inequality join should exceed 30 minutes, got %vs", slow)
	}
}

func TestMetricsVectorRoundTrip(t *testing.T) {
	m := Metrics{ElapsedSec: 1, RecordsAccessed: 2, RecordsUsed: 3, DiskIOs: 4, MessageCount: 5, MessageBytes: 6}
	v := m.Vector()
	if len(v) != NumMetrics || len(MetricNames) != NumMetrics {
		t.Fatalf("vector size wrong: %d", len(v))
	}
	if got := MetricsFromVector(v); got != m {
		t.Errorf("round trip failed: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MetricsFromVector should panic on wrong length")
		}
	}()
	MetricsFromVector([]float64{1, 2})
}

func TestMachineConfigs(t *testing.T) {
	r := Research4()
	if r.Processors != 4 || r.Disks != 4 {
		t.Errorf("research config wrong: %+v", r)
	}
	p := Production32(8)
	if p.Processors != 8 || p.Disks != 32 {
		t.Errorf("prod config wrong: %+v", p)
	}
	if Production32(0).Processors != 32 || Production32(99).Processors != 32 {
		t.Error("out-of-range processors should default to 32")
	}
	if r.BufferPoolBytes() <= 0 {
		t.Error("buffer pool must be positive")
	}
	if r.String() == "" || (Metrics{}).String() == "" {
		t.Error("String methods broken")
	}
	if math.IsNaN(DefaultCosts().ScanPerRow) {
		t.Error("sanity")
	}
}
