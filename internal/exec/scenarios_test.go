package exec

import (
	"runtime"
	"testing"

	"repro/internal/parallel"
	"repro/internal/statutil"
)

// TestSimulateScenariosMatchesSerialLoop: the pooled scenario sweep must
// return exactly what a serial SimulateConcurrent loop returns, at every
// worker count.
func TestSimulateScenariosMatchesSerialLoop(t *testing.T) {
	r := statutil.NewRNG(3, "scenarios")
	n := 60
	arrivals := make([]float64, n)
	solo := make([]float64, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += r.Uniform(0, 10)
		arrivals[i] = tm
		solo[i] = r.Uniform(0.5, 300)
	}
	scenarios := []Scenario{
		{MaxConcurrent: 0, Interference: 0},
		{MaxConcurrent: 1, Interference: 0.5},
		{MaxConcurrent: 2, Interference: 0.7},
		{MaxConcurrent: 4, Interference: 0.7},
		{MaxConcurrent: 8, Interference: 1},
	}

	want := make([]ConcurrentOutcome, len(scenarios))
	for i, sc := range scenarios {
		out, err := SimulateConcurrent(arrivals, solo, sc.MaxConcurrent, sc.Interference)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	for _, w := range []int{1, 2, 7, runtime.NumCPU()} {
		defer parallel.SetMaxProcs(parallel.SetMaxProcs(w))
		got, err := SimulateScenarios(arrivals, solo, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Makespan != want[i].Makespan || got[i].MaxRunning != want[i].MaxRunning {
				t.Fatalf("workers=%d scenario %d: makespan %v / peak %d, serial %v / %d",
					w, i, got[i].Makespan, got[i].MaxRunning, want[i].Makespan, want[i].MaxRunning)
			}
			for j := range got[i].Completion {
				if got[i].Completion[j] != want[i].Completion[j] || got[i].Start[j] != want[i].Start[j] {
					t.Fatalf("workers=%d scenario %d query %d: start/completion differ from serial", w, i, j)
				}
			}
		}
		parallel.SetMaxProcs(0)
	}
}

// TestSimulateScenariosPropagatesError: one invalid scenario fails the
// whole sweep, as the serial loop would.
func TestSimulateScenariosPropagatesError(t *testing.T) {
	if _, err := SimulateScenarios([]float64{0}, []float64{1}, []Scenario{
		{MaxConcurrent: 1, Interference: 0.5},
		{MaxConcurrent: 1, Interference: 2}, // out of range
	}); err == nil {
		t.Fatal("invalid interference not rejected")
	}
	got, err := SimulateScenarios([]float64{0}, []float64{1}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %d outcomes", err, len(got))
	}
}
