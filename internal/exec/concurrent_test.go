package exec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/statutil"
)

func TestConcurrentSingleQuery(t *testing.T) {
	out, err := SimulateConcurrent([]float64{5}, []float64{10}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Start[0] != 5 || math.Abs(out.Completion[0]-15) > 1e-9 {
		t.Errorf("single query: start %v completion %v", out.Start[0], out.Completion[0])
	}
	if out.Makespan != out.Completion[0] || out.MaxRunning != 1 {
		t.Errorf("outcome wrong: %+v", out)
	}
}

func TestConcurrentNoInterference(t *testing.T) {
	// interference 0: simultaneous queries do not slow each other.
	out, err := SimulateConcurrent([]float64{0, 0, 0}, []float64{10, 20, 30}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	for i, w := range want {
		if math.Abs(out.Completion[i]-w) > 1e-9 {
			t.Errorf("completion %d = %v, want %v", i, out.Completion[i], w)
		}
	}
	if out.MaxRunning != 3 {
		t.Errorf("max running = %d", out.MaxRunning)
	}
}

func TestConcurrentFullInterference(t *testing.T) {
	// interference 1 is classic processor sharing: two identical queries
	// starting together each finish at 2x their solo time.
	out, err := SimulateConcurrent([]float64{0, 0}, []float64{10, 10}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(out.Completion[i]-20) > 1e-9 {
			t.Errorf("completion %d = %v, want 20", i, out.Completion[i])
		}
	}
}

func TestConcurrentSerializedByOneSlot(t *testing.T) {
	out, err := SimulateConcurrent([]float64{0, 0, 0}, []float64{5, 7, 3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO in arrival order: completions at 5, 12, 15.
	want := []float64{5, 12, 15}
	for i, w := range want {
		if math.Abs(out.Completion[i]-w) > 1e-9 {
			t.Errorf("completion %d = %v, want %v", i, out.Completion[i], w)
		}
	}
	if out.MaxRunning != 1 {
		t.Errorf("max running = %d, want 1", out.MaxRunning)
	}
}

func TestConcurrentStaggeredArrivals(t *testing.T) {
	// Query B arrives while A runs under full interference.
	// A: work 10, alone on [0,5) does 5 work; then shares. B: work 10.
	// From t=5 both run at rate 1/2: A finishes its remaining 5 at t=15;
	// B then runs alone, remaining 10-5=5 at rate 1 -> t=20.
	out, err := SimulateConcurrent([]float64{0, 5}, []float64{10, 10}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Completion[0]-15) > 1e-9 || math.Abs(out.Completion[1]-20) > 1e-9 {
		t.Errorf("completions = %v, want [15 20]", out.Completion)
	}
}

func TestConcurrentErrors(t *testing.T) {
	if _, err := SimulateConcurrent(nil, nil, 0, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := SimulateConcurrent([]float64{0}, []float64{1, 2}, 0, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SimulateConcurrent([]float64{0}, []float64{0}, 0, 1); err == nil {
		t.Error("zero solo time accepted")
	}
	if _, err := SimulateConcurrent([]float64{-1}, []float64{1}, 0, 1); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := SimulateConcurrent([]float64{0}, []float64{1}, 0, 2); err == nil {
		t.Error("interference > 1 accepted")
	}
}

func TestConcurrentProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := statutil.NewRNG(seed, "concprop")
		n := r.IntBetween(1, 12)
		arrivals := make([]float64, n)
		solos := make([]float64, n)
		for i := 0; i < n; i++ {
			arrivals[i] = r.Uniform(0, 50)
			solos[i] = r.Uniform(0.1, 30)
		}
		slots := r.IntBetween(0, 4)
		alpha := r.Uniform(0, 1)
		out, err := SimulateConcurrent(arrivals, solos, slots, alpha)
		if err != nil {
			return false
		}
		totalWork := 0.0
		for i := 0; i < n; i++ {
			// No query finishes before arrival + its solo runtime, and all
			// queries finish.
			if out.Completion[i] < arrivals[i]+solos[i]-1e-9 {
				return false
			}
			if out.Start[i] < arrivals[i]-1e-9 {
				return false
			}
			if out.Completion[i] > out.Makespan+1e-9 {
				return false
			}
			totalWork += solos[i]
		}
		// Makespan is bounded by fully serialized execution after the last
		// arrival.
		lastArrival := 0.0
		for _, a := range arrivals {
			lastArrival = math.Max(lastArrival, a)
		}
		limit := lastArrival + totalWork*math.Pow(float64(n), 1)
		return out.Makespan <= limit+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMoreInterferenceSlower(t *testing.T) {
	arrivals := []float64{0, 1, 2, 3}
	solos := []float64{5, 6, 7, 8}
	low, err := SimulateConcurrent(arrivals, solos, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SimulateConcurrent(arrivals, solos, 0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if high.Makespan <= low.Makespan {
		t.Errorf("higher interference should lengthen the makespan: %v vs %v",
			high.Makespan, low.Makespan)
	}
}
