package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/optimizer"
	"repro/internal/sqlgen"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// TestPipelinePropertyInvariants drives randomized template instances
// through the full plan-and-execute pipeline and checks the invariants any
// real system would guarantee.
func TestPipelinePropertyInvariants(t *testing.T) {
	templates := workload.TPCDSTemplates()
	machines := []Machine{Research4(), Production32(4), Production32(32)}

	prop := func(seed int64, tplIdx, mIdx uint8) bool {
		tpl := templates[int(tplIdx)%len(templates)]
		m := machines[int(mIdx)%len(machines)]
		r := statutil.NewRNG(seed, "prop:"+tpl.Name)
		q := tpl.Gen(r)
		plan, err := optimizer.BuildPlan(q, schema, seed%5, optimizer.DefaultConfig(m.Processors))
		if err != nil {
			t.Logf("plan error for %s: %v", tpl.Name, err)
			return false
		}
		if err := plan.Validate(); err != nil {
			t.Logf("invalid plan for %s: %v", tpl.Name, err)
			return false
		}
		if plan.Cost <= 0 {
			t.Logf("nonpositive cost for %s", tpl.Name)
			return false
		}
		// Scans never output more than they read, on both models.
		ok := true
		plan.Root.Walk(func(n *optimizer.Node) {
			if n.Op == optimizer.OpFileScan {
				if n.EstRows > n.EstRowsIn || n.ActRows > n.ActRowsIn {
					ok = false
				}
			}
		})
		if !ok {
			t.Logf("scan output exceeds input for %s", tpl.Name)
			return false
		}
		met := Execute(plan, m, nil)
		if met.ElapsedSec <= 0 {
			t.Logf("nonpositive elapsed for %s", tpl.Name)
			return false
		}
		if met.RecordsUsed > met.RecordsAccessed {
			t.Logf("records used > accessed for %s", tpl.Name)
			return false
		}
		for _, v := range met.Vector() {
			if v < 0 {
				t.Logf("negative metric for %s: %v", tpl.Name, met)
				return false
			}
		}
		// Determinism: same inputs, same outputs.
		if again := Execute(plan, m, nil); again != met {
			t.Logf("nondeterministic execution for %s", tpl.Name)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreMemoryNeverMoreIO checks the buffer-pool monotonicity the
// Fig. 16 Null pattern depends on: growing the pool can only reduce I/O.
func TestMoreMemoryNeverMoreIO(t *testing.T) {
	templates := workload.TPCDSTemplates()
	prop := func(seed int64, tplIdx uint8) bool {
		tpl := templates[int(tplIdx)%len(templates)]
		r := statutil.NewRNG(seed, "memprop:"+tpl.Name)
		q := tpl.Gen(r)
		small := Machine{Name: "small", Processors: 4, Disks: 4, MemPerCPUMB: 64}
		big := Machine{Name: "big", Processors: 4, Disks: 4, MemPerCPUMB: 4096}
		plan, err := optimizer.BuildPlan(q, schema, 1, optimizer.DefaultConfig(4))
		if err != nil {
			return false
		}
		ioSmall := Execute(plan, small, nil).DiskIOs
		ioBig := Execute(plan, big, nil).DiskIOs
		return ioBig <= ioSmall
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMoreProcessorsRarelySlower checks near-monotone scaling: using more
// processors of the production system should not make queries
// meaningfully slower. Sub-second queries are allowed a small absolute
// regression — startup and broadcast-replication overheads grow with the
// processor count, which is exactly why the paper's production system
// showed no benefit for short queries.
func TestMoreProcessorsRarelySlower(t *testing.T) {
	templates := workload.TPCDSTemplates()
	prop := func(seed int64, tplIdx uint8) bool {
		tpl := templates[int(tplIdx)%len(templates)]
		r := statutil.NewRNG(seed, "scaleprop:"+tpl.Name)
		q := tpl.Gen(r)
		t8 := runOn(t, q, Production32(8), seed)
		t32 := runOn(t, q, Production32(32), seed)
		return t32 <= t8*1.10+1.0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func runOn(t *testing.T, q *sqlgen.Query, m Machine, seed int64) float64 {
	t.Helper()
	plan, err := optimizer.BuildPlan(q, schema, 1, optimizer.DefaultConfig(m.Processors))
	if err != nil {
		t.Fatal(err)
	}
	_ = seed
	return Execute(plan, m, nil).ElapsedSec
}
