package exec

import "fmt"

// MetricNames lists the six performance metrics in feature-vector order,
// matching Sec. VI-D of the paper.
var MetricNames = []string{
	"elapsed_time",
	"records_accessed",
	"records_used",
	"disk_ios",
	"message_count",
	"message_bytes",
}

// NumMetrics is the dimensionality of the performance feature vector.
const NumMetrics = 6

// Indexes into Metrics.Vector().
const (
	MetricElapsed = iota
	MetricRecordsAccessed
	MetricRecordsUsed
	MetricDiskIOs
	MetricMessageCount
	MetricMessageBytes
)

// Metrics is the measured performance of one query execution.
type Metrics struct {
	// ElapsedSec is wall-clock time in seconds.
	ElapsedSec float64
	// RecordsAccessed is the total input cardinality of the file scan
	// operators.
	RecordsAccessed float64
	// RecordsUsed is the total output cardinality of the file scan
	// operators.
	RecordsUsed float64
	// DiskIOs is the number of disk page reads and writes.
	DiskIOs float64
	// MessageCount and MessageBytes measure interconnect traffic.
	MessageCount float64
	MessageBytes float64
}

// Vector returns the metrics as a performance feature vector.
func (m Metrics) Vector() []float64 {
	return []float64{
		m.ElapsedSec,
		m.RecordsAccessed,
		m.RecordsUsed,
		m.DiskIOs,
		m.MessageCount,
		m.MessageBytes,
	}
}

// MetricsFromVector reverses Vector.
func MetricsFromVector(v []float64) Metrics {
	if len(v) != NumMetrics {
		panic(fmt.Sprintf("exec: metrics vector has %d elements, want %d", len(v), NumMetrics))
	}
	return Metrics{
		ElapsedSec:      v[0],
		RecordsAccessed: v[1],
		RecordsUsed:     v[2],
		DiskIOs:         v[3],
		MessageCount:    v[4],
		MessageBytes:    v[5],
	}
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("elapsed=%.3fs accessed=%.0f used=%.0f ios=%.0f msgs=%.0f msgbytes=%.0f",
		m.ElapsedSec, m.RecordsAccessed, m.RecordsUsed, m.DiskIOs, m.MessageCount, m.MessageBytes)
}
