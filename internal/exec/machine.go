// Package exec simulates executing physical query plans on a
// shared-nothing parallel database machine — the substitute for the paper's
// HP Neoview systems. Given a plan annotated with true cardinalities (from
// the optimizer package's full statistical model) and a machine
// configuration, it produces the six performance metrics the paper
// predicts: elapsed time, records accessed, records used, disk I/Os,
// message count, and message bytes.
//
// The runtime model captures the mechanisms that make prediction hard for
// the paper's baselines and possible for KCCA: per-operator costs that are
// nonlinear in the feature-vector quantities (pairwise nested joins,
// n·log n sorts), buffer-pool-dependent disk I/O (large-memory
// configurations do no I/O at all, reproducing the Null rows of Fig. 16),
// exchange-generated message traffic, and multiplicative measurement noise.
package exec

import (
	"fmt"
	"strconv"
	"strings"
)

// Machine describes one database system configuration.
type Machine struct {
	// Name identifies the configuration in reports.
	Name string
	// Processors is the number of CPUs used for query processing.
	Processors int
	// Disks is the number of disks the data is partitioned across. On the
	// production system data stays partitioned across all 32 disks even
	// when fewer processors are used, exactly as in the paper.
	Disks int
	// MemPerCPUMB is the memory allotted per CPU in megabytes; half of the
	// total is available to the buffer pool.
	MemPerCPUMB int

	// Hardware cost constants. Zero values select defaults (see
	// DefaultCosts).
	Costs Costs
}

// Costs holds the per-operation hardware constants of the runtime model.
type Costs struct {
	// CPU seconds per row (or per pair for pairwise joins).
	ScanPerRow    float64
	ProbePerRow   float64 // keyed nested-join probe of a broadcast inner
	PairPerPair   float64 // pairwise nested-join comparison
	HashPerRow    float64 // hash join build+probe
	SortPerRowLog float64 // multiplied by log2(n)
	AggPerRow     float64
	MovePerRow    float64 // CPU cost of sending/receiving one row

	// Disk.
	PageSizeKB     int
	DiskMBPerSec   float64 // per-disk sequential bandwidth
	SpillMemFrac   float64 // fraction of per-CPU memory a sort may use
	BufferPoolFrac float64 // fraction of total memory usable as cache

	// Network.
	NetMBPerSec    float64 // per-processor interconnect bandwidth
	RowsPerMessage int
	MsgOverheadSec float64 // per-message fixed cost

	// Fixed query startup in seconds, plus per-processor component.
	StartupSec     float64
	StartupPerProc float64

	// NoiseSigma is the log-space standard deviation of the multiplicative
	// elapsed-time measurement noise.
	NoiseSigma float64
}

// DefaultCosts returns the calibrated hardware constants used throughout
// the reproduction.
func DefaultCosts() Costs {
	return Costs{
		ScanPerRow:    1.2e-6,
		ProbePerRow:   3.0e-6,
		PairPerPair:   1.6e-9,
		HashPerRow:    3.5e-6,
		SortPerRowLog: 6.0e-7,
		AggPerRow:     2.0e-6,
		MovePerRow:    1.0e-6,

		PageSizeKB:     64,
		DiskMBPerSec:   55,
		SpillMemFrac:   0.3,
		BufferPoolFrac: 0.5,

		NetMBPerSec:    40,
		RowsPerMessage: 500,
		MsgOverheadSec: 4e-5,

		StartupSec:     0.05,
		StartupPerProc: 0.002,

		NoiseSigma: 0.06,
	}
}

func (m Machine) costs() Costs {
	c := m.Costs
	d := DefaultCosts()
	if c.ScanPerRow == 0 {
		c = d
	}
	return c
}

// BufferPoolBytes is the memory available for caching table data.
func (m Machine) BufferPoolBytes() float64 {
	c := m.costs()
	return float64(m.Processors) * float64(m.MemPerCPUMB) * 1e6 * c.BufferPoolFrac
}

func (m Machine) String() string {
	return fmt.Sprintf("%s (%d cpus, %d disks, %d MB/cpu)", m.Name, m.Processors, m.Disks, m.MemPerCPUMB)
}

// Research4 returns the paper's research system: a four-processor machine
// with one disk per CPU and data partitioned across all four disks.
func Research4() Machine {
	return Machine{Name: "research-4", Processors: 4, Disks: 4, MemPerCPUMB: 128}
}

// Production32 returns a configuration of the paper's 32-node production
// system using p of the 32 processors. Data stays partitioned across all
// 32 disks regardless of p, and memory grows proportionally with the
// processors used — which is why larger configurations do no disk I/O.
func Production32(p int) Machine {
	if p <= 0 || p > 32 {
		p = 32
	}
	return Machine{Name: fmt.Sprintf("prod32-%dcpu", p), Processors: p, Disks: 32, MemPerCPUMB: 160}
}

// ParseMachine resolves a command-line machine name: "research4" or
// "prod32:<cpus>" with 1..32 cpus. The commands share it so the two
// daemons and the CLI accept identical -machine values.
func ParseMachine(name string) (Machine, error) {
	if name == "research4" {
		return Research4(), nil
	}
	if rest, ok := strings.CutPrefix(name, "prod32:"); ok {
		p, err := strconv.Atoi(rest)
		if err != nil || p <= 0 || p > 32 {
			return Machine{}, fmt.Errorf("bad processor count %q (want 1..32)", rest)
		}
		return Production32(p), nil
	}
	return Machine{}, fmt.Errorf("unknown machine %q (want research4 or prod32:<cpus>)", name)
}
