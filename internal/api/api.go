// Package api defines the JSON wire types of the prediction service — the
// one stable schema shared by the qpredictd daemon and the qpredict -json
// CLI output, so scripted consumers see a single format no matter which
// binary produced it.
//
// Versioning rules (documented for consumers in docs/API.md):
//
//   - Every response carries a "version" field, currently Version.
//   - Within a version, fields are only ever added, never renamed, removed,
//     or retyped; consumers must ignore unknown fields.
//   - Metric names in the Metrics object are exactly the six names of
//     exec.MetricNames and will not change within a version.
//   - A breaking change bumps the version string and the /v<N>/ URL prefix.
package api

import "repro/internal/exec"

// Version identifies the wire schema carried in every response.
const Version = "v1"

// PredictRequest is the body of POST /v1/predict. The single-query
// shorthand {"sql": "..."} and the batch form {"queries": [{"sql": ...}]}
// may be combined; the shorthand query is predicted first.
type PredictRequest struct {
	SQL     string       `json:"sql,omitempty"`
	Queries []QueryInput `json:"queries,omitempty"`
}

// QueryInput is one query to predict.
type QueryInput struct {
	SQL string `json:"sql"`
}

// Inputs normalizes the request into a flat query list: the single-query
// shorthand (if present) followed by the batch entries. Batch-only requests
// (the steady-state load-generator shape) return Queries as-is without
// copying; callers must not mutate the result.
func (r *PredictRequest) Inputs() []QueryInput {
	if r.SQL == "" {
		return r.Queries
	}
	in := make([]QueryInput, 0, 1+len(r.Queries))
	in = append(in, QueryInput{SQL: r.SQL})
	return append(in, r.Queries...)
}

// Metrics is the six-metric prediction (or observation) vector. The JSON
// names match exec.MetricNames, the paper's Sec. VI-D ordering.
type Metrics struct {
	ElapsedSec      float64 `json:"elapsed_time"`
	RecordsAccessed float64 `json:"records_accessed"`
	RecordsUsed     float64 `json:"records_used"`
	DiskIOs         float64 `json:"disk_ios"`
	MessageCount    float64 `json:"message_count"`
	MessageBytes    float64 `json:"message_bytes"`
}

// MetricsFrom converts the simulator's metrics struct to the wire form.
func MetricsFrom(m exec.Metrics) Metrics {
	return Metrics{
		ElapsedSec:      m.ElapsedSec,
		RecordsAccessed: m.RecordsAccessed,
		RecordsUsed:     m.RecordsUsed,
		DiskIOs:         m.DiskIOs,
		MessageCount:    m.MessageCount,
		MessageBytes:    m.MessageBytes,
	}
}

// Exec converts the wire metrics back to the simulator's struct.
func (m Metrics) Exec() exec.Metrics {
	return exec.Metrics{
		ElapsedSec:      m.ElapsedSec,
		RecordsAccessed: m.RecordsAccessed,
		RecordsUsed:     m.RecordsUsed,
		DiskIOs:         m.DiskIOs,
		MessageCount:    m.MessageCount,
		MessageBytes:    m.MessageBytes,
	}
}

// QueryResult is the prediction for one input query. Either Metrics or
// Error is set, never both: a malformed query in a batch fails alone
// without voiding its neighbors.
type QueryResult struct {
	// SQL echoes the input query.
	SQL string `json:"sql,omitempty"`
	// Metrics are the six predicted performance metrics.
	Metrics *Metrics `json:"metrics,omitempty"`
	// Category is the predicted runtime class (feather / golf ball /
	// bowling ball / wrecking ball).
	Category string `json:"category,omitempty"`
	// Confidence in (0, 1]: low values flag queries far from everything
	// the model has seen.
	Confidence float64 `json:"confidence,omitempty"`
	// OptimizerCost is the optimizer's scalar cost estimate for the same
	// plan, in internal optimizer units — the classical baseline, exposed
	// side by side so callers can compare it against the learned
	// prediction.
	OptimizerCost float64 `json:"optimizer_cost,omitempty"`
	// Generation is the model generation that produced this result (it can
	// differ between results of one batch when a hot swap lands mid-batch).
	// On a sharded daemon, generations are per shard.
	Generation int64 `json:"generation,omitempty"`
	// Shard is the owning shard of this query per the partitioner, present
	// only when the daemon runs more than one shard (a single-shard daemon
	// keeps the unsharded wire format byte-identical). It names the shard
	// that owns the query even when a cold-start fallback served it; the
	// serving shard is then reported in FallbackShard.
	Shard string `json:"shard,omitempty"`
	// FallbackShard is set when the owning shard was cold and a warm shard
	// answered instead (cold-start fallback).
	FallbackShard string `json:"fallback_shard,omitempty"`
	// ModelKind names the model family that produced this result ("kcca",
	// "planstruct", "optcost"). It reports the model that actually answered,
	// so a cold-start fallback answer is attributed to the fallback shard's
	// model kind, never ambiguously to the cold owner's.
	ModelKind string `json:"model_kind,omitempty"`
	// Error is set instead of Metrics when this query failed.
	Error *Error `json:"error,omitempty"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	Version string        `json:"version"`
	Model   *ModelInfo    `json:"model,omitempty"`
	Results []QueryResult `json:"results"`
}

// ModelInfo describes the currently served model (GET /v1/model and the
// model field of predict responses).
type ModelInfo struct {
	// Generation counts hot swaps: 1 is the boot model, each background
	// retrain that is swapped in increments it.
	Generation int64 `json:"generation"`
	// TrainedOn is the number of training queries behind the model.
	TrainedOn int `json:"trained_on"`
	// Features names the query-side feature vector (query-plan or
	// sql-text).
	Features string `json:"features"`
	// TwoStep reports whether type-specific two-step prediction is on.
	TwoStep bool `json:"two_step"`
	// Swaps is the number of completed hot swaps since boot.
	Swaps int64 `json:"swaps"`
	// WindowSize is the sliding window's current occupancy (0 when the
	// daemon runs a static model with no observation feedback). On a
	// multi-shard daemon it is the total across shards.
	WindowSize int `json:"window_size,omitempty"`
	// Shards is the shard count, present only on a daemon running more than
	// one shard. There, Generation is the highest per-shard generation,
	// TrainedOn and Swaps are totals, and GET /v1/shards has the per-shard
	// breakdown.
	Shards int `json:"shards,omitempty"`
	// Partitioner names the routing policy ("hash", "category"), present
	// only on a multi-shard daemon.
	Partitioner string `json:"partitioner,omitempty"`
	// ModelKind names the served model family ("kcca", "planstruct",
	// "optcost"); on a multi-shard daemon whose shards serve different
	// kinds it is "mixed" (per-shard kinds are on GET /v1/shards).
	ModelKind string `json:"model_kind,omitempty"`
	// Champion describes the champion/challenger state, present only when
	// the daemon runs with challengers configured.
	Champion *ChampionInfo `json:"champion,omitempty"`
	// Challengers carries per-kind shadow scores (champion included),
	// present only when the daemon runs with challengers configured.
	Challengers []ChallengerInfo `json:"challengers,omitempty"`
	// Index describes the neighbor-search index of the served generation.
	Index *IndexInfo `json:"index,omitempty"`
	// Recovery reports how the serving state was rebuilt at boot. Present
	// only on a daemon running with -state-dir (absent fields keep the
	// no-durability wire format byte-identical to older daemons). On a
	// multi-shard daemon it aggregates across shards; GET /v1/shards has
	// the per-shard breakdown.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// RecoveryInfo describes a warm start from durable state: whether prior
// state was found, how much of the observation WAL was replayed behind the
// installed snapshot, and whether the log's tail had to be repaired (the
// crash signature).
type RecoveryInfo struct {
	// Recovered is true when a snapshot or WAL records were found and
	// installed; false means the state directory was fresh (cold boot).
	Recovered bool `json:"recovered"`
	// SnapshotSeq is the WAL sequence the installed snapshot covered.
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// Replayed is how many WAL records were re-applied behind the snapshot.
	Replayed int64 `json:"replayed,omitempty"`
	// TornTail reports whether recovery truncated a torn or corrupt log
	// tail, discarding TruncatedBytes.
	TornTail       bool  `json:"torn_tail,omitempty"`
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// ReplaySeconds is how long recovery took.
	ReplaySeconds float64 `json:"replay_seconds,omitempty"`
}

// IndexInfo describes the k-nearest-neighbor index serving predictions for
// the current model generation. The index is exact — predictions are
// bit-identical to a flat scan — so this is purely a performance surface.
// It is rebuilt with every generation and immutable in between; only
// static per-generation shape is reported here (live counters are on
// /metrics under knn.index.*). On a multi-shard daemon the counts are
// totals across shards.
type IndexInfo struct {
	// Kind is "kdtree" when a tree serves searches, "flat" when the
	// generation fell back to the linear scan (for example a window smaller
	// than MinPoints).
	Kind string `json:"kind"`
	// Metric is the distance metric the index is built for ("euclidean" or
	// "cosine").
	Metric string `json:"metric"`
	// Points is the number of indexed training points; Nodes is the KD-tree
	// node count (0 for flat).
	Points int `json:"points"`
	Nodes  int `json:"nodes"`
	// Stragglers counts points held outside the tree and scanned linearly
	// (degenerate coordinates); normally 0.
	Stragglers int `json:"stragglers,omitempty"`
	// MinPoints is the window size below which the generation uses the flat
	// scan.
	MinPoints int `json:"min_points"`
}

// ObserveRequest is the body of POST /v1/observe: executed queries with
// their measured metrics, feeding the sliding retraining window.
type ObserveRequest struct {
	Observations []Observation `json:"observations"`
}

// Observation is one executed query and what it actually cost.
type Observation struct {
	SQL     string  `json:"sql"`
	Metrics Metrics `json:"metrics"`
}

// ObserveResponse is the body of a successful POST /v1/observe. Accepted
// observations are queued; retraining happens in the background, so the
// generation visible here may trail the swap the observations trigger.
type ObserveResponse struct {
	Version    string `json:"version"`
	Accepted   int    `json:"accepted"`
	WindowSize int    `json:"window_size"`
	Generation int64  `json:"generation"`
	// Shard is set when the daemon runs more than one shard and every
	// observation of this request routed to the same shard; WindowSize is
	// then that shard's window. Requests spanning shards leave it empty and
	// report the total window.
	Shard string `json:"shard,omitempty"`
}

// ShardInfo describes one shard of a sharded daemon (GET /v1/shards).
type ShardInfo struct {
	// ID is the shard index; results carry it in their "shard" field.
	ID int `json:"id"`
	// Ready reports whether the shard serves a model.
	Ready bool `json:"ready"`
	// Generation counts the shard's served models (1 = its boot model).
	Generation int64 `json:"generation"`
	// Swaps is the shard's completed hot swaps since boot.
	Swaps int64 `json:"swaps"`
	// TrainedOn is the number of training queries behind the shard's model.
	TrainedOn int `json:"trained_on"`
	// WindowSize is the shard's sliding-window occupancy.
	WindowSize int `json:"window_size"`
	// Predictions counts predictions this shard has served.
	Predictions int64 `json:"predictions"`
	// Observations counts observations this shard has applied.
	Observations int64 `json:"observations"`
	// Recovery reports how this shard's state was rebuilt at boot, present
	// only with -state-dir.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
	// ModelKind names the shard's served model family.
	ModelKind string `json:"model_kind,omitempty"`
	// Champion and Challengers describe this shard's champion/challenger
	// state, present only when the shard runs with challengers configured.
	Champion    *ChampionInfo    `json:"champion,omitempty"`
	Challengers []ChallengerInfo `json:"challengers,omitempty"`
}

// ChampionInfo describes the model kind currently serving traffic under
// champion/challenger operation.
type ChampionInfo struct {
	// Kind is the champion model family; "mixed" in an aggregate view when
	// shards disagree.
	Kind string `json:"kind"`
	// Promotions counts completed challenger promotions since boot.
	Promotions int64 `json:"promotions"`
	// SinceGeneration is the model generation at which the current champion
	// took over (its boot generation until the first promotion).
	SinceGeneration int64 `json:"since_generation,omitempty"`
}

// ChallengerInfo is one model kind's shadow-scoring summary (the champion
// appears too, so consumers can compare without joining fields).
type ChallengerInfo struct {
	// Kind is the scored model family.
	Kind string `json:"kind"`
	// Champion marks the entry that is currently serving traffic.
	Champion bool `json:"champion,omitempty"`
	// Streak is the challenger's consecutive dominant promotion-decision
	// count (promotion fires at the policy's hysteresis threshold).
	Streak int `json:"streak,omitempty"`
	// Categories are the per-workload-category windowed scores.
	Categories []CategoryScore `json:"categories,omitempty"`
}

// CategoryScore is one (model kind, workload category) shadow-score cell.
type CategoryScore struct {
	// Category is the workload class ("feather", "golf_ball",
	// "bowling_ball", "wrecking_ball") of the scored observations, by
	// measured runtime.
	Category string `json:"category"`
	// Samples is the windowed observation count behind the statistics.
	Samples int `json:"samples"`
	// MeanRelErr is the windowed mean relative error of predicted vs
	// actual elapsed time.
	MeanRelErr float64 `json:"mean_rel_err"`
	// Within20 is the fraction of windowed predictions within 20% of the
	// actual elapsed time (the paper's headline accuracy statistic).
	Within20 float64 `json:"within_20"`
}

// ShardsResponse is the body of GET /v1/shards: the routing policy and the
// per-shard model state. The endpoint exists only on a sharded daemon
// (including -shards=1).
type ShardsResponse struct {
	Version     string      `json:"version"`
	Partitioner string      `json:"partitioner"`
	Shards      []ShardInfo `json:"shards"`
}

// Error is a machine-readable failure: Code is stable and branchable,
// Message is human diagnostics and may change freely.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Version string `json:"version"`
	Error   Error  `json:"error"`
}

// Stable error codes. HTTP status codes give the coarse class; these give
// the branchable cause.
const (
	// CodeBadRequest: the body was not valid JSON for the endpoint, or was
	// structurally empty (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeParse: the SQL text did not parse (HTTP 400).
	CodeParse = "parse_error"
	// CodePlan: the query parsed but could not be planned against the
	// schema (HTTP 400).
	CodePlan = "plan_error"
	// CodeDimension: a feature vector did not match the model (HTTP 400).
	CodeDimension = "dimension_mismatch"
	// CodeNotTrained: no model is available yet; retry after the first
	// training completes (HTTP 503).
	CodeNotTrained = "model_not_trained"
	// CodeOverloaded: the request queue is full; back off and retry
	// (HTTP 429).
	CodeOverloaded = "overloaded"
	// CodeTimeout: the per-request deadline elapsed before the prediction
	// was served (HTTP 504).
	CodeTimeout = "timeout"
	// CodeShuttingDown: the daemon is draining and accepts no new work
	// (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeMethod: wrong HTTP method for the endpoint (HTTP 405).
	CodeMethod = "method_not_allowed"
	// CodeInternal: an unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)
