package api

import (
	"encoding/json"
	"testing"

	"repro/internal/exec"
)

func TestInputsNormalization(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []string
	}{
		{"single shorthand", `{"sql": "SELECT 1"}`, []string{"SELECT 1"}},
		{"batch", `{"queries": [{"sql": "a"}, {"sql": "b"}]}`, []string{"a", "b"}},
		{"shorthand plus batch", `{"sql": "a", "queries": [{"sql": "b"}]}`, []string{"a", "b"}},
		{"empty", `{}`, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var req PredictRequest
			if err := json.Unmarshal([]byte(c.body), &req); err != nil {
				t.Fatal(err)
			}
			in := req.Inputs()
			if len(in) != len(c.want) {
				t.Fatalf("got %d inputs, want %d", len(in), len(c.want))
			}
			for i := range in {
				if in[i].SQL != c.want[i] {
					t.Errorf("input %d = %q, want %q", i, in[i].SQL, c.want[i])
				}
			}
		})
	}
}

// TestMetricsRoundTrip checks the wire conversion is lossless and the JSON
// keys are exactly the six metric names of exec.MetricNames — the schema
// consumers grep for.
func TestMetricsRoundTrip(t *testing.T) {
	in := exec.Metrics{
		ElapsedSec:      1.25,
		RecordsAccessed: 1e9,
		RecordsUsed:     3.5e5,
		DiskIOs:         42,
		MessageCount:    7,
		MessageBytes:    1 << 30,
	}
	wire := MetricsFrom(in)
	if wire.Exec() != in {
		t.Fatalf("round trip changed metrics: %+v -> %+v", in, wire.Exec())
	}
	raw, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]float64
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != exec.NumMetrics {
		t.Fatalf("wire metrics have %d keys, want %d: %s", len(keys), exec.NumMetrics, raw)
	}
	for _, name := range exec.MetricNames {
		if _, ok := keys[name]; !ok {
			t.Errorf("wire metrics missing %q: %s", name, raw)
		}
	}
	// JSON float64 encoding is shortest-round-trip, so decode restores the
	// exact bits — the property the serving equivalence tests rely on.
	var back Metrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != wire {
		t.Fatalf("JSON round trip changed metrics: %+v -> %+v", wire, back)
	}
}

// TestErrorResponseShape pins the error envelope: version + code + message.
func TestErrorResponseShape(t *testing.T) {
	raw, err := json.Marshal(ErrorResponse{
		Version: Version,
		Error:   Error{Code: CodeOverloaded, Message: "queue full"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["version"] != Version {
		t.Errorf("version = %v, want %q", m["version"], Version)
	}
	e, ok := m["error"].(map[string]any)
	if !ok || e["code"] != CodeOverloaded || e["message"] != "queue full" {
		t.Errorf("error envelope = %s", raw)
	}
}
