package optimizer

import (
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// totalIntermediate sums the estimated output rows of every join node —
// the DP ordering objective.
func totalIntermediate(p *Plan) float64 {
	s := 0.0
	p.Root.Walk(func(n *Node) {
		switch n.Op {
		case OpHashJoin, OpNestedJoin, OpSemiJoin:
			s += n.EstRows
		}
	})
	return s
}

func TestDPOrderingNeverWorseThanGreedy(t *testing.T) {
	templates := workload.TPCDSTemplates()
	prop := func(seed int64, tplIdx uint8) bool {
		tpl := templates[int(tplIdx)%len(templates)]
		r := statutil.NewRNG(seed, "dp:"+tpl.Name)
		q := tpl.Gen(r)

		greedyCfg := DefaultConfig(4)
		dpCfg := DefaultConfig(4)
		dpCfg.JoinOrdering = OrderDP

		pg, err := BuildPlan(q, testSchema, 3, greedyCfg)
		if err != nil {
			t.Logf("greedy plan error: %v", err)
			return false
		}
		pd, err := BuildPlan(q, testSchema, 3, dpCfg)
		if err != nil {
			t.Logf("DP plan error: %v", err)
			return false
		}
		if err := pd.Validate(); err != nil {
			t.Logf("DP plan invalid: %v", err)
			return false
		}
		// The DP objective (total estimated intermediate rows) must be no
		// worse than greedy's, with a tiny tolerance for floating point.
		return totalIntermediate(pd) <= totalIntermediate(pg)*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDPFindsBetterOrderWhereGreedyFails(t *testing.T) {
	// A four-way chain join where greedily starting from the smallest
	// filtered relation is suboptimal: greedy picks the locally smallest
	// first join, DP weighs the whole chain.
	sqlText := "SELECT COUNT(*) FROM store_sales, item, customer, customer_address " +
		"WHERE ss_item_sk = i_item_sk AND ss_customer_sk = c_customer_sk " +
		"AND c_current_addr_sk = ca_address_sk AND ca_state = 'v5' AND i_category = 'v3'"
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := BuildPlan(q, testSchema, 3, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	dpCfg := DefaultConfig(4)
	dpCfg.JoinOrdering = OrderDP
	dp, err := BuildPlan(q, testSchema, 3, dpCfg)
	if err != nil {
		t.Fatal(err)
	}
	if totalIntermediate(dp) > totalIntermediate(greedy) {
		t.Errorf("DP intermediate rows (%v) exceed greedy (%v)",
			totalIntermediate(dp), totalIntermediate(greedy))
	}
}

func TestDPFallsBackForHugeJoins(t *testing.T) {
	// More FROM entries than maxDPRelations: must still plan (greedy
	// fallback) without exponential blowup.
	sqlText := "SELECT COUNT(*) FROM store_sales, item, customer, customer_address, store, promotion, " +
		"household_demographics, income_band, date_dim, time_dim, warehouse, ship_mode, reason " +
		"WHERE ss_item_sk = i_item_sk AND ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk " +
		"AND ss_store_sk = s_store_sk AND ss_promo_sk = p_promo_sk AND c_current_hdemo_sk = hd_demo_sk " +
		"AND hd_income_band_sk = ib_income_band_sk AND ss_sold_date_sk = d_date_sk AND ss_sold_time_sk = t_time_sk"
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4)
	cfg.JoinOrdering = OrderDP
	p, err := BuildPlan(q, testSchema, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Scans()) != 13 {
		t.Errorf("scans = %d, want 13", len(p.Root.Scans()))
	}
}
