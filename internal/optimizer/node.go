package optimizer

import (
	"fmt"
	"strings"
)

// Node is one physical plan operator. Cardinalities come in pairs: Est*
// fields hold the optimizer's estimates (uniformity + independence + stale
// statistics), Act* fields hold the true values from the full statistical
// model. Downstream consumers choose: the plan feature vector and the
// optimizer cost read estimates; the execution simulator reads actuals.
type Node struct {
	Op    OpType
	Table string // table name for OpFileScan

	// EstRowsIn/ActRowsIn are input cardinalities (for scans: rows
	// scanned; for joins: sum of child outputs).
	EstRowsIn, ActRowsIn float64
	// EstRows/ActRows are output cardinalities.
	EstRows, ActRows float64
	// Width is the output row width in bytes.
	Width int
	// Broadcast marks a partition operator that replicates its input to
	// every processor instead of hash-splitting it.
	Broadcast bool
	// Pairwise marks a nested join that must compare every outer row with
	// every inner row (inequality joins and cross products), as opposed to
	// the keyed probe of a broadcast equijoin.
	Pairwise bool
	// SortCols/GroupCols count the sort or grouping columns for OpSort,
	// OpTopN and OpHashGroupBy.
	SortCols, GroupCols int

	Children []*Node
}

// Plan is a complete physical plan for one query.
type Plan struct {
	Root *Node
	// Cost is the optimizer's scalar cost estimate in internal optimizer
	// units (deliberately not time units, as in commercial optimizers).
	Cost float64
	// Tables lists the base tables scanned, in plan order.
	Tables []string
}

// Walk visits every node in the subtree in depth-first pre-order.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// CountOps returns the number of operators of each type in the subtree.
func (n *Node) CountOps() [NumOpTypes]int {
	var counts [NumOpTypes]int
	n.Walk(func(m *Node) { counts[m.Op]++ })
	return counts
}

// Scans returns all file-scan nodes in the subtree, in plan order.
func (n *Node) Scans() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.Op == OpFileScan {
			out = append(out, m)
		}
	})
	return out
}

// String renders an indented plan tree with estimated and actual
// cardinalities, in the style of an EXPLAIN listing.
func (n *Node) String() string {
	var sb strings.Builder
	n.format(&sb, 0)
	return sb.String()
}

func (n *Node) format(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Op.String())
	if n.Table != "" {
		fmt.Fprintf(sb, " [%s]", n.Table)
	}
	if n.Broadcast {
		sb.WriteString(" (broadcast)")
	}
	fmt.Fprintf(sb, "  est=%.0f act=%.0f", n.EstRows, n.ActRows)
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.format(sb, depth+1)
	}
}

// Validate checks structural plan invariants: operator arity, nonnegative
// cardinalities, and scans having tables.
func (p *Plan) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("optimizer: plan has no root")
	}
	if p.Root.Op != OpRoot {
		return fmt.Errorf("optimizer: top operator is %s, want root", p.Root.Op)
	}
	var err error
	p.Root.Walk(func(n *Node) {
		if err != nil {
			return
		}
		switch n.Op {
		case OpFileScan:
			if n.Table == "" {
				err = fmt.Errorf("optimizer: file_scan with no table")
			}
			if len(n.Children) != 0 {
				err = fmt.Errorf("optimizer: file_scan with children")
			}
		case OpNestedJoin, OpHashJoin, OpSemiJoin:
			if len(n.Children) != 2 {
				err = fmt.Errorf("optimizer: %s has %d children, want 2", n.Op, len(n.Children))
			}
		default:
			if len(n.Children) != 1 {
				err = fmt.Errorf("optimizer: %s has %d children, want 1", n.Op, len(n.Children))
			}
		}
		if n.EstRows < 0 || n.ActRows < 0 || n.EstRowsIn < 0 || n.ActRowsIn < 0 {
			err = fmt.Errorf("optimizer: %s has negative cardinality", n.Op)
		}
		if n.Width <= 0 {
			err = fmt.Errorf("optimizer: %s has nonpositive width", n.Op)
		}
	})
	return err
}
