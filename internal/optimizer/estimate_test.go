package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/sqlgen"
)

func newEstimator() *Estimator {
	return &Estimator{Schema: catalog.TPCDS(1), Seed: 9}
}

func TestEqSelectivityBounds(t *testing.T) {
	e := newEstimator()
	table := e.Schema.Table("item")
	col := table.Column("i_category") // NDV 10, skewed
	for v := 0.0; v < 10; v++ {
		est, act := e.eqSelectivity(table, col, v)
		if est <= 0 || est > 1 || act <= 0 || act > 1 {
			t.Fatalf("selectivity out of range for value %v: est=%v act=%v", v, est, act)
		}
	}
	// Low-NDV columns have histogram-tracked estimates: est within a small
	// factor of act.
	est, act := e.eqSelectivity(table, col, 3)
	ratio := est / act
	if ratio < math.Exp(-0.5) || ratio > math.Exp(0.5) {
		t.Errorf("histogram estimate too far from actual: ratio %v", ratio)
	}
	// High-NDV keys fall back to the uniform assumption.
	ss := e.Schema.Table("store_sales")
	cust := ss.Column("ss_customer_sk")
	estK, _ := e.eqSelectivity(ss, cust, 12345)
	if want := 1 / float64(cust.NDV); math.Abs(estK-want) > 1e-15 {
		t.Errorf("high-NDV estimate = %v, want uniform %v", estK, want)
	}
}

func TestRangeSelectivityProperties(t *testing.T) {
	e := newEstimator()
	table := e.Schema.Table("store_sales")
	col := table.Column("ss_sold_date_sk")
	prop := func(a, b uint16) bool {
		lo := col.Min + float64(a%1800)
		hi := lo + float64(b%400)
		est, act := e.rangeSelectivity(table, col, lo, hi)
		if est < 0 || est > 1 || act < 0 || act > 1 {
			return false
		}
		// Wider ranges have no smaller actual selectivity, up to the
		// documented instance-keyed residual (±10% per endpoint draw).
		_, act2 := e.rangeSelectivity(table, col, lo, hi+100)
		return act2 >= act*0.8-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
	// Degenerate range.
	if est, act := e.rangeSelectivity(table, col, 100, 50); est != 0 || act != 0 {
		t.Errorf("inverted range should be empty: %v %v", est, act)
	}
	// Full-domain range is (near-)everything on both models.
	est, act := e.rangeSelectivity(table, col, col.Min, col.Max)
	if est < 0.8 || act < 0.8 {
		t.Errorf("full range too selective: est=%v act=%v", est, act)
	}
}

func TestPredSelectivityKinds(t *testing.T) {
	e := newEstimator()
	table := e.Schema.Table("store_sales")
	mk := func(op sqlgen.CmpOp, v float64) sqlgen.Predicate {
		return sqlgen.Predicate{Col: sqlgen.ColumnRef{Column: "ss_quantity"}, Op: op, Value: sqlgen.Literal{Value: v}}
	}
	// Ne complements Eq.
	estEq, actEq := e.predSelectivity(table, mk(sqlgen.OpEq, 5))
	estNe, actNe := e.predSelectivity(table, mk(sqlgen.OpNe, 5))
	if math.Abs(estEq+estNe-1) > 1e-12 || math.Abs(actEq+actNe-1) > 1e-12 {
		t.Errorf("Ne does not complement Eq: %v+%v, %v+%v", estEq, estNe, actEq, actNe)
	}
	// IN sums equality selectivities.
	in := sqlgen.Predicate{Col: sqlgen.ColumnRef{Column: "ss_quantity"}, Op: sqlgen.OpIn,
		Values: []sqlgen.Literal{{Value: 1}, {Value: 2}, {Value: 3}}}
	estIn, actIn := e.predSelectivity(table, in)
	if estIn <= estEq || actIn <= 0 || actIn > 1 {
		t.Errorf("IN selectivity implausible: est=%v act=%v", estIn, actIn)
	}
	// Lt/Gt partition the domain approximately.
	estLt, _ := e.predSelectivity(table, mk(sqlgen.OpLt, 50))
	estGt, _ := e.predSelectivity(table, mk(sqlgen.OpGt, 50))
	if estLt <= 0 || estGt <= 0 || estLt+estGt > 2 {
		t.Errorf("one-sided selectivities implausible: %v %v", estLt, estGt)
	}
	// Unknown columns fall back to a guess, not a crash.
	unknown := sqlgen.Predicate{Col: sqlgen.ColumnRef{Column: "mystery"}, Op: sqlgen.OpEq, Value: sqlgen.Literal{Value: 1}}
	est, act := e.predSelectivity(table, unknown)
	if est <= 0 || act <= 0 {
		t.Errorf("unknown column fallback broken: %v %v", est, act)
	}
}

func TestJoinCardsInequality(t *testing.T) {
	e := newEstimator()
	j := sqlgen.JoinPred{
		Left:  sqlgen.ColumnRef{Column: "ss_sold_date_sk"},
		Right: sqlgen.ColumnRef{Column: "sr_returned_date_sk"},
		Op:    sqlgen.OpLe,
	}
	left := Card{Est: 1e6, Act: 1e6}
	right := Card{Est: 1e5, Act: 1e5}
	out := e.JoinCards(j, "store_sales", "store_returns", left, right)
	// The classic magic constant on the estimate side.
	if math.Abs(out.Est-1e11/3) > 1 {
		t.Errorf("inequality join estimate = %v, want product/3", out.Est)
	}
	// The actual selectivity is a keyed draw in (0.05, 0.6].
	sel := out.Act / 1e11
	if sel < 0.05-1e-9 || sel > 0.6+1e-9 {
		t.Errorf("actual inequality selectivity = %v", sel)
	}
}

func TestSemiJoinCardsBounds(t *testing.T) {
	e := newEstimator()
	outer := Card{Est: 1e6, Act: 1e6}
	// A huge subquery covers the whole domain: semi-join keeps everything.
	all := e.SemiJoinCards("store_sales", "ss_item_sk", outer, Card{Est: 1e9, Act: 1e9})
	if all.Est > outer.Est+1 || all.Act > outer.Act*2 {
		t.Errorf("semi-join exceeded outer: %+v", all)
	}
	// A tiny subquery keeps almost nothing.
	few := e.SemiJoinCards("store_sales", "ss_item_sk", outer, Card{Est: 3, Act: 3})
	if few.Est >= all.Est {
		t.Errorf("semi-join should shrink with subquery size: %v vs %v", few.Est, all.Est)
	}
}

func TestGroupNDVCaps(t *testing.T) {
	e := newEstimator()
	// The product of large NDVs is capped, not overflowed.
	cols := []columnBinding{
		{table: "store_sales", column: "ss_ticket_number"},
		{table: "store_sales", column: "ss_customer_sk"},
		{table: "store_sales", column: "ss_item_sk"},
	}
	if ndv := e.GroupNDV(cols); ndv > 1e15 || math.IsInf(ndv, 0) {
		t.Errorf("NDV product not capped: %v", ndv)
	}
	// Unknown columns are skipped.
	if ndv := e.GroupNDV([]columnBinding{{table: "nope", column: "x"}}); ndv != 1 {
		t.Errorf("unknown binding ndv = %v", ndv)
	}
}

func TestClampAndFloorHelpers(t *testing.T) {
	if clampSel(-0.5) != 0 || clampSel(1.5) != 1 || clampSel(0.3) != 0.3 {
		t.Error("clampSel wrong")
	}
	if floorOne(0.2) != 1 || floorOne(7) != 7 {
		t.Error("floorOne wrong")
	}
}
