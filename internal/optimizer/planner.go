package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/sqlgen"
)

// Config holds the planner knobs that depend on the target machine. The
// paper observes that plans for the 4-node system differ from plans for the
// 32-node system; these knobs are why our plans differ too.
type Config struct {
	// Processors is the number of CPUs the query may use.
	Processors int
	// BroadcastRows is the largest (estimated) inner cardinality for which
	// the planner replicates the inner side of a join to all processors
	// and uses a nested join instead of repartitioning both sides into a
	// hash join. Zero selects the default.
	BroadcastRows float64
	// JoinOrdering selects the join enumeration strategy.
	JoinOrdering JoinOrdering
}

// JoinOrdering selects how the planner orders joins.
type JoinOrdering int

const (
	// OrderGreedy is the default smallest-result-first heuristic.
	OrderGreedy JoinOrdering = iota
	// OrderDP enumerates left-deep orders with dynamic programming,
	// minimizing total estimated intermediate cardinality (capped at
	// maxDPRelations relations; larger queries fall back to greedy).
	OrderDP
)

// DefaultConfig returns planner settings for a machine with p processors.
func DefaultConfig(p int) Config {
	if p <= 0 {
		p = 4
	}
	return Config{Processors: p, BroadcastRows: 3000 * float64(p)}
}

func (c Config) broadcastRows() float64 {
	if c.BroadcastRows > 0 {
		return c.BroadcastRows
	}
	return 3000 * float64(c.Processors)
}

// BuildPlan compiles the query into a parallel physical plan against the
// schema. The seed selects the data realization (see Estimator). The
// returned plan carries both estimated and actual cardinalities on every
// node plus the optimizer's scalar cost estimate.
func BuildPlan(q *sqlgen.Query, schema *catalog.Schema, seed int64, cfg Config) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	est := &Estimator{Schema: schema, Seed: seed}
	p := &planner{q: q, schema: schema, est: est, cfg: cfg}
	return p.plan()
}

type planner struct {
	q      *sqlgen.Query
	schema *catalog.Schema
	est    *Estimator
	cfg    Config
}

// joinItem is a subtree participating in join ordering together with the
// FROM names (aliases) it covers.
type joinItem struct {
	node  *Node
	names map[string]bool
}

func (p *planner) plan() (*Plan, error) {
	// Resolve FROM names to tables.
	fromTables := map[string]string{} // FROM name -> table name
	for _, t := range p.q.From {
		if p.schema.Table(t.Table) == nil {
			return nil, fmt.Errorf("optimizer: unknown table %q", t.Table)
		}
		fromTables[t.Name()] = t.Table
	}
	resolve := func(c sqlgen.ColumnRef) (fromName, tableName string, err error) {
		if c.Table != "" {
			tab, ok := fromTables[c.Table]
			if !ok {
				return "", "", fmt.Errorf("optimizer: column %s references unknown FROM name", c)
			}
			return c.Table, tab, nil
		}
		for name, tab := range fromTables {
			if p.schema.Table(tab).Column(c.Column) != nil {
				return name, tab, nil
			}
		}
		return "", "", fmt.Errorf("optimizer: cannot resolve column %q", c.Column)
	}

	// Resolve output and ordering columns so unknown columns are rejected.
	for _, it := range p.q.Select {
		if it.Agg == sqlgen.AggCountStar {
			continue
		}
		if _, _, err := resolve(it.Col); err != nil {
			return nil, err
		}
	}
	for _, o := range p.q.OrderBy {
		if _, _, err := resolve(o.Col); err != nil {
			return nil, err
		}
	}

	// Distribute WHERE predicates to their tables; pull out subquery
	// predicates for semi-join treatment.
	type subqueryPred struct {
		fromName string
		column   string
		sub      *sqlgen.Query
	}
	tablePreds := map[string][]sqlgen.Predicate{}
	var inSubs []subqueryPred
	var existsSubs []*sqlgen.Query
	for _, pred := range p.q.Where {
		if pred.Exists {
			existsSubs = append(existsSubs, pred.Subquery)
			continue
		}
		name, _, err := resolve(pred.Col)
		if err != nil {
			return nil, err
		}
		if pred.Subquery != nil {
			inSubs = append(inSubs, subqueryPred{fromName: name, column: pred.Col.Column, sub: pred.Subquery})
			continue
		}
		tablePreds[name] = append(tablePreds[name], pred)
	}

	// Build one scan (plus possible semi-joins) per FROM entry.
	items := make([]*joinItem, 0, len(p.q.From))
	byName := map[string]*joinItem{}
	var tables []string
	for _, t := range p.q.From {
		name := t.Name()
		in, out, err := p.est.ScanCards(t.Table, tablePreds[name])
		if err != nil {
			return nil, err
		}
		scan := &Node{
			Op:        OpFileScan,
			Table:     t.Table,
			EstRowsIn: in.Est, ActRowsIn: in.Act,
			EstRows: out.Est, ActRows: out.Act,
			Width: p.schema.Table(t.Table).RowWidth(),
		}
		item := &joinItem{node: scan, names: map[string]bool{name: true}}
		items = append(items, item)
		byName[name] = item
		tables = append(tables, t.Table)
	}

	// IN-subquery predicates become semi-joins above the owning scan.
	for _, sp := range inSubs {
		subPlan, err := BuildPlan(sp.sub, p.schema, p.est.Seed, p.cfg)
		if err != nil {
			return nil, fmt.Errorf("optimizer: subquery: %w", err)
		}
		item := byName[sp.fromName]
		outer := item.node
		outerCard := Card{Est: outer.EstRows, Act: outer.ActRows}
		subRoot := stripRoot(subPlan.Root)
		subCard := Card{Est: subRoot.EstRows, Act: subRoot.ActRows}
		out := p.est.SemiJoinCards(fromTables[sp.fromName], sp.column, outerCard, subCard)
		item.node = &Node{
			Op:        OpSemiJoin,
			EstRowsIn: outer.EstRows + subRoot.EstRows,
			ActRowsIn: outer.ActRows + subRoot.ActRows,
			EstRows:   out.Est, ActRows: out.Act,
			Width:    outer.Width,
			Children: []*Node{outer, p.repartition(subRoot, false)},
		}
		tables = append(tables, collectTables(subRoot)...)
	}

	// Group join predicates by the unordered pair of FROM names they
	// connect.
	edges := map[string]*edge{}
	for _, j := range p.q.Joins {
		an, at, err := resolve(j.Left)
		if err != nil {
			return nil, err
		}
		bn, bt, err := resolve(j.Right)
		if err != nil {
			return nil, err
		}
		if an == bn {
			// Self-comparison within one table: treat as a generic filter
			// with a keyed selectivity on the actual side.
			item := byName[an]
			item.node.EstRows = floorOne(item.node.EstRows / 3)
			item.node.ActRows = floorOne(item.node.ActRows * p.est.surprise(0.5, at, j.Left.Column, "selfcmp") / 3)
			continue
		}
		key := an + "\x00" + bn
		if bn < an {
			key = bn + "\x00" + an
		}
		rj := resolvedJoin{pred: j, leftTable: at, rightTable: bt}
		if e, ok := edges[key]; ok {
			e.preds = append(e.preds, rj)
		} else {
			edges[key] = &edge{a: an, b: bn, preds: []resolvedJoin{rj}}
		}
	}

	// Join ordering: enumerate a left-deep join order, minimizing total
	// estimated intermediate cardinality. The default is the greedy
	// heuristic (commercial heuristic planners of the period behaved this
	// way); exhaustive Selinger-style dynamic programming is available via
	// Config.JoinOrdering for small join graphs.
	findEdge := func(l, r *joinItem) *edge {
		for _, e := range edges {
			if (l.names[e.a] && r.names[e.b]) || (l.names[e.b] && r.names[e.a]) {
				return e
			}
		}
		return nil
	}
	var current *joinItem
	if p.cfg.JoinOrdering == OrderDP && len(items) <= maxDPRelations {
		current = p.orderDP(items, findEdge)
	} else {
		current = p.orderGreedy(items, findEdge)
	}
	tree := current.node

	// Uncorrelated EXISTS subqueries: evaluated once, filtering nothing in
	// expectation but contributing their subplan's work.
	for _, sub := range existsSubs {
		subPlan, err := BuildPlan(sub, p.schema, p.est.Seed, p.cfg)
		if err != nil {
			return nil, fmt.Errorf("optimizer: EXISTS subquery: %w", err)
		}
		subRoot := stripRoot(subPlan.Root)
		tree = &Node{
			Op:        OpSemiJoin,
			EstRowsIn: tree.EstRows + subRoot.EstRows,
			ActRowsIn: tree.ActRows + subRoot.ActRows,
			EstRows:   tree.EstRows, ActRows: tree.ActRows,
			Width:    tree.Width,
			Children: []*Node{tree, p.repartition(subRoot, false)},
		}
		tables = append(tables, collectTables(subRoot)...)
	}

	// Aggregation.
	if len(p.q.GroupBy) > 0 {
		var bindings []columnBinding
		for _, g := range p.q.GroupBy {
			_, tab, err := resolve(g)
			if err != nil {
				return nil, err
			}
			bindings = append(bindings, columnBinding{table: tab, column: g.Column})
		}
		ndv := p.est.GroupNDV(bindings)
		out := p.est.GroupCards(ndv, Card{Est: tree.EstRows, Act: tree.ActRows})
		// Parallel aggregation repartitions its input by the grouping key.
		tree = p.repartition(tree, false)
		tree = &Node{
			Op:        OpHashGroupBy,
			EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
			EstRows: out.Est, ActRows: out.Act,
			Width:     16*len(p.q.GroupBy) + 8*len(p.q.Select),
			GroupCols: len(p.q.GroupBy),
			Children:  []*Node{tree},
		}
	} else if p.q.HasAggregate() {
		tree = &Node{
			Op:        OpScalarAgg,
			EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
			EstRows: 1, ActRows: 1,
			Width:    8 * len(p.q.Select),
			Children: []*Node{tree},
		}
	}

	// Ordering and limit.
	if len(p.q.OrderBy) > 0 {
		tree = &Node{
			Op:        OpSort,
			EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
			EstRows: tree.EstRows, ActRows: tree.ActRows,
			Width:    tree.Width,
			SortCols: len(p.q.OrderBy),
			Children: []*Node{tree},
		}
	}
	if p.q.Limit > 0 {
		lim := float64(p.q.Limit)
		tree = &Node{
			Op:        OpTopN,
			EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
			EstRows: math.Min(lim, tree.EstRows), ActRows: math.Min(lim, tree.ActRows),
			Width:    tree.Width,
			SortCols: len(p.q.OrderBy),
			Children: []*Node{tree},
		}
	}

	// Merge results to the coordinator.
	tree = &Node{
		Op:        OpExchange,
		EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
		EstRows: tree.EstRows, ActRows: tree.ActRows,
		Width:    tree.Width,
		Children: []*Node{tree},
	}
	root := &Node{
		Op:        OpRoot,
		EstRowsIn: tree.EstRows, ActRowsIn: tree.ActRows,
		EstRows: tree.EstRows, ActRows: tree.ActRows,
		Width:    tree.Width,
		Children: []*Node{tree},
	}

	plan := &Plan{Root: root, Tables: tables}
	plan.Cost = ScalarCost(root)
	return plan, nil
}

// joinCard computes the output cardinality of joining items l and r via the
// predicates on edge e.
func (p *planner) joinCard(e *edge, l, r *joinItem) Card {
	out := Card{Est: 0, Act: 0}
	for i, rj := range e.preds {
		if i == 0 {
			out = p.est.JoinCards(rj.pred, rj.leftTable, rj.rightTable,
				Card{Est: l.node.EstRows, Act: l.node.ActRows},
				Card{Est: r.node.EstRows, Act: r.node.ActRows})
		} else {
			// Additional predicates between the same pair act as filters.
			extra := p.est.JoinCards(rj.pred, rj.leftTable, rj.rightTable, out, Card{Est: 1, Act: 1})
			out = Card{Est: floorOne(extra.Est), Act: floorOne(extra.Act)}
		}
	}
	return out
}

// joinItems builds the physical join node combining l and r.
func (p *planner) joinItems(l, r *joinItem, e *edge) *joinItem {
	var out Card
	equiOnly := true
	if e != nil {
		out = p.joinCard(e, l, r)
		for _, rj := range e.preds {
			if rj.pred.Op != sqlgen.OpEq {
				equiOnly = false
			}
		}
	} else {
		out = Card{Est: l.node.EstRows * r.node.EstRows, Act: l.node.ActRows * r.node.ActRows}
		equiOnly = false // cross product runs as a nested join
	}

	// Keep the smaller (estimated) side as the inner/build side.
	outer, inner := l.node, r.node
	if outer.EstRows < inner.EstRows {
		outer, inner = inner, outer
	}

	var join *Node
	if equiOnly && inner.EstRows > p.cfg.broadcastRows() {
		// Repartition both sides on the join key and hash join.
		join = &Node{
			Op:       OpHashJoin,
			Children: []*Node{p.repartition(outer, false), p.repartition(inner, false)},
		}
	} else {
		// Broadcast the inner side and run a nested join. For equijoins
		// this is the small-inner broadcast strategy; for inequality joins
		// and cross products it is the only option.
		join = &Node{
			Op:       OpNestedJoin,
			Pairwise: !equiOnly,
			Children: []*Node{outer, p.repartition(inner, true)},
		}
	}
	join.EstRowsIn = outer.EstRows + inner.EstRows
	join.ActRowsIn = outer.ActRows + inner.ActRows
	join.EstRows, join.ActRows = out.Est, out.Act
	join.Width = outer.Width + inner.Width

	names := map[string]bool{}
	for n := range l.names {
		names[n] = true
	}
	for n := range r.names {
		names[n] = true
	}
	return &joinItem{node: join, names: names}
}

// repartition wraps child in split(partitioning(child)) — the operators
// that move rows between processors. Broadcast partitions replicate every
// row to all processors.
func (p *planner) repartition(child *Node, broadcast bool) *Node {
	part := &Node{
		Op:        OpPartition,
		EstRowsIn: child.EstRows, ActRowsIn: child.ActRows,
		EstRows: child.EstRows, ActRows: child.ActRows,
		Width:     child.Width,
		Broadcast: broadcast,
		Children:  []*Node{child},
	}
	return &Node{
		Op:        OpSplit,
		EstRowsIn: part.EstRows, ActRowsIn: part.ActRows,
		EstRows: part.EstRows, ActRows: part.ActRows,
		Width:    part.Width,
		Children: []*Node{part},
	}
}

// stripRoot removes a subplan's root and coordinator exchange so it can be
// embedded under a join.
func stripRoot(n *Node) *Node {
	for n.Op == OpRoot || n.Op == OpExchange {
		n = n.Children[0]
	}
	return n
}

func collectTables(n *Node) []string {
	var out []string
	n.Walk(func(m *Node) {
		if m.Op == OpFileScan {
			out = append(out, m.Table)
		}
	})
	return out
}

// edge is the planner-internal join-graph edge type. Predicates carry the
// resolved base-table names of both sides so cardinality estimation can
// look up column statistics regardless of aliasing.
type edge struct {
	a, b  string
	preds []resolvedJoin
}

// resolvedJoin pairs a join predicate with the resolved base tables of its
// two sides.
type resolvedJoin struct {
	pred                  sqlgen.JoinPred
	leftTable, rightTable string
}

// maxDPRelations bounds the dynamic-programming join enumerator (2^n
// subsets); larger FROM lists fall back to the greedy heuristic.
const maxDPRelations = 12

// joinScore is the ordering objective: estimated output rows, with cross
// products heavily penalized.
func (p *planner) joinScore(l, r *joinItem, e *edge) (Card, float64) {
	var out Card
	if e != nil {
		out = p.joinCard(e, l, r)
		return out, out.Est
	}
	out = Card{Est: l.node.EstRows * r.node.EstRows, Act: l.node.ActRows * r.node.ActRows}
	return out, out.Est * 1e6
}

// orderGreedy builds a left-deep order starting from the smallest
// estimated item, repeatedly joining the candidate with the smallest
// estimated result.
func (p *planner) orderGreedy(items []*joinItem, findEdge func(l, r *joinItem) *edge) *joinItem {
	sort.SliceStable(items, func(i, j int) bool { return items[i].node.EstRows < items[j].node.EstRows })
	current := items[0]
	remaining := append([]*joinItem(nil), items[1:]...)
	for len(remaining) > 0 {
		bestIdx := -1
		bestScore := math.Inf(1)
		var bestEdge *edge
		for i, cand := range remaining {
			e := findEdge(current, cand)
			_, score := p.joinScore(current, cand, e)
			if score < bestScore {
				bestScore = score
				bestIdx = i
				bestEdge = e
			}
		}
		next := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		current = p.joinItems(current, next, bestEdge)
	}
	return current
}

// orderDP enumerates left-deep join orders over subsets of the relations
// (Selinger-style dynamic programming), minimizing the accumulated
// estimated intermediate cardinality.
func (p *planner) orderDP(items []*joinItem, findEdge func(l, r *joinItem) *edge) *joinItem {
	n := len(items)
	if n == 1 {
		return items[0]
	}
	type entry struct {
		item *joinItem
		cost float64
	}
	best := make(map[uint32]entry, 1<<n)
	for i, it := range items {
		best[1<<uint(i)] = entry{item: it, cost: 0}
	}
	full := uint32(1<<uint(n)) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singletons seeded above
		}
		var choice entry
		found := false
		for i := 0; i < n; i++ {
			bit := uint32(1) << uint(i)
			if mask&bit == 0 {
				continue
			}
			rest := mask &^ bit
			left, ok := best[rest]
			if !ok {
				continue
			}
			e := findEdge(left.item, items[i])
			_, score := p.joinScore(left.item, items[i], e)
			cost := left.cost + score
			if !found || cost < choice.cost {
				joined := p.joinItems(left.item, items[i], e)
				choice = entry{item: joined, cost: cost}
				found = true
			}
		}
		best[mask] = choice
	}
	return best[full].item
}
