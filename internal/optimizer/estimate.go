package optimizer

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/catalog"
	"repro/internal/sqlgen"
)

// Estimator computes cardinalities for plan construction. Every quantity is
// produced twice:
//
//   - the optimizer estimate, under the textbook assumptions real
//     optimizers make — uniform value distributions, independent
//     predicates, magic selectivity constants for inequality joins, and
//     statistics that are stale with respect to recently loaded data;
//
//   - the true value, from the full statistical model — Zipf-skewed value
//     frequencies, correlated predicates, and per-value "data surprises"
//     drawn deterministically from the data-realization seed, so the same
//     query always sees the same data and similar queries see similar
//     data.
//
// The gap between the two is exactly the paper's "sources of uncertainty,
// such as skewed data distributions and erroneous cardinality estimates".
type Estimator struct {
	Schema *catalog.Schema
	// Seed identifies the data realization; surprises are deterministic
	// functions of (seed, schema, table, column, value).
	Seed int64
}

// Card is an (estimated, actual) cardinality pair.
type Card struct {
	Est, Act float64
}

// staleFraction is how much of the top of a date column's domain the
// optimizer's statistics have not seen (data loaded after the last stats
// refresh).
const staleFraction = 0.12

// corrExponentBase controls how strongly multiple predicates on one table
// correlate: the product of per-predicate selectivities is raised to
// corrExponentBase^(k-1) for k predicates, making the combined predicate
// less selective than independence predicts.
const corrExponentBase = 0.82

// hash01 maps the key strings to a deterministic uniform value in [0, 1).
func (e *Estimator) hash01(keys ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d", e.Schema.Name, e.Seed)
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// surprise returns a deterministic multiplicative factor exp(s·(2u−1)),
// i.e. in [e^−s, e^s], keyed by the given strings.
func (e *Estimator) surprise(s float64, keys ...string) float64 {
	if s <= 0 {
		return 1
	}
	u := e.hash01(keys...)
	return math.Exp(s * (2*u - 1))
}

// hotness returns the true frequency multiplier of one specific value of a
// skewed column relative to the uniform frequency: a Pareto draw keyed by
// the value, capped so the implied selectivity stays below one.
func (e *Estimator) hotness(col *catalog.Column, keys ...string) float64 {
	if col.Skew <= 0 {
		return 1
	}
	u := e.hash01(keys...)
	h := math.Pow(1/(1-u+1e-12), col.Skew)
	cap := float64(col.NDV) / 2
	if cap < 1 {
		cap = 1
	}
	if h > cap {
		h = cap
	}
	return h
}

// histogramNDV is the largest distinct-value count for which the optimizer
// maintains per-value frequency histograms. Below it, equality estimates
// track the true (skewed) frequencies within a small error; above it, the
// optimizer falls back to the uniform 1/NDV assumption and misses hot
// values entirely.
const histogramNDV = 4096

// eqSelectivity returns the (est, act) selectivity of col = value.
func (e *Estimator) eqSelectivity(table *catalog.Table, col *catalog.Column, value float64) (float64, float64) {
	ndv := float64(col.NDV)
	if ndv < 1 {
		ndv = 1
	}
	uniform := 1 / ndv
	act := clampSel(uniform * e.hotness(col, table.Name, col.Name, fmt.Sprintf("eq:%g", value)))
	est := uniform
	if col.NDV <= histogramNDV {
		est = clampSel(act * e.surprise(0.45, table.Name, col.Name, fmt.Sprintf("histeq:%g", value)))
	}
	return est, act
}

// rangeSelectivity returns the (est, act) selectivity of lo <= col <= hi.
func (e *Estimator) rangeSelectivity(table *catalog.Table, col *catalog.Column, lo, hi float64) (float64, float64) {
	if hi < lo {
		return 0, 0
	}
	domLo, domHi := col.Min, col.Max
	span := domHi - domLo
	if span <= 0 {
		span = 1
	}
	overlap := func(min, max float64) float64 {
		l, h := math.Max(lo, min), math.Min(hi, max)
		if h <= l {
			return 0
		}
		return (h - l) / (max - min)
	}
	uniformFrac := overlap(domLo, domHi)
	// Value density varies across the domain (seasonal spikes in dates,
	// mass concentration in skewed columns), so the true fraction in a
	// range is a position-dependent power of the uniform fraction:
	// act = frac^γ(pos). The exponent varies SMOOTHLY with the range's
	// position — knot values are drawn per (column, knot index) and
	// linearly interpolated — which is what preserves locality: two
	// queries with nearby ranges get nearly identical γ and therefore the
	// same estimate-to-actual mapping (so nearest-neighbor prediction
	// keeps working), while across the whole workload the mapping bends
	// in ways no single linear model fits (so the paper's regression
	// baseline collapses).
	const knots = 8
	pos := ((lo+hi)/2 - domLo) / span
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	lerpKnots := func(kind string) float64 {
		x := pos * knots
		i := int(x)
		if i >= knots {
			i = knots - 1
		}
		t := x - float64(i)
		a := e.hash01(table.Name, col.Name, kind, fmt.Sprintf("knot:%d", i))
		b := e.hash01(table.Name, col.Name, kind, fmt.Sprintf("knot:%d", i+1))
		return a*(1-t) + b*t
	}
	gamma := 0.6 + 0.4*lerpKnots("density")
	act := uniformFrac
	if act > 0 && act < 1 {
		act = math.Pow(act, gamma)
	}
	// Skewed columns add a further smoothly varying deviation.
	act *= math.Exp(0.5 * col.Skew * (2*lerpKnots("rngskew") - 1))
	regionKey := fmt.Sprintf("region:%d", int(pos*float64(knots)))
	// A small residual keyed by the exact constants: fine-grained density
	// structure below histogram resolution. This is the component no
	// feature vector can capture, bounding every model's accuracy. Known
	// artifact: because the residual is redrawn when the endpoints move,
	// the synthetic "actual" is only approximately monotone under range
	// widening (within the ±10% residual bound), unlike physical data.
	act *= e.surprise(0.10, table.Name, col.Name, fmt.Sprintf("fine:%g:%g", lo, hi))
	// The optimizer estimates from the uniform assumption. Its statistics
	// are additionally stale for date columns: it has not seen the top
	// staleFraction of the domain, so ranges touching recent data are
	// underestimated.
	var est float64
	if col.Type == catalog.TypeDate {
		staleHi := domHi - staleFraction*(domHi-domLo)
		est = overlap(domLo, staleHi)
	} else {
		// Equi-depth histograms blur the uniform estimate by their
		// resolution error.
		est = uniformFrac * e.surprise(0.3, table.Name, col.Name, "histrng", regionKey)
	}
	return clampSel(est), clampSel(act)
}

// cmpSelectivity returns the (est, act) selectivity of col op value for
// single-sided comparisons.
func (e *Estimator) cmpSelectivity(table *catalog.Table, col *catalog.Column, op sqlgen.CmpOp, value float64) (float64, float64) {
	switch op {
	case sqlgen.OpEq:
		return e.eqSelectivity(table, col, value)
	case sqlgen.OpNe:
		est, act := e.eqSelectivity(table, col, value)
		return clampSel(1 - est), clampSel(1 - act)
	case sqlgen.OpLt, sqlgen.OpLe:
		return e.rangeSelectivity(table, col, col.Min, value)
	case sqlgen.OpGt, sqlgen.OpGe:
		return e.rangeSelectivity(table, col, value, col.Max)
	default:
		return 1, 1
	}
}

// predSelectivity returns the (est, act) selectivity of a single predicate.
// IN-subquery and EXISTS predicates are handled by the planner (as
// semi-joins and subplan filters) and must not be passed here.
func (e *Estimator) predSelectivity(table *catalog.Table, p sqlgen.Predicate) (float64, float64) {
	col := table.Column(p.Col.Column)
	if col == nil {
		// Unknown column: both models fall back to a guess.
		return 0.1, 0.1
	}
	switch p.Op {
	case sqlgen.OpBetween:
		return e.rangeSelectivity(table, col, p.Lo.Value, p.Hi.Value)
	case sqlgen.OpIn:
		est, act := 0.0, 0.0
		for _, v := range p.Values {
			e1, a1 := e.eqSelectivity(table, col, v.Value)
			est += e1
			act += a1
		}
		return clampSel(est), clampSel(act)
	default:
		return e.cmpSelectivity(table, col, p.Op, p.Value.Value)
	}
}

// ScanCards returns the input (rows scanned) and output (rows surviving the
// pushed-down predicates) cardinalities for a base-table scan. The
// estimated output assumes independent predicates; the actual output models
// positive correlation between predicates on the same table.
func (e *Estimator) ScanCards(tableName string, preds []sqlgen.Predicate) (in Card, out Card, err error) {
	table := e.Schema.Table(tableName)
	if table == nil {
		return Card{}, Card{}, fmt.Errorf("optimizer: unknown table %q", tableName)
	}
	rows := float64(table.RowCount)
	in = Card{Est: rows, Act: rows}
	estSel, actSel := 1.0, 1.0
	k := 0
	for _, p := range preds {
		if p.Subquery != nil || p.Exists {
			continue
		}
		es, as := e.predSelectivity(table, p)
		estSel *= es
		actSel *= as
		k++
	}
	if k > 1 {
		actSel = math.Pow(actSel, math.Pow(corrExponentBase, float64(k-1)))
	}
	out = Card{Est: rows * clampSel(estSel), Act: rows * clampSel(actSel)}
	if out.Est < 1 {
		out.Est = 1
	}
	if out.Act < 1 {
		out.Act = 1
	}
	return in, out, nil
}

// JoinCards returns the output cardinality of a join given the child output
// cardinalities. For equijoins both models use |L|·|R| / max(ndvL, ndvR)
// with the base-column distinct counts, which reduces to foreign-key
// semantics when one side is a key; the actual value additionally carries a
// skew surprise. For inequality joins the optimizer uses the classic 1/3
// magic constant while the true selectivity is a keyed draw.
func (e *Estimator) JoinCards(j sqlgen.JoinPred, leftTable, rightTable string, left, right Card) Card {
	lt, rt := e.Schema.Table(leftTable), e.Schema.Table(rightTable)
	var lcol, rcol *catalog.Column
	if lt != nil {
		lcol = lt.Column(j.Left.Column)
	}
	if rt != nil {
		rcol = rt.Column(j.Right.Column)
	}
	if j.Op == sqlgen.OpEq {
		ndv := 1.0
		skew := 0.0
		if lcol != nil && float64(lcol.NDV) > ndv {
			ndv = float64(lcol.NDV)
		}
		if rcol != nil && float64(rcol.NDV) > ndv {
			ndv = float64(rcol.NDV)
		}
		if lcol != nil {
			skew += lcol.Skew
		}
		if rcol != nil {
			skew += rcol.Skew
		}
		sel := 1 / ndv
		est := left.Est * right.Est * sel
		sur := e.surprise(0.6*skew, leftTable, j.Left.Column, rightTable, j.Right.Column, "join")
		act := left.Act * right.Act * sel * sur
		return Card{Est: floorOne(est), Act: floorOne(act)}
	}
	// Inequality join.
	const magic = 1.0 / 3.0
	u := e.hash01(leftTable, j.Left.Column, rightTable, j.Right.Column, "nejoin")
	actSel := 0.05 + 0.55*math.Pow(u, 1.5)
	return Card{
		Est: floorOne(left.Est * right.Est * magic),
		Act: floorOne(left.Act * right.Act * actSel),
	}
}

// SemiJoinCards returns the output cardinality of outer ⋉ sub for an
// IN-subquery predicate on outerCol: the fraction of outer rows whose value
// appears in the subquery result.
func (e *Estimator) SemiJoinCards(outerTable, outerCol string, outer, sub Card) Card {
	ndv := 1.0
	if t := e.Schema.Table(outerTable); t != nil {
		if c := t.Column(outerCol); c != nil && c.NDV > 0 {
			ndv = float64(c.NDV)
		}
	}
	// Distinct values in the subquery output shrink sublinearly with its
	// cardinality (duplicates).
	frac := func(rows float64) float64 {
		d := math.Pow(rows, 0.85)
		return clampSel(d / ndv)
	}
	sur := e.surprise(0.4, outerTable, outerCol, "semijoin")
	return Card{
		Est: floorOne(outer.Est * frac(sub.Est)),
		Act: floorOne(outer.Act * clampSel(frac(sub.Act)*sur)),
	}
}

// GroupCards returns the number of groups produced when grouping rowsIn
// rows by the given columns of the given tables, using the standard
// distinct-value estimate D(n, d) = d·(1 − (1 − 1/d)^n).
func (e *Estimator) GroupCards(groupNDV float64, in Card) Card {
	if groupNDV < 1 {
		groupNDV = 1
	}
	distinct := func(n float64) float64 {
		if n <= 0 {
			return 1
		}
		d := groupNDV * (1 - math.Pow(1-1/groupNDV, n))
		if d > n {
			d = n
		}
		return floorOne(d)
	}
	sur := e.surprise(0.3, "groupby", fmt.Sprintf("%g", groupNDV))
	return Card{Est: distinct(in.Est), Act: floorOne(distinct(in.Act) * sur)}
}

// GroupNDV returns the product of distinct counts of the grouping columns,
// capped to avoid overflow.
func (e *Estimator) GroupNDV(cols []columnBinding) float64 {
	ndv := 1.0
	for _, cb := range cols {
		t := e.Schema.Table(cb.table)
		if t == nil {
			continue
		}
		c := t.Column(cb.column)
		if c == nil || c.NDV <= 0 {
			continue
		}
		ndv *= float64(c.NDV)
		if ndv > 1e15 {
			return 1e15
		}
	}
	return ndv
}

// columnBinding pairs a resolved table name with a column name.
type columnBinding struct {
	table, column string
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func floorOne(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
