package optimizer

import "math"

// ScalarCost computes the optimizer's scalar cost estimate for a plan
// subtree, in internal optimizer units. Like commercial optimizer costs,
// it is computed entirely from *estimated* cardinalities and its per-
// operator weights do not match the true runtime cost structure (network
// traffic in particular is underweighted, and nested-join blowups are
// dampened by the same cardinality underestimates that mislead the plan
// choice). Both properties are deliberate: Fig. 17 of the paper shows that
// optimizer cost correlates poorly with actual elapsed time, and this cost
// model is that baseline.
func ScalarCost(n *Node) float64 {
	if n == nil {
		return 0
	}
	cost := 0.0
	n.Walk(func(m *Node) { cost += NodeCost(m) })
	return cost
}

// NodeCost returns one operator's own contribution to the scalar cost
// (excluding its children) — the per-operator attribution EXPLAIN prints.
func NodeCost(n *Node) float64 {
	cost := 0.0
	switch n.Op {
	case OpFileScan:
		cost += 1.0*n.EstRowsIn/1000 + 0.1*n.EstRows/1000
	case OpNestedJoin:
		outer, inner := n.Children[0].EstRows, n.Children[1].EstRows
		cost += outer * inner / 1e7
	case OpHashJoin:
		cost += 1.2 * n.EstRowsIn / 1000
	case OpSemiJoin:
		cost += 1.0 * n.EstRowsIn / 1000
	case OpSort:
		r := n.EstRowsIn
		if r > 1 {
			cost += 0.5 * r * math.Log2(r) / 1000
		}
	case OpTopN:
		cost += 0.1 * n.EstRowsIn / 1000
	case OpHashGroupBy:
		cost += 0.8 * n.EstRowsIn / 1000
	case OpScalarAgg:
		cost += 0.2 * n.EstRowsIn / 1000
	case OpExchange, OpPartition:
		// Network movement is charged per row, underweighting message
		// volume relative to its true runtime impact.
		cost += 0.02 * n.EstRowsIn / 1000
	case OpSplit, OpRoot:
		// Bookkeeping operators are free in optimizer units.
	}
	return cost
}
