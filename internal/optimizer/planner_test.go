package optimizer

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

var testSchema = catalog.TPCDS(1)

func mustPlanSQL(t *testing.T, sql string, procs int) *Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := BuildPlan(q, testSchema, 7, DefaultConfig(procs))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v\n%s", err, p.Root)
	}
	return p
}

func TestPlanSimpleScan(t *testing.T) {
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 50", 4)
	counts := p.Root.CountOps()
	if counts[OpFileScan] != 1 || counts[OpRoot] != 1 || counts[OpExchange] != 1 || counts[OpScalarAgg] != 1 {
		t.Errorf("op counts wrong: %v", counts)
	}
	scan := p.Root.Scans()[0]
	if scan.Table != "store_sales" {
		t.Errorf("scan table = %q", scan.Table)
	}
	if scan.EstRowsIn != 2880404 || scan.ActRowsIn != 2880404 {
		t.Errorf("scan input cards wrong: est=%v act=%v", scan.EstRowsIn, scan.ActRowsIn)
	}
	// BETWEEN 1 AND 50 covers about half the quantity domain.
	if scan.ActRows < 0.2*scan.ActRowsIn || scan.ActRows > 0.9*scan.ActRowsIn {
		t.Errorf("range selectivity implausible: %v of %v", scan.ActRows, scan.ActRowsIn)
	}
	if p.Cost <= 0 {
		t.Errorf("cost = %v, want positive", p.Cost)
	}
}

func TestPlanDeterministic(t *testing.T) {
	sql := "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_category = 'v3'"
	p1 := mustPlanSQL(t, sql, 4)
	p2 := mustPlanSQL(t, sql, 4)
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same query and seed must produce identical plans")
	}
}

func TestPlanSeedChangesActuals(t *testing.T) {
	q, err := sqlparse.Parse("SELECT COUNT(*) FROM store_sales WHERE ss_item_sk = 77")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := BuildPlan(q, testSchema, 1, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := BuildPlan(q, testSchema, 2, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := pa.Root.Scans()[0], pb.Root.Scans()[0]
	if sa.EstRows != sb.EstRows {
		t.Errorf("estimates should not depend on the data seed: %v vs %v", sa.EstRows, sb.EstRows)
	}
	if sa.ActRows == sb.ActRows {
		t.Error("different data realizations should differ in actuals for a skewed column")
	}
}

func TestFKJoinCardinality(t *testing.T) {
	// store_sales join item on the item FK: output should be close to the
	// store_sales row count (every sale matches exactly one item).
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk", 4)
	var join *Node
	p.Root.Walk(func(n *Node) {
		if n.Op == OpHashJoin || n.Op == OpNestedJoin {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join in plan:\n" + p.Root.String())
	}
	ss := float64(testSchema.Table("store_sales").RowCount)
	if join.EstRows < 0.5*ss || join.EstRows > 2*ss {
		t.Errorf("FK join estimate %v, want around %v", join.EstRows, ss)
	}
}

func TestBroadcastVsHashJoin(t *testing.T) {
	// item (18k rows filtered) joined to store_sales: the filtered inner is
	// small, so a broadcast nested join is expected on a 4-way config.
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_category = 'v3'", 4)
	counts := p.Root.CountOps()
	if counts[OpNestedJoin] != 1 {
		t.Errorf("expected broadcast nested join, got ops %v\n%s", counts, p.Root)
	}
	// A fact-fact join has a large inner: hash join.
	p2 := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number = sr_ticket_number", 4)
	counts2 := p2.Root.CountOps()
	if counts2[OpHashJoin] != 1 {
		t.Errorf("expected hash join, got ops %v\n%s", counts2, p2.Root)
	}
}

func TestNonEquiJoinUsesNestedJoin(t *testing.T) {
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number <= sr_ticket_number", 4)
	counts := p.Root.CountOps()
	if counts[OpNestedJoin] != 1 || counts[OpHashJoin] != 0 {
		t.Errorf("non-equijoin should use nested join: %v", counts)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store, warehouse", 4)
	counts := p.Root.CountOps()
	if counts[OpNestedJoin] != 1 {
		t.Errorf("cross product should use nested join: %v", counts)
	}
	var join *Node
	p.Root.Walk(func(n *Node) {
		if n.Op == OpNestedJoin {
			join = n
		}
	})
	if join.ActRows != 60 { // 12 stores x 5 warehouses
		t.Errorf("cross join actual rows = %v, want 60", join.ActRows)
	}
}

func TestStaleDateStatsUnderestimate(t *testing.T) {
	// A range over the most recent dates: the optimizer's stale statistics
	// have not seen that data, so it must underestimate.
	hi := 2452642.0
	lo := hi - 30
	sqlText := "SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk BETWEEN 2452612 AND 2452642"
	_ = lo
	p := mustPlanSQL(t, sqlText, 4)
	scan := p.Root.Scans()[0]
	if scan.EstRows >= scan.ActRows {
		t.Errorf("stale stats should underestimate recent ranges: est=%v act=%v", scan.EstRows, scan.ActRows)
	}
	_ = hi
}

func TestCorrelatedPredicatesUnderestimate(t *testing.T) {
	// Several predicates on one table: independence assumption should
	// underestimate relative to the correlated true model.
	sqlText := "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 10 AND ss_sales_price BETWEEN 0 AND 20 AND ss_wholesale_cost BETWEEN 0 AND 10"
	p := mustPlanSQL(t, sqlText, 4)
	scan := p.Root.Scans()[0]
	if scan.EstRows >= scan.ActRows {
		t.Errorf("correlated predicates should make act > est: est=%v act=%v", scan.EstRows, scan.ActRows)
	}
}

func TestSubqueryBecomesSemiJoin(t *testing.T) {
	sqlText := "SELECT COUNT(*) FROM store_sales WHERE ss_item_sk IN (SELECT i_item_sk FROM item WHERE i_category = 'v2')"
	p := mustPlanSQL(t, sqlText, 4)
	counts := p.Root.CountOps()
	if counts[OpSemiJoin] != 1 {
		t.Errorf("IN subquery should plan as semi join: %v\n%s", counts, p.Root)
	}
	if counts[OpFileScan] != 2 {
		t.Errorf("expected 2 scans: %v", counts)
	}
	if len(p.Tables) != 2 {
		t.Errorf("tables = %v", p.Tables)
	}
}

func TestExistsSubqueryAddsSubplan(t *testing.T) {
	sqlText := "SELECT COUNT(*) FROM store WHERE EXISTS (SELECT COUNT(*) FROM warehouse WHERE w_warehouse_sq_ft > 100000)"
	p := mustPlanSQL(t, sqlText, 4)
	counts := p.Root.CountOps()
	if counts[OpSemiJoin] != 1 || counts[OpFileScan] != 2 {
		t.Errorf("EXISTS should add a semi-joined subplan: %v", counts)
	}
}

func TestGroupSortLimitOperators(t *testing.T) {
	sqlText := "SELECT i_category, SUM(ss_ext_sales_price) FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category LIMIT 10"
	p := mustPlanSQL(t, sqlText, 4)
	counts := p.Root.CountOps()
	if counts[OpHashGroupBy] != 1 || counts[OpSort] != 1 || counts[OpTopN] != 1 {
		t.Errorf("group/sort/limit ops wrong: %v", counts)
	}
	var group *Node
	p.Root.Walk(func(n *Node) {
		if n.Op == OpHashGroupBy {
			group = n
		}
	})
	// Ten categories: group output must be at most 10-ish on both models.
	if group.EstRows > 20 || group.ActRows > 20 {
		t.Errorf("group cardinality too high: est=%v act=%v", group.EstRows, group.ActRows)
	}
	var topn *Node
	p.Root.Walk(func(n *Node) {
		if n.Op == OpTopN {
			topn = n
		}
	})
	if topn.ActRows > 10 {
		t.Errorf("top-n actual rows = %v, want <= 10", topn.ActRows)
	}
}

func TestPlanConfigsDiffer(t *testing.T) {
	// The same query planned for 4 and for 32 processors should be able to
	// make different physical choices (broadcast thresholds scale with P).
	sqlText := "SELECT COUNT(*) FROM store_sales, customer WHERE ss_customer_sk = c_customer_sk AND c_birth_year BETWEEN 1950 AND 1960"
	p4 := mustPlanSQL(t, sqlText, 4)
	p32 := mustPlanSQL(t, sqlText, 32)
	c4, c32 := p4.Root.CountOps(), p32.Root.CountOps()
	if c4 == c32 {
		t.Logf("plans identical for this query (allowed), ops: %v", c4)
	}
	// At minimum both must be valid and have one join.
	if c4[OpHashJoin]+c4[OpNestedJoin] != 1 || c32[OpHashJoin]+c32[OpNestedJoin] != 1 {
		t.Errorf("join counts wrong: %v vs %v", c4, c32)
	}
}

func TestPlanErrors(t *testing.T) {
	for _, sqlText := range []string{
		"SELECT COUNT(*) FROM nonexistent",
		"SELECT no_such_column FROM store",
		"SELECT COUNT(*) FROM store WHERE mystery_col = 3",
	} {
		q, err := sqlparse.Parse(sqlText)
		if err != nil {
			t.Fatalf("parse %q: %v", sqlText, err)
		}
		if _, err := BuildPlan(q, testSchema, 1, DefaultConfig(4)); err == nil {
			t.Errorf("BuildPlan(%q) succeeded, want error", sqlText)
		}
	}
}

func TestScalarCostGrowsWithWork(t *testing.T) {
	small := mustPlanSQL(t, "SELECT COUNT(*) FROM store", 4)
	big := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number = sr_ticket_number", 4)
	if small.Cost >= big.Cost {
		t.Errorf("cost ordering wrong: small=%v big=%v", small.Cost, big.Cost)
	}
}

func TestEstimatorJoinCardsNonNegative(t *testing.T) {
	e := &Estimator{Schema: testSchema, Seed: 3}
	in, out, err := e.ScanCards("store_sales", nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.Est <= 0 || out.Act <= 0 {
		t.Errorf("scan cards must be positive: %+v %+v", in, out)
	}
	if out.Est > in.Est || out.Act > in.Act {
		t.Errorf("scan output cannot exceed input: in=%+v out=%+v", in, out)
	}
	if _, _, err := e.ScanCards("missing", nil); err == nil {
		t.Error("unknown table should error")
	}
}

func TestGroupCards(t *testing.T) {
	e := &Estimator{Schema: testSchema, Seed: 3}
	// Far more rows than groups: distinct estimate saturates at the NDV.
	out := e.GroupCards(10, Card{Est: 1e6, Act: 1e6})
	if out.Est < 5 || out.Est > 10 {
		t.Errorf("group estimate = %v, want ~10", out.Est)
	}
	// Fewer rows than groups: output bounded by rows.
	out2 := e.GroupCards(1e9, Card{Est: 100, Act: 100})
	if out2.Est > 100 {
		t.Errorf("group estimate = %v, want <= 100", out2.Est)
	}
}

func TestOpTypeNames(t *testing.T) {
	if OpFileScan.String() != "file_scan" || OpHashGroupBy.String() != "hashgroupby" {
		t.Error("operator names wrong")
	}
	if len(AllOpTypes()) != NumOpTypes {
		t.Error("AllOpTypes length mismatch")
	}
	if OpType(-1).String() == "" || OpType(999).String() == "" {
		t.Error("out-of-range op types must render")
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store", 4)
	s := p.Root.String()
	if len(s) == 0 || math.IsNaN(p.Cost) {
		t.Error("plan rendering or cost broken")
	}
}

func TestNodeCostSumsToScalarCost(t *testing.T) {
	p := mustPlanSQL(t, "SELECT i_category, SUM(ss_ext_sales_price) FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category", 4)
	sum := 0.0
	p.Root.Walk(func(n *Node) { sum += NodeCost(n) })
	if math.Abs(sum-p.Cost) > 1e-9*p.Cost {
		t.Errorf("node costs sum to %v, plan cost %v", sum, p.Cost)
	}
}

func TestExplainRendersEveryOperator(t *testing.T) {
	p := mustPlanSQL(t, "SELECT COUNT(*) FROM store_sales, store_returns WHERE ss_ticket_number <= sr_ticket_number", 4)
	out := Explain(p)
	for _, want := range []string{"file_scan [store_sales]", "nested_join (pairwise)", "cost", "root"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	ops := 0
	p.Root.Walk(func(*Node) { ops++ })
	// Header (2 lines) + one line per operator.
	if lines := strings.Count(out, "\n"); lines != ops+2 {
		t.Errorf("Explain lines = %d, want %d", lines, ops+2)
	}
}
