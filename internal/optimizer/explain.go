package optimizer

import (
	"fmt"
	"strings"
)

// Explain renders the plan as an EXPLAIN-style listing: one row per
// operator with estimated and actual cardinalities, output width, and the
// operator's own optimizer-cost contribution. It is what cmd/qpredict -v
// prints and what a downstream user would reach for first when a
// prediction looks off.
func Explain(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan cost=%.1f  tables=%s\n", p.Cost, strings.Join(p.Tables, ","))
	fmt.Fprintf(&sb, "%-40s %12s %12s %8s %10s\n", "operator", "est rows", "act rows", "width", "cost")
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		label := strings.Repeat("  ", depth) + n.Op.String()
		if n.Table != "" {
			label += " [" + n.Table + "]"
		}
		if n.Broadcast {
			label += " (broadcast)"
		}
		if n.Pairwise {
			label += " (pairwise)"
		}
		fmt.Fprintf(&sb, "%-40s %12.0f %12.0f %8d %10.1f\n",
			label, n.EstRows, n.ActRows, n.Width, NodeCost(n))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return sb.String()
}
