// Package optimizer implements the cost-based query optimizer substrate:
// logical-to-physical planning over the catalog schemas, selectivity and
// cardinality estimation (with the systematic estimation errors the paper
// attributes to real optimizers — independence assumptions, uniformity
// assumptions, stale statistics), greedy join ordering, parallel plan
// decoration with exchange/split/partition operators, and a scalar cost
// estimate in optimizer units (the Fig. 17 baseline).
//
// Each plan node carries two cardinalities: the optimizer's estimate
// (computed under the erroneous assumptions, used for the plan feature
// vector and the cost estimate) and the true cardinality (computed from the
// full statistics including skew and correlation, consumed by the execution
// simulator). Deriving both from the same underlying statistics through
// different distortions preserves the property the paper relies on: the
// estimation errors are systematic, so queries with similar plans and
// similar estimates behave similarly at runtime.
package optimizer

import "fmt"

// OpType enumerates the physical plan operators (the Neoview-style operator
// vocabulary of the paper's Fig. 9).
type OpType int

const (
	OpRoot OpType = iota
	OpExchange
	OpSplit
	OpPartition
	OpFileScan
	OpNestedJoin
	OpHashJoin
	OpSemiJoin
	OpSort
	OpHashGroupBy
	OpScalarAgg
	OpTopN

	// NumOpTypes is the number of physical operator types; feature vectors
	// have one (count, cardinality-sum) pair per type.
	NumOpTypes = int(OpTopN) + 1
)

var opNames = [NumOpTypes]string{
	"root",
	"exchange",
	"split",
	"partitioning",
	"file_scan",
	"nested_join",
	"hash_join",
	"semi_join",
	"sort",
	"hashgroupby",
	"scalar_agg",
	"top_n",
}

func (op OpType) String() string {
	if op < 0 || int(op) >= NumOpTypes {
		return fmt.Sprintf("optype(%d)", int(op))
	}
	return opNames[op]
}

// AllOpTypes returns every operator type in feature-vector order.
func AllOpTypes() []OpType {
	out := make([]OpType, NumOpTypes)
	for i := range out {
		out[i] = OpType(i)
	}
	return out
}
