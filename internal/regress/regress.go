// Package regress implements multiple linear regression — the paper's
// Sec. V-A baseline. Each performance metric is regressed independently on
// the query plan features; the paper shows this predicts poorly (orders of
// magnitude off, including negative elapsed times) because the true cost
// structure is nonlinear in the features.
package regress

import (
	"errors"

	"repro/internal/linalg"
)

// Model is a fitted linear model y = intercept + Σ coef·x.
type Model struct {
	Intercept float64
	Coef      []float64
}

// Fit solves the least squares problem for the design matrix x (one row
// per observation) and targets y, with an intercept term.
func Fit(x *linalg.Matrix, y []float64) (*Model, error) {
	if x.Rows != len(y) {
		return nil, errors.New("regress: row count does not match target count")
	}
	if x.Rows == 0 {
		return nil, errors.New("regress: no observations")
	}
	// Augment with a constant column for the intercept.
	aug := linalg.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		row := aug.Row(i)
		row[0] = 1
		copy(row[1:], x.Row(i))
	}
	coef, err := linalg.LeastSquares(aug, y)
	if err != nil {
		return nil, err
	}
	return &Model{Intercept: coef[0], Coef: coef[1:]}, nil
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	return m.Intercept + linalg.Dot(m.Coef, x)
}

// PredictAll evaluates the model on every row of x.
func (m *Model) PredictAll(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = m.Predict(x.Row(i))
	}
	return out
}

// MultiModel fits one linear model per target column.
type MultiModel struct {
	Models []*Model
}

// FitMulti fits an independent linear model for every column of y.
func FitMulti(x *linalg.Matrix, y *linalg.Matrix) (*MultiModel, error) {
	if x.Rows != y.Rows {
		return nil, errors.New("regress: design and target row counts differ")
	}
	mm := &MultiModel{Models: make([]*Model, y.Cols)}
	for j := 0; j < y.Cols; j++ {
		m, err := Fit(x, y.Col(j))
		if err != nil {
			return nil, err
		}
		mm.Models[j] = m
	}
	return mm, nil
}

// Predict evaluates every per-metric model on one feature vector.
func (mm *MultiModel) Predict(x []float64) []float64 {
	out := make([]float64, len(mm.Models))
	for j, m := range mm.Models {
		out[j] = m.Predict(x)
	}
	return out
}
