package regress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestFitRecoversPlantedLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, p := 100, 4
	x := linalg.NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	true_ := []float64{3, -2, 0.5, 7}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 1.5 + linalg.Dot(true_, x.Row(i))
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-1.5) > 1e-8 {
		t.Errorf("intercept = %v, want 1.5", m.Intercept)
	}
	for i, c := range true_ {
		if math.Abs(m.Coef[i]-c) > 1e-8 {
			t.Errorf("coef %d = %v, want %v", i, m.Coef[i], c)
		}
	}
	pred := m.PredictAll(x)
	for i := range pred {
		if math.Abs(pred[i]-y[i]) > 1e-8 {
			t.Fatalf("prediction %d = %v, want %v", i, pred[i], y[i])
		}
	}
}

func TestFitHandlesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		y[i] = 2*x.At(i, 0) + 0.1*rng.NormFloat64()
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.05 {
		t.Errorf("slope = %v, want ~2", m.Coef[0])
	}
}

func TestLinearModelFailsOnMultiplicativeData(t *testing.T) {
	// y = x1*x2 cannot be captured linearly — the mechanism behind the
	// paper's Fig. 3/4 failures, including negative predictions for a
	// nonnegative quantity.
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = a * b
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	negatives := 0
	sse, sst := 0.0, 0.0
	mean := linalg.Mean(y)
	for i := 0; i < n; i++ {
		p := m.Predict(x.Row(i))
		if p < 0 {
			negatives++
		}
		sse += (p - y[i]) * (p - y[i])
		sst += (y[i] - mean) * (y[i] - mean)
	}
	if negatives == 0 {
		t.Error("expected some negative predictions for the multiplicative target")
	}
	if r2 := 1 - sse/sst; r2 > 0.95 {
		t.Errorf("R² = %v; linear model should not fit multiplicative data this well", r2)
	}
}

func TestFitMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	x := linalg.NewMatrix(n, 2)
	y := linalg.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a)
		y.Set(i, 1, -b+1)
		y.Set(i, 2, a+b)
	}
	mm, err := FitMulti(x, y)
	if err != nil {
		t.Fatal(err)
	}
	pred := mm.Predict([]float64{1, 1})
	want := []float64{2, 0, 2}
	for i := range want {
		if math.Abs(pred[i]-want[i]) > 1e-8 {
			t.Errorf("multi prediction %d = %v, want %v", i, pred[i], want[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := Fit(x, []float64{1, 2}); err == nil {
		t.Error("mismatched rows accepted")
	}
	if _, err := Fit(linalg.NewMatrix(0, 2), nil); err == nil {
		t.Error("empty design accepted")
	}
	if _, err := FitMulti(x, linalg.NewMatrix(2, 2)); err == nil {
		t.Error("mismatched multi rows accepted")
	}
}
