// Package cca implements classical Canonical Correlation Analysis — the
// Sec. V-D stepping stone between PCA and KCCA. Given two centered
// multivariate datasets over the same items, CCA finds pairs of directions
// (one per dataset) whose projections are maximally correlated. It is
// solved here in its standard whitened-SVD form with ridge regularization.
package cca

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// Model is a fitted CCA basis.
type Model struct {
	// MeanX and MeanY are the column means removed before fitting.
	MeanX, MeanY []float64
	// WX and WY map (centered) observations into canonical space: one
	// canonical direction per column.
	WX, WY *linalg.Matrix
	// Correlations are the canonical correlations, descending.
	Correlations []float64
}

// Fit computes up to r canonical pairs between the rows of x and y with
// ridge regularization reg (a fraction of the average covariance
// diagonal). The matrices must have equal row counts.
func Fit(x, y *linalg.Matrix, r int, reg float64) (*Model, error) {
	if x.Rows != y.Rows {
		return nil, errors.New("cca: datasets must have equal row counts")
	}
	if x.Rows < 3 {
		return nil, errors.New("cca: need at least three rows")
	}
	if reg <= 0 {
		reg = 1e-6
	}
	maxR := x.Cols
	if y.Cols < maxR {
		maxR = y.Cols
	}
	if r <= 0 || r > maxR {
		r = maxR
	}

	cx := x.Clone()
	cy := y.Clone()
	meanX := cx.CenterColumns()
	meanY := cy.CenterColumns()
	n := float64(x.Rows - 1)

	sxx := cx.TMul(cx).Scale(1 / n)
	syy := cy.TMul(cy).Scale(1 / n)
	sxy := cx.TMul(cy).Scale(1 / n)
	ridge(sxx, reg)
	ridge(syy, reg)

	lx, err := linalg.Cholesky(sxx)
	if err != nil {
		return nil, err
	}
	ly, err := linalg.Cholesky(syy)
	if err != nil {
		return nil, err
	}
	lxInv := lx.InvLower()
	lyInv := ly.InvLower()

	// M = Lx⁻¹ Sxy Ly⁻ᵀ; its SVD gives the canonical structure.
	m := lxInv.Mul(sxy).MulT(lyInv)
	svd, err := linalg.SVD(m)
	if err != nil {
		return nil, err
	}
	u := svd.U.SliceCols(0, min(r, svd.U.Cols))
	v := svd.V.SliceCols(0, min(r, svd.V.Cols))
	r = u.Cols

	// Canonical weights: WX = Lx⁻ᵀ U, WY = Ly⁻ᵀ V.
	wx := lxInv.TMul(u)
	wy := lyInv.TMul(v)

	corr := make([]float64, r)
	for i := 0; i < r; i++ {
		c := svd.S[i]
		if c > 1 {
			c = 1
		}
		corr[i] = c
	}
	return &Model{MeanX: meanX, MeanY: meanY, WX: wx, WY: wy, Correlations: corr}, nil
}

func ridge(s *linalg.Matrix, reg float64) {
	tr := 0.0
	for i := 0; i < s.Rows; i++ {
		tr += s.At(i, i)
	}
	avg := tr / math.Max(float64(s.Rows), 1)
	if avg <= 0 {
		avg = 1
	}
	s.AddDiag(reg*avg + 1e-12)
}

// ProjectX maps one x-observation into canonical space.
func (m *Model) ProjectX(x []float64) []float64 {
	return m.project(x, m.MeanX, m.WX)
}

// ProjectY maps one y-observation into canonical space.
func (m *Model) ProjectY(y []float64) []float64 {
	return m.project(y, m.MeanY, m.WY)
}

func (m *Model) project(v, mean []float64, w *linalg.Matrix) []float64 {
	centered := make([]float64, len(v))
	for i := range v {
		centered[i] = v[i] - mean[i]
	}
	return w.TMulVec(centered)
}

// ProjectAllX maps every row of x into canonical space.
func (m *Model) ProjectAllX(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, m.WX.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.ProjectX(x.Row(i)))
	}
	return out
}

// ProjectAllY maps every row of y into canonical space.
func (m *Model) ProjectAllY(y *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(y.Rows, m.WY.Cols)
	for i := 0; i < y.Rows; i++ {
		copy(out.Row(i), m.ProjectY(y.Row(i)))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
