package cca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// plantedViews builds two datasets sharing one strong latent factor.
func plantedViews(seed int64, n int) (*linalg.Matrix, *linalg.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 3)
	y := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		z := rng.NormFloat64() // shared latent factor
		x.Set(i, 0, z+0.1*rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, -z+0.1*rng.NormFloat64())
		y.Set(i, 0, 2*z+0.1*rng.NormFloat64())
		y.Set(i, 1, rng.NormFloat64())
	}
	return x, y
}

func pearson(a, b []float64) float64 {
	ma, mb := linalg.Mean(a), linalg.Mean(b)
	var sab, sa, sb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		sa += da * da
		sb += db * db
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	return sab / math.Sqrt(sa*sb)
}

func TestFitFindsPlantedCorrelation(t *testing.T) {
	x, y := plantedViews(1, 300)
	m, err := Fit(x, y, 2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlations[0] < 0.95 {
		t.Errorf("top canonical correlation = %v, want > 0.95", m.Correlations[0])
	}
	// The projections themselves must be empirically correlated.
	px := m.ProjectAllX(x)
	py := m.ProjectAllY(y)
	if c := math.Abs(pearson(px.Col(0), py.Col(0))); c < 0.95 {
		t.Errorf("projection correlation = %v, want > 0.95", c)
	}
	// Second pair has no shared structure.
	if m.Correlations[1] > 0.5 {
		t.Errorf("second correlation = %v, want small", m.Correlations[1])
	}
}

func TestCorrelationsSortedAndBounded(t *testing.T) {
	x, y := plantedViews(2, 150)
	m, err := Fit(x, y, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Correlations {
		if c < 0 || c > 1 {
			t.Errorf("correlation %d = %v out of [0,1]", i, c)
		}
		if i > 0 && c > m.Correlations[i-1]+1e-9 {
			t.Errorf("correlations not descending: %v", m.Correlations)
		}
	}
}

func TestProjectSingleMatchesBatch(t *testing.T) {
	x, y := plantedViews(3, 80)
	m, err := Fit(x, y, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	px := m.ProjectAllX(x)
	py := m.ProjectAllY(y)
	for i := 0; i < 5; i++ {
		sx := m.ProjectX(x.Row(i))
		sy := m.ProjectY(y.Row(i))
		for j := range sx {
			if math.Abs(sx[j]-px.At(i, j)) > 1e-12 {
				t.Fatalf("X projection mismatch at (%d,%d)", i, j)
			}
			if math.Abs(sy[j]-py.At(i, j)) > 1e-12 {
				t.Fatalf("Y projection mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestUncorrelatedDataHasLowCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	x := linalg.NewMatrix(n, 3)
	y := linalg.NewMatrix(n, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	m, err := Fit(x, y, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlations[0] > 0.4 {
		t.Errorf("independent data should have low canonical correlation, got %v", m.Correlations[0])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(5, 2), linalg.NewMatrix(6, 2), 1, 1e-3); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := Fit(linalg.NewMatrix(2, 2), linalg.NewMatrix(2, 2), 1, 1e-3); err == nil {
		t.Error("too few rows accepted")
	}
}
