package kcca

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/statutil"
)

// Retraining-cost benchmarks: a full dense kcca.Train versus one
// steady-state window slide (Replace + incremental Retrain) at the same
// window size. These feed BENCH_retrain.json; CI's bench-smoke job runs the
// smallest size only.
//
// Asymptotics being compared, per retrain with window N, feature dim d,
// reduced rank r ≤ 80, block b = r + oversample:
//
//	full:        O(N²·d) kernel build + O(N³) dense eigensolve (per view)
//	incremental: O(N·d) kernel row patch + O(iters·N²·b) warm-started
//	             subspace iteration (per view), iters ≈ a handful
//
// plus the shared O(N·r²)-ish CCA/projection tail.

const benchD, benchE, benchTemplates = 12, 6, 24

// benchJitter keeps per-instance variation small enough that the kernel's
// noise tail falls below the kernel-PCA keep threshold; with the strict
// residual criterion, a noise plateau inside the kept range would route
// every retrain to the dense fallback and the bench would only measure that.
const benchJitter = 1e-6

func benchRows(n int) ([][]float64, [][]float64, *tmplGen) {
	g := newTmplGen(statutil.NewRNG(int64(n), "retrain-bench"), benchD, benchE, benchTemplates, benchJitter)
	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
	}
	return xs, ys, g
}

func BenchmarkRetrainFull(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs, ys, _ := benchRows(n)
			x, y := denseOf(xs), denseOf(ys)
			opt := DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(x, y, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRetrainIncremental(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs, ys, g := benchRows(n)
			opt := DefaultOptions()
			inc := NewIncremental(opt, n)
			for i := range xs {
				inc.Append(xs[i], ys[i])
			}
			_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
			if err != nil {
				b.Fatal(err)
			}
			inc.Install(seed)
			// One untimed warm-up slide so the timed loop measures the
			// steady state (warm eigenvectors from an incremental retrain,
			// not from the dense solve).
			slot := 0
			warmX, warmY := g.pair(1)
			inc.Replace(slot, warmX, warmY)
			if _, err := inc.Retrain(); err != nil {
				b.Fatalf("warm-up retrain: %v", err)
			}
			fallbacks := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot = (slot + 1) % n
				x, y := g.pair(1)
				xs[slot], ys[slot] = x, y
				inc.Replace(slot, x, y)
				_, err := inc.Retrain()
				if errors.Is(err, ErrNeedFull) {
					// τ drifted (or the iteration stalled): the production
					// loop pays a full rebuild here. Count it and keep the
					// cost in the measurement — hiding it would overstate
					// the incremental path.
					fallbacks++
					_, seed, ferr := inc.TrainFull(denseOf(xs), denseOf(ys))
					if ferr != nil {
						b.Fatal(ferr)
					}
					inc.Install(seed)
				} else if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(fallbacks)/float64(b.N), "full-fallbacks/op")
		})
	}
}
