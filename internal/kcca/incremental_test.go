package kcca

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/statutil"
)

// incEquivTol is the documented equivalence tolerance between an incremental
// retrain and a full dense retrain on the same window at the same (frozen)
// kernel scales: the only difference between the two paths is the iterative
// eigensolver's relative residual tolerance (1e-11), which kernel-PCA
// whitening and the CCA solve amplify by a few orders of magnitude on the
// way into projection coordinates. The scales themselves are the τ-drift
// guard's business: it keeps the frozen τ within Options.TauDriftTol (10%)
// of what a fresh heuristic would choose, forcing an exact full rebuild
// beyond that.
const incEquivTol = 1e-6

// tmplGen generates template-clustered workload rows, the regime the paper
// trains on: queries instantiate a modest number of templates, so feature
// vectors cluster around per-template centers (with per-instance jitter from
// differing constants), and template magnitudes spread over orders of
// magnitude like cardinality features. The resulting kernel spectrum has one
// dominant eigenvalue per template and then decays — the shape that makes a
// top-rank iteration converge. (Unstructured unit-normal rows instead make
// the kernel near-identity with a flat spectral plateau; the incremental
// path then correctly stalls and falls back to dense, which is the wrong
// path to exercise here.)
type tmplGen struct {
	r       *statutil.RNG
	centers [][]float64
	d, e    int
	jitter  float64
}

// newTmplGen builds a generator with the given per-instance jitter. Large
// jitter (0.05) puts a near-degenerate noise plateau inside the kernel's
// kept spectrum — which the strict iterative solver refuses to serve — so
// the tests exercising the incremental path use jitter small enough that
// noise components fall below the keep threshold, and the ones exercising
// the fallback use large jitter deliberately.
func newTmplGen(r *statutil.RNG, d, e, templates int, jitter float64) *tmplGen {
	g := &tmplGen{r: r, d: d, e: e, jitter: jitter}
	for k := 0; k < templates; k++ {
		mag := 2 * math.Exp(0.6*r.NormFloat64())
		mu := make([]float64, d)
		for i := range mu {
			mu[i] = mag * r.NormFloat64()
		}
		g.centers = append(g.centers, mu)
	}
	return g
}

// pair draws one correlated (x, y) row pair: x jitters around a template
// center, y is a noisy linear image of x so CCA has real structure to find.
// scale inflates the row (the drift-guard tests use it to move the τ
// heuristic).
func (g *tmplGen) pair(scale float64) ([]float64, []float64) {
	mu := g.centers[g.r.Intn(len(g.centers))]
	x := make([]float64, g.d)
	for i := range x {
		x[i] = scale * (mu[i] + g.jitter*g.r.NormFloat64())
	}
	y := make([]float64, g.e)
	for k := range y {
		s := 0.0
		for i := k; i < g.d; i += g.e {
			s += x[i]
		}
		y[k] = s + g.jitter*scale*g.r.NormFloat64()
	}
	return x, y
}

// denseOf builds a matrix from rows in slot order.
func denseOf(rows [][]float64) *linalg.Matrix {
	m := linalg.NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m
}

// alignColumns flips the sign of each column of got to best match want
// (eigenvector and canonical-direction signs are arbitrary), then returns
// the largest element difference relative to want's largest magnitude.
func alignColumns(t *testing.T, got, want *linalg.Matrix) float64 {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("projection shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	scale := 0.0
	for _, v := range want.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for j := 0; j < got.Cols; j++ {
		dot := 0.0
		for i := 0; i < got.Rows; i++ {
			dot += got.At(i, j) * want.At(i, j)
		}
		sign := 1.0
		if dot < 0 {
			sign = -1
		}
		for i := 0; i < got.Rows; i++ {
			d := math.Abs(sign*got.At(i, j)-want.At(i, j)) / scale
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestIncrementalMatchesFullRetrain slides a window and checks that each
// incremental retrain matches a from-scratch dense Train on the identical
// rows within the documented tolerance.
func TestIncrementalMatchesFullRetrain(t *testing.T) {
	const d, e, n = 8, 4, 160
	g := newTmplGen(statutil.NewRNG(11, "inc-equiv"), d, e, 20, 0.05)
	opt := DefaultOptions()

	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	inc := NewIncremental(opt, n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
		inc.Append(x, y)
	}
	if !inc.NeedsFull() {
		t.Fatal("fresh window should need a full train")
	}
	if _, err := inc.Retrain(); !errors.Is(err, ErrNeedFull) {
		t.Fatalf("Retrain before full train: err = %v, want ErrNeedFull", err)
	}
	_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
	if err != nil {
		t.Fatal(err)
	}
	inc.Install(seed)

	slot := 0
	incRounds := 0
	for round := 0; round < 6; round++ {
		for step := 0; step < 10; step++ {
			x, y := g.pair(1)
			xs[slot], ys[slot] = x, y
			inc.Replace(slot, x, y)
			slot = (slot + 1) % n
		}
		if inc.NeedsFull() {
			// The τ-drift guard fired (redrawing rows from heavy-tailed
			// templates can move Var(norms) beyond tolerance) — the
			// production loop runs the exact full path here.
			_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
			if err != nil {
				t.Fatalf("round %d: full rebuild: %v", round, err)
			}
			inc.Install(seed)
			continue
		}
		incRounds++
		got, err := inc.Retrain()
		if err != nil {
			t.Fatalf("round %d: incremental retrain: %v", round, err)
		}
		// The incremental retrain runs at the τ frozen by the last full
		// rebuild (that is the point of the drift guard), so the dense
		// comparate is pinned to the same scales; the guard separately
		// bounds how far those may sit from a fresh heuristic.
		pinned := opt
		pinned.TauX, pinned.TauY = got.TauX, got.TauY
		want, err := Train(denseOf(xs), denseOf(ys), pinned)
		if err != nil {
			t.Fatalf("round %d: dense train: %v", round, err)
		}
		for _, tau := range []struct{ frozen, cand float64 }{
			{got.TauX, inc.mx.TauCandidate()},
			{got.TauY, inc.my.TauCandidate()},
		} {
			// Default TauDriftTol is 0.1; NeedsFull was false above, so the
			// frozen scales must sit within it.
			if math.Abs(tau.frozen-tau.cand) > 0.1*tau.frozen {
				t.Fatalf("round %d: frozen τ %v beyond drift tolerance of candidate %v", round, tau.frozen, tau.cand)
			}
		}
		if len(got.lamx) != len(want.lamx) {
			t.Fatalf("round %d: kept %d X components, dense kept %d", round, len(got.lamx), len(want.lamx))
		}
		for j := range want.lamx {
			if rel := math.Abs(got.lamx[j]-want.lamx[j]) / want.lamx[0]; rel > incEquivTol {
				t.Fatalf("round %d: eigenvalue %d rel error %v", round, j, rel)
			}
		}
		for j := range want.Correlations {
			if math.Abs(got.Correlations[j]-want.Correlations[j]) > incEquivTol {
				t.Fatalf("round %d: correlation %d: %v vs %v", round, j,
					got.Correlations[j], want.Correlations[j])
			}
		}
		if worst := alignColumns(t, got.QueryProj, want.QueryProj); worst > incEquivTol {
			t.Fatalf("round %d: query projection rel error %v > %v", round, worst, incEquivTol)
		}
		if worst := alignColumns(t, got.PerfProj, want.PerfProj); worst > incEquivTol {
			t.Fatalf("round %d: perf projection rel error %v > %v", round, worst, incEquivTol)
		}
	}
	if incRounds < 3 {
		t.Fatalf("only %d of 6 rounds took the incremental path; the test is not exercising it", incRounds)
	}
}

// TestTrainFullBitIdentical is the exact-match leg of the equivalence
// discipline: when the τ-drift guard (or any other condition) routes a
// retrain down TrainFull, the resulting model must be bit-for-bit the model
// Train produces on the same rows — same scales, eigenvalues, projections.
func TestTrainFullBitIdentical(t *testing.T) {
	const d, e, n = 6, 3, 60
	g := newTmplGen(statutil.NewRNG(7, "full-exact"), d, e, 12, 0.05)
	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
	}
	opt := DefaultOptions()
	inc := NewIncremental(opt, n)
	got, _, err := inc.TrainFull(denseOf(xs), denseOf(ys))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Train(denseOf(xs), denseOf(ys), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.TauX != want.TauX || got.TauY != want.TauY {
		t.Fatalf("taus (%v, %v) != (%v, %v)", got.TauX, got.TauY, want.TauX, want.TauY)
	}
	for i := range want.lamx {
		if got.lamx[i] != want.lamx[i] {
			t.Fatalf("lamx[%d]: %v != %v", i, got.lamx[i], want.lamx[i])
		}
	}
	for i := range want.QueryProj.Data {
		if got.QueryProj.Data[i] != want.QueryProj.Data[i] {
			t.Fatalf("QueryProj.Data[%d]: %v != %v", i, got.QueryProj.Data[i], want.QueryProj.Data[i])
		}
	}
	for i := range want.PerfProj.Data {
		if got.PerfProj.Data[i] != want.PerfProj.Data[i] {
			t.Fatalf("PerfProj.Data[%d]: %v != %v", i, got.PerfProj.Data[i], want.PerfProj.Data[i])
		}
	}
	for i := range want.rowMeansX {
		if got.rowMeansX[i] != want.rowMeansX[i] {
			t.Fatalf("rowMeansX[%d] mismatch", i)
		}
	}
	if got.grandX != want.grandX {
		t.Fatal("grand mean mismatch")
	}
}

// TestIncrementalDriftGuard inflates row norms until the τ-drift guard
// fires, and asserts via the obs counters that the retrain path switches to
// exactly one full rebuild and then resumes incrementally.
func TestIncrementalDriftGuard(t *testing.T) {
	const d, e, n = 8, 4, 120
	g := newTmplGen(statutil.NewRNG(19, "inc-drift"), d, e, 16, 0.05)
	opt := DefaultOptions()
	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	inc := NewIncremental(opt, n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
		inc.Append(x, y)
	}
	_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
	if err != nil {
		t.Fatal(err)
	}
	inc.Install(seed)

	retrain := func() {
		t.Helper()
		if inc.NeedsFull() {
			_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
			if err != nil {
				t.Fatal(err)
			}
			inc.Install(seed)
			return
		}
		if _, err := inc.Retrain(); err != nil {
			t.Fatal(err)
		}
	}

	// Stable scale: retrains stay incremental.
	fullBefore, incBefore := retrainFull.Value(), retrainInc.Value()
	slot := 0
	for step := 0; step < 8; step++ {
		x, y := g.pair(1)
		xs[slot], ys[slot] = x, y
		inc.Replace(slot, x, y)
		slot = (slot + 1) % n
	}
	retrain()
	if got := retrainFull.Value() - fullBefore; got != 0 {
		t.Fatalf("stable scale: %d full retrains, want 0", got)
	}
	if got := retrainInc.Value() - incBefore; got != 1 {
		t.Fatalf("stable scale: %d incremental retrains, want 1", got)
	}

	// Inflate norms until the guard fires, then retrain once more: exactly
	// one full rebuild, and incremental service resumes after it.
	fullBefore = retrainFull.Value()
	scale := 1.0
	for !inc.NeedsFull() {
		scale *= 2
		x, y := g.pair(scale)
		xs[slot], ys[slot] = x, y
		inc.Replace(slot, x, y)
		slot = (slot + 1) % n
	}
	if got := retrainFull.Value() - fullBefore; got != 0 {
		t.Fatalf("full retrain ran before the guard fired (%d)", got)
	}
	retrain() // the guard-triggered full rebuild
	if got := retrainFull.Value() - fullBefore; got != 1 {
		t.Fatalf("drift: %d full retrains, want exactly 1", got)
	}
	if inc.NeedsFull() {
		t.Fatal("still needs full right after guard-triggered rebuild")
	}
	incAfter := retrainInc.Value()
	x, y := g.pair(scale)
	xs[slot], ys[slot] = x, y
	inc.Replace(slot, x, y)
	retrain()
	if retrainInc.Value() != incAfter+1 || retrainFull.Value()-fullBefore != 1 {
		t.Fatal("retrain after rebuild did not go incremental")
	}
}

// TestTrainLanczosOption checks the Options.Lanczos switch on one-shot
// Train: same data, iterative vs dense solver, results within tolerance.
func TestTrainLanczosOption(t *testing.T) {
	const d, e, n = 8, 4, 160
	g := newTmplGen(statutil.NewRNG(23, "lanczos-opt"), d, e, 20, 0.05)
	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
	}
	dense, err := Train(denseOf(xs), denseOf(ys), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Lanczos = true
	iter, err := Train(denseOf(xs), denseOf(ys), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(iter.lamx) != len(dense.lamx) {
		t.Fatalf("kept %d components, dense kept %d", len(iter.lamx), len(dense.lamx))
	}
	for j := range dense.lamx {
		if rel := math.Abs(iter.lamx[j]-dense.lamx[j]) / dense.lamx[0]; rel > incEquivTol {
			t.Fatalf("eigenvalue %d rel error %v", j, rel)
		}
	}
	if worst := alignColumns(t, iter.QueryProj, dense.QueryProj); worst > incEquivTol {
		t.Fatalf("query projection rel error %v", worst)
	}
}

// TestInvalidateForcesFull checks the stale flag the sliding predictor uses
// when a window moved during an unlocked full train.
func TestInvalidateForcesFull(t *testing.T) {
	const d, e, n = 6, 3, 80
	g := newTmplGen(statutil.NewRNG(29, "invalidate"), d, e, 10, 0.05)
	xs := make([][]float64, 0, n)
	ys := make([][]float64, 0, n)
	inc := NewIncremental(DefaultOptions(), n)
	for i := 0; i < n; i++ {
		x, y := g.pair(1)
		xs, ys = append(xs, x), append(ys, y)
		inc.Append(x, y)
	}
	_, seed, err := inc.TrainFull(denseOf(xs), denseOf(ys))
	if err != nil {
		t.Fatal(err)
	}
	inc.Install(seed)
	if inc.NeedsFull() {
		t.Fatal("needs full right after install")
	}
	inc.Invalidate()
	if !inc.NeedsFull() {
		t.Fatal("Invalidate did not force the full path")
	}
	if _, err := inc.Retrain(); !errors.Is(err, ErrNeedFull) {
		t.Fatalf("Retrain on stale state: err = %v, want ErrNeedFull", err)
	}
	_, seed, err = inc.TrainFull(denseOf(xs), denseOf(ys))
	if err != nil {
		t.Fatal(err)
	}
	inc.Install(seed)
	if inc.NeedsFull() {
		t.Fatal("still stale after reinstall")
	}
}
