package kcca

import (
	"errors"
	"fmt"

	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Retrain-path metrics: how many sliding-window retrains took the full
// O(N³) dense path versus the incremental top-rank path. The τ-drift guard
// test asserts on these.
var (
	retrainFull = obs.GetCounter("kcca.retrain.full")
	retrainInc  = obs.GetCounter("kcca.retrain.incremental")
)

// ErrNeedFull means the incremental retrain path cannot serve this retrain
// — the window grew, the τ-drift guard fired, there is no warm state yet, or
// the iterative eigensolver failed to converge — and the caller must run
// TrainFull instead. Matched with errors.Is.
var ErrNeedFull = errors.New("kcca: incremental retrain needs a full rebuild")

// Incremental is the sliding-window KCCA retrainer. It owns maintained
// kernel state for both views (query features X, performance features Y),
// keyed to the window's ring-buffer slots: each window slide replaces one
// row of each kernel matrix in O(N·d) (kernels.Maintained), and each retrain
// computes only the top-rank eigenpairs with the previous retrain's
// eigenvectors as a warm start (linalg.TopEigenIterative) instead of the
// dense O(N³) solve. Everything downstream of the eigensolve — the
// significance threshold, CCA fit, projections — is byte-for-byte the same
// code the full path runs.
//
// Equivalence discipline: while τ stays frozen, the maintained kernel
// matrices are bit-identical to from-scratch builds, so an incremental
// retrain differs from a full retrain only through the eigensolver's
// convergence tolerance (documented in the equivalence tests as a relative
// prediction tolerance of ~1e-6). When the τ-drift guard fires, the caller
// runs TrainFull, which is exactly Train — the results match bit-for-bit.
//
// Incremental is not safe for concurrent use: the owner (core's sliding
// predictor) serializes Append/Replace/Retrain under its mutex. TrainFull is
// a pure function of its arguments and may run outside that lock.
type Incremental struct {
	opt      Options
	capacity int

	mx, my       *kernels.Maintained
	warmX, warmY *linalg.Matrix
	stale        bool
}

// Seed is the maintained state produced by a full retrain, handed back via
// Install once the caller has confirmed the window did not move during the
// (unlocked) full train.
type Seed struct {
	mx, my       *kernels.Maintained
	warmX, warmY *linalg.Matrix
}

// NewIncremental returns an empty incremental retrainer for a sliding
// window of at most capacity rows.
func NewIncremental(opt Options, capacity int) *Incremental {
	return &Incremental{opt: applyDefaults(opt), capacity: capacity}
}

// N returns the current window row count.
func (inc *Incremental) N() int {
	if inc.mx == nil {
		return 0
	}
	return inc.mx.N()
}

// Append adds a row pair during the window's grow phase. Kernel state stays
// unsynchronized until the next full retrain (growth changes every row's
// contribution to the scale heuristic anyway).
func (inc *Incremental) Append(xRow, yRow []float64) {
	if inc.mx == nil {
		inc.mx = kernels.NewMaintained(len(xRow), inc.capacity, inc.opt.TauFracX, inc.opt.TauX)
		inc.my = kernels.NewMaintained(len(yRow), inc.capacity, inc.opt.TauFracY, inc.opt.TauY)
	}
	inc.mx.Append(xRow)
	inc.my.Append(yRow)
}

// Replace swaps the row pair at the given ring-buffer slot — the O(N·d)
// steady-state window slide.
func (inc *Incremental) Replace(slot int, xRow, yRow []float64) {
	inc.mx.Replace(slot, xRow)
	inc.my.Replace(slot, yRow)
}

// Invalidate marks the maintained state stale, forcing the next retrain
// down the full path. The sliding predictor calls it when the window moved
// while an unlocked full train was in flight (the seed no longer matches).
func (inc *Incremental) Invalidate() { inc.stale = true }

// NeedsFull reports whether the next retrain must take the full path:
// no state yet, stale or unsynchronized state (window grew), too few rows
// for the iteration to pay off, no warm eigenvectors, or the τ-drift guard
// firing on either view.
func (inc *Incremental) NeedsFull() bool {
	if inc.mx == nil || inc.stale || !inc.mx.Synced() || !inc.my.Synced() {
		return true
	}
	n := inc.mx.N()
	if n < 5 || inc.warmX == nil || !iterWorthwhile(n, resolveRank(n, inc.opt)) {
		return true
	}
	return inc.mx.Drifted(inc.opt.TauDriftTol) || inc.my.Drifted(inc.opt.TauDriftTol)
}

// Retrain runs the incremental retrain: top-rank eigensolve of both
// maintained (implicitly centered) kernels with warm starts, then the
// shared CCA/projection tail. It returns an error matching ErrNeedFull when
// the incremental path cannot serve (including eigensolver non-convergence,
// which surfaces here rather than as a wrong answer); the caller then runs
// TrainFull.
func (inc *Incremental) Retrain() (*Model, error) {
	if inc.NeedsFull() {
		return nil, ErrNeedFull
	}
	defer obs.Span("kcca.retrain.incremental")()
	n := inc.mx.N()
	rank := resolveRank(n, inc.opt)

	var valsX, valsY []float64
	var vecsX, vecsY *linalg.Matrix
	var errX, errY error
	stopEigen := obs.Span("kcca.train.eigen")
	parallel.Do(
		func() {
			valsX, vecsX, errX = linalg.TopEigenIterative(n, rank, inc.mx.ApplyCentered,
				linalg.EigenOptions{Warm: inc.warmX, DropBelow: keepFrac})
		},
		func() {
			valsY, vecsY, errY = linalg.TopEigenIterative(n, rank, inc.my.ApplyCentered,
				linalg.EigenOptions{Warm: inc.warmY, DropBelow: keepFrac})
		},
	)
	stopEigen()
	for _, err := range []error{errX, errY} {
		if err == nil {
			continue
		}
		if errors.Is(err, linalg.ErrNotConverged) {
			return nil, fmt.Errorf("%w: %v", ErrNeedFull, err)
		}
		return nil, err
	}

	phiX, ux, lamx, err := phiFromEigen(n, valsX, vecsX)
	if err != nil {
		return nil, err
	}
	phiY, _, _, err := phiFromEigen(n, valsY, vecsY)
	if err != nil {
		return nil, err
	}
	rowMeansX, grandX := inc.mx.RowMeans()
	model, err := fitModel(inc.mx.XClone(), inc.mx.Tau, inc.my.Tau, rowMeansX, grandX,
		phiX, ux, lamx, phiY, inc.opt)
	if err != nil {
		return nil, err
	}
	inc.warmX, inc.warmY = vecsX, vecsY
	retrainInc.Inc()
	return model, nil
}

// TrainFull is the full retrain: it trains exactly like Train (bit-identical
// model) and additionally builds fresh maintained kernel state seeded with
// the resulting eigenvectors, for the caller to Install. It reads only the
// retrainer's immutable configuration, so it is safe to run on a window
// snapshot outside the owner's lock while observations keep arriving.
func (inc *Incremental) TrainFull(x, y *linalg.Matrix) (*Model, *Seed, error) {
	defer obs.Span("kcca.train")()
	if x.Rows != y.Rows {
		return nil, nil, ErrRowMismatch
	}
	n := x.Rows
	if n < 5 {
		return nil, nil, ErrTooFew
	}
	opt := inc.opt
	mx := maintainedFrom(x, inc.capacity, opt.TauFracX, opt.TauX)
	my := maintainedFrom(y, inc.capacity, opt.TauFracY, opt.TauY)

	var kxC, kyC *linalg.Matrix
	var rowMeansX []float64
	var grandX float64
	stopKernel := obs.Span("kcca.train.kernel")
	parallel.Do(
		func() { mx.Rebuild(); kxC, rowMeansX, grandX = kernels.Center(mx.K) },
		func() { my.Rebuild(); kyC, _, _ = kernels.Center(my.K) },
	)
	stopKernel()

	rank := resolveRank(n, opt)
	var phiX, phiY, ux, uy *linalg.Matrix
	var lamx []float64
	var errX, errY error
	stopEigen := obs.Span("kcca.train.eigen")
	parallel.Do(
		func() { phiX, ux, lamx, errX = kernelPCA(kxC, rank) },
		func() { phiY, uy, _, errY = kernelPCA(kyC, rank) },
	)
	stopEigen()
	if errX != nil {
		return nil, nil, errX
	}
	if errY != nil {
		return nil, nil, errY
	}

	model, err := fitModel(x.Clone(), mx.Tau, my.Tau, rowMeansX, grandX, phiX, ux, lamx, phiY, opt)
	if err != nil {
		return nil, nil, err
	}
	retrainFull.Inc()
	return model, &Seed{mx: mx, my: my, warmX: ux, warmY: uy}, nil
}

// Install adopts the maintained state a TrainFull produced. The caller must
// have verified the window did not move since the snapshot TrainFull ran on
// (otherwise Invalidate, not Install).
func (inc *Incremental) Install(s *Seed) {
	inc.mx, inc.my = s.mx, s.my
	inc.warmX, inc.warmY = s.warmX, s.warmY
	inc.stale = false
}

// maintainedFrom builds maintained kernel state over a snapshot's rows.
func maintainedFrom(m *linalg.Matrix, capacity int, frac, tauOverride float64) *kernels.Maintained {
	if capacity < m.Rows {
		capacity = m.Rows
	}
	mm := kernels.NewMaintained(m.Cols, capacity, frac, tauOverride)
	for i := 0; i < m.Rows; i++ {
		mm.Append(m.Row(i))
	}
	return mm
}
