// Package kcca implements Kernel Canonical Correlation Analysis — the
// paper's chosen technique (Sec. V-E and VI). Gaussian kernel matrices are
// computed for the query-feature and performance-feature datasets, centered
// in feature space, reduced via kernel PCA, and correlated with
// regularized linear CCA in the reduced space. The result is a pair of
// projections — the query projection KxA and performance projection KyB of
// the paper — in which corresponding rows are maximally correlated, plus
// the machinery to project a previously unseen query into the query
// projection (the first step of Fig. 7's prediction pipeline).
package kcca

import (
	"errors"
	"math"

	"repro/internal/cca"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configures KCCA training.
type Options struct {
	// TauFracX and TauFracY set the Gaussian kernel scales as fractions of
	// the empirical variance of data-point norms. The paper uses 0.1 for
	// query vectors and 0.2 for performance vectors. The heuristic suits
	// data whose norms vary over orders of magnitude (like cardinality
	// features); TauX/TauY override it with absolute scales.
	TauFracX, TauFracY float64
	// TauX and TauY, when positive, set the kernel scales directly and
	// bypass the heuristic.
	TauX, TauY float64
	// Rank is the kernel-PCA reduction rank per view; 0 selects an
	// automatic rank (enough components to cover most kernel variance,
	// capped for tractability).
	Rank int
	// Dims is the number of canonical dimensions kept; 0 keeps all
	// available (= reduced rank).
	Dims int
	// Reg is the CCA ridge regularization; 0 selects a default.
	Reg float64
	// Lanczos selects the iterative top-rank eigensolver (block subspace
	// iteration, linalg.TopEigenIterative) for the kernel-PCA step instead
	// of the dense O(N³) tred2/tql2 solve. Off by default for one-shot
	// training; the sliding predictor's Incremental retrainer always uses
	// the iterative solver with warm starts, independent of this switch.
	// Falls back to the dense solver when the iteration does not converge
	// or the requested rank is too large a fraction of N to pay off.
	Lanczos bool
	// TauDriftTol is the τ-drift guard's relative tolerance for
	// incremental retraining: a retrain whose scale heuristic has moved
	// more than this fraction from the frozen kernel scale triggers a full
	// rebuild. 0 selects 0.1.
	TauDriftTol float64
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{TauFracX: 0.1, TauFracY: 0.2, Rank: 0, Dims: 0, Reg: 1e-3}
}

// Sentinel errors, for errors.Is branching by callers (core wraps these).
var (
	// ErrRowMismatch means the query and performance feature matrices
	// disagree on training-query count.
	ErrRowMismatch = errors.New("kcca: feature matrices must have equal row counts")
	// ErrTooFew means the training set was below the five-query minimum.
	ErrTooFew = errors.New("kcca: need at least five training queries")
	// ErrDegenerate means a kernel matrix had no numerically significant
	// components to build a projection from.
	ErrDegenerate = errors.New("kcca: kernel matrix has no significant components")
)

// Model is a trained KCCA model.
type Model struct {
	// X holds the training query feature matrix (needed to kernelize new
	// queries).
	X *linalg.Matrix
	// TauX and TauY are the kernel scales actually used.
	TauX, TauY float64

	// QueryProj and PerfProj are the training projections (N×d): the
	// paper's KxA and KyB. Row i of each corresponds to training query i.
	QueryProj, PerfProj *linalg.Matrix

	// Correlations are the canonical correlations per dimension.
	Correlations []float64

	// Centering data for out-of-sample query projection.
	rowMeansX []float64
	grandX    float64
	// Kernel-PCA basis for the X view: Phi = Ux·Λx^{1/2}; a new kernel
	// vector kq maps to φq = Λx^{−1/2}·Uxᵀ·kq.
	ux   *linalg.Matrix
	lamx []float64
	// CCA weights in reduced space.
	ccaModel *cca.Model
}

// applyDefaults fills zero-valued options with the paper's defaults.
func applyDefaults(opt Options) Options {
	if opt.TauFracX <= 0 {
		opt.TauFracX = 0.1
	}
	if opt.TauFracY <= 0 {
		opt.TauFracY = 0.2
	}
	if opt.Reg <= 0 {
		opt.Reg = 1e-3
	}
	if opt.TauDriftTol <= 0 {
		opt.TauDriftTol = 0.1
	}
	return opt
}

// resolveRank applies the automatic kernel-PCA rank rule: a quarter of the
// training set, capped at 80 for tractability, floored at 8 for stability,
// and never exceeding n−1 (a centered kernel matrix has rank ≤ n−1).
func resolveRank(n int, opt Options) int {
	rank := opt.Rank
	if rank <= 0 {
		rank = n / 4
		if rank > 80 {
			rank = 80
		}
		if rank < 8 {
			rank = 8
		}
	}
	if rank > n-1 {
		rank = n - 1
	}
	return rank
}

// iterWorthwhile reports whether the iterative top-rank eigensolver pays
// off: its block is rank + oversampling columns, and below about half of N
// the O(N²·b) iteration no longer beats the dense O(N³) solve (and loses
// the room it needs to converge).
func iterWorthwhile(n, rank int) bool {
	return n >= 2*(rank+linalg.DefaultOversample)
}

// Train fits KCCA on the query features x and performance features y (one
// row per training query in both, same order).
func Train(x, y *linalg.Matrix, opt Options) (*Model, error) {
	defer obs.Span("kcca.train")()
	if x.Rows != y.Rows {
		return nil, ErrRowMismatch
	}
	n := x.Rows
	if n < 5 {
		return nil, ErrTooFew
	}
	opt = applyDefaults(opt)

	tauX := opt.TauX
	if tauX <= 0 {
		tauX = kernels.ScaleHeuristic(x, opt.TauFracX)
	}
	tauY := opt.TauY
	if tauY <= 0 {
		tauY = kernels.ScaleHeuristic(y, opt.TauFracY)
	}

	// The query-side and performance-side views are independent until the
	// CCA fit, so each view's kernel matrix and centering run as one task on
	// the shared worker pool (each task's internals parallelize further when
	// the pool has idle workers).
	var kxC, kyC *linalg.Matrix
	var rowMeansX []float64
	var grandX float64
	stopKernel := obs.Span("kcca.train.kernel")
	parallel.Do(
		func() { kxC, rowMeansX, grandX = kernels.Center(kernels.Matrix(x, tauX)) },
		func() { kyC, _, _ = kernels.Center(kernels.Matrix(y, tauY)) },
	)
	stopKernel()

	rank := resolveRank(n, opt)

	var phiX, phiY, ux, uy *linalg.Matrix
	var lamx []float64
	var errX, errY error
	stopEigen := obs.Span("kcca.train.eigen")
	useIter := opt.Lanczos && iterWorthwhile(n, rank)
	parallel.Do(
		func() { phiX, ux, lamx, errX = pcaSolve(kxC, rank, useIter, nil) },
		func() { phiY, uy, _, errY = pcaSolve(kyC, rank, useIter, nil) },
	)
	stopEigen()
	_ = uy
	if errX != nil {
		return nil, errX
	}
	if errY != nil {
		return nil, errY
	}

	return fitModel(x.Clone(), tauX, tauY, rowMeansX, grandX, phiX, ux, lamx, phiY, opt)
}

// keepFrac is the kernel-PCA significance threshold: components with
// eigenvalues below keepFrac·max(λ₁, 1) are dropped (phiFromEigen), and the
// iterative solver is told not to chase residuals on them (DropBelow).
const keepFrac = 1e-10

// pcaSolve runs kernel PCA with the dense solver or the iterative one
// (falling back to dense when the iteration fails to converge — correctness
// over speed, since dense always succeeds on a symmetric matrix).
func pcaSolve(kC *linalg.Matrix, rank int, iterative bool, warm *linalg.Matrix) (phi, u *linalg.Matrix, lam []float64, err error) {
	if iterative {
		vals, vecs, ierr := linalg.TopEigenWarm(kC, rank, linalg.EigenOptions{Warm: warm, DropBelow: keepFrac})
		if ierr == nil {
			return phiFromEigen(kC.Rows, vals, vecs)
		}
		if !errors.Is(ierr, linalg.ErrNotConverged) {
			return nil, nil, nil, ierr
		}
	}
	return kernelPCA(kC, rank)
}

// fitModel finishes training from the per-view kernel-PCA outputs: the CCA
// fit in reduced space, both training projections, and model assembly.
// xOwned must be caller-owned (it is stored in the model uncopied).
func fitModel(xOwned *linalg.Matrix, tauX, tauY float64, rowMeansX []float64, grandX float64,
	phiX, ux *linalg.Matrix, lamx []float64, phiY *linalg.Matrix, opt Options) (*Model, error) {
	dims := opt.Dims
	if dims <= 0 || dims > phiX.Cols || dims > phiY.Cols {
		dims = phiX.Cols
		if phiY.Cols < dims {
			dims = phiY.Cols
		}
	}
	stopCCA := obs.Span("kcca.train.cca")
	cm, err := cca.Fit(phiX, phiY, dims, opt.Reg)
	stopCCA()
	if err != nil {
		return nil, err
	}

	stopProj := obs.Span("kcca.train.project")
	queryProj := cm.ProjectAllX(phiX)
	perfProj := cm.ProjectAllY(phiY)
	stopProj()
	return &Model{
		X:            xOwned,
		TauX:         tauX,
		TauY:         tauY,
		QueryProj:    queryProj,
		PerfProj:     perfProj,
		Correlations: cm.Correlations,
		rowMeansX:    rowMeansX,
		grandX:       grandX,
		ux:           ux,
		lamx:         lamx,
		ccaModel:     cm,
	}, nil
}

// kernelPCA returns Phi = U·Λ^{1/2} for the top-r eigenpairs of the
// centered kernel matrix, dropping components with negligible eigenvalues.
func kernelPCA(k *linalg.Matrix, r int) (phi, u *linalg.Matrix, lam []float64, err error) {
	vals, vecs, err := linalg.TopEigen(k, r)
	if err != nil {
		return nil, nil, nil, err
	}
	return phiFromEigen(k.Rows, vals, vecs)
}

// phiFromEigen builds Phi = U·Λ^{1/2} from eigenpairs (descending order),
// applying the keep threshold that drops numerically insignificant
// components. Shared by the dense and iterative solver paths so both apply
// an identical significance rule.
func phiFromEigen(n int, vals []float64, vecs *linalg.Matrix) (phi, u *linalg.Matrix, lam []float64, err error) {
	keep := 0
	tol := keepFrac * math.Max(vals[0], 1)
	for keep < len(vals) && vals[keep] > tol {
		keep++
	}
	if keep == 0 {
		return nil, nil, nil, ErrDegenerate
	}
	vals = vals[:keep]
	vecs = vecs.SliceCols(0, keep)
	phi = linalg.NewMatrix(n, keep)
	for j := 0; j < keep; j++ {
		s := math.Sqrt(vals[j])
		for i := 0; i < n; i++ {
			phi.Set(i, j, vecs.At(i, j)*s)
		}
	}
	return phi, vecs, vals, nil
}

// ProjectQuery maps a new query feature vector into the query projection
// (the coordinates used for nearest-neighbor lookup in Fig. 7).
func (m *Model) ProjectQuery(q []float64) []float64 {
	proj, _ := m.ProjectQueryKernel(q)
	return proj
}

// ProjectQueryKernel projects q and also returns its largest raw kernel
// evaluation against the training set (see MaxKernel), computing the
// cross-kernel vector exactly once — the prediction hot path needs both and
// the O(N·d) kernel vector dominates its cost. The vector lives in a pooled
// scratch buffer, so the only allocations are the two returned coordinate
// slices.
func (m *Model) ProjectQueryKernel(q []float64) (proj []float64, maxK float64) {
	defer obs.Span("kcca.project_query")()
	kq := kernels.GetScratch(m.X.Rows)
	defer kernels.PutScratch(kq)
	kernels.CrossVectorInto(*kq, m.X, q, m.TauX)
	for _, v := range *kq {
		if v > maxK {
			maxK = v
		}
	}
	kernels.CenterCrossInto(*kq, *kq, m.rowMeansX, m.grandX)
	// φq = Λ^{−1/2} Uᵀ kq.
	phi := m.ux.TMulVec(*kq)
	for j := range phi {
		phi[j] /= math.Sqrt(m.lamx[j])
	}
	return m.ccaModel.ProjectX(phi), maxK
}

// MaxKernel returns the largest kernel evaluation between q and any
// training point — a raw in-distribution score in (0, 1]. Values near zero
// mean the query is far from everything the model has seen, in which case
// its projection coordinates are meaningless (the kernel vector is
// numerically zero) and downstream confidence should collapse.
func (m *Model) MaxKernel(q []float64) float64 {
	kq := kernels.CrossVector(m.X, q, m.TauX)
	best := 0.0
	for _, v := range kq {
		if v > best {
			best = v
		}
	}
	return best
}

// Dims returns the dimensionality of the canonical projections.
func (m *Model) Dims() int { return m.QueryProj.Cols }

// N returns the number of training queries.
func (m *Model) N() int { return m.QueryProj.Rows }
