// Package kcca implements Kernel Canonical Correlation Analysis — the
// paper's chosen technique (Sec. V-E and VI). Gaussian kernel matrices are
// computed for the query-feature and performance-feature datasets, centered
// in feature space, reduced via kernel PCA, and correlated with
// regularized linear CCA in the reduced space. The result is a pair of
// projections — the query projection KxA and performance projection KyB of
// the paper — in which corresponding rows are maximally correlated, plus
// the machinery to project a previously unseen query into the query
// projection (the first step of Fig. 7's prediction pipeline).
package kcca

import (
	"errors"
	"math"

	"repro/internal/cca"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configures KCCA training.
type Options struct {
	// TauFracX and TauFracY set the Gaussian kernel scales as fractions of
	// the empirical variance of data-point norms. The paper uses 0.1 for
	// query vectors and 0.2 for performance vectors. The heuristic suits
	// data whose norms vary over orders of magnitude (like cardinality
	// features); TauX/TauY override it with absolute scales.
	TauFracX, TauFracY float64
	// TauX and TauY, when positive, set the kernel scales directly and
	// bypass the heuristic.
	TauX, TauY float64
	// Rank is the kernel-PCA reduction rank per view; 0 selects an
	// automatic rank (enough components to cover most kernel variance,
	// capped for tractability).
	Rank int
	// Dims is the number of canonical dimensions kept; 0 keeps all
	// available (= reduced rank).
	Dims int
	// Reg is the CCA ridge regularization; 0 selects a default.
	Reg float64
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{TauFracX: 0.1, TauFracY: 0.2, Rank: 0, Dims: 0, Reg: 1e-3}
}

// Sentinel errors, for errors.Is branching by callers (core wraps these).
var (
	// ErrRowMismatch means the query and performance feature matrices
	// disagree on training-query count.
	ErrRowMismatch = errors.New("kcca: feature matrices must have equal row counts")
	// ErrTooFew means the training set was below the five-query minimum.
	ErrTooFew = errors.New("kcca: need at least five training queries")
	// ErrDegenerate means a kernel matrix had no numerically significant
	// components to build a projection from.
	ErrDegenerate = errors.New("kcca: kernel matrix has no significant components")
)

// Model is a trained KCCA model.
type Model struct {
	// X holds the training query feature matrix (needed to kernelize new
	// queries).
	X *linalg.Matrix
	// TauX and TauY are the kernel scales actually used.
	TauX, TauY float64

	// QueryProj and PerfProj are the training projections (N×d): the
	// paper's KxA and KyB. Row i of each corresponds to training query i.
	QueryProj, PerfProj *linalg.Matrix

	// Correlations are the canonical correlations per dimension.
	Correlations []float64

	// Centering data for out-of-sample query projection.
	rowMeansX []float64
	grandX    float64
	// Kernel-PCA basis for the X view: Phi = Ux·Λx^{1/2}; a new kernel
	// vector kq maps to φq = Λx^{−1/2}·Uxᵀ·kq.
	ux   *linalg.Matrix
	lamx []float64
	// CCA weights in reduced space.
	ccaModel *cca.Model
}

// Train fits KCCA on the query features x and performance features y (one
// row per training query in both, same order).
func Train(x, y *linalg.Matrix, opt Options) (*Model, error) {
	defer obs.Span("kcca.train")()
	if x.Rows != y.Rows {
		return nil, ErrRowMismatch
	}
	n := x.Rows
	if n < 5 {
		return nil, ErrTooFew
	}
	if opt.TauFracX <= 0 {
		opt.TauFracX = 0.1
	}
	if opt.TauFracY <= 0 {
		opt.TauFracY = 0.2
	}
	if opt.Reg <= 0 {
		opt.Reg = 1e-3
	}

	tauX := opt.TauX
	if tauX <= 0 {
		tauX = kernels.ScaleHeuristic(x, opt.TauFracX)
	}
	tauY := opt.TauY
	if tauY <= 0 {
		tauY = kernels.ScaleHeuristic(y, opt.TauFracY)
	}

	// The query-side and performance-side views are independent until the
	// CCA fit, so each view's kernel matrix and centering run as one task on
	// the shared worker pool (each task's internals parallelize further when
	// the pool has idle workers).
	var kxC, kyC *linalg.Matrix
	var rowMeansX []float64
	var grandX float64
	stopKernel := obs.Span("kcca.train.kernel")
	parallel.Do(
		func() { kxC, rowMeansX, grandX = kernels.Center(kernels.Matrix(x, tauX)) },
		func() { kyC, _, _ = kernels.Center(kernels.Matrix(y, tauY)) },
	)
	stopKernel()

	rank := opt.Rank
	if rank <= 0 {
		rank = n / 4
		if rank > 80 {
			rank = 80
		}
		if rank < 8 {
			rank = 8
		}
	}
	if rank > n-1 {
		rank = n - 1
	}

	var phiX, phiY, ux *linalg.Matrix
	var lamx []float64
	var errX, errY error
	stopEigen := obs.Span("kcca.train.eigen")
	parallel.Do(
		func() { phiX, ux, lamx, errX = kernelPCA(kxC, rank) },
		func() { phiY, _, _, errY = kernelPCA(kyC, rank) },
	)
	stopEigen()
	if errX != nil {
		return nil, errX
	}
	if errY != nil {
		return nil, errY
	}

	dims := opt.Dims
	if dims <= 0 || dims > phiX.Cols || dims > phiY.Cols {
		dims = phiX.Cols
		if phiY.Cols < dims {
			dims = phiY.Cols
		}
	}
	stopCCA := obs.Span("kcca.train.cca")
	cm, err := cca.Fit(phiX, phiY, dims, opt.Reg)
	stopCCA()
	if err != nil {
		return nil, err
	}

	stopProj := obs.Span("kcca.train.project")
	queryProj := cm.ProjectAllX(phiX)
	perfProj := cm.ProjectAllY(phiY)
	stopProj()
	return &Model{
		X:            x.Clone(),
		TauX:         tauX,
		TauY:         tauY,
		QueryProj:    queryProj,
		PerfProj:     perfProj,
		Correlations: cm.Correlations,
		rowMeansX:    rowMeansX,
		grandX:       grandX,
		ux:           ux,
		lamx:         lamx,
		ccaModel:     cm,
	}, nil
}

// kernelPCA returns Phi = U·Λ^{1/2} for the top-r eigenpairs of the
// centered kernel matrix, dropping components with negligible eigenvalues.
func kernelPCA(k *linalg.Matrix, r int) (phi, u *linalg.Matrix, lam []float64, err error) {
	vals, vecs, err := linalg.TopEigen(k, r)
	if err != nil {
		return nil, nil, nil, err
	}
	// Keep only numerically meaningful components.
	keep := 0
	tol := 1e-10 * math.Max(vals[0], 1)
	for keep < len(vals) && vals[keep] > tol {
		keep++
	}
	if keep == 0 {
		return nil, nil, nil, ErrDegenerate
	}
	vals = vals[:keep]
	vecs = vecs.SliceCols(0, keep)
	n := k.Rows
	phi = linalg.NewMatrix(n, keep)
	for j := 0; j < keep; j++ {
		s := math.Sqrt(vals[j])
		for i := 0; i < n; i++ {
			phi.Set(i, j, vecs.At(i, j)*s)
		}
	}
	return phi, vecs, vals, nil
}

// ProjectQuery maps a new query feature vector into the query projection
// (the coordinates used for nearest-neighbor lookup in Fig. 7).
func (m *Model) ProjectQuery(q []float64) []float64 {
	defer obs.Span("kcca.project_query")()
	kq := kernels.CrossVector(m.X, q, m.TauX)
	kqC := kernels.CenterCross(kq, m.rowMeansX, m.grandX)
	// φq = Λ^{−1/2} Uᵀ kq.
	phi := m.ux.TMulVec(kqC)
	for j := range phi {
		phi[j] /= math.Sqrt(m.lamx[j])
	}
	return m.ccaModel.ProjectX(phi)
}

// MaxKernel returns the largest kernel evaluation between q and any
// training point — a raw in-distribution score in (0, 1]. Values near zero
// mean the query is far from everything the model has seen, in which case
// its projection coordinates are meaningless (the kernel vector is
// numerically zero) and downstream confidence should collapse.
func (m *Model) MaxKernel(q []float64) float64 {
	kq := kernels.CrossVector(m.X, q, m.TauX)
	best := 0.0
	for _, v := range kq {
		if v > best {
			best = v
		}
	}
	return best
}

// Dims returns the dimensionality of the canonical projections.
func (m *Model) Dims() int { return m.QueryProj.Cols }

// N returns the number of training queries.
func (m *Model) N() int { return m.QueryProj.Rows }
