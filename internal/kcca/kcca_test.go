package kcca

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/regress"
)

// nonlinearViews plants a strongly nonlinear relation: the performance
// view is a smooth but non-linear function of the query view, like query
// runtime versus plan cardinalities.
func nonlinearViews(seed int64, n int) (*linalg.Matrix, *linalg.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, 3)
	y := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 4
		b := rng.Float64() * 4
		c := rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y.Set(i, 0, a*b+0.05*rng.NormFloat64()) // multiplicative
		y.Set(i, 1, math.Exp(a/2)+0.05*rng.NormFloat64())
	}
	return x, y
}

// unitOpts returns options whose kernel scales suit the unit-scale planted
// data of these tests (the paper's 0.1/0.2 fractions assume cardinality
// features whose norms vary over orders of magnitude).
func unitOpts() Options {
	o := DefaultOptions()
	o.TauFracX, o.TauFracY = 5, 5
	return o
}

func TestTrainBasics(t *testing.T) {
	x, y := nonlinearViews(1, 120)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 120 {
		t.Errorf("N = %d", m.N())
	}
	if m.Dims() <= 0 {
		t.Errorf("dims = %d", m.Dims())
	}
	if m.QueryProj.Rows != 120 || m.PerfProj.Rows != 120 {
		t.Error("projection row counts wrong")
	}
	if m.QueryProj.Cols != m.PerfProj.Cols {
		t.Error("projection dims differ")
	}
	for i, c := range m.Correlations {
		if c < -1e-9 || c > 1+1e-9 {
			t.Errorf("correlation %d = %v", i, c)
		}
	}
	if m.Correlations[0] < 0.8 {
		t.Errorf("top correlation = %v, want high for strongly related views", m.Correlations[0])
	}
}

func TestProjectQueryConsistentWithTraining(t *testing.T) {
	// Projecting a TRAINING point out-of-sample must land (nearly) on its
	// training projection — the property that makes Fig. 7's prediction
	// pipeline coherent.
	x, y := nonlinearViews(2, 80)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got := m.ProjectQuery(x.Row(i))
		want := m.QueryProj.Row(i)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				t.Fatalf("row %d dim %d: out-of-sample %v vs training %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestSimilarQueriesProjectNearby(t *testing.T) {
	x, y := nonlinearViews(3, 100)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Perturb training point 0 slightly: its projection must stay closer
	// to point 0's projection than to most others.
	q := linalg.CloneVec(x.Row(0))
	for j := range q {
		q[j] += 0.01
	}
	p := m.ProjectQuery(q)
	d0 := linalg.Dist(p, m.QueryProj.Row(0))
	closer := 0
	for i := 1; i < m.N(); i++ {
		if linalg.Dist(p, m.QueryProj.Row(i)) < d0 {
			closer++
		}
	}
	if closer > 3 {
		t.Errorf("perturbed query has %d training points closer than its source", closer)
	}
}

// TestKCCABeatsRegressionOnNonlinearData is the core scientific claim:
// kNN in KCCA projection space predicts a nonlinear metric much better
// than linear regression on the raw features.
func TestKCCABeatsRegressionOnNonlinearData(t *testing.T) {
	xTrain, yTrain := nonlinearViews(4, 300)
	xTest, yTest := nonlinearViews(5, 60)

	m, err := Train(xTrain, yTrain, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := knn.DefaultOptions()

	risk := func(pred, act []float64) float64 {
		mean := linalg.Mean(act)
		var sse, sst float64
		for i := range act {
			sse += (pred[i] - act[i]) * (pred[i] - act[i])
			sst += (act[i] - mean) * (act[i] - mean)
		}
		return 1 - sse/sst
	}

	// KCCA + kNN predictions for metric 0.
	kccaPred := make([]float64, xTest.Rows)
	act := make([]float64, xTest.Rows)
	for i := 0; i < xTest.Rows; i++ {
		proj := m.ProjectQuery(xTest.Row(i))
		pred, _, err := knn.Predict(m.QueryProj, yTrain, proj, opts)
		if err != nil {
			t.Fatal(err)
		}
		kccaPred[i] = pred[0]
		act[i] = yTest.At(i, 0)
	}

	// Linear regression baseline on the same metric.
	lm, err := regress.Fit(xTrain, yTrain.Col(0))
	if err != nil {
		t.Fatal(err)
	}
	regPred := lm.PredictAll(xTest)

	kccaRisk := risk(kccaPred, act)
	regRisk := risk(regPred, act)
	if kccaRisk < 0.9 {
		t.Errorf("KCCA predictive risk = %v, want > 0.9", kccaRisk)
	}
	if kccaRisk <= regRisk {
		t.Errorf("KCCA (%v) should beat regression (%v) on nonlinear data", kccaRisk, regRisk)
	}
}

func TestTrainErrors(t *testing.T) {
	x := linalg.NewMatrix(4, 2)
	y := linalg.NewMatrix(4, 2)
	if _, err := Train(x, y, DefaultOptions()); err == nil {
		t.Error("too-few rows accepted")
	}
	if _, err := Train(linalg.NewMatrix(10, 2), linalg.NewMatrix(9, 2), DefaultOptions()); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestRankOption(t *testing.T) {
	x, y := nonlinearViews(6, 60)
	m, err := Train(x, y, Options{Rank: 10, Reg: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims() > 10 {
		t.Errorf("dims = %d, want <= rank 10", m.Dims())
	}
}

func TestMaxKernel(t *testing.T) {
	x, y := nonlinearViews(7, 60)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A training point's max kernel is 1 (itself).
	if k := m.MaxKernel(x.Row(0)); math.Abs(k-1) > 1e-12 {
		t.Errorf("training point max kernel = %v, want 1", k)
	}
	// A far-away point has near-zero similarity.
	far := make([]float64, x.Cols)
	for i := range far {
		far[i] = 1e6
	}
	if k := m.MaxKernel(far); k > 1e-6 {
		t.Errorf("far point max kernel = %v, want ~0", k)
	}
}

func TestSaveLoadModel(t *testing.T) {
	x, y := nonlinearViews(8, 50)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != m.N() || loaded.Dims() != m.Dims() {
		t.Fatal("shape changed after round trip")
	}
	// Out-of-sample projection must be bit-identical.
	q := x.Row(3)
	a := m.ProjectQuery(q)
	b := loaded.ProjectQuery(q)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("projection changed after round trip at dim %d", i)
		}
	}
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestLoadRejectsCorruptModel tampers with each validated invariant of the
// wire form and checks Load returns an error rather than building a model
// that panics on first use.
func TestLoadRejectsCorruptModel(t *testing.T) {
	x, y := nonlinearViews(9, 40)
	m, err := Train(x, y, unitOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	decode := func() *modelWire {
		var w modelWire
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&w); err != nil {
			t.Fatal(err)
		}
		return &w
	}
	cases := []struct {
		name    string
		corrupt func(w *modelWire)
	}{
		{"truncated X data", func(w *modelWire) { w.X.Data = w.X.Data[:len(w.X.Data)-1] }},
		{"negative dims", func(w *modelWire) { w.QueryProj.Rows = -1 }},
		{"projection rows disagree", func(w *modelWire) {
			w.PerfProj.Rows--
			w.PerfProj.Data = w.PerfProj.Data[:w.PerfProj.Rows*w.PerfProj.Cols]
		}},
		{"short row means", func(w *modelWire) { w.RowMeansX = w.RowMeansX[:len(w.RowMeansX)-2] }},
		{"truncated eigenvalues", func(w *modelWire) { w.Lamx = w.Lamx[:len(w.Lamx)-1] }},
		{"zero eigenvalue", func(w *modelWire) { w.Lamx[0] = 0 }},
		{"NaN kernel scale", func(w *modelWire) { w.TauX = math.NaN() }},
		{"missing CCA weights", func(w *modelWire) { w.CCA = nil }},
		{"CCA input dim mismatch", func(w *modelWire) { w.CCA.MeanX = w.CCA.MeanX[:1] }},
		{"projection dim mismatch", func(w *modelWire) {
			w.QueryProj.Cols--
			w.QueryProj.Data = w.QueryProj.Data[:w.QueryProj.Rows*w.QueryProj.Cols]
		}},
	}
	for _, tc := range cases {
		w := decode()
		tc.corrupt(w)
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(w); err != nil {
			t.Fatalf("%s: re-encode: %v", tc.name, err)
		}
		if _, err := Load(&out); err == nil {
			t.Errorf("%s: corrupted model loaded without error", tc.name)
		}
	}
}
