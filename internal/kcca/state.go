package kcca

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/linalg"
)

// IncrementalState is the exported wire form of Incremental, for the
// durable serving state snapshots (internal/wal). Restoring it — rather
// than invalidating and forcing a full retrain — is what makes a recovered
// daemon's retrain path, and therefore its predictions, bit-identical to
// one that never restarted: the next retrain after recovery runs the same
// incremental warm-started eigensolve the uninterrupted process would run.
type IncrementalState struct {
	Capacity     int
	MX, MY       *kernels.MaintainedState
	WarmX, WarmY *linalg.Matrix
	Stale        bool
}

// HasState reports whether the retrainer holds any maintained kernel state
// worth snapshotting.
func (inc *Incremental) HasState() bool { return inc.mx != nil }

// State captures the retrainer's full state for serialization, or nil if
// no rows have been seen yet. The returned struct shares the receiver's
// backing arrays: encode before the owner mutates again.
func (inc *Incremental) State() *IncrementalState {
	if inc.mx == nil {
		return nil
	}
	return &IncrementalState{
		Capacity: inc.capacity,
		MX:       inc.mx.State(),
		MY:       inc.my.State(),
		WarmX:    inc.warmX,
		WarmY:    inc.warmY,
		Stale:    inc.stale,
	}
}

// RestoreState rebuilds the maintained kernel and warm-start state from a
// decoded snapshot. opt and capacity come from the owner's configuration
// (they are not serialized here; the sliding predictor checks them against
// its own wire form). A nil state is a valid empty retrainer.
func (inc *Incremental) RestoreState(st *IncrementalState) error {
	if st == nil {
		inc.mx, inc.my = nil, nil
		inc.warmX, inc.warmY = nil, nil
		inc.stale = false
		return nil
	}
	mx, err := kernels.MaintainedFromState(st.MX)
	if err != nil {
		return fmt.Errorf("kcca: restoring X view: %w", err)
	}
	my, err := kernels.MaintainedFromState(st.MY)
	if err != nil {
		return fmt.Errorf("kcca: restoring Y view: %w", err)
	}
	if mx.N() != my.N() {
		return fmt.Errorf("kcca: restored views disagree on row count: X=%d Y=%d", mx.N(), my.N())
	}
	for _, w := range []struct {
		name string
		m    *linalg.Matrix
	}{{"WarmX", st.WarmX}, {"WarmY", st.WarmY}} {
		if w.m == nil {
			continue
		}
		if err := w.m.CheckShape(); err != nil {
			return fmt.Errorf("kcca: restored state: %s: %w", w.name, err)
		}
		// Warm eigenvectors date from the last completed retrain, so their
		// row count legitimately lags the maintained kernel between
		// retrains (the eigensolver ignores mismatched warm starts). Only
		// an impossible size is corruption.
		if w.m.Rows > st.Capacity {
			return fmt.Errorf("kcca: restored state: %s has %d rows for capacity %d", w.name, w.m.Rows, st.Capacity)
		}
	}
	inc.mx, inc.my = mx, my
	inc.warmX, inc.warmY = st.WarmX, st.WarmY
	inc.stale = st.Stale
	return nil
}
