package kcca

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cca"
	"repro/internal/linalg"
)

// modelWire is the gob-encodable mirror of Model (whose projection
// internals are unexported by design).
type modelWire struct {
	X            *linalg.Matrix
	TauX, TauY   float64
	QueryProj    *linalg.Matrix
	PerfProj     *linalg.Matrix
	Correlations []float64
	RowMeansX    []float64
	GrandX       float64
	Ux           *linalg.Matrix
	Lamx         []float64
	CCA          *cca.Model
}

// Save serializes the model. The paper's deployment story (Fig. 1) has the
// vendor train models and ship them to customer sites; Save/Load is that
// shipping format.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{
		X: m.X, TauX: m.TauX, TauY: m.TauY,
		QueryProj: m.QueryProj, PerfProj: m.PerfProj,
		Correlations: m.Correlations,
		RowMeansX:    m.rowMeansX, GrandX: m.grandX,
		Ux: m.ux, Lamx: m.lamx, CCA: m.ccaModel,
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("kcca: encoding model: %w", err)
	}
	return nil
}

// Load deserializes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("kcca: decoding model: %w", err)
	}
	if wire.X == nil || wire.QueryProj == nil || wire.Ux == nil || wire.CCA == nil {
		return nil, fmt.Errorf("kcca: decoded model is incomplete")
	}
	return &Model{
		X: wire.X, TauX: wire.TauX, TauY: wire.TauY,
		QueryProj: wire.QueryProj, PerfProj: wire.PerfProj,
		Correlations: wire.Correlations,
		rowMeansX:    wire.RowMeansX, grandX: wire.GrandX,
		ux: wire.Ux, lamx: wire.Lamx, ccaModel: wire.CCA,
	}, nil
}
