package kcca

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/cca"
	"repro/internal/linalg"
)

// modelWire is the gob-encodable mirror of Model (whose projection
// internals are unexported by design).
type modelWire struct {
	X            *linalg.Matrix
	TauX, TauY   float64
	QueryProj    *linalg.Matrix
	PerfProj     *linalg.Matrix
	Correlations []float64
	RowMeansX    []float64
	GrandX       float64
	Ux           *linalg.Matrix
	Lamx         []float64
	CCA          *cca.Model
}

// Save serializes the model. The paper's deployment story (Fig. 1) has the
// vendor train models and ship them to customer sites; Save/Load is that
// shipping format.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{
		X: m.X, TauX: m.TauX, TauY: m.TauY,
		QueryProj: m.QueryProj, PerfProj: m.PerfProj,
		Correlations: m.Correlations,
		RowMeansX:    m.rowMeansX, GrandX: m.grandX,
		Ux: m.ux, Lamx: m.lamx, CCA: m.ccaModel,
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("kcca: encoding model: %w", err)
	}
	return nil
}

// Load deserializes a model written by Save. The wire form is validated
// for full shape consistency before a Model is built: a truncated or
// hand-edited file must fail here with an error, not panic later deep in
// the linalg kernels when the model is first used.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("kcca: decoding model: %w", err)
	}
	if err := wire.validate(); err != nil {
		return nil, err
	}
	return &Model{
		X: wire.X, TauX: wire.TauX, TauY: wire.TauY,
		QueryProj: wire.QueryProj, PerfProj: wire.PerfProj,
		Correlations: wire.Correlations,
		rowMeansX:    wire.RowMeansX, grandX: wire.GrandX,
		ux: wire.Ux, lamx: wire.Lamx, ccaModel: wire.CCA,
	}, nil
}

// validate checks every invariant ProjectQuery and the kNN pipeline rely
// on: structural matrix shapes, cross-matrix row/column agreement, and the
// positivity of the kernel scale and kernel-PCA eigenvalues (both are
// divided by or passed to panicking kernels).
func (w *modelWire) validate() error {
	for _, m := range []struct {
		name string
		mat  *linalg.Matrix
	}{
		{"X", w.X}, {"QueryProj", w.QueryProj}, {"PerfProj", w.PerfProj}, {"Ux", w.Ux},
	} {
		if err := m.mat.CheckShape(); err != nil {
			return fmt.Errorf("kcca: decoded model: %s: %w", m.name, err)
		}
	}
	n := w.X.Rows
	if n < 1 {
		return fmt.Errorf("kcca: decoded model has no training rows")
	}
	if w.QueryProj.Rows != n || w.PerfProj.Rows != n || w.Ux.Rows != n {
		return fmt.Errorf("kcca: decoded model row counts disagree: X=%d QueryProj=%d PerfProj=%d Ux=%d",
			n, w.QueryProj.Rows, w.PerfProj.Rows, w.Ux.Rows)
	}
	if len(w.RowMeansX) != n {
		return fmt.Errorf("kcca: decoded model has %d row means, want %d", len(w.RowMeansX), n)
	}
	if len(w.Lamx) != w.Ux.Cols {
		return fmt.Errorf("kcca: decoded model has %d eigenvalues for %d kernel-PCA components", len(w.Lamx), w.Ux.Cols)
	}
	for i, l := range w.Lamx {
		if !(l > 0) || math.IsInf(l, 0) {
			return fmt.Errorf("kcca: decoded model eigenvalue %d is %v, want positive and finite", i, l)
		}
	}
	if !(w.TauX > 0) || math.IsInf(w.TauX, 0) || !(w.TauY > 0) || math.IsInf(w.TauY, 0) {
		return fmt.Errorf("kcca: decoded model kernel scales (%v, %v) must be positive and finite", w.TauX, w.TauY)
	}
	if w.CCA == nil {
		return fmt.Errorf("kcca: decoded model has no CCA weights")
	}
	if err := w.CCA.WX.CheckShape(); err != nil {
		return fmt.Errorf("kcca: decoded model: CCA.WX: %w", err)
	}
	if err := w.CCA.WY.CheckShape(); err != nil {
		return fmt.Errorf("kcca: decoded model: CCA.WY: %w", err)
	}
	if len(w.CCA.MeanX) != w.Ux.Cols || w.CCA.WX.Rows != w.Ux.Cols {
		return fmt.Errorf("kcca: decoded model CCA input dims (mean %d, WX rows %d) do not match %d kernel-PCA components",
			len(w.CCA.MeanX), w.CCA.WX.Rows, w.Ux.Cols)
	}
	if w.QueryProj.Cols != w.CCA.WX.Cols {
		return fmt.Errorf("kcca: decoded model projection has %d dims but CCA produces %d", w.QueryProj.Cols, w.CCA.WX.Cols)
	}
	return nil
}
