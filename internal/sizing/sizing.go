// Package sizing implements the paper's system-sizing and
// capacity-planning use cases (Sec. I) as a library: given a candidate
// workload and a set of machine configurations, predict — before buying or
// building anything — each configuration's resource totals and recommend
// the smallest configuration meeting the customer's constraints. This is
// the "what-if modeling" box of the paper's Fig. 1.
package sizing

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
)

// Constraint bounds a workload's predicted totals on a configuration.
type Constraint struct {
	// MaxTotalElapsedSec bounds the sum of predicted elapsed times (a
	// serial batch window). Zero means unconstrained.
	MaxTotalElapsedSec float64
	// MaxQueryElapsedSec bounds every individual query's predicted time
	// (an interactive SLA). Zero means unconstrained.
	MaxQueryElapsedSec float64
	// MaxTotalDiskIOs bounds the workload's total predicted disk I/O.
	// Zero means unconstrained.
	MaxTotalDiskIOs float64
}

// Candidate is one machine configuration together with the predictor
// trained from that configuration's historical workload.
type Candidate struct {
	Machine   exec.Machine
	Predictor *core.Predictor
	// CostRank orders candidates by price; lower is cheaper. When zero
	// for all candidates, processor count is used.
	CostRank int
}

// Assessment is the predicted outcome of running the workload on one
// candidate.
type Assessment struct {
	Machine exec.Machine
	// Totals are the summed predicted metrics across the workload.
	Totals exec.Metrics
	// MaxQueryElapsedSec is the largest single predicted elapsed time.
	MaxQueryElapsedSec float64
	// MinConfidence is the least confident individual prediction; low
	// values mean the workload contains queries unlike the candidate's
	// training history.
	MinConfidence float64
	// Satisfies reports whether the constraint holds on the predictions.
	Satisfies bool
}

// Plan evaluates the workload on every candidate and returns the
// assessments (cheapest first) plus the index of the recommended
// candidate — the cheapest whose predictions satisfy the constraint — or
// -1 when none qualifies.
func Plan(workload []*dataset.Query, candidates []Candidate, c Constraint) ([]Assessment, int, error) {
	if len(workload) == 0 {
		return nil, -1, errors.New("sizing: empty workload")
	}
	if len(candidates) == 0 {
		return nil, -1, errors.New("sizing: no candidate configurations")
	}
	ordered := make([]Candidate, len(candidates))
	copy(ordered, candidates)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].CostRank != ordered[j].CostRank {
			return ordered[i].CostRank < ordered[j].CostRank
		}
		return ordered[i].Machine.Processors < ordered[j].Machine.Processors
	})

	out := make([]Assessment, 0, len(ordered))
	recommended := -1
	for idx, cand := range ordered {
		if cand.Predictor == nil {
			return nil, -1, fmt.Errorf("sizing: candidate %s has no predictor", cand.Machine.Name)
		}
		a := Assessment{Machine: cand.Machine, MinConfidence: 1}
		for _, q := range workload {
			pred, err := cand.Predictor.PredictQuery(q)
			if err != nil {
				return nil, -1, fmt.Errorf("sizing: predicting query %d on %s: %w", q.ID, cand.Machine.Name, err)
			}
			m := pred.Metrics
			a.Totals.ElapsedSec += m.ElapsedSec
			a.Totals.RecordsAccessed += m.RecordsAccessed
			a.Totals.RecordsUsed += m.RecordsUsed
			a.Totals.DiskIOs += m.DiskIOs
			a.Totals.MessageCount += m.MessageCount
			a.Totals.MessageBytes += m.MessageBytes
			if m.ElapsedSec > a.MaxQueryElapsedSec {
				a.MaxQueryElapsedSec = m.ElapsedSec
			}
			if pred.Confidence < a.MinConfidence {
				a.MinConfidence = pred.Confidence
			}
		}
		a.Satisfies = satisfies(a, c)
		if a.Satisfies && recommended == -1 {
			recommended = idx
		}
		out = append(out, a)
	}
	return out, recommended, nil
}

func satisfies(a Assessment, c Constraint) bool {
	if c.MaxTotalElapsedSec > 0 && a.Totals.ElapsedSec > c.MaxTotalElapsedSec {
		return false
	}
	if c.MaxQueryElapsedSec > 0 && a.MaxQueryElapsedSec > c.MaxQueryElapsedSec {
		return false
	}
	if c.MaxTotalDiskIOs > 0 && a.Totals.DiskIOs > c.MaxTotalDiskIOs {
		return false
	}
	return true
}

// UpgradeAdvice compares a current configuration's assessment against an
// expected workload change and reports whether an upgrade (or downgrade)
// is indicated — the paper's capacity-planning question "given an expected
// change to a workload, should we upgrade (or downgrade) the existing
// system?".
type UpgradeAdvice int

const (
	// KeepCurrent means the current configuration satisfies the
	// constraint with the new workload.
	KeepCurrent UpgradeAdvice = iota
	// Upgrade means a larger listed configuration is needed.
	Upgrade
	// Downgrade means a strictly cheaper configuration also satisfies
	// the constraint.
	Downgrade
	// NoneSufficient means no listed configuration satisfies it.
	NoneSufficient
)

func (u UpgradeAdvice) String() string {
	switch u {
	case KeepCurrent:
		return "keep-current"
	case Upgrade:
		return "upgrade"
	case Downgrade:
		return "downgrade"
	default:
		return "none-sufficient"
	}
}

// Advise runs Plan on the changed workload and interprets the result
// relative to the current configuration (identified by machine name).
func Advise(changed []*dataset.Query, candidates []Candidate, c Constraint, currentName string) (UpgradeAdvice, []Assessment, error) {
	assessments, rec, err := Plan(changed, candidates, c)
	if err != nil {
		return NoneSufficient, nil, err
	}
	if rec < 0 {
		return NoneSufficient, assessments, nil
	}
	currentIdx := -1
	for i, a := range assessments {
		if a.Machine.Name == currentName {
			currentIdx = i
			break
		}
	}
	if currentIdx < 0 {
		return NoneSufficient, assessments, fmt.Errorf("sizing: current configuration %q not among candidates", currentName)
	}
	switch {
	case rec == currentIdx:
		return KeepCurrent, assessments, nil
	case rec < currentIdx:
		return Downgrade, assessments, nil
	default:
		return Upgrade, assessments, nil
	}
}
