package sizing

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

// fixture builds predictors for two configurations plus a small workload.
type fixture struct {
	candidates []Candidate
	workload   []*dataset.Query
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	schema := catalog.TPCDS(1)
	var reporting []workload.Template
	for _, tpl := range workload.TPCDSTemplates() {
		if tpl.Class == "tpcds" {
			reporting = append(reporting, tpl)
		}
	}
	var candidates []Candidate
	for _, procs := range []int{4, 32} {
		m := exec.Production32(procs)
		hist, err := dataset.Generate(dataset.GenConfig{
			Seed: 5, DataSeed: 1000, Machine: m, Schema: schema,
			Templates: reporting, Count: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.Train(hist.Queries, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		candidates = append(candidates, Candidate{Machine: m, Predictor: p})
	}
	wl, err := dataset.Generate(dataset.GenConfig{
		Seed: 9, DataSeed: 1000, Machine: exec.Production32(4), Schema: schema,
		Templates: reporting, Count: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{candidates: candidates, workload: wl.Queries}
	return cached
}

func TestPlanOrdersAndAssesses(t *testing.T) {
	f := setup(t)
	assessments, rec, err := Plan(f.workload, f.candidates, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(assessments) != 2 {
		t.Fatalf("assessments = %d", len(assessments))
	}
	// Unconstrained: the cheapest (4-cpu) candidate is recommended.
	if rec != 0 || assessments[0].Machine.Processors != 4 {
		t.Errorf("recommendation = %d (%+v)", rec, assessments[0].Machine)
	}
	// The larger machine should predict a faster workload.
	if assessments[1].Totals.ElapsedSec >= assessments[0].Totals.ElapsedSec {
		t.Errorf("32-cpu total (%v) should beat 4-cpu (%v)",
			assessments[1].Totals.ElapsedSec, assessments[0].Totals.ElapsedSec)
	}
	for _, a := range assessments {
		if !a.Satisfies {
			t.Errorf("%s should satisfy the empty constraint", a.Machine.Name)
		}
		if a.MinConfidence <= 0 || a.MinConfidence > 1 {
			t.Errorf("confidence out of range: %v", a.MinConfidence)
		}
		if a.MaxQueryElapsedSec <= 0 || a.MaxQueryElapsedSec > a.Totals.ElapsedSec {
			t.Errorf("max query time inconsistent: %v vs total %v", a.MaxQueryElapsedSec, a.Totals.ElapsedSec)
		}
	}
}

func TestPlanConstraintSelectsBiggerMachine(t *testing.T) {
	f := setup(t)
	// Find a window only the 32-cpu machine can meet.
	all, _, err := Plan(f.workload, f.candidates, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	window := (all[0].Totals.ElapsedSec + all[1].Totals.ElapsedSec) / 2
	assessments, rec, err := Plan(f.workload, f.candidates, Constraint{MaxTotalElapsedSec: window})
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Fatalf("recommendation = %d, want the 32-cpu candidate", rec)
	}
	if assessments[0].Satisfies {
		t.Error("4-cpu candidate should fail the tight window")
	}
}

func TestPlanImpossibleConstraint(t *testing.T) {
	f := setup(t)
	_, rec, err := Plan(f.workload, f.candidates, Constraint{MaxTotalElapsedSec: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if rec != -1 {
		t.Errorf("recommendation = %d, want -1", rec)
	}
}

func TestPlanErrors(t *testing.T) {
	f := setup(t)
	if _, _, err := Plan(nil, f.candidates, Constraint{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, _, err := Plan(f.workload, nil, Constraint{}); err == nil {
		t.Error("no candidates accepted")
	}
	bad := []Candidate{{Machine: exec.Research4()}}
	if _, _, err := Plan(f.workload, bad, Constraint{}); err == nil {
		t.Error("candidate without predictor accepted")
	}
}

func TestAdvise(t *testing.T) {
	f := setup(t)
	all, _, err := Plan(f.workload, f.candidates, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	name4 := f.candidates[0].Machine.Name
	name32 := f.candidates[1].Machine.Name

	// Loose constraint: the 4-cpu machine suffices, so running on the
	// 32-cpu machine suggests a downgrade.
	loose := Constraint{MaxTotalElapsedSec: all[0].Totals.ElapsedSec * 2}
	advice, _, err := Advise(f.workload, f.candidates, loose, name32)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Downgrade {
		t.Errorf("advice = %v, want downgrade", advice)
	}

	// Tight constraint: only the 32-cpu machine fits; from the 4-cpu
	// machine that is an upgrade.
	tight := Constraint{MaxTotalElapsedSec: (all[0].Totals.ElapsedSec + all[1].Totals.ElapsedSec) / 2}
	advice, _, err = Advise(f.workload, f.candidates, tight, name4)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Upgrade {
		t.Errorf("advice = %v, want upgrade", advice)
	}

	// Impossible constraint.
	advice, _, err = Advise(f.workload, f.candidates, Constraint{MaxTotalElapsedSec: 1e-9}, name4)
	if err != nil {
		t.Fatal(err)
	}
	if advice != NoneSufficient {
		t.Errorf("advice = %v, want none-sufficient", advice)
	}

	// Unknown current configuration.
	if _, _, err := Advise(f.workload, f.candidates, loose, "mystery"); err == nil {
		t.Error("unknown current configuration accepted")
	}
}

func TestUpgradeAdviceString(t *testing.T) {
	for advice, want := range map[UpgradeAdvice]string{
		KeepCurrent: "keep-current", Upgrade: "upgrade",
		Downgrade: "downgrade", NoneSufficient: "none-sufficient",
	} {
		if advice.String() != want {
			t.Errorf("%d.String() = %q", advice, advice.String())
		}
	}
}
