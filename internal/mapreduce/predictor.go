package mapreduce

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kcca"
	"repro/internal/kernels"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// FeatureVector is the domain-customized job feature vector: everything
// known before the job runs. As the paper's conclusion argues, this vector
// is the ONLY piece that changes between the query domain and this one —
// the KCCA + kNN machinery is reused untouched.
//
// Layout: one-hot job kind, log input bytes, log record count, log
// reducers, log configured shuffle estimate, log configured CPU estimate,
// combiner flag.
func FeatureVector(j Job) []float64 {
	f := make([]float64, NumJobKinds+6)
	f[int(j.Kind)] = 1
	f[NumJobKinds+0] = math.Log1p(j.InputBytes)
	f[NumJobKinds+1] = math.Log1p(j.Records())
	f[NumJobKinds+2] = math.Log1p(float64(j.Reducers))
	f[NumJobKinds+3] = math.Log1p(j.InputBytes * j.MapSelectivity)
	f[NumJobKinds+4] = math.Log1p(j.CPUPerRecordUS)
	if j.Combiner {
		f[NumJobKinds+5] = 1
	}
	return f
}

// FeatureNames lists the job feature vector elements.
func FeatureNames() []string {
	names := make([]string, 0, NumJobKinds+6)
	for k := 0; k < NumJobKinds; k++ {
		names = append(names, "kind_"+JobKind(k).String())
	}
	return append(names,
		"log_input_bytes", "log_records", "log_reducers",
		"log_shuffle_estimate", "log_cpu_estimate", "combiner")
}

// Executed pairs a job with its measured metrics (one training example).
type Executed struct {
	Job     Job
	Metrics JobMetrics
}

// Predictor predicts job metrics before execution using KCCA + kNN.
type Predictor struct {
	model *kcca.Model
	raw   *linalg.Matrix
	knn   knn.Options
}

// Train fits a predictor on executed jobs. opt zero-values select the
// paper's defaults (k = 3 Euclidean equal-weighted neighbors).
func Train(history []Executed, opt knn.Options) (*Predictor, error) {
	if len(history) < 5 {
		return nil, errors.New("mapreduce: need at least five executed jobs")
	}
	if opt.K <= 0 {
		opt = knn.DefaultOptions()
	}
	x := linalg.NewMatrix(len(history), NumJobKinds+6)
	y := linalg.NewMatrix(len(history), NumJobMetrics)
	raw := linalg.NewMatrix(len(history), NumJobMetrics)
	for i, ex := range history {
		if err := ex.Job.Validate(); err != nil {
			return nil, fmt.Errorf("mapreduce: training job %d: %w", i, err)
		}
		copy(x.Row(i), FeatureVector(ex.Job))
		for m, v := range ex.Metrics.Vector() {
			y.Set(i, m, math.Log1p(v))
			raw.Set(i, m, v)
		}
	}
	// The job feature space is compact (log-scaled sizes plus one-hot
	// kinds), so the paper's norm-variance kernel heuristic degenerates;
	// use the median pairwise distance instead.
	kopt := kcca.DefaultOptions()
	kopt.TauX = kernels.MedianSqDist(x)
	kopt.TauY = kernels.MedianSqDist(y)
	model, err := kcca.Train(x, y, kopt)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: KCCA training: %w", err)
	}
	return &Predictor{model: model, raw: raw, knn: opt}, nil
}

// Predict returns the predicted metrics of an unexecuted job.
func (p *Predictor) Predict(j Job) (JobMetrics, error) {
	if err := j.Validate(); err != nil {
		return JobMetrics{}, err
	}
	proj := p.model.ProjectQuery(FeatureVector(j))
	vals, _, err := knn.Predict(p.model.QueryProj, p.raw, proj, p.knn)
	if err != nil {
		return JobMetrics{}, err
	}
	return JobMetricsFromVector(vals), nil
}

// N returns the training set size.
func (p *Predictor) N() int { return p.model.N() }
