package mapreduce

import (
	"fmt"
	"math"

	"repro/internal/statutil"
)

// Cluster is a simulated MapReduce cluster configuration — the analogue of
// exec.Machine for the second domain of Sec. VIII.
type Cluster struct {
	Name string
	// Nodes is the worker count.
	Nodes int
	// MapSlots and ReduceSlots are per-node task slots.
	MapSlots, ReduceSlots int
	// SplitMB is the input split (and thus map task) size.
	SplitMB int
	// DiskMBps and NetMBps are per-node disk and network bandwidth.
	DiskMBps, NetMBps float64
	// TaskStartupSec is the fixed scheduling+JVM cost per task wave.
	TaskStartupSec float64
}

// SmallCluster returns a 10-node development cluster.
func SmallCluster() Cluster {
	return Cluster{
		Name: "dev-10", Nodes: 10, MapSlots: 2, ReduceSlots: 2,
		SplitMB: 128, DiskMBps: 60, NetMBps: 40, TaskStartupSec: 4,
	}
}

// LargeCluster returns a 100-node production cluster.
func LargeCluster() Cluster {
	return Cluster{
		Name: "prod-100", Nodes: 100, MapSlots: 2, ReduceSlots: 2,
		SplitMB: 128, DiskMBps: 60, NetMBps: 40, TaskStartupSec: 4,
	}
}

// JobMetrics is the measured performance vector of one job execution —
// the domain's analogue of the paper's six query metrics.
type JobMetrics struct {
	ElapsedSec   float64
	MapTasks     float64
	ReduceTasks  float64
	HDFSBytes    float64 // input bytes read
	ShuffleBytes float64 // map output transferred to reducers
	OutputBytes  float64 // final output written
	CPUSeconds   float64 // summed task CPU time
}

// NumJobMetrics is the dimensionality of the job performance vector.
const NumJobMetrics = 7

// JobMetricNames lists the metrics in vector order.
var JobMetricNames = []string{
	"elapsed_sec", "map_tasks", "reduce_tasks",
	"hdfs_bytes", "shuffle_bytes", "output_bytes", "cpu_seconds",
}

// Vector returns the metrics as a performance feature vector.
func (m JobMetrics) Vector() []float64 {
	return []float64{
		m.ElapsedSec, m.MapTasks, m.ReduceTasks,
		m.HDFSBytes, m.ShuffleBytes, m.OutputBytes, m.CPUSeconds,
	}
}

// JobMetricsFromVector reverses Vector.
func JobMetricsFromVector(v []float64) JobMetrics {
	if len(v) != NumJobMetrics {
		panic(fmt.Sprintf("mapreduce: metrics vector has %d elements, want %d", len(v), NumJobMetrics))
	}
	return JobMetrics{
		ElapsedSec: v[0], MapTasks: v[1], ReduceTasks: v[2],
		HDFSBytes: v[3], ShuffleBytes: v[4], OutputBytes: v[5], CPUSeconds: v[6],
	}
}

// trueBehaviour holds the per-kind gaps between a job's configured
// estimates and its actual behaviour (data-dependent selectivity, CPU
// hotspots) — the MapReduce analogue of cardinality estimation error.
func trueBehaviour(j Job, seed int64) (selectivity, cpuPerRecordUS float64) {
	r := statutil.NewRNG(seed, fmt.Sprintf("mrtruth:%d:%.3g:%.3g", int(j.Kind), j.InputBytes, j.MapSelectivity))
	selectivity = j.MapSelectivity * r.NoiseFactor(0.25)
	cpuPerRecordUS = j.CPUPerRecordUS * r.NoiseFactor(0.2)
	return selectivity, cpuPerRecordUS
}

// Run simulates executing the job on the cluster and returns its measured
// metrics. The noise stream models run-to-run variation (stragglers);
// pass nil for a noiseless run. seed selects the data realization (which
// fixes the gap between configured and actual selectivity).
func Run(j Job, c Cluster, seed int64, noise *statutil.RNG) (JobMetrics, error) {
	if err := j.Validate(); err != nil {
		return JobMetrics{}, err
	}
	if c.Nodes <= 0 || c.MapSlots <= 0 || c.ReduceSlots <= 0 || c.SplitMB <= 0 {
		return JobMetrics{}, fmt.Errorf("mapreduce: invalid cluster %+v", c)
	}

	actSel, actCPU := trueBehaviour(j, seed)

	splitBytes := float64(c.SplitMB) * 1e6
	mapTasks := math.Ceil(j.InputBytes / splitBytes)
	reduceTasks := float64(j.Reducers)

	// --- Map phase: waves of map tasks across the cluster's slots.
	mapSlotTotal := float64(c.Nodes * c.MapSlots)
	mapWaves := math.Ceil(mapTasks / mapSlotTotal)
	recordsPerSplit := splitBytes / j.RecordBytes
	perMapCPU := recordsPerSplit * actCPU / 1e6
	perMapIO := splitBytes / (c.DiskMBps * 1e6)
	perMapSpill := splitBytes * actSel / (c.DiskMBps * 1e6)
	mapTaskSec := math.Max(perMapCPU, perMapIO) + perMapSpill
	mapPhase := mapWaves * (mapTaskSec + c.TaskStartupSec)

	// --- Shuffle: all map output crosses the network to reducers.
	shuffleBytes := j.InputBytes * actSel
	shuffleSec := shuffleBytes / (c.NetMBps * 1e6 * float64(c.Nodes))

	// --- Reduce phase: waves of reducers; each sorts and writes its
	// partition. Output size depends on the job kind.
	outFrac := map[JobKind]float64{
		KindGrep:        1.0, // matching records pass through
		KindWordCount:   0.3, // aggregation shrinks
		KindJoin:        1.5, // join fan-out
		KindSort:        1.0,
		KindMLIteration: 0.001, // model parameters only
	}[j.Kind]
	outputBytes := shuffleBytes * outFrac
	reduceSlotTotal := float64(c.Nodes * c.ReduceSlots)
	reduceWaves := math.Ceil(reduceTasks / reduceSlotTotal)
	perReduceBytes := shuffleBytes / reduceTasks
	perReduceSec := 2*perReduceBytes/(c.DiskMBps*1e6) + // sort-merge spill
		(outputBytes/reduceTasks)/(c.DiskMBps*1e6) // write output
	reducePhase := reduceWaves * (perReduceSec + c.TaskStartupSec)

	elapsed := mapPhase + shuffleSec + reducePhase
	if noise != nil {
		elapsed *= noise.NoiseFactor(0.08)
	}

	return JobMetrics{
		ElapsedSec:   elapsed,
		MapTasks:     mapTasks,
		ReduceTasks:  reduceTasks,
		HDFSBytes:    j.InputBytes,
		ShuffleBytes: shuffleBytes,
		OutputBytes:  outputBytes,
		CPUSeconds:   mapTasks * perMapCPU,
	}, nil
}
