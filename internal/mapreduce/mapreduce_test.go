package mapreduce

import (
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/statutil"
)

func genHistory(t *testing.T, seed int64, n int, c Cluster) []Executed {
	t.Helper()
	tpls := Templates()
	out := make([]Executed, 0, n)
	for i := 0; i < n; i++ {
		tpl := tpls[i%len(tpls)]
		r := statutil.NewRNG(seed, "mrjob:"+tpl.Name).Derive(string(rune('a' + i%26)))
		_ = r
		rr := statutil.NewRNG(seed+int64(i), "mrjob:"+tpl.Name)
		job := tpl.Gen(rr)
		m, err := Run(job, c, 99, statutil.NewRNG(seed+int64(i), "mrnoise"))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Executed{Job: job, Metrics: m})
	}
	return out
}

func TestJobValidate(t *testing.T) {
	good := Templates()[0].Gen(statutil.NewRNG(1, "t"))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.InputBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero input accepted")
	}
	bad = good
	bad.Reducers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero reducers accepted")
	}
	bad = good
	bad.RecordBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative record size accepted")
	}
	bad = good
	bad.MapSelectivity = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative selectivity accepted")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	c := SmallCluster()
	for _, tpl := range Templates() {
		r := statutil.NewRNG(2, "inv:"+tpl.Name)
		for i := 0; i < 5; i++ {
			j := tpl.Gen(r)
			m, err := Run(j, c, 1, nil)
			if err != nil {
				t.Fatalf("%s: %v", tpl.Name, err)
			}
			if m.ElapsedSec <= 0 || m.MapTasks < 1 || m.ReduceTasks < 1 {
				t.Fatalf("%s: degenerate metrics %+v", tpl.Name, m)
			}
			if m.HDFSBytes != j.InputBytes {
				t.Fatalf("%s: HDFS bytes %v != input %v", tpl.Name, m.HDFSBytes, j.InputBytes)
			}
			if m.ShuffleBytes < 0 || m.CPUSeconds < 0 {
				t.Fatalf("%s: negative metrics %+v", tpl.Name, m)
			}
		}
	}
}

func TestRunDeterministicWithoutNoise(t *testing.T) {
	c := SmallCluster()
	j := Templates()[1].Gen(statutil.NewRNG(3, "det"))
	a, err := Run(j, c, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(j, c, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("noiseless run must be deterministic")
	}
	// Different data realizations differ.
	d, err := Run(j, c, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Error("different seeds should change actual behaviour")
	}
}

func TestLargerClusterFaster(t *testing.T) {
	j := Templates()[3].Gen(statutil.NewRNG(4, "scale")) // terasort
	small, err := Run(j, SmallCluster(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(j, LargeCluster(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if large.ElapsedSec >= small.ElapsedSec {
		t.Errorf("100 nodes (%vs) should beat 10 nodes (%vs)", large.ElapsedSec, small.ElapsedSec)
	}
	if small.MapTasks != large.MapTasks {
		t.Error("task counts should not depend on cluster size")
	}
}

func TestRunErrors(t *testing.T) {
	j := Templates()[0].Gen(statutil.NewRNG(5, "err"))
	if _, err := Run(Job{}, SmallCluster(), 1, nil); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := Run(j, Cluster{}, 1, nil); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestFeatureVector(t *testing.T) {
	j := Templates()[1].Gen(statutil.NewRNG(6, "fv"))
	f := FeatureVector(j)
	if len(f) != NumJobKinds+6 {
		t.Fatalf("feature length = %d", len(f))
	}
	if len(FeatureNames()) != len(f) {
		t.Fatal("names length mismatch")
	}
	// One-hot kind.
	ones := 0
	for k := 0; k < NumJobKinds; k++ {
		if f[k] == 1 {
			ones++
		} else if f[k] != 0 {
			t.Fatalf("one-hot slot %d = %v", k, f[k])
		}
	}
	if ones != 1 {
		t.Fatalf("one-hot count = %d", ones)
	}
	if !j.Combiner {
		t.Skip("template changed")
	}
	if f[len(f)-1] != 1 {
		t.Error("combiner flag not set")
	}
}

func TestMetricsVectorRoundTrip(t *testing.T) {
	m := JobMetrics{1, 2, 3, 4, 5, 6, 7}
	if got := JobMetricsFromVector(m.Vector()); got != m {
		t.Errorf("round trip failed: %+v", got)
	}
	if len(JobMetricNames) != NumJobMetrics {
		t.Error("metric names mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("short vector should panic")
		}
	}()
	JobMetricsFromVector([]float64{1})
}

func TestPredictorAccuracy(t *testing.T) {
	c := SmallCluster()
	train := genHistory(t, 10, 300, c)
	test := genHistory(t, 5000, 40, c)

	p, err := Train(train, knn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 300 {
		t.Errorf("N = %d", p.N())
	}
	var pred, act []float64
	for _, ex := range test {
		m, err := p.Predict(ex.Job)
		if err != nil {
			t.Fatal(err)
		}
		pred = append(pred, m.ElapsedSec)
		act = append(act, ex.Metrics.ElapsedSec)
		for _, v := range m.Vector() {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad predicted metric %v", v)
			}
		}
	}
	risk := eval.PredictiveRisk(pred, act)
	if risk < 0.5 {
		t.Errorf("elapsed predictive risk = %v, want informative predictions", risk)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, knn.Options{}); err == nil {
		t.Error("empty history accepted")
	}
	c := SmallCluster()
	hist := genHistory(t, 11, 10, c)
	hist[0].Job.InputBytes = 0
	if _, err := Train(hist, knn.Options{}); err == nil {
		t.Error("invalid training job accepted")
	}
}

func TestJobKindString(t *testing.T) {
	if KindGrep.String() != "grep" || KindSort.String() != "terasort" && KindSort.String() != "sort" {
		t.Error("kind names wrong")
	}
	if JobKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

// TestCrossClusterWhatIf mirrors the example: train one predictor per
// cluster and verify the predicted workload totals track the truth on both
// clusters, preserving the speedup direction.
func TestCrossClusterWhatIf(t *testing.T) {
	dev, prod := SmallCluster(), LargeCluster()
	devTrain := genHistory(t, 20, 250, dev)
	prodTrain := genHistoryOn(t, 21, 250, prod)
	test := genHistory(t, 6000, 30, dev)
	prodTest := replay(t, test, prod)

	devP, err := Train(devTrain, knn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prodP, err := Train(prodTrain, knn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var devPred, devAct, prodPred, prodAct float64
	for i, ex := range test {
		dp, err := devP.Predict(ex.Job)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := prodP.Predict(ex.Job)
		if err != nil {
			t.Fatal(err)
		}
		devPred += dp.ElapsedSec
		devAct += ex.Metrics.ElapsedSec
		prodPred += pp.ElapsedSec
		prodAct += prodTest[i].Metrics.ElapsedSec
	}
	relErr := func(p, a float64) float64 { return math.Abs(p-a) / a }
	if relErr(devPred, devAct) > 0.35 {
		t.Errorf("dev total off by %.0f%%", relErr(devPred, devAct)*100)
	}
	if relErr(prodPred, prodAct) > 0.35 {
		t.Errorf("prod total off by %.0f%%", relErr(prodPred, prodAct)*100)
	}
	// The predicted speedup direction must be right.
	if prodPred >= devPred {
		t.Errorf("predictions should show the large cluster is faster: %v vs %v", prodPred, devPred)
	}
}

// genHistoryOn is genHistory with its own seed base on another cluster.
func genHistoryOn(t *testing.T, seed int64, n int, c Cluster) []Executed {
	t.Helper()
	return genHistory(t, seed, n, c)
}

// replay reruns the same jobs on another cluster.
func replay(t *testing.T, hist []Executed, c Cluster) []Executed {
	t.Helper()
	out := make([]Executed, len(hist))
	for i, ex := range hist {
		m, err := Run(ex.Job, c, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Executed{Job: ex.Job, Metrics: m}
	}
	return out
}
