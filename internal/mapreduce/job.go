// Package mapreduce carries the paper's methodology to a second domain,
// exactly as its conclusion proposes: "We are currently adapting our
// methodology to predict the performance of map-reduce jobs in various
// hardware and software environments... Only the feature vectors need to
// be customized for each system."
//
// The package provides the three pieces that adaptation needs: a MapReduce
// job model with parameterized job templates, a cluster execution
// simulator producing a multi-metric performance vector, and a KCCA +
// nearest-neighbor predictor whose only domain-specific component is the
// job feature vector. Everything else (kernels, KCCA, kNN) is reused
// unchanged from the query predictor's stack.
package mapreduce

import (
	"fmt"
	"math"

	"repro/internal/statutil"
)

// JobKind is the coarse computation class of a job (the analogue of a
// query template).
type JobKind int

const (
	// KindGrep scans input and keeps a tiny matching fraction.
	KindGrep JobKind = iota
	// KindWordCount aggregates with a combiner (large map-side reduction).
	KindWordCount
	// KindJoin re-keys two inputs and shuffles nearly everything.
	KindJoin
	// KindSort is a total-order sort: shuffle == input, output == input.
	KindSort
	// KindMLIteration is CPU-heavy per record with small output.
	KindMLIteration

	NumJobKinds = int(KindMLIteration) + 1
)

func (k JobKind) String() string {
	switch k {
	case KindGrep:
		return "grep"
	case KindWordCount:
		return "wordcount"
	case KindJoin:
		return "join"
	case KindSort:
		return "sort"
	case KindMLIteration:
		return "ml-iteration"
	default:
		return fmt.Sprintf("jobkind(%d)", int(k))
	}
}

// Job is one MapReduce job specification — everything known BEFORE the
// job runs (the pre-execution information the paper insists on).
type Job struct {
	Kind JobKind
	// InputBytes is the total input size.
	InputBytes float64
	// RecordBytes is the average input record width.
	RecordBytes float64
	// Reducers is the configured reduce task count.
	Reducers int
	// MapSelectivity is the configured estimate of map output bytes per
	// input byte (after the combiner, if any).
	MapSelectivity float64
	// CPUPerRecordUS is the configured estimate of map CPU microseconds
	// per record (job.xml-style hint).
	CPUPerRecordUS float64
	// Combiner reports whether a combiner is enabled.
	Combiner bool
}

// Validate checks the specification.
func (j Job) Validate() error {
	if j.InputBytes <= 0 {
		return fmt.Errorf("mapreduce: nonpositive input size %v", j.InputBytes)
	}
	if j.RecordBytes <= 0 {
		return fmt.Errorf("mapreduce: nonpositive record size %v", j.RecordBytes)
	}
	if j.Reducers <= 0 {
		return fmt.Errorf("mapreduce: nonpositive reducer count %d", j.Reducers)
	}
	if j.MapSelectivity < 0 {
		return fmt.Errorf("mapreduce: negative selectivity %v", j.MapSelectivity)
	}
	return nil
}

// Records is the input record count.
func (j Job) Records() float64 { return j.InputBytes / j.RecordBytes }

// Template generates randomized job instances of one kind.
type Template struct {
	Name string
	Kind JobKind
	Gen  func(r *statutil.RNG) Job
}

// Templates returns the built-in job templates. Input sizes span three
// orders of magnitude, mirroring the feather-to-bowling-ball spread of the
// query workload.
func Templates() []Template {
	gb := func(v float64) float64 { return v * 1e9 }
	return []Template{
		{Name: "grep_logs", Kind: KindGrep, Gen: func(r *statutil.RNG) Job {
			return Job{
				Kind:           KindGrep,
				InputBytes:     gb(r.Uniform(1, 400)),
				RecordBytes:    r.Uniform(80, 400),
				Reducers:       1,
				MapSelectivity: math.Pow(10, r.Uniform(-4, -2)),
				CPUPerRecordUS: r.Uniform(1, 4),
			}
		}},
		{Name: "wordcount", Kind: KindWordCount, Gen: func(r *statutil.RNG) Job {
			return Job{
				Kind:           KindWordCount,
				InputBytes:     gb(r.Uniform(1, 300)),
				RecordBytes:    r.Uniform(60, 200),
				Reducers:       r.IntBetween(4, 64),
				MapSelectivity: r.Uniform(0.02, 0.15),
				CPUPerRecordUS: r.Uniform(3, 10),
				Combiner:       true,
			}
		}},
		{Name: "fact_join", Kind: KindJoin, Gen: func(r *statutil.RNG) Job {
			return Job{
				Kind:           KindJoin,
				InputBytes:     gb(r.Uniform(5, 600)),
				RecordBytes:    r.Uniform(100, 500),
				Reducers:       r.IntBetween(16, 256),
				MapSelectivity: r.Uniform(0.8, 1.1),
				CPUPerRecordUS: r.Uniform(2, 6),
			}
		}},
		{Name: "terasort", Kind: KindSort, Gen: func(r *statutil.RNG) Job {
			return Job{
				Kind:           KindSort,
				InputBytes:     gb(r.Uniform(10, 1000)),
				RecordBytes:    100,
				Reducers:       r.IntBetween(32, 512),
				MapSelectivity: 1,
				CPUPerRecordUS: r.Uniform(1, 3),
			}
		}},
		{Name: "model_training", Kind: KindMLIteration, Gen: func(r *statutil.RNG) Job {
			return Job{
				Kind:           KindMLIteration,
				InputBytes:     gb(r.Uniform(1, 150)),
				RecordBytes:    r.Uniform(200, 2000),
				Reducers:       r.IntBetween(1, 8),
				MapSelectivity: math.Pow(10, r.Uniform(-4, -2.5)),
				CPUPerRecordUS: r.Uniform(40, 400),
			}
		}},
	}
}
