//go:build !race

// Package testutil holds tiny cross-package test helpers. RaceEnabled lets
// allocation-count assertions (testing.AllocsPerOp) skip under the race
// detector, whose instrumentation allocates on its own — the tests still
// run there for race coverage, only the numeric bound is waived.
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
