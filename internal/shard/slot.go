package shard

import (
	"sync/atomic"

	"repro/internal/core"
)

// Served is one immutable model plus its generation tag. A trained
// core.Predictor is never mutated after training returns, so readers may
// use it lock-free for as long as they hold the pointer; a hot swap only
// replaces which pointer new readers pick up. The generation also scopes
// the predictor's internal projection cache: each Predictor carries its
// own, so swapping generations retires every cached projection of the
// previous model wholesale.
type Served struct {
	Pred *core.Predictor
	Gen  int64
}

// Slot is the atomically hot-swappable model holder — the same discipline
// internal/serve established for the single-model daemon, factored out so
// every shard carries its own: reads are a single atomic pointer load on
// the predict path, swaps publish a freshly trained model without blocking
// a single in-flight prediction, and generations only ever move forward.
type Slot struct {
	cur  atomic.Pointer[Served]
	gens atomic.Int64
}

// Get returns the current model, or nil before the first swap.
func (s *Slot) Get() *Served { return s.cur.Load() }

// Swap publishes a new model and returns its generation (1 for the boot
// model).
func (s *Slot) Swap(p *core.Predictor) int64 {
	gen := s.gens.Add(1)
	s.cur.Store(&Served{Pred: p, Gen: gen})
	return gen
}

// Restore publishes a model recovered from durable state at the generation
// it had before the restart, so generations keep moving forward across
// process lifetimes (the next Swap publishes gen+1).
func (s *Slot) Restore(p *core.Predictor, gen int64) {
	s.gens.Store(gen)
	s.cur.Store(&Served{Pred: p, Gen: gen})
}
