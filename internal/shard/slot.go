package shard

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
)

// Served is one immutable model plus its generation tag. A trained Model
// (of any kind — KCCA, plan-structured, calibrated-cost) is never mutated
// after training returns, so readers may use it lock-free for as long as
// they hold the pointer; a hot swap only replaces which pointer new readers
// pick up. For KCCA the generation also scopes the predictor's internal
// projection cache: each Predictor carries its own, so swapping generations
// retires every cached projection of the previous model wholesale.
type Served struct {
	Model model.Model
	Gen   int64
}

// Pred returns the underlying core predictor when the served model is the
// KCCA kind, or nil for any other kind — the introspection hook for
// KCCA-specific reporting (feature options, kNN index statistics).
func (s *Served) Pred() *core.Predictor {
	if k, ok := s.Model.(*model.KCCA); ok {
		return k.Predictor()
	}
	return nil
}

// Slot is the atomically hot-swappable model holder — the same discipline
// internal/serve established for the single-model daemon, factored out so
// every shard carries its own: reads are a single atomic pointer load on
// the predict path, swaps publish a freshly trained model without blocking
// a single in-flight prediction, and generations only ever move forward.
// Promotions reuse the exact same path: a challenger taking over is just
// one more Swap.
type Slot struct {
	cur  atomic.Pointer[Served]
	gens atomic.Int64
}

// Get returns the current model, or nil before the first swap.
func (s *Slot) Get() *Served { return s.cur.Load() }

// Swap publishes a new model and returns its generation (1 for the boot
// model).
func (s *Slot) Swap(m model.Model) int64 {
	gen := s.gens.Add(1)
	s.cur.Store(&Served{Model: m, Gen: gen})
	return gen
}

// Restore publishes a model recovered from durable state at the generation
// it had before the restart, so generations keep moving forward across
// process lifetimes (the next Swap publishes gen+1).
func (s *Slot) Restore(m model.Model, gen int64) {
	s.gens.Store(gen)
	s.cur.Store(&Served{Model: m, Gen: gen})
}
