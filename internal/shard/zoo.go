package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Zoo-wide metrics. Per-kind relative-error histograms
// (model.challenger.<kind>.relerr) are resolved once per zoo at
// construction — the kinds are known up front — so /metrics only lists
// kinds actually running while the per-observation shadow-score path does
// no registry lookups or name concatenation. The champion histogram is
// role-based and shared by whichever kind currently serves.
var (
	shadowScores     = obs.GetCounter("model.shadow.scores")
	championPromoted = obs.GetCounter("model.champion.promotions")
	challengerTrains = obs.GetCounter("model.challenger.retrains")
	challengerFails  = obs.GetCounter("model.challenger.retrain.errors")
)

// ZooConfig enables champion/challenger operation on a shard: the champion
// kind serves traffic from the generation slot while every challenger is
// scored in shadow on each observation, and the promotion policy swaps the
// champion when a challenger dominates.
type ZooConfig struct {
	// Champion is the initial champion kind (default model.KindKCCA).
	Champion string
	// Challengers are the shadow kinds (the champion is scored implicitly;
	// listing it again is harmless and deduplicated).
	Challengers []string
	// Seeds are pre-trained models per kind. The champion's seed (when
	// present) becomes the boot model; a challenger's seed lets it score
	// from the first observation instead of waiting for the first retrain.
	Seeds map[string]model.Model
	// Policy is the promotion policy; zero fields take defaults.
	Policy model.PromotionPolicy
	// Opt parameterizes the KCCA trainer (the other kinds are
	// self-configuring).
	Opt core.Options
}

// normalize fills defaults and validates kind names.
func (z *ZooConfig) normalize() error {
	if z.Champion == "" {
		z.Champion = model.KindKCCA
	}
	seen := map[string]bool{z.Champion: true}
	kinds := []string{z.Champion}
	for _, k := range z.Challengers {
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	for _, k := range kinds {
		if _, err := model.NewTrainer(k, z.Opt); err != nil {
			return err
		}
	}
	z.Challengers = kinds[1:]
	return nil
}

// zoo is a shard's champion/challenger state. The observe goroutine is the
// only mutator (retrains, promotions); API handlers read concurrently
// through the mutex.
type zoo struct {
	mu       sync.RWMutex
	champion string
	models   map[string]model.Model
	trainers map[string]model.Trainer
	board    *model.Scoreboard
	// sinceGen is the slot generation at which the current champion took
	// over (boot generation until the first promotion).
	sinceGen atomic.Int64
	// relErr[kind] is the per-kind challenger-role shadow relative-error
	// histogram; champRelErr is the champion-role histogram. Both are
	// resolved once at construction and read-only after, so the
	// per-observation shadow-score path does no locking or registry lookups.
	relErr      map[string]*obs.Histogram
	champRelErr *obs.Histogram
}

// newZoo builds the zoo state; cfg must be normalized.
func newZoo(cfg *ZooConfig) *zoo {
	z := &zoo{
		champion:    cfg.Champion,
		models:      map[string]model.Model{},
		trainers:    map[string]model.Trainer{},
		board:       model.NewScoreboard(cfg.Policy),
		relErr:      map[string]*obs.Histogram{},
		champRelErr: obs.GetHistogram("model.champion.relerr"),
	}
	for _, kind := range append([]string{cfg.Champion}, cfg.Challengers...) {
		tr, _ := model.NewTrainer(kind, cfg.Opt) // validated by normalize
		z.trainers[kind] = tr
		z.relErr[kind] = obs.GetHistogram("model.challenger." + kind + ".relerr")
		if m := cfg.Seeds[kind]; m != nil {
			z.models[kind] = m
		}
	}
	return z
}

func (z *zoo) championKind() string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.champion
}

func (z *zoo) championModel() model.Model {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.models[z.champion]
}

func (z *zoo) modelFor(kind string) model.Model {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.models[kind]
}

func (z *zoo) setModel(kind string, m model.Model) {
	z.mu.Lock()
	z.models[kind] = m
	z.mu.Unlock()
}

func (z *zoo) setChampion(kind string) {
	z.mu.Lock()
	z.champion = kind
	z.mu.Unlock()
}

// hasChallengers reports whether any non-champion kind is registered.
func (z *zoo) hasChallengers() bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.trainers) > 1
}

// kinds returns every registered kind, champion first.
func (z *zoo) kinds() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.trainers))
	out = append(out, z.champion)
	for k := range z.trainers {
		if k != z.champion {
			out = append(out, k)
		}
	}
	return out
}

// histFor returns the shadow relative-error histogram for a kind under its
// current role. The maps are immutable after newZoo, so this is a lock-free
// read on the per-observation path.
func (z *zoo) histFor(kind string, isChampion bool) *obs.Histogram {
	if isChampion {
		return z.champRelErr
	}
	return z.relErr[kind]
}

// onRetrain refreshes every kind's model after a sliding retrain: the KCCA
// kind reuses the incrementally retrained predictor (never retrained from
// scratch here), every other kind refits from the window. A kind whose
// refit fails keeps its previous model serving shadow traffic.
func (z *zoo) onRetrain(cur *core.Predictor, window []*dataset.Query) {
	for _, kind := range z.kinds() {
		if kind == model.KindKCCA {
			if cur != nil {
				z.setModel(kind, model.WrapKCCA(cur))
			}
			continue
		}
		m, err := z.trainers[kind].Train(window)
		if err != nil {
			challengerFails.Inc()
			continue
		}
		z.setModel(kind, m)
		challengerTrains.Inc()
	}
}

// ZooStatus is a point-in-time snapshot of a shard's champion/challenger
// state for the API layer.
type ZooStatus struct {
	Champion   string
	Promotions int64
	// SinceGeneration is the slot generation at which the champion took
	// over.
	SinceGeneration int64
	// Scores carries per-kind, per-category shadow scores (champion
	// included).
	Scores []model.KindScore
}

// shadowScore scores the champion and every challenger on one executed
// query before the observation reaches any training window — strict
// train/test discipline: no model being scored has seen this query.
// Skipped entirely when the shard has no challengers, so a zoo-less shard
// pays nothing on the observe path.
func (s *Shard) shadowScore(q *dataset.Query) {
	z := s.zoo
	if z == nil || !z.hasChallengers() {
		return
	}
	cat := workload.Categorize(q.Metrics.ElapsedSec)
	champ := z.championKind()
	req := core.Request{Query: q}
	for _, kind := range z.kinds() {
		m := z.modelFor(kind)
		if m == nil {
			continue // not yet trained (no seed, no retrain yet)
		}
		res := m.Predict(req)
		if res[0].Err != nil || res[0].Prediction == nil {
			continue
		}
		pred := res[0].Prediction.Metrics.ElapsedSec
		act := q.Metrics.ElapsedSec
		z.board.Record(kind, cat, pred, act)
		z.histFor(kind, kind == champ).Observe(eval.RelativeError(pred, act))
		shadowScores.Inc()
	}
}

// maybePromote runs one promotion decision after an observation has been
// scored and applied. A promotion publishes the challenger's current model
// through the ordinary generation hot-swap (so in-flight predictions are
// untouched) and durably records the new champion kind.
func (s *Shard) maybePromote() {
	z := s.zoo
	if z == nil || !z.hasChallengers() {
		return
	}
	kind, ok := z.board.Tick(z.championKind())
	if !ok {
		return
	}
	m := z.modelFor(kind)
	if m == nil {
		return
	}
	z.setChampion(kind)
	gen := s.slot.Swap(m)
	z.sinceGen.Store(gen)
	s.mSwaps.Inc()
	modelSwaps.Inc()
	championPromoted.Inc()
	if s.store != nil {
		if err := s.store.SetChampion(kind); err != nil {
			snapshotFails.Inc()
		}
	}
}

// ChampionKind returns the kind currently serving this shard: the zoo's
// champion, or the slot model's kind for a zoo-less shard ("" while cold).
func (s *Shard) ChampionKind() string {
	if s.zoo != nil {
		return s.zoo.championKind()
	}
	if m := s.slot.Get(); m != nil {
		return m.Model.Kind()
	}
	return ""
}

// Zoo returns the shard's champion/challenger snapshot, or nil when the
// shard runs without a zoo.
func (s *Shard) Zoo() *ZooStatus {
	z := s.zoo
	if z == nil {
		return nil
	}
	return &ZooStatus{
		Champion:        z.championKind(),
		Promotions:      z.board.Promotions(),
		SinceGeneration: z.sinceGen.Load(),
		Scores:          z.board.Snapshot(),
	}
}

// buildZoo builds a shard's zoo from its config, resolving the boot model:
// an explicit champion seed wins, then a generic boot model of the champion
// kind. A boot model of a different registered kind (a recovered KCCA
// sliding model under a persisted non-KCCA champion, say) is kept as that
// kind's shadow model and boot resolution falls through to the caller's
// window-training path; an unregistered kind is a config error.
func buildZoo(sc *ShardConfig, boot model.Model) (*zoo, model.Model, error) {
	cfg := *sc.Zoo
	if err := cfg.normalize(); err != nil {
		return nil, nil, fmt.Errorf("shard: zoo config: %w", err)
	}
	z := newZoo(&cfg)
	if boot != nil && z.modelFor(boot.Kind()) == nil {
		if _, ok := z.trainers[boot.Kind()]; !ok {
			return nil, nil, fmt.Errorf("shard: boot model kind %q is neither the zoo champion %q nor a challenger",
				boot.Kind(), cfg.Champion)
		}
		z.setModel(boot.Kind(), boot)
	}
	return z, z.modelFor(cfg.Champion), nil
}
