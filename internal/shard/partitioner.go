package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Partitioner maps queries to shard indexes. Predict and observe routing
// are separate methods because they see different information: a predict
// request is pre-execution (plan only), while an observation carries
// measured metrics and a real category. A partitioner that uses only
// pre-execution information (the hash partitioner) routes both identically;
// the category partitioner routes observations by their measured class and
// predicts by a pre-execution estimate of it.
//
// Implementations must be deterministic and safe for concurrent use: the
// router calls them from every request goroutine.
type Partitioner interface {
	// Name identifies the partitioner on /v1/shards and in logs.
	Name() string
	// RoutePredict returns the owning shard index for a planned,
	// not-yet-executed query.
	RoutePredict(q *dataset.Query) (int, error)
	// RouteObserve returns the owning shard index for an executed query
	// (Metrics and Category populated).
	RouteObserve(q *dataset.Query) (int, error)
}

// NewPartitioner constructs a partitioner by name: "hash" (consistent
// hashing of the template fingerprint) or "category" (workload-category
// routing).
func NewPartitioner(name string, shards int, kind core.FeatureKind) (Partitioner, error) {
	switch name {
	case "hash", "":
		return NewHashPartitioner(shards, kind), nil
	case "category":
		return NewCategoryPartitioner(shards), nil
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q (want hash or category)", name)
	}
}

// ringReplicas is the number of virtual nodes per shard on the consistent
// hash ring. 64 points per shard keeps the assignment imbalance of a
// uniform key set within a few percent while the ring stays tiny.
const ringReplicas = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// HashPartitioner routes by consistent hashing of the template fingerprint
// — the same core.Fingerprint the projection cache keys cached projections
// by, computed over the query's feature vector. Two properties follow:
//
//   - a recurring template always lands on the same shard, so that shard's
//     window (and therefore its model and its projection cache) specializes
//     on the templates it owns;
//   - the mapping is consistent: changing the shard count moves only the
//     keys whose ring arc changed ownership, not a full reshuffle — the
//     property that makes resizing a warm fleet cheap.
//
// Predict and observe routing are identical (both use only pre-execution
// features), so a shard always trains on exactly the traffic it serves.
type HashPartitioner struct {
	kind core.FeatureKind
	ring []ringPoint
	n    int
}

// NewHashPartitioner builds the ring for n shards, fingerprinting feature
// vectors of the given kind. The ring is deterministic: the same (n, kind)
// always yields the same assignment, across processes and hosts.
func NewHashPartitioner(n int, kind core.FeatureKind) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	ring := make([]ringPoint, 0, n*ringReplicas)
	for s := 0; s < n; s++ {
		for r := 0; r < ringReplicas; r++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard-%d-replica-%d", s, r)
			ring = append(ring, ringPoint{hash: h.Sum64(), shard: s})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return &HashPartitioner{kind: kind, ring: ring, n: n}
}

func (p *HashPartitioner) Name() string { return "hash" }

// Locate maps a raw fingerprint to its owning shard: the first ring point
// clockwise from the key, wrapping at the top.
func (p *HashPartitioner) Locate(key uint64) int {
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= key })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].shard
}

func (p *HashPartitioner) route(q *dataset.Query) (int, error) {
	key, err := core.QueryFingerprint(q, p.kind)
	if err != nil {
		return 0, err
	}
	return p.Locate(key), nil
}

func (p *HashPartitioner) RoutePredict(q *dataset.Query) (int, error) { return p.route(q) }
func (p *HashPartitioner) RouteObserve(q *dataset.Query) (int, error) { return p.route(q) }

// costPerSecond calibrates the optimizer's scalar cost to wall seconds for
// pre-execution category estimation: on the research4 simulator scale a
// cost of ~4000 units corresponds to roughly one elapsed second. The
// mapping only has to be monotone and stable — it decides routing, not
// predictions — and any systematic error simply shifts which shard a
// borderline template warms up on.
const costPerSecond = 4000.0

// CategoryPartitioner routes by the paper's runtime classes — feathers,
// golf balls, bowling balls, wrecking balls — so each shard's window
// specializes on one runtime regime (the per-workload-model operating
// point of the LinkedIn study). Observations route by their measured
// category; predict requests, which have no measured runtime, route by the
// optimizer's cost estimate mapped through the same workload.Categorize
// boundaries. The two can disagree for queries the optimizer misjudges —
// that is inherent to pre-execution routing and is why the router's warm
// fallback keeps mispredicted cold-class traffic servable.
type CategoryPartitioner struct {
	n int
}

// NewCategoryPartitioner routes the four workload categories onto n shards
// round-robin (category index mod n).
func NewCategoryPartitioner(n int) *CategoryPartitioner {
	if n < 1 {
		n = 1
	}
	return &CategoryPartitioner{n: n}
}

func (p *CategoryPartitioner) Name() string { return "category" }

func (p *CategoryPartitioner) RoutePredict(q *dataset.Query) (int, error) {
	if q.Plan == nil {
		return 0, core.ErrNoPlan
	}
	est := q.Plan.Cost / costPerSecond
	return int(workload.Categorize(est)) % p.n, nil
}

func (p *CategoryPartitioner) RouteObserve(q *dataset.Query) (int, error) {
	return int(q.Category) % p.n, nil
}

// Passthrough routes everything to shard 0 — the single-shard degenerate
// case, where the tier must be byte-identical to the unsharded daemon.
type Passthrough struct{}

func (Passthrough) Name() string                             { return "passthrough" }
func (Passthrough) RoutePredict(*dataset.Query) (int, error) { return 0, nil }
func (Passthrough) RouteObserve(*dataset.Query) (int, error) { return 0, nil }
