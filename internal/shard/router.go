package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Router-level metrics: where traffic lands, how often the warm fallback
// rescues a cold shard, and how often routing itself fails.
var (
	routeHist      = obs.GetHistogram("serve.router.route")
	routeFallbacks = obs.GetCounter("serve.router.fallbacks")
	routeCold      = obs.GetCounter("serve.router.cold")
	routeErrors    = obs.GetCounter("serve.router.errors")
)

// ShardConfig describes one shard at construction time.
type ShardConfig struct {
	// Boot, when non-nil, is published as the shard's generation 1 so the
	// shard serves immediately — the KCCA shorthand for BootModel (wrapped
	// automatically). Ignored when BootModel is set.
	Boot *core.Predictor
	// BootModel, when non-nil, is the boot model of any kind.
	BootModel model.Model
	// Zoo, when non-nil, enables champion/challenger operation: shadow
	// scoring of every configured kind on the observe path and automatic
	// promotion through the generation slot.
	Zoo *ZooConfig
	// Sliding, when non-nil, enables observation feedback and background
	// retrains; the shard's observe goroutine takes sole ownership of it.
	Sliding *core.SlidingPredictor
	// Store, when non-nil, makes the shard's state durable: every
	// observation is WAL-logged before it is applied, and the sliding
	// state is snapshotted periodically and at drain. The shard takes
	// ownership and closes it on drain.
	Store *wal.Store
	// BootGen, with Store, is the model generation recovered from durable
	// state; when positive (and Boot is nil) the shard publishes
	// Sliding's recovered model at that generation instead of starting
	// over at 1.
	BootGen int64
}

// Router fans predict and observe traffic across shards according to a
// Partitioner, merging batch results in input order with per-request
// errors preserved. Create with NewRouter, stop with Close.
type Router struct {
	shards []*Shard
	part   Partitioner
	// warmFallback routes a predict aimed at a cold shard to the warmest
	// available shard (lowest-index ready shard) instead of failing it,
	// until the owner's window reaches the training minimum and its first
	// retrain lands.
	warmFallback bool
}

// NewRouter builds one shard per ShardConfig and starts their background
// loops. warmFallback enables cold-start rescue: predicts for a shard with
// no model yet are served by the lowest-index ready shard until the owner
// warms up (observations always go to the owner, so it does warm up).
func NewRouter(shards []ShardConfig, part Partitioner, cfg Config, warmFallback bool) (*Router, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	if part == nil {
		return nil, fmt.Errorf("shard: router needs a partitioner")
	}
	cfg.fill()
	r := &Router{part: part, warmFallback: warmFallback}
	for i, sc := range shards {
		if sc.Boot == nil && sc.BootModel == nil && sc.Sliding == nil && sc.Zoo == nil {
			return nil, fmt.Errorf("shard: shard %d needs a boot model or a sliding window", i)
		}
		s, err := newShard(i, sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.shards = append(r.shards, s)
	}
	return r, nil
}

// Close drains every shard; safe to call more than once.
func (r *Router) Close() {
	for _, s := range r.shards {
		s.close()
	}
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Sharded reports whether the tier has more than one shard (when false the
// serving layer keeps the unsharded wire format byte-identical).
func (r *Router) Sharded() bool { return len(r.shards) > 1 }

// Partitioner returns the router's partitioner.
func (r *Router) Partitioner() Partitioner { return r.part }

// Shard returns shard i.
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// HasFeedback reports whether any shard has a sliding window (observation
// feedback). A router over static boot models serves predictions only.
func (r *Router) HasFeedback() bool {
	for _, s := range r.shards {
		if s.sliding != nil {
			return true
		}
	}
	return false
}

// AnyReady reports whether at least one shard serves a model — the tier's
// readiness condition (cold shards are rescued by the warm fallback or fail
// per-request).
func (r *Router) AnyReady() bool {
	for _, s := range r.shards {
		if s.Ready() {
			return true
		}
	}
	return false
}

// Target resolves the shard that will serve a predict for q: the
// partitioner's pick, or — when that shard is cold and the warm fallback is
// on — the lowest-index ready shard. The returned owner is the
// partitioner's pick either way (it is what responses report). A cold
// target with no rescue available returns core.ErrNotTrained.
func (r *Router) Target(q *dataset.Query) (sh *Shard, owner int, err error) {
	owner, err = r.part.RoutePredict(q)
	if err != nil {
		routeErrors.Inc()
		return nil, 0, err
	}
	if owner < 0 || owner >= len(r.shards) {
		routeErrors.Inc()
		return nil, 0, fmt.Errorf("shard: partitioner %s routed to %d of %d shards", r.part.Name(), owner, len(r.shards))
	}
	routeHist.Observe(float64(owner))
	if s := r.shards[owner]; s.Ready() {
		return s, owner, nil
	}
	routeCold.Inc()
	if r.warmFallback {
		for _, s := range r.shards {
			if s.Ready() {
				routeFallbacks.Inc()
				return s, owner, nil
			}
		}
	}
	return nil, owner, fmt.Errorf("%w: shard %d has no model yet", core.ErrNotTrained, owner)
}

// Outcome is the result of one routed prediction: the shard that owns the
// query, the generation that answered, and either a prediction (in
// Res.Prediction) or an error. Routing and queueing failures land in Err;
// model-level failures land in Res.Err.
type Outcome struct {
	Res core.Result
	Gen int64
	// Shard is the owning shard per the partitioner (what responses
	// report), even when the warm fallback served the request.
	Shard int
	// Served is the shard that actually answered — equal to Shard except
	// when the cold-start fallback rerouted the request to a warm shard.
	Served int
	// Kind is the model kind that answered, so fallback answers are
	// attributed to the model family that actually produced them.
	Kind string
	Err  error
}

// Predict routes each planned query to its shard, fans the batch out, and
// merges the results back in input order. Per-request errors are preserved
// — a query that fails to route, overflows its shard's queue, or misses the
// context deadline fails alone without voiding its neighbors. The context
// bounds the whole fan-out: when it expires, still-pending outcomes carry
// ctx.Err() and their items are abandoned (the owning shard skips them).
func (r *Router) Predict(ctx context.Context, qs []*dataset.Query) []Outcome {
	outs := make([]Outcome, len(qs))
	items := make([]*Item, len(qs))
	for i, q := range qs {
		sh, owner, err := r.Target(q)
		outs[i].Shard = owner
		if err != nil {
			outs[i].Served = owner
			outs[i].Err = err
			continue
		}
		outs[i].Served = sh.ID
		it := &Item{Ctx: ctx, Req: core.Request{Query: q}, Done: make(chan struct{})}
		if err := sh.Submit(it); err != nil {
			outs[i].Err = err
			continue
		}
		items[i] = it
	}
	for i, it := range items {
		if it == nil {
			continue
		}
		select {
		case <-it.Done:
			outs[i].Res = it.Res
			outs[i].Gen = it.Gen
			outs[i].Kind = it.Kind
		case <-ctx.Done():
			outs[i].Err = ctx.Err()
		}
	}
	return outs
}

// Observe routes one executed query (Metrics and Category populated) to its
// owning shard's feedback queue. Observations never fall back: they must
// warm the owner. Returns the owning shard index.
func (r *Router) Observe(q *dataset.Query) (int, error) {
	owner, err := r.part.RouteObserve(q)
	if err != nil {
		routeErrors.Inc()
		return 0, err
	}
	if owner < 0 || owner >= len(r.shards) {
		routeErrors.Inc()
		return 0, fmt.Errorf("shard: partitioner %s routed to %d of %d shards", r.part.Name(), owner, len(r.shards))
	}
	return owner, r.shards[owner].Observe(q)
}

// ObserveSync applies one observation synchronously on the caller's
// goroutine, retraining and hot-swapping inline when due — the embedding
// and benchmark path (no HTTP, no background queue). Do not mix with
// concurrent Observe traffic on the same shard: both paths are safe, but
// interleaving makes retrain timing nondeterministic.
func (r *Router) ObserveSync(q *dataset.Query) (int, error) {
	owner, err := r.part.RouteObserve(q)
	if err != nil {
		return 0, err
	}
	if owner < 0 || owner >= len(r.shards) {
		return 0, fmt.Errorf("shard: partitioner %s routed to %d of %d shards", r.part.Name(), owner, len(r.shards))
	}
	s := r.shards[owner]
	if s.sliding == nil {
		return owner, fmt.Errorf("shard %d: no sliding window (static model)", owner)
	}
	return owner, s.observeSync(q)
}

// TotalWindow sums the mirrored window occupancy across shards.
func (r *Router) TotalWindow() int {
	total := 0
	for _, s := range r.shards {
		total += s.WindowSize()
	}
	return total
}

// MaxGeneration returns the highest generation served by any shard (0 when
// every shard is cold).
func (r *Router) MaxGeneration() int64 {
	var max int64
	for _, s := range r.shards {
		if m := s.Model(); m != nil && m.Gen > max {
			max = m.Gen
		}
	}
	return max
}
