package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

// Shared fixture: one generated pool and one trained model (training
// dominates test time).
var (
	fixOnce sync.Once
	fixPool *dataset.Dataset
	fixPred *core.Predictor
	fixErr  error
)

func fixture(t testing.TB) (*dataset.Dataset, *core.Predictor) {
	t.Helper()
	fixOnce.Do(func() {
		fixPool, fixErr = dataset.Generate(dataset.GenConfig{
			Seed: 5, DataSeed: 77, Machine: exec.Research4(),
			Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 160,
		})
		if fixErr != nil {
			return
		}
		fixPred, fixErr = core.Train(fixPool.Queries[:120], core.DefaultOptions())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixPool, fixPred
}

// funcPartitioner routes through a test-supplied function, giving tests
// exact control over which shard owns which query.
type funcPartitioner struct {
	n string
	f func(q *dataset.Query) (int, error)
}

func (p funcPartitioner) Name() string                               { return p.n }
func (p funcPartitioner) RoutePredict(q *dataset.Query) (int, error) { return p.f(q) }
func (p funcPartitioner) RouteObserve(q *dataset.Query) (int, error) { return p.f(q) }

func newSliding(t testing.TB, capacity, every int) *core.SlidingPredictor {
	t.Helper()
	sl, err := core.NewSliding(capacity, every, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

// TestRouterFanoutOrder is the fan-out ordering property test: a shuffled
// batch spanning every shard — including queries whose routing fails — must
// come back with result i belonging to input i and errors pinned to the
// requests that caused them, while concurrent observations hot-swap shard
// models underneath the batch. Run under -race in CI.
func TestRouterFanoutOrder(t *testing.T) {
	pool, pred := fixture(t)
	const shards = 3
	cfgs := make([]ShardConfig, shards)
	for i := range cfgs {
		cfgs[i] = ShardConfig{Boot: pred, Sliding: newSliding(t, 40, 5)}
	}
	errUnroutable := errors.New("unroutable")
	part := funcPartitioner{n: "by-id", f: func(q *dataset.Query) (int, error) {
		if q.ID%7 == 0 {
			return 0, errUnroutable
		}
		return q.ID % shards, nil
	}}
	r, err := NewRouter(cfgs, part, Config{MaxBatch: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Concurrent feedback drives retrains and hot swaps on every shard
	// while batches are in flight.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := pool.Queries[i%120]
			if q.ID%7 != 0 {
				r.Observe(q)
			}
			i++
		}
	}()

	rnd := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		qs := make([]*dataset.Query, 40)
		for i := range qs {
			qs[i] = pool.Queries[rnd.Intn(len(pool.Queries))]
		}
		outs := r.Predict(context.Background(), qs)
		if len(outs) != len(qs) {
			t.Fatalf("round %d: %d outcomes for %d queries", round, len(outs), len(qs))
		}
		for i, out := range outs {
			if qs[i].ID%7 == 0 {
				if !errors.Is(out.Err, errUnroutable) {
					t.Fatalf("round %d result %d (query %d): err = %v, want routing error pinned here",
						round, i, qs[i].ID, out.Err)
				}
				continue
			}
			want := qs[i].ID % shards
			if out.Shard != want || out.Served != want {
				t.Fatalf("round %d result %d: shard %d/%d, want %d", round, i, out.Shard, out.Served, want)
			}
			if out.Err != nil || out.Res.Err != nil {
				t.Fatalf("round %d result %d: unexpected error %v / %v", round, i, out.Err, out.Res.Err)
			}
			if out.Res.Prediction == nil || out.Gen < 1 {
				t.Fatalf("round %d result %d: incomplete outcome %+v", round, i, out)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestColdStartFallback covers the cold-shard paths: with the warm fallback
// a cold shard's traffic is served by a ready shard (and reported as such);
// without it the request fails alone with ErrNotTrained; and once the owner
// warms up through its own observations, it takes over.
func TestColdStartFallback(t *testing.T) {
	pool, pred := fixture(t)
	toOne := funcPartitioner{n: "to-1", f: func(*dataset.Query) (int, error) { return 1, nil }}
	mk := func(fallback bool) *Router {
		r, err := NewRouter([]ShardConfig{
			{Boot: pred},
			{Sliding: newSliding(t, 20, 5)}, // cold: no boot model
		}, toOne, Config{}, fallback)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	q := pool.Queries[130]

	// Fallback on: shard 1 owns the query, shard 0 answers it.
	r := mk(true)
	outs := r.Predict(context.Background(), []*dataset.Query{q})
	if outs[0].Err != nil || outs[0].Res.Err != nil {
		t.Fatalf("fallback predict failed: %v / %v", outs[0].Err, outs[0].Res.Err)
	}
	if outs[0].Shard != 1 || outs[0].Served != 0 {
		t.Fatalf("owner/served = %d/%d, want 1/0", outs[0].Shard, outs[0].Served)
	}

	// Warm the owner through its own observations: after the first retrain
	// it serves its own traffic.
	for i := 0; i < 5; i++ {
		if _, err := r.ObserveSync(pool.Queries[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !r.Shard(1).Ready() {
		t.Fatal("shard 1 still cold after enough observations for a retrain")
	}
	outs = r.Predict(context.Background(), []*dataset.Query{q})
	if outs[0].Shard != 1 || outs[0].Served != 1 || outs[0].Res.Err != nil {
		t.Fatalf("warmed owner not serving: %+v", outs[0])
	}
	r.Close()

	// Fallback off: the cold shard's request fails alone.
	r = mk(false)
	defer r.Close()
	outs = r.Predict(context.Background(), []*dataset.Query{q})
	if !errors.Is(outs[0].Err, core.ErrNotTrained) {
		t.Fatalf("cold predict err = %v, want ErrNotTrained", outs[0].Err)
	}
}

// TestSlowShardIsolation is the regression test for per-request context
// propagation into the batch path: one shard stalls mid-batch, and (a) a
// concurrent request on the other shard completes within its own deadline,
// (b) the stalled request's abandoned item is skipped — never predicted —
// once the shard resumes.
func TestSlowShardIsolation(t *testing.T) {
	pool, pred := fixture(t)
	byID := funcPartitioner{n: "by-id", f: func(q *dataset.Query) (int, error) { return q.ID % 2, nil }}
	r, err := NewRouter([]ShardConfig{{Boot: pred}, {Boot: pred}}, byID, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	release := make(chan struct{})
	stalled := make(chan struct{})
	var once sync.Once
	r.Shard(0).batchHook = func() {
		once.Do(func() { close(stalled) })
		<-release
	}

	var q0, q1 *dataset.Query
	for _, q := range pool.Queries[120:] {
		if q.ID%2 == 0 && q0 == nil {
			q0 = q
		}
		if q.ID%2 == 1 && q1 == nil {
			q1 = q
		}
	}

	// Stall shard 0 with a request whose context we cancel while it waits.
	ctx0, cancel0 := context.WithCancel(context.Background())
	slowDone := make(chan Outcome, 1)
	go func() { slowDone <- r.Predict(ctx0, []*dataset.Query{q0})[0] }()
	<-stalled

	// Shard 1 must serve promptly while shard 0 is wedged.
	ctx1, cancel1 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel1()
	start := time.Now()
	outs := r.Predict(ctx1, []*dataset.Query{q1})
	if outs[0].Err != nil || outs[0].Res.Err != nil {
		t.Fatalf("healthy shard failed during sibling stall: %v / %v", outs[0].Err, outs[0].Res.Err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("healthy shard took %v during sibling stall", elapsed)
	}

	// Abandon the stalled request, then let shard 0 resume: the dead item
	// must be answered with the context error and skipped, not predicted.
	cancel0()
	out := <-slowDone
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("stalled request err = %v, want context.Canceled", out.Err)
	}
	before := r.Shard(0).Predictions()
	close(release)
	// A fresh request proves the shard recovered and serves again.
	outs = r.Predict(context.Background(), []*dataset.Query{q0})
	if outs[0].Res.Err != nil || outs[0].Err != nil {
		t.Fatalf("shard 0 did not recover: %v / %v", outs[0].Err, outs[0].Res.Err)
	}
	// Exactly the fresh request was predicted; the abandoned item was not.
	if got := r.Shard(0).Predictions(); got != before+1 {
		t.Fatalf("shard 0 predictions %d, want %d (abandoned item must be skipped)", got, before+1)
	}
}

// TestFingerprintDeterminism is the cross-package determinism check: the
// consistent-hash partitioner must key its ring lookups by exactly the
// fingerprint the projection cache uses — core.Fingerprint of the query's
// feature vector — and that fingerprint must be stable across calls and
// processes (FNV-1a is a fixed function of the bits).
func TestFingerprintDeterminism(t *testing.T) {
	pool, _ := fixture(t)
	kind := core.DefaultOptions().Features
	p := NewHashPartitioner(4, kind)
	p2 := NewHashPartitioner(4, kind)
	for _, q := range pool.Queries[:40] {
		fp, err := core.QueryFingerprint(q, kind)
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := core.QueryFingerprint(q, kind)
		if err != nil {
			t.Fatal(err)
		}
		if fp != fp2 {
			t.Fatalf("query %d: fingerprint unstable across calls: %x vs %x", q.ID, fp, fp2)
		}
		sh, err := p.RoutePredict(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Locate(fp); sh != want {
			t.Fatalf("query %d: RoutePredict %d, Locate(core.QueryFingerprint) %d", q.ID, sh, want)
		}
		if sh2, _ := p2.RoutePredict(q); sh2 != sh {
			t.Fatalf("query %d: two identically built rings disagree: %d vs %d", q.ID, sh, sh2)
		}
		if obsSh, _ := p.RouteObserve(q); obsSh != sh {
			t.Fatalf("query %d: predict/observe routing disagree: %d vs %d", q.ID, sh, obsSh)
		}
	}
	// The function itself is a fixture: FNV-1a over IEEE-754 bit patterns,
	// pinned so an accidental algorithm change cannot silently remap every
	// projection-cache key and shard assignment.
	if got := core.Fingerprint([]float64{1, 2, 3}); got != 0xe2d5ae79fc4e9a70 {
		t.Fatalf("core.Fingerprint([1 2 3]) = %#x, want the pinned FNV-1a value", got)
	}
	if core.Fingerprint([]float64{0}) == core.Fingerprint([]float64{}) {
		t.Fatal("fingerprint must distinguish [0] from []")
	}
}

// TestHashRingConsistency checks the consistent part of consistent hashing:
// growing the fleet reassigns only the keys whose arc a new shard claimed —
// about 1/(n+1) of them — instead of reshuffling everything.
func TestHashRingConsistency(t *testing.T) {
	p4 := NewHashPartitioner(4, core.PlanFeatures)
	p5 := NewHashPartitioner(5, core.PlanFeatures)
	const keys = 20000
	moved, toNew := 0, 0
	for i := 0; i < keys; i++ {
		key := core.Fingerprint([]float64{float64(i), float64(i * 31)})
		a, b := p4.Locate(key), p5.Locate(key)
		if a != b {
			moved++
			if b == 4 {
				toNew++
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved when adding a shard — ring is not being consulted")
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("%.1f%% of keys moved when growing 4→5 shards; consistent hashing should move ~20%%", frac*100)
	}
	if toNew != moved {
		t.Errorf("%d of %d moved keys went somewhere other than the new shard", moved-toNew, moved)
	}
	// Balance: no shard owns a wildly outsized arc share.
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		counts[p4.Locate(core.Fingerprint([]float64{float64(i), float64(i * 31)}))]++
	}
	for s, c := range counts {
		if c < keys/16 || c > keys/2 {
			t.Errorf("shard %d owns %d of %d keys — ring badly unbalanced: %v", s, c, keys, counts)
		}
	}
}

// TestCategoryPartitioner checks the workload-category policy: observations
// route by measured class, predictions by the optimizer's cost estimate
// through the same category boundaries, both within shard bounds.
func TestCategoryPartitioner(t *testing.T) {
	pool, _ := fixture(t)
	p := NewCategoryPartitioner(3)
	seen := map[int]bool{}
	for _, q := range pool.Queries {
		obsSh, err := p.RouteObserve(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := int(q.Category) % 3; obsSh != want {
			t.Fatalf("query %d (category %v): observe shard %d, want %d", q.ID, q.Category, obsSh, want)
		}
		predSh, err := p.RoutePredict(q)
		if err != nil {
			t.Fatal(err)
		}
		if predSh < 0 || predSh >= 3 {
			t.Fatalf("query %d: predict shard %d out of range", q.ID, predSh)
		}
		seen[obsSh] = true
	}
	if len(seen) < 2 {
		t.Errorf("all observations landed on one shard; categories not spreading: %v", seen)
	}
	if _, err := p.RoutePredict(&dataset.Query{SQL: "x"}); !errors.Is(err, core.ErrNoPlan) {
		t.Errorf("unplanned predict err = %v, want ErrNoPlan", err)
	}
}

// TestRouterObserveWarmsOwner checks that observations never fall back:
// they go to the owner, whose window and observed counter grow.
func TestRouterObserveWarmsOwner(t *testing.T) {
	pool, pred := fixture(t)
	toOne := funcPartitioner{n: "to-1", f: func(*dataset.Query) (int, error) { return 1, nil }}
	r, err := NewRouter([]ShardConfig{
		{Boot: pred},
		{Sliding: newSliding(t, 20, 5)},
	}, toOne, Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 7; i++ {
		sh, err := r.Observe(pool.Queries[i])
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		if sh != 1 {
			t.Fatalf("observation routed to shard %d, want owner 1", sh)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for r.Shard(1).WindowSize() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 window stuck at %d, want 7", r.Shard(1).WindowSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.Shard(0).WindowSize() != 0 || r.Shard(0).Observed() != 0 {
		t.Errorf("observations leaked to shard 0 (window %d, observed %d)",
			r.Shard(0).WindowSize(), r.Shard(0).Observed())
	}
	if got := r.TotalWindow(); got != 7 {
		t.Errorf("TotalWindow %d, want 7", got)
	}
}

// BenchmarkShardedObserveRetrain measures the observe+retrain pipeline at a
// fixed total window, varying only the shard count: sharding divides the
// retrain working set, so per-observation cost should fall as shards grow
// (the reason the tier exists). Recorded in BENCH_shard.json.
func BenchmarkShardedObserveRetrain(b *testing.B) {
	pool, pred := fixture(b)
	const totalWindow = 120
	const totalEvery = 24
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cap := totalWindow / shards
			every := totalEvery / shards
			if every < 1 {
				every = 1
			}
			cfgs := make([]ShardConfig, shards)
			for i := range cfgs {
				sl, err := core.NewSliding(cap, every, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				cfgs[i] = ShardConfig{Boot: pred, Sliding: sl}
			}
			part := NewHashPartitioner(shards, core.DefaultOptions().Features)
			r, err := NewRouter(cfgs, part, Config{}, true)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			// Prefill every window to capacity so the steady state — full
			// windows, periodic retrains — is what gets measured.
			for i := 0; i < totalWindow*2; i++ {
				if _, err := r.ObserveSync(pool.Queries[i%len(pool.Queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ObserveSync(pool.Queries[i%len(pool.Queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
