package shard

import (
	"context"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/wal"
	"repro/internal/workload"
)

// zooPlanFunc re-plans SQL with the fixture's schema and data seed, the
// way the serving layer does for WAL replay.
func zooPlanFunc() core.PlanFunc {
	schema := catalog.TPCDS(1)
	cfg := optimizer.DefaultConfig(exec.Research4().Processors)
	return func(sql string) (*dataset.Query, error) {
		ast, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		plan, err := optimizer.BuildPlan(ast, schema, 77, cfg)
		if err != nil {
			return nil, err
		}
		return &dataset.Query{SQL: sql, AST: ast, Plan: plan}, nil
	}
}

// zooTestPolicy keeps promotion decisions fast enough for a unit test while
// still exercising hysteresis and cooldown.
func zooTestPolicy() model.PromotionPolicy {
	return model.PromotionPolicy{Window: 64, MinSamples: 5, Margin: 0.05, Hysteresis: 3, Cooldown: 10}
}

// seedModels trains one model per kind on the fixture's training slice.
func seedModels(t *testing.T, pool *dataset.Dataset, pred *core.Predictor) map[string]model.Model {
	t.Helper()
	oc, err := (model.OptCostTrainer{}).Train(pool.Queries[:120])
	if err != nil {
		t.Fatal(err)
	}
	return map[string]model.Model{
		model.KindKCCA:    model.WrapKCCA(pred),
		model.KindOptCost: oc,
	}
}

// observe feeds one executed pool query through the synchronous observe
// path (shadow scoring, window, retrains, and promotion all inline).
func observe(t *testing.T, r *Router, q *dataset.Query) {
	t.Helper()
	q.Category = workload.Categorize(q.Metrics.ElapsedSec)
	if _, err := r.ObserveSync(q); err != nil {
		t.Fatal(err)
	}
}

// TestZooPromotionEndToEnd drives the full champion/challenger loop: a
// weak optimizer-cost champion seeded next to a strong KCCA challenger,
// real observations streaming through the observe path, and the KCCA
// challenger promoted through the ordinary generation hot-swap — after
// which the served predictions are bit-identical to the promoted model's
// own output.
func TestZooPromotionEndToEnd(t *testing.T) {
	pool, pred := fixture(t)
	cfgs := []ShardConfig{{
		Sliding: newSliding(t, 40, 10),
		Zoo: &ZooConfig{
			Champion:    model.KindOptCost,
			Challengers: []string{model.KindKCCA},
			Seeds:       seedModels(t, pool, pred),
			Policy:      zooTestPolicy(),
			Opt:         core.DefaultOptions(),
		},
	}}
	part := funcPartitioner{n: "zero", f: func(*dataset.Query) (int, error) { return 0, nil }}
	r, err := NewRouter(cfgs, part, Config{MaxBatch: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sh := r.Shard(0)
	if got := sh.ChampionKind(); got != model.KindOptCost {
		t.Fatalf("boot champion %q, want optcost", got)
	}
	if m := sh.Model(); m == nil || m.Model.Kind() != model.KindOptCost {
		t.Fatal("boot slot is not serving the optcost champion seed")
	}
	bootGen := sh.Model().Gen

	// The KCCA seed has seen the training slice; the observations replay it,
	// so the challenger's shadow error is far below the cost regression's
	// and dominance accumulates within a few ticks of the sample floor.
	promoted := false
	for i, q := range pool.Queries[:120] {
		observe(t, r, q)
		if sh.ChampionKind() == model.KindKCCA {
			promoted = true
			t.Logf("promoted after %d observations", i+1)
			break
		}
	}
	if !promoted {
		t.Fatal("KCCA challenger was never promoted over the optcost champion")
	}

	zs := sh.Zoo()
	if zs == nil || zs.Champion != model.KindKCCA {
		t.Fatalf("zoo status %+v, want champion kcca", zs)
	}
	if zs.Promotions < 1 {
		t.Fatalf("promotions %d, want >= 1", zs.Promotions)
	}
	served := sh.Model()
	if served.Gen <= bootGen {
		t.Fatalf("promotion did not advance the generation: %d <= %d", served.Gen, bootGen)
	}
	if zs.SinceGeneration == 0 || zs.SinceGeneration > served.Gen {
		t.Fatalf("champion since-generation %d inconsistent with served generation %d",
			zs.SinceGeneration, served.Gen)
	}
	if served.Model.Kind() != model.KindKCCA {
		t.Fatalf("slot serves %q after promotion, want kcca", served.Model.Kind())
	}

	// Served predictions must be bit-identical to the promoted model's own
	// output — promotion swaps the model, nothing else.
	test := pool.Queries[120:140]
	outs := r.Predict(context.Background(), test)
	reqs := make([]core.Request, len(test))
	for i, q := range test {
		reqs[i] = core.Request{Query: q}
	}
	direct := served.Model.Predict(reqs...)
	for i, out := range outs {
		if out.Err != nil || out.Res.Err != nil {
			t.Fatalf("query %d: %v / %v", i, out.Err, out.Res.Err)
		}
		if out.Kind != model.KindKCCA {
			t.Fatalf("query %d served by %q, want kcca", i, out.Kind)
		}
		if out.Res.Prediction.Metrics != direct[i].Prediction.Metrics {
			t.Fatalf("query %d: served prediction differs from the promoted model's direct output", i)
		}
	}
}

// TestZooChampionPersistence: a promotion durably records the new champion
// kind next to the WAL, and a fresh daemon reads it back.
func TestZooChampionPersistence(t *testing.T) {
	pool, pred := fixture(t)
	dir := t.TempDir()
	st, err := wal.OpenStore(wal.StoreOptions{Dir: dir, Policy: wal.SyncNone, Plan: zooPlanFunc()})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []ShardConfig{{
		Sliding: newSliding(t, 40, 10),
		Store:   st,
		Zoo: &ZooConfig{
			Champion:    model.KindOptCost,
			Challengers: []string{model.KindKCCA},
			Seeds:       seedModels(t, pool, pred),
			Policy:      zooTestPolicy(),
			Opt:         core.DefaultOptions(),
		},
	}}
	part := funcPartitioner{n: "zero", f: func(*dataset.Query) (int, error) { return 0, nil }}
	r, err := NewRouter(cfgs, part, Config{MaxBatch: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	sh := r.Shard(0)
	for _, q := range pool.Queries[:120] {
		observe(t, r, q)
		if sh.ChampionKind() == model.KindKCCA {
			break
		}
	}
	if sh.ChampionKind() != model.KindKCCA {
		r.Close()
		t.Fatal("challenger was never promoted")
	}
	r.Close() // drains and closes the store
	if got := wal.ReadChampionKind(dir); got != model.KindKCCA {
		t.Fatalf("persisted champion %q, want kcca", got)
	}
}

// TestZooOffEquivalence: configuring the zoo (with the same champion that
// would serve anyway) must not perturb a single served byte — shadow
// scoring rides the observe path, never the predict path.
func TestZooOffEquivalence(t *testing.T) {
	pool, pred := fixture(t)
	part := funcPartitioner{n: "zero", f: func(*dataset.Query) (int, error) { return 0, nil }}

	plain, err := NewRouter([]ShardConfig{{Boot: pred}}, part, Config{MaxBatch: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	zoo, err := NewRouter([]ShardConfig{{
		Zoo: &ZooConfig{
			Champion:    model.KindKCCA,
			Challengers: []string{model.KindOptCost},
			Seeds:       seedModels(t, pool, pred),
			Policy:      zooTestPolicy(),
			Opt:         core.DefaultOptions(),
		},
	}}, part, Config{MaxBatch: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer zoo.Close()

	test := pool.Queries[120:150]
	a := plain.Predict(context.Background(), test)
	b := zoo.Predict(context.Background(), test)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("query %d: %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Res.Prediction.Metrics != b[i].Res.Prediction.Metrics {
			t.Fatalf("query %d: zoo-enabled shard serves different bytes", i)
		}
		if a[i].Kind != model.KindKCCA || b[i].Kind != model.KindKCCA {
			t.Fatalf("query %d: kinds %q/%q, want kcca", i, a[i].Kind, b[i].Kind)
		}
	}
}
