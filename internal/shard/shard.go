// Package shard is the multi-model serving tier: it partitions observe and
// predict traffic across per-shard core.SlidingPredictors, each with its
// own window, model generation, micro-batch coalescer, and background
// retrain loop — the LinkedIn production finding (per-workload models beat
// one global model) turned into infrastructure. A Router owns N Shards and
// a pluggable Partitioner; predict requests are routed to the owning shard
// (falling back to a warm shard while the owner is cold), multi-request
// batches fan out and merge back in input order with per-request errors
// preserved, and each shard retrains from only its own observations — so
// retrain cost scales with per-shard window size instead of fleet size,
// compounding the incremental-retrain machinery of internal/kcca.
//
// The hot-swap discipline is the one internal/serve established for the
// single-model daemon, factored into Slot: predictions read an atomic
// pointer, completed retrains swap a new generation in without blocking a
// read, and generations only move forward. With one shard and the
// passthrough partitioner the tier is behaviorally identical to the
// unsharded daemon (equivalence-tested in internal/serve).
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Tier-wide serving metrics, shared with internal/serve's registry names so
// dashboards see one continuous series whether the daemon is sharded or
// not. Per-shard instruments (serve.shard.<id>.*) live on each Shard.
var (
	batchSizeHist = obs.GetHistogram("serve.batch.size")
	modelSwaps    = obs.GetCounter("serve.model.swaps")
	retrainErrors = obs.GetCounter("serve.retrain.errors")
	rejectedLoad  = obs.GetCounter("serve.rejected.overload")
	snapshotFails = obs.GetCounter("wal.snapshot.errors")
)

// Sentinel errors of the shard tier.
var (
	// ErrOverloaded: the target shard's bounded queue is full; shed and
	// retry (HTTP 429 at the serving layer).
	ErrOverloaded = errors.New("shard: request queue is full")
	// ErrDraining: the tier is shutting down.
	ErrDraining = errors.New("shard: tier is draining")
	// ErrNoShards: a router was built with zero shards.
	ErrNoShards = errors.New("shard: router has no shards")
)

// Item is one prediction riding through a shard's coalescer. The caller
// that submitted it waits on Done; the shard's batch loop fills Res and Gen
// then closes Done (the close is the happens-before edge publishing the
// result). Ctx is the submitting request's context: an item whose context
// is already done when its micro-batch runs is answered with the context
// error and skipped, so abandoned requests never consume predict work and a
// stalled shard's queue drains in O(queue) once it resumes.
type Item struct {
	Ctx context.Context
	Req core.Request
	Res core.Result
	Gen int64
	Sh  int
	// Kind is the model kind that answered (filled with Res/Gen), so
	// responses attribute every prediction — including cold-start fallback
	// answers — to the model family that produced it.
	Kind string
	Done chan struct{}
}

// Config carries the per-shard serving knobs, shared by every shard of one
// Router.
type Config struct {
	// Window is how long a shard's coalescer holds an open micro-batch for
	// more arrivals. Zero still sweeps already-queued items but never waits.
	Window time.Duration
	// MaxBatch caps a micro-batch (default 64).
	MaxBatch int
	// QueueCap bounds each shard's pending queue; submissions beyond it are
	// rejected with ErrOverloaded (default 1024).
	QueueCap int
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
}

// Shard is one model partition: a sliding retraining window, a
// hot-swappable model slot, a micro-batch coalescer, and an observe loop —
// the full serving spine of the unsharded daemon, owned per partition so
// shards never contend. Create via NewRouter.
type Shard struct {
	// ID is the shard's index in its router, also the <id> of its
	// serve.shard.<id>.* metrics.
	ID  int
	cfg Config

	slot    Slot
	sliding *core.SlidingPredictor
	// zoo, when non-nil, runs champion/challenger shadow evaluation on the
	// observe path and promotes challengers through the slot.
	zoo *zoo
	// store, when non-nil, is the shard's durable state: the observe loop
	// WAL-logs each observation before applying it and snapshots the
	// sliding state periodically and at drain. Owned by the observe
	// goroutine after construction.
	store *wal.Store

	mu     sync.RWMutex // guards closed + sends on queue/observeCh
	closed bool

	queue        chan *Item
	coalesceDone chan struct{}
	// reqScratch is the coalescer's reusable micro-batch request slice,
	// owned exclusively by the coalesce goroutine (see runBatch).
	reqScratch []core.Request

	observeCh   chan *dataset.Query
	observeDone chan struct{}
	// windowSize mirrors the sliding window's occupancy so callers can
	// report it without touching the goroutine-owned SlidingPredictor.
	windowSize atomic.Int64
	// nPredicts/nObserved are this instance's own counts. The obs metrics
	// below are process-global (keyed by shard index, shared across router
	// instances); these are what /v1/shards and tests read.
	nPredicts atomic.Int64
	nObserved atomic.Int64

	// Per-shard instruments.
	mWindow   *obs.Gauge
	mSwaps    *obs.Counter
	mPredicts *obs.Counter
	mObserved *obs.Counter

	// batchHook, when set (tests only), runs before each micro-batch is
	// predicted — it is how tests make one shard artificially slow.
	batchHook func()
}

// newShard wires one shard. sc.BootModel (or sc.Boot, the KCCA shorthand)
// is published as generation 1; sc.Sliding (optional) enables observation
// feedback and background retrains. With a store and a positive BootGen the
// recovered model is published at the generation it held before the
// restart. sc.Zoo enables champion/challenger operation.
func newShard(id int, sc ShardConfig, cfg Config) (*Shard, error) {
	s := &Shard{
		ID:           id,
		cfg:          cfg,
		sliding:      sc.Sliding,
		store:        sc.Store,
		queue:        make(chan *Item, cfg.QueueCap),
		coalesceDone: make(chan struct{}),
		mWindow:      obs.GetGauge(fmt.Sprintf("serve.shard.%d.window", id)),
		mSwaps:       obs.GetCounter(fmt.Sprintf("serve.shard.%d.swaps", id)),
		mPredicts:    obs.GetCounter(fmt.Sprintf("serve.shard.%d.predictions", id)),
		mObserved:    obs.GetCounter(fmt.Sprintf("serve.shard.%d.observed", id)),
	}
	boot := sc.BootModel
	if boot == nil && sc.Boot != nil {
		boot = model.WrapKCCA(sc.Boot)
	}
	if boot == nil && sc.Sliding != nil && sc.Sliding.Ready() {
		boot = model.WrapKCCA(sc.Sliding.Current())
	}
	if sc.Zoo != nil {
		var err error
		s.zoo, boot, err = buildZoo(&sc, boot)
		if err != nil {
			return nil, err
		}
		// A non-KCCA champion with no seed and a warm window trains at
		// boot so the shard serves immediately; failure leaves the shard
		// cold until the first retrain fills the zoo.
		if boot == nil && sc.Sliding != nil && sc.Sliding.WindowSize() > 0 {
			s.zoo.onRetrain(sc.Sliding.Current(), sc.Sliding.Window())
			boot = s.zoo.championModel()
		}
	}
	switch {
	case boot != nil && sc.BootGen > 0:
		s.slot.Restore(boot, sc.BootGen)
	case boot != nil:
		s.slot.Swap(boot)
	}
	if s.zoo != nil {
		s.zoo.sinceGen.Store(s.generation())
	}
	go s.coalesceLoop()
	if s.sliding != nil {
		s.observeCh = make(chan *dataset.Query, cfg.QueueCap)
		s.observeDone = make(chan struct{})
		s.windowSize.Store(int64(s.sliding.WindowSize()))
		s.mWindow.Set(s.windowSize.Load())
		go s.observeLoop()
	}
	return s, nil
}

// Ready reports whether this shard serves a model.
func (s *Shard) Ready() bool { return s.slot.Get() != nil }

// Model returns the shard's current served model, or nil while cold.
func (s *Shard) Model() *Served { return s.slot.Get() }

// WindowSize returns the mirrored occupancy of the shard's sliding window.
func (s *Shard) WindowSize() int { return int(s.windowSize.Load()) }

// Predictions returns how many predictions this shard has served.
func (s *Shard) Predictions() int64 { return s.nPredicts.Load() }

// Observed returns how many observations this shard has applied.
func (s *Shard) Observed() int64 { return s.nObserved.Load() }

// Recovery returns what this shard's durable-state recovery did, or nil
// when the shard runs without a store. The info is immutable after boot.
func (s *Shard) Recovery() *wal.RecoveryInfo {
	if s.store == nil {
		return nil
	}
	info := s.store.Info()
	return &info
}

// Submit hands an item to the shard's coalescer without blocking: a full
// queue sheds load with ErrOverloaded instead of stacking goroutines.
func (s *Shard) Submit(it *Item) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrDraining
	}
	it.Sh = s.ID
	select {
	case s.queue <- it:
		return nil
	default:
		rejectedLoad.Inc()
		return ErrOverloaded
	}
}

// Observe hands one executed query to the shard's observe loop without
// blocking: a full feedback queue sheds load rather than stalling the
// write path. The retrain (and any resulting hot swap) happens in the
// background.
func (s *Shard) Observe(q *dataset.Query) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrDraining
	}
	if s.observeCh == nil {
		return fmt.Errorf("shard %d: no sliding window (static model)", s.ID)
	}
	select {
	case s.observeCh <- q:
		return nil
	default:
		rejectedLoad.Inc()
		return ErrOverloaded
	}
}

// observeSync applies one observation synchronously on the caller's
// goroutine — the embedding/benchmark path, bypassing the observe queue.
// SlidingPredictor is internally synchronized, so this is safe alongside
// the background loop, but the two paths share the same swap bookkeeping.
// Do not mix with a background observe loop on a durable shard: the store
// is single-owner.
func (s *Shard) observeSync(q *dataset.Query) error {
	seq := s.logObservation(q)
	s.shadowScore(q)
	before := s.sliding.Retrains()
	err := s.sliding.Observe(q)
	s.afterObserve(before, err)
	s.maybePromote()
	s.persistApplied(seq)
	return err
}

// logObservation WAL-logs one observation ahead of applying it. A failed
// append is counted (wal.append.errors) but does not fail the observation
// — availability over durability; the record is simply absent from a
// future replay.
func (s *Shard) logObservation(q *dataset.Query) uint64 {
	if s.store == nil {
		return 0
	}
	seq, _ := s.store.Append(q.SQL, q.Metrics)
	return seq
}

// persistApplied completes the write-ahead cycle for one observation and
// snapshots the sliding state when due.
func (s *Shard) persistApplied(seq uint64) {
	if s.store == nil {
		return
	}
	s.store.Applied(seq)
	if err := s.store.MaybeSnapshot(s.sliding, s.generation()); err != nil {
		snapshotFails.Inc()
	}
}

// generation returns the currently served model generation (0 while cold).
func (s *Shard) generation() int64 {
	if m := s.slot.Get(); m != nil {
		return m.Gen
	}
	return 0
}

// afterObserve updates mirrors and publishes a completed retrain.
func (s *Shard) afterObserve(retrainsBefore int, err error) {
	if err != nil {
		// A failed retrain (for example a degenerate window) keeps the
		// previous model serving; the observation itself is retained.
		retrainErrors.Inc()
	}
	s.windowSize.Store(int64(s.sliding.WindowSize()))
	s.mWindow.Set(s.windowSize.Load())
	s.nObserved.Add(1)
	s.mObserved.Inc()
	if s.sliding.Retrains() != retrainsBefore {
		cur := s.sliding.Current()
		var m model.Model
		if s.zoo != nil {
			// Refresh every zoo kind from the new window, then publish
			// whichever kind is champion right now.
			s.zoo.onRetrain(cur, s.sliding.Window())
			m = s.zoo.championModel()
		}
		if m == nil {
			m = model.WrapKCCA(cur)
		}
		s.slot.Swap(m)
		s.mSwaps.Inc()
		modelSwaps.Inc()
	}
}

// observeLoop is the single goroutine driving this shard's
// SlidingPredictor: observations stream in through the bounded channel, the
// window's periodic retrains happen here off the request path, and each
// completed retrain is atomically swapped into the shard's slot.
func (s *Shard) observeLoop() {
	defer close(s.observeDone)
	for q := range s.observeCh {
		seq := s.logObservation(q)
		// Shadow-score before the window sees the query: every model is
		// evaluated on data it has never trained on.
		s.shadowScore(q)
		before := s.sliding.Retrains()
		err := s.sliding.Observe(q)
		s.afterObserve(before, err)
		s.maybePromote()
		s.persistApplied(seq)
	}
}

// coalesceLoop gathers concurrently submitted items into micro-batches,
// exactly as the unsharded daemon's coalescer does — but per shard, so a
// slow shard stalls only its own queue and unrelated requests on other
// shards proceed within their own deadlines.
func (s *Shard) coalesceLoop() {
	defer close(s.coalesceDone)
	// batch and the runBatch request scratch are owned by this goroutine and
	// reused across micro-batches: the steady-state loop allocates nothing.
	batch := make([]*Item, 0, s.cfg.MaxBatch)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if s.cfg.Window > 0 {
			timer := time.NewTimer(s.cfg.Window)
			for len(batch) < s.cfg.MaxBatch {
				stop := false
				select {
				case it, ok := <-s.queue:
					if !ok {
						stop = true
						break
					}
					batch = append(batch, it)
				case <-timer.C:
					stop = true
				}
				if stop {
					break
				}
			}
			timer.Stop()
		} else {
			for len(batch) < s.cfg.MaxBatch {
				stop := false
				select {
				case it, ok := <-s.queue:
					if !ok {
						stop = true
						break
					}
					batch = append(batch, it)
				default:
					stop = true
				}
				if stop {
					break
				}
			}
		}
		s.runBatch(batch)
		// Drop the item pointers so answered items are collectable while the
		// slice itself is reused for the next batch.
		for i := range batch {
			batch[i] = nil
		}
	}
}

// runBatch answers one micro-batch with one model: the slot is read once,
// so every item in the batch is served by the same generation even while
// retrains swap the slot concurrently. Items whose submitting context is
// already done are answered with its error and excluded from the predict
// call — an abandoned request costs nothing past its deadline.
func (s *Shard) runBatch(batch []*Item) {
	if s.batchHook != nil {
		s.batchHook()
	}
	live := batch[:0]
	for _, it := range batch {
		if it.Ctx != nil {
			select {
			case <-it.Ctx.Done():
				it.Res.Err = it.Ctx.Err()
				close(it.Done)
				continue
			default:
			}
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	batchSizeHist.Observe(float64(len(live)))
	m := s.slot.Get()
	// reqScratch is reused across batches (runBatch is only ever called from
	// the coalesce goroutine); entries are cleared after the predict so query
	// pointers are not pinned past their batch.
	if cap(s.reqScratch) < len(live) {
		s.reqScratch = make([]core.Request, len(live))
	}
	reqs := s.reqScratch[:len(live)]
	for i, b := range live {
		reqs[i] = b.Req
	}
	results := m.Model.Predict(reqs...)
	for i := range reqs {
		reqs[i] = core.Request{}
	}
	s.nPredicts.Add(int64(len(live)))
	s.mPredicts.Add(int64(len(live)))
	for i, b := range live {
		b.Res = results[i]
		b.Gen = m.Gen
		b.Kind = m.Model.Kind()
		close(b.Done)
	}
}

// close drains the shard: new submissions are refused, in-flight
// micro-batches and queued observations finish, and both background
// goroutines exit before close returns. Idempotent.
func (s *Shard) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	if s.observeCh != nil {
		close(s.observeCh)
	}
	s.mu.Unlock()
	<-s.coalesceDone
	if s.observeDone != nil {
		<-s.observeDone
	}
	if s.store != nil {
		// Final snapshot at drain: the next boot restores it directly
		// instead of replaying the tail.
		if err := s.store.Close(s.sliding, s.generation()); err != nil {
			snapshotFails.Inc()
		}
	}
}
