package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Data stretched along (1,1)/√2 with small orthogonal noise.
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		tt := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		x.Set(i, 0, tt+noise)
		x.Set(i, 1, tt-noise)
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Components.Col(0)
	// First component should align with (1,1)/√2 up to sign.
	want := 1 / math.Sqrt2
	if math.Abs(math.Abs(d[0])-want) > 0.01 || math.Abs(math.Abs(d[1])-want) > 0.01 {
		t.Errorf("dominant direction = %v, want ±(0.707, 0.707)", d)
	}
	if m.Variances[0] < 100*m.Variances[1] {
		t.Errorf("variance ratio too small: %v", m.Variances)
	}
}

func TestProjectionCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50
	x := linalg.NewMatrix(n, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() + 5 // offset mean
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := m.ProjectAll(x)
	for j := 0; j < proj.Cols; j++ {
		if mean := linalg.Mean(proj.Col(j)); math.Abs(mean) > 1e-8 {
			t.Errorf("projected column %d mean = %v, want 0", j, mean)
		}
	}
	if proj.Cols != 2 {
		t.Errorf("projection dims = %d, want 2", proj.Cols)
	}
}

func TestExplainedVarianceRatioSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := linalg.NewMatrix(40, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	m, err := Fit(x, 0) // all components
	if err != nil {
		t.Fatal(err)
	}
	ratios := m.ExplainedVarianceRatio()
	sum := 0.0
	for _, r := range ratios {
		if r < 0 {
			t.Errorf("negative ratio %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %v, want 1", sum)
	}
	// Ratios descend with component index.
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[i-1]+1e-12 {
			t.Errorf("ratios not sorted: %v", ratios)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(1, 3), 2); err == nil {
		t.Error("single-row fit accepted")
	}
}
