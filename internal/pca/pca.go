// Package pca implements Principal Component Analysis — the Sec. V-C
// baseline. PCA finds directions of maximal variance within ONE dataset;
// the paper's point is that it cannot find correlations BETWEEN the query
// and performance datasets, which is what prediction needs.
package pca

import (
	"errors"

	"repro/internal/linalg"
)

// Model is a fitted PCA basis.
type Model struct {
	// Mean holds the column means removed before projection.
	Mean []float64
	// Components has one principal direction per column.
	Components *linalg.Matrix
	// Variances are the eigenvalues (explained variance per component).
	Variances []float64
}

// Fit computes the top-r principal components of the rows of x.
func Fit(x *linalg.Matrix, r int) (*Model, error) {
	if x.Rows < 2 {
		return nil, errors.New("pca: need at least two rows")
	}
	if r <= 0 || r > x.Cols {
		r = x.Cols
	}
	c := x.Clone()
	mean := c.CenterColumns()
	// Covariance = XᵀX / (n−1).
	cov := c.TMul(c).Scale(1 / float64(x.Rows-1))
	vals, vecs, err := linalg.TopEigen(cov, r)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &Model{Mean: mean, Components: vecs, Variances: vals}, nil
}

// Project maps one observation into component space.
func (m *Model) Project(x []float64) []float64 {
	centered := make([]float64, len(x))
	for i := range x {
		centered[i] = x[i] - m.Mean[i]
	}
	return m.Components.TMulVec(centered)
}

// ProjectAll maps every row of x into component space.
func (m *Model) ProjectAll(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, m.Components.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.Project(x.Row(i)))
	}
	return out
}

// ExplainedVarianceRatio returns each component's share of total variance.
func (m *Model) ExplainedVarianceRatio() []float64 {
	total := 0.0
	for _, v := range m.Variances {
		total += v
	}
	out := make([]float64, len(m.Variances))
	if total == 0 {
		return out
	}
	for i, v := range m.Variances {
		out[i] = v / total
	}
	return out
}
