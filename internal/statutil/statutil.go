// Package statutil provides the deterministic randomness and summary
// statistics used throughout the reproduction. Every source of randomness
// (workload generation, predicate constants, execution noise) flows through
// a named, seeded RNG stream so that experiments are exactly reproducible.
package statutil

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic pseudo-random stream. It wraps math/rand with a
// seed derived from a root seed and a purpose string, so independent parts
// of the system draw from independent streams.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a stream keyed by (seed, purpose).
func NewRNG(seed int64, purpose string) *RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, purpose)
	return &RNG{Rand: rand.New(rand.NewSource(int64(h.Sum64())))}
}

// Derive returns a child stream keyed additionally by sub.
func (r *RNG) Derive(sub string) *RNG {
	return NewRNG(r.Int63(), sub)
}

// LogNormal draws from a lognormal distribution with the given log-space
// mean and standard deviation.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// NoiseFactor returns a multiplicative noise factor centered on 1 with
// log-space standard deviation sigma.
func (r *RNG) NoiseFactor(sigma float64) float64 {
	return math.Exp(sigma * r.NormFloat64())
}

// Uniform draws uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntBetween draws an integer uniformly from [lo, hi] inclusive.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Choice returns a uniformly random index in [0, n).
func (r *RNG) Choice(n int) int { return r.Intn(n) }

// Zipf draws a rank in [1, n] from a Zipf distribution with exponent s >= 0
// using inverse transform sampling over the truncated harmonic sum.
// Exponent 0 degenerates to the uniform distribution.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	if s <= 0 {
		return 1 + r.Intn(n)
	}
	// Rejection-free inverse CDF by bisection over the generalized harmonic
	// numbers would need precomputation; for the sizes used here a direct
	// approximation via the continuous inverse is adequate and O(1).
	// For s != 1 the CDF of the continuous analogue is
	// F(x) = (x^(1-s) - 1) / (n^(1-s) - 1).
	u := r.Float64()
	if math.Abs(s-1) < 1e-9 {
		x := math.Exp(u * math.Log(float64(n)))
		k := int(x)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return k
	}
	p := 1 - s
	x := math.Pow(u*(math.Pow(float64(n), p)-1)+1, 1/p)
	k := int(x)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// ZipfSkewFactor returns the expected ratio between the heaviest value
// frequency and the uniform frequency for a Zipf(s) distribution over n
// values. It quantifies data skew for the execution simulator: 1 means no
// skew.
func ZipfSkewFactor(n int, s float64) float64 {
	if n <= 1 || s <= 0 {
		return 1
	}
	// The heaviest value has probability 1/H(n,s); uniform is 1/n.
	h := 0.0
	steps := n
	if steps > 10000 {
		steps = 10000 // harmonic tail contributes little; cap the work
	}
	for i := 1; i <= steps; i++ {
		h += math.Pow(float64(i), -s)
	}
	f := float64(n) / h
	if f < 1 {
		f = 1
	}
	return f
}

// Shuffle permutes idx in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.Rand.Shuffle(n, swap) }

// SampleInts returns k distinct integers drawn without replacement from
// [0, n). It panics if k > n.
func (r *RNG) SampleInts(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("statutil: cannot sample %d from %d", k, n))
	}
	perm := r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	sort.Ints(out)
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation. The input is not modified.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N               int
	Mean, Std       float64
	Min, Max        float64
	Median, P5, P95 float64
}

// Summarize computes descriptive statistics for values.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		s.Min, s.Max, s.Median, s.P5, s.P95 = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	ss := 0.0
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(values)))
	s.Median = Quantile(values, 0.5)
	s.P5 = Quantile(values, 0.05)
	s.P95 = Quantile(values, 0.95)
	return s
}

// GeometricMean returns the geometric mean of positive values; zero or
// negative entries are clamped to tiny to keep the result finite.
func GeometricMean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range values {
		if v < 1e-300 {
			v = 1e-300
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(values)))
}
