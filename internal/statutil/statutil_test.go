package statutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "workload")
	b := NewRNG(42, "workload")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, purpose) must yield the same stream")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(42, "workload")
	b := NewRNG(42, "noise")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different purposes collided %d times", same)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := NewRNG(7, "root").Derive("child")
	b := NewRNG(7, "root").Derive("child")
	if a.Int63() != b.Int63() {
		t.Error("Derive must be deterministic")
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(1, "zipf")
	for _, s := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		for i := 0; i < 1000; i++ {
			k := r.Zipf(100, s)
			if k < 1 || k > 100 {
				t.Fatalf("Zipf(100, %v) = %d out of bounds", s, k)
			}
		}
	}
	if k := r.Zipf(1, 1.0); k != 1 {
		t.Errorf("Zipf(1) = %d, want 1", k)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	r := NewRNG(2, "zipf")
	countLow := 0
	n := 10000
	for i := 0; i < n; i++ {
		if r.Zipf(1000, 1.2) <= 10 {
			countLow++
		}
	}
	// With exponent 1.2 over 1000 ranks, the first 10 ranks should receive
	// far more than the uniform 1% of the mass.
	if frac := float64(countLow) / float64(n); frac < 0.25 {
		t.Errorf("Zipf(1.2) put only %.1f%% of mass in top 1%% of ranks", frac*100)
	}
}

func TestZipfSkewFactor(t *testing.T) {
	if f := ZipfSkewFactor(100, 0); f != 1 {
		t.Errorf("no-skew factor = %v, want 1", f)
	}
	if f := ZipfSkewFactor(100, 1.0); f <= 1 {
		t.Errorf("skew factor = %v, want > 1", f)
	}
	if f := ZipfSkewFactor(1, 2.0); f != 1 {
		t.Errorf("single-value factor = %v, want 1", f)
	}
}

func TestUniformAndIntBetween(t *testing.T) {
	r := NewRNG(3, "u")
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		k := r.IntBetween(3, 7)
		if k < 3 || k > 7 {
			t.Fatalf("IntBetween out of range: %d", k)
		}
	}
	if k := r.IntBetween(4, 4); k != 4 {
		t.Errorf("degenerate IntBetween = %d", k)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(4, "ln")
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal must be positive, got %v", v)
		}
	}
}

func TestNoiseFactorCentered(t *testing.T) {
	r := NewRNG(5, "noise")
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += math.Log(r.NoiseFactor(0.1))
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.01 {
		t.Errorf("log noise mean = %v, want ~0", mean)
	}
}

func TestSampleInts(t *testing.T) {
	r := NewRNG(6, "sample")
	got := r.SampleInts(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if q := Quantile(v, 0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := Quantile(v, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := Quantile(v, 1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
	if q := Quantile(v, 0.25); q != 2 {
		t.Errorf("q25 = %v, want 2", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Min) {
		t.Errorf("empty summary wrong: %+v", empty)
	}
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", g)
	}
	if g := GeometricMean([]float64{0, 0}); math.IsInf(g, 0) || math.IsNaN(g) {
		t.Errorf("geomean of zeros must be finite, got %v", g)
	}
}
