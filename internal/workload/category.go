// Package workload generates the training and test query populations: 22
// parameterized templates over the TPC-DS schema (14 benchmark-style
// templates plus 8 "problem query" templates modeled on the paper's
// long-running production queries) and 8 templates over the separate
// customer schema. It also implements the paper's runtime-based query
// categorization: feathers (under three minutes), golf balls (3 to 30
// minutes), bowling balls (30 minutes to 2 hours) and wrecking balls
// (longer than bowling balls).
package workload

import "fmt"

// Category classifies a query by elapsed time, following the paper's
// Fig. 2 boundaries.
type Category int

const (
	Feather Category = iota
	GolfBall
	BowlingBall
	WreckingBall
)

// Category boundaries in seconds (paper Fig. 2: feathers up to 2:59, golf
// balls to 29:39, bowling balls to 1:54:50).
const (
	FeatherMaxSec  = 180.0
	GolfBallMaxSec = 1800.0
	BowlingMaxSec  = 7200.0
)

// Categorize maps an elapsed time in seconds to its category.
func Categorize(elapsedSec float64) Category {
	switch {
	case elapsedSec < FeatherMaxSec:
		return Feather
	case elapsedSec < GolfBallMaxSec:
		return GolfBall
	case elapsedSec < BowlingMaxSec:
		return BowlingBall
	default:
		return WreckingBall
	}
}

func (c Category) String() string {
	switch c {
	case Feather:
		return "feather"
	case GolfBall:
		return "golf_ball"
	case BowlingBall:
		return "bowling_ball"
	case WreckingBall:
		return "wrecking_ball"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// NumCategories counts the categories including wrecking balls.
const NumCategories = 4
