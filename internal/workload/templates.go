package workload

import (
	"repro/internal/sqlgen"
	"repro/internal/statutil"
)

// Template is a parameterized query generator. Each call to Gen draws fresh
// predicate constants, mimicking how the paper generated thousands of
// queries from TPC-DS templates and from hand-written templates modeled on
// customer problem queries.
type Template struct {
	// Name identifies the template in reports.
	Name string
	// Class is "tpcds" for benchmark-style templates, "problem" for the
	// long-running templates modeled on real problem queries, and
	// "customer" for templates over the customer schema.
	Class string
	// Gen draws a query instance.
	Gen func(r *statutil.RNG) *sqlgen.Query
}

// TPC-DS date surrogate key domain (see catalog).
const (
	dateMin = 2450815
	dateMax = 2452642
)

func cref(col string) sqlgen.ColumnRef { return sqlgen.ColumnRef{Column: col} }
func num(v float64) sqlgen.Literal     { return sqlgen.Literal{Value: v} }
func ch(v int) sqlgen.Literal          { return sqlgen.Literal{Value: float64(v), IsChar: true} }

func sel(cols ...string) []sqlgen.SelectItem {
	items := make([]sqlgen.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = sqlgen.SelectItem{Col: cref(c)}
	}
	return items
}

func agg(f sqlgen.AggFunc, col string) sqlgen.SelectItem {
	if f == sqlgen.AggCountStar {
		return sqlgen.SelectItem{Agg: sqlgen.AggCountStar}
	}
	return sqlgen.SelectItem{Agg: f, Col: cref(col)}
}

func from(tables ...string) []sqlgen.TableRef {
	refs := make([]sqlgen.TableRef, len(tables))
	for i, t := range tables {
		refs[i] = sqlgen.TableRef{Table: t}
	}
	return refs
}

func equi(l, r string) sqlgen.JoinPred {
	return sqlgen.JoinPred{Left: cref(l), Right: cref(r), Op: sqlgen.OpEq}
}

func between(col string, lo, hi float64) sqlgen.Predicate {
	return sqlgen.Predicate{Col: cref(col), Op: sqlgen.OpBetween, Lo: num(lo), Hi: num(hi)}
}

func eqChar(col string, v int) sqlgen.Predicate {
	return sqlgen.Predicate{Col: cref(col), Op: sqlgen.OpEq, Value: ch(v)}
}

func eqNum(col string, v float64) sqlgen.Predicate {
	return sqlgen.Predicate{Col: cref(col), Op: sqlgen.OpEq, Value: num(v)}
}

func group(cols ...string) []sqlgen.ColumnRef {
	refs := make([]sqlgen.ColumnRef, len(cols))
	for i, c := range cols {
		refs[i] = cref(c)
	}
	return refs
}

func order(cols ...string) []sqlgen.OrderItem {
	items := make([]sqlgen.OrderItem, len(cols))
	for i, c := range cols {
		items[i] = sqlgen.OrderItem{Col: cref(c)}
	}
	return items
}

// dateRange draws a random date interval of between minDays and maxDays
// within the fact-table date domain.
func dateRange(r *statutil.RNG, minDays, maxDays int) (float64, float64) {
	span := r.IntBetween(minDays, maxDays)
	start := r.IntBetween(dateMin, dateMax-span)
	return float64(start), float64(start + span)
}

// TPCDSTemplates returns the 24 templates over the TPC-DS schema: 14
// benchmark-style templates (mostly feathers at scale factor 1, as the
// paper found) and 8 problem templates that produce golf balls, bowling
// balls, and wrecking balls depending on the drawn constants.
func TPCDSTemplates() []Template {
	t := make([]Template, 0, 24)

	// --- Benchmark-style templates -------------------------------------

	t = append(t, Template{Name: "sales_by_category", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 14, 120)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("i_category")[0], agg(sqlgen.AggSum, "ss_ext_sales_price"), agg(sqlgen.AggCountStar, "")},
			From:    from("store_sales", "item"),
			Joins:   []sqlgen.JoinPred{equi("ss_item_sk", "i_item_sk")},
			Where:   []sqlgen.Predicate{between("ss_sold_date_sk", lo, hi)},
			GroupBy: group("i_category"),
			OrderBy: order("i_category"),
		}
	}})

	t = append(t, Template{Name: "store_quantity_profile", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		qlo := float64(r.IntBetween(1, 40))
		qhi := qlo + float64(r.IntBetween(5, 55))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("s_state")[0], agg(sqlgen.AggCount, "ss_ticket_number"), agg(sqlgen.AggAvg, "ss_sales_price")},
			From:    from("store_sales", "store"),
			Joins:   []sqlgen.JoinPred{equi("ss_store_sk", "s_store_sk")},
			Where:   []sqlgen.Predicate{between("ss_quantity", qlo, qhi)},
			GroupBy: group("s_state"),
		}
	}})

	t = append(t, Template{Name: "customer_city_purchases", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 7, 90)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("ca_city")[0], agg(sqlgen.AggSum, "ss_net_profit")},
			From:   from("store_sales", "customer", "customer_address"),
			Joins: []sqlgen.JoinPred{
				equi("ss_customer_sk", "c_customer_sk"),
				equi("c_current_addr_sk", "ca_address_sk"),
			},
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", lo, hi),
				eqChar("ca_state", r.IntBetween(0, 50)),
			},
			GroupBy: group("ca_city"),
			OrderBy: order("ca_city"),
			Limit:   100,
		}
	}})

	t = append(t, Template{Name: "catalog_ship_mode", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 30, 180)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("sm_type")[0], agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "cs_ext_sales_price")},
			From:    from("catalog_sales", "ship_mode"),
			Joins:   []sqlgen.JoinPred{equi("cs_ship_mode_sk", "sm_ship_mode_sk")},
			Where:   []sqlgen.Predicate{between("cs_sold_date_sk", lo, hi)},
			GroupBy: group("sm_type"),
		}
	}})

	t = append(t, Template{Name: "web_top_items", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 7, 60)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("i_brand")[0], agg(sqlgen.AggSum, "ws_quantity")},
			From:    from("web_sales", "item"),
			Joins:   []sqlgen.JoinPred{equi("ws_item_sk", "i_item_sk")},
			Where:   []sqlgen.Predicate{between("ws_sold_date_sk", lo, hi)},
			GroupBy: group("i_brand"),
			OrderBy: order("i_brand"),
			Limit:   r.IntBetween(10, 100),
		}
	}})

	t = append(t, Template{Name: "returns_by_reason", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 30, 365)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("r_reason_desc")[0], agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "sr_return_amt")},
			From:    from("store_returns", "reason"),
			Joins:   []sqlgen.JoinPred{equi("sr_reason_sk", "r_reason_sk")},
			Where:   []sqlgen.Predicate{between("sr_returned_date_sk", lo, hi)},
			GroupBy: group("r_reason_desc"),
		}
	}})

	t = append(t, Template{Name: "inventory_levels", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 7, 45)
		qty := float64(r.IntBetween(100, 900))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("w_state")[0], agg(sqlgen.AggAvg, "inv_quantity_on_hand")},
			From:    from("inventory", "warehouse"),
			Joins:   []sqlgen.JoinPred{equi("inv_warehouse_sk", "w_warehouse_sk")},
			Where:   []sqlgen.Predicate{between("inv_date_sk", lo, hi), between("inv_quantity_on_hand", 0, qty)},
			GroupBy: group("w_state"),
		}
	}})

	t = append(t, Template{Name: "demographic_mix", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 14, 90)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("cd_education_status")[0], agg(sqlgen.AggCountStar, "")},
			From:   from("store_sales", "customer_demographics"),
			Joins:  []sqlgen.JoinPred{equi("ss_cdemo_sk", "cd_demo_sk")},
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", lo, hi),
				eqChar("cd_gender", r.IntBetween(0, 1)),
				eqChar("cd_marital_status", r.IntBetween(0, 4)),
			},
			GroupBy: group("cd_education_status"),
		}
	}})

	t = append(t, Template{Name: "promo_effect", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 14, 120)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("i_category")[0], agg(sqlgen.AggSum, "ss_ext_sales_price")},
			From:   from("store_sales", "promotion", "item"),
			Joins: []sqlgen.JoinPred{
				equi("ss_promo_sk", "p_promo_sk"),
				equi("ss_item_sk", "i_item_sk"),
			},
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", lo, hi),
				eqChar("p_channel_email", r.IntBetween(0, 1)),
			},
			GroupBy: group("i_category"),
			OrderBy: order("i_category"),
		}
	}})

	t = append(t, Template{Name: "household_buyers", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 30, 180)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("hd_buy_potential")[0], agg(sqlgen.AggCount, "cs_quantity")},
			From:   from("catalog_sales", "household_demographics"),
			Joins:  []sqlgen.JoinPred{equi("cs_bill_hdemo_sk", "hd_demo_sk")},
			Where: []sqlgen.Predicate{
				between("cs_sold_date_sk", lo, hi),
				between("hd_dep_count", 0, float64(r.IntBetween(2, 9))),
			},
			GroupBy: group("hd_buy_potential"),
		}
	}})

	t = append(t, Template{Name: "item_price_brands", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		plo := r.Uniform(0, 60)
		phi := plo + r.Uniform(5, 40)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("i_brand")[0], agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggAvg, "i_current_price")},
			From:    from("item"),
			Where:   []sqlgen.Predicate{between("i_current_price", plo, phi), eqChar("i_category", r.IntBetween(0, 9))},
			GroupBy: group("i_brand"),
			OrderBy: order("i_brand"),
		}
	}})

	t = append(t, Template{Name: "hourly_traffic", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 7, 30)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("t_hour")[0], agg(sqlgen.AggCountStar, "")},
			From:    from("store_sales", "time_dim"),
			Joins:   []sqlgen.JoinPred{equi("ss_sold_time_sk", "t_time_sk")},
			Where:   []sqlgen.Predicate{between("ss_sold_date_sk", lo, hi)},
			GroupBy: group("t_hour"),
			OrderBy: order("t_hour"),
		}
	}})

	t = append(t, Template{Name: "category_subquery", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 14, 90)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "ss_net_profit")},
			From:   from("store_sales"),
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", lo, hi),
				{Col: cref("ss_item_sk"), Op: sqlgen.OpIn, Subquery: &sqlgen.Query{
					Select: sel("i_item_sk"),
					From:   from("item"),
					Where:  []sqlgen.Predicate{eqChar("i_category", r.IntBetween(0, 9))},
				}},
			},
		}
	}})

	t = append(t, Template{Name: "web_page_returns", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 30, 365)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("wp_type")[0], agg(sqlgen.AggSum, "wr_return_amt"), agg(sqlgen.AggCountStar, "")},
			From:    from("web_returns", "web_page"),
			Joins:   []sqlgen.JoinPred{equi("wr_web_page_sk", "wp_web_page_sk")},
			Where:   []sqlgen.Predicate{between("wr_returned_date_sk", lo, hi)},
			GroupBy: group("wp_type"),
		}
	}})

	// Textual twin of the heavy inequality-join problem templates: the
	// SQL-text statistics are identical (COUNT(*), one non-equijoin, two
	// BETWEEN predicates) but the tables are tiny, so it always runs in
	// well under a second. This is the paper's key observation about
	// SQL-text features: "two textually similar queries may have
	// dramatically different performance".
	t = append(t, Template{Name: "floorspace_check", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		elo := float64(r.IntBetween(200, 250))
		flo := float64(r.IntBetween(50000, 500000))
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, "")},
			From:   from("store", "warehouse"),
			Joins:  []sqlgen.JoinPred{{Left: cref("s_floor_space"), Right: cref("w_warehouse_sq_ft"), Op: sqlgen.OpGe}},
			Where: []sqlgen.Predicate{
				between("s_number_employees", elo, elo+float64(r.IntBetween(10, 60))),
				between("w_warehouse_sq_ft", flo, flo+r.Uniform(100000, 500000)),
			},
		}
	}})

	// Textual twin of pb_cross_channel_items (same SELECT shape, equijoin,
	// two BETWEENs, GROUP BY + ORDER BY) over two small tables.
	t = append(t, Template{Name: "page_returns_profile", Class: "tpcds", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 30, 365)
		qlo := float64(r.IntBetween(1, 60))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("wp_type")[0], agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "wr_return_amt")},
			From:    from("web_returns", "web_page"),
			Joins:   []sqlgen.JoinPred{equi("wr_web_page_sk", "wp_web_page_sk")},
			Where:   []sqlgen.Predicate{between("wr_returned_date_sk", lo, hi), between("wr_return_quantity", qlo, qlo+30)},
			GroupBy: group("wp_type"),
			OrderBy: order("wp_type"),
		}
	}})

	// --- Problem templates (modeled on real long-running queries) ------

	// Fact-fact equijoin on a non-key attribute: the intermediate result
	// fans out to hundreds of millions of rows, then is sorted.
	t = append(t, Template{Name: "pb_cross_channel_items", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		slo, shi := dateRange(r, 300, 1800)
		clo, chi := dateRange(r, 300, 1800)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("ss_item_sk")[0], agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "cs_ext_sales_price")},
			From:    from("store_sales", "catalog_sales"),
			Joins:   []sqlgen.JoinPred{equi("ss_item_sk", "cs_item_sk")},
			Where:   []sqlgen.Predicate{between("ss_sold_date_sk", slo, shi), between("cs_sold_date_sk", clo, chi)},
			GroupBy: group("ss_item_sk"),
			OrderBy: order("ss_item_sk"),
		}
	}})

	// Customer-level fact-fact join (non-key, heavy fan-out).
	t = append(t, Template{Name: "pb_repeat_returners", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 300, 1800)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("ss_customer_sk")[0], agg(sqlgen.AggCount, "sr_ticket_number")},
			From:    from("store_sales", "store_returns"),
			Joins:   []sqlgen.JoinPred{equi("ss_customer_sk", "sr_customer_sk")},
			Where:   []sqlgen.Predicate{between("ss_sold_date_sk", lo, hi)},
			GroupBy: group("ss_customer_sk"),
		}
	}})

	// Inequality join between two filtered fact tables: pairwise nested
	// join whose runtime is quadratic in the surviving rows. The drawn
	// date spans move this from golf ball to wrecking ball.
	t = append(t, Template{Name: "pb_lagged_returns", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		slo, shi := dateRange(r, 250, 1200)
		rlo, rhi := dateRange(r, 100, 600)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, "")},
			From:   from("catalog_sales", "catalog_returns"),
			Joins:  []sqlgen.JoinPred{{Left: cref("cs_sold_date_sk"), Right: cref("cr_returned_date_sk"), Op: sqlgen.OpLe}},
			Where: []sqlgen.Predicate{
				between("cs_sold_date_sk", slo, shi),
				between("cr_returned_date_sk", rlo, rhi),
			},
		}
	}})

	// Three-way fact join through the item dimension.
	t = append(t, Template{Name: "pb_triple_channel", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		slo, shi := dateRange(r, 120, 1200)
		wlo, whi := dateRange(r, 120, 1200)
		clo, chi := dateRange(r, 120, 1200)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("ss_item_sk")[0], agg(sqlgen.AggSum, "ws_ext_sales_price"), agg(sqlgen.AggCountStar, "")},
			From:   from("store_sales", "web_sales", "catalog_sales"),
			Joins: []sqlgen.JoinPred{
				equi("ss_item_sk", "ws_item_sk"),
				equi("ws_item_sk", "cs_item_sk"),
			},
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", slo, shi),
				between("ws_sold_date_sk", wlo, whi),
				between("cs_sold_date_sk", clo, chi),
			},
			GroupBy: group("ss_item_sk"),
			OrderBy: order("ss_item_sk"),
			Limit:   1000,
		}
	}})

	// Inventory positions compared against sales with an inequality —
	// inventory is the largest fact table, so wide date ranges here are
	// the paper's four-hour wrecking balls.
	t = append(t, Template{Name: "pb_stock_vs_sales", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		slo, shi := dateRange(r, 14, 200)
		ilo, ihi := dateRange(r, 7, 90)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, "")},
			From:   from("store_sales", "inventory"),
			Joins:  []sqlgen.JoinPred{{Left: cref("ss_sold_date_sk"), Right: cref("inv_date_sk"), Op: sqlgen.OpLe}},
			Where: []sqlgen.Predicate{
				between("ss_sold_date_sk", slo, shi),
				between("inv_date_sk", ilo, ihi),
			},
		}
	}})

	// A fat IN-subquery feeding a fact scan plus a fan-out join.
	t = append(t, Template{Name: "pb_bigin_subquery", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 300, 1500)
		qlo := float64(r.IntBetween(1, 30))
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("cs_item_sk")[0], agg(sqlgen.AggCountStar, "")},
			From:   from("catalog_sales", "store_sales"),
			Joins:  []sqlgen.JoinPred{equi("cs_item_sk", "ss_item_sk")},
			Where: []sqlgen.Predicate{
				between("cs_sold_date_sk", lo, hi),
				{Col: cref("ss_customer_sk"), Op: sqlgen.OpIn, Subquery: &sqlgen.Query{
					Select: sel("c_customer_sk"),
					From:   from("customer"),
					Where:  []sqlgen.Predicate{between("c_birth_year", 1924, float64(1930+r.IntBetween(0, 50)))},
				}},
				between("ss_quantity", qlo, qlo+20),
			},
			GroupBy: group("cs_item_sk"),
		}
	}})

	// Heavy sort: a wide join result ordered by profit (external sort).
	t = append(t, Template{Name: "pb_giant_sort", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 300, 1500)
		return &sqlgen.Query{
			Select:  sel("ss_ticket_number", "ss_net_profit"),
			From:    from("store_sales", "store_returns"),
			Joins:   []sqlgen.JoinPred{equi("ss_item_sk", "sr_item_sk")},
			Where:   []sqlgen.Predicate{between("ss_sold_date_sk", lo, hi)},
			OrderBy: []sqlgen.OrderItem{{Col: cref("ss_net_profit"), Desc: true}, {Col: cref("ss_ticket_number")}},
		}
	}})

	// Demographic cross-product explosion: two large dimensions joined by
	// inequality, then matched to a fact.
	t = append(t, Template{Name: "pb_demo_blowup", Class: "problem", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo, hi := dateRange(r, 60, 500)
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, "")},
			From:   from("web_sales", "customer", "household_demographics"),
			Joins: []sqlgen.JoinPred{
				equi("ws_bill_customer_sk", "c_customer_sk"),
				{Left: cref("c_current_hdemo_sk"), Right: cref("hd_demo_sk"), Op: sqlgen.OpGe},
			},
			Where: []sqlgen.Predicate{
				between("ws_sold_date_sk", lo, hi),
				between("hd_vehicle_count", 0, float64(r.IntBetween(1, 4))),
			},
		}
	}})

	return t
}

// CustomerTemplates returns the templates over the customer (telecom
// billing) schema used in Experiment 4. Real access was limited to very
// short-running queries ("mini-feathers"), so these templates are all
// narrow single-join aggregations.
func CustomerTemplates() []Template {
	t := make([]Template, 0, 8)

	t = append(t, Template{Name: "cust_calls_by_type", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		day := float64(r.IntBetween(0, 364))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("cr_call_type")[0], agg(sqlgen.AggCountStar, "")},
			From:    from("call_records"),
			Where:   []sqlgen.Predicate{between("cr_call_date", day, day+float64(r.IntBetween(0, 3)))},
			GroupBy: group("cr_call_type"),
		}
	}})

	t = append(t, Template{Name: "cust_overdue_by_region", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{sel("region_name")[0], agg(sqlgen.AggSum, "inv_amount_due")},
			From:   from("invoices", "accounts", "regions"),
			Joins: []sqlgen.JoinPred{
				equi("inv_acct_id", "acct_id"),
				equi("acct_region_id", "region_id"),
			},
			Where: []sqlgen.Predicate{
				eqChar("inv_status", r.IntBetween(0, 2)),
				eqNum("inv_bill_date", float64(r.IntBetween(0, 23))),
			},
			GroupBy: group("region_name"),
			OrderBy: order("region_name"),
		}
	}})

	t = append(t, Template{Name: "cust_payment_methods", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo := float64(r.IntBetween(0, 700))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("pay_method")[0], agg(sqlgen.AggSum, "pay_amount"), agg(sqlgen.AggCountStar, "")},
			From:    from("payments"),
			Where:   []sqlgen.Predicate{between("pay_date", lo, lo+float64(r.IntBetween(3, 30)))},
			GroupBy: group("pay_method"),
		}
	}})

	t = append(t, Template{Name: "cust_subs_by_plan", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("plan_type")[0], agg(sqlgen.AggCount, "sub_id")},
			From:    from("subscriptions", "plans"),
			Joins:   []sqlgen.JoinPred{equi("sub_plan_id", "plan_id")},
			Where:   []sqlgen.Predicate{eqChar("sub_status", r.IntBetween(0, 4))},
			GroupBy: group("plan_type"),
		}
	}})

	t = append(t, Template{Name: "cust_segment_credit", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		lo := r.Uniform(0, 5000)
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("acct_segment")[0], agg(sqlgen.AggAvg, "acct_credit_limit")},
			From:    from("accounts"),
			Where:   []sqlgen.Predicate{between("acct_credit_limit", lo, lo+r.Uniform(500, 4000))},
			GroupBy: group("acct_segment"),
		}
	}})

	t = append(t, Template{Name: "cust_busy_cells", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		day := float64(r.IntBetween(0, 363))
		dlo := float64(r.IntBetween(1, 600))
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("cr_cell_id")[0], agg(sqlgen.AggCountStar, "")},
			From:    from("call_records"),
			Where:   []sqlgen.Predicate{between("cr_call_date", day, day+1), between("cr_duration_sec", dlo, dlo+600)},
			GroupBy: group("cr_cell_id"),
			OrderBy: order("cr_cell_id"),
			Limit:   50,
		}
	}})

	t = append(t, Template{Name: "cust_device_vendors", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		return &sqlgen.Query{
			Select:  []sqlgen.SelectItem{sel("dev_os")[0], agg(sqlgen.AggCountStar, "")},
			From:    from("devices"),
			Where:   []sqlgen.Predicate{eqChar("dev_vendor", r.IntBetween(0, 24))},
			GroupBy: group("dev_os"),
		}
	}})

	t = append(t, Template{Name: "cust_invoice_payments", Class: "customer", Gen: func(r *statutil.RNG) *sqlgen.Query {
		bill := float64(r.IntBetween(0, 23))
		return &sqlgen.Query{
			Select: []sqlgen.SelectItem{agg(sqlgen.AggCountStar, ""), agg(sqlgen.AggSum, "pay_amount")},
			From:   from("invoices", "payments"),
			Joins:  []sqlgen.JoinPred{equi("pay_inv_id", "inv_id")},
			Where: []sqlgen.Predicate{
				eqNum("inv_bill_date", bill),
				eqChar("pay_method", r.IntBetween(0, 4)),
			},
		}
	}})

	return t
}
