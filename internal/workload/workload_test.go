package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/statutil"
)

func TestCategorize(t *testing.T) {
	cases := []struct {
		sec  float64
		want Category
	}{
		{0.05, Feather},
		{52, Feather},
		{179.9, Feather},
		{180, GolfBall},
		{1799, GolfBall},
		{1800, BowlingBall},
		{7199, BowlingBall},
		{7200, WreckingBall},
		{40000, WreckingBall},
	}
	for _, c := range cases {
		if got := Categorize(c.sec); got != c.want {
			t.Errorf("Categorize(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		Feather: "feather", GolfBall: "golf_ball",
		BowlingBall: "bowling_ball", WreckingBall: "wrecking_ball",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Category(42).String() == "" {
		t.Error("unknown category must render")
	}
}

func TestTPCDSTemplatesGenerateValidQueries(t *testing.T) {
	schema := catalog.TPCDS(1)
	cfg := optimizer.DefaultConfig(4)
	templates := TPCDSTemplates()
	if len(templates) != 24 {
		t.Fatalf("template count = %d, want 24", len(templates))
	}
	seenProblem := false
	for _, tpl := range templates {
		if tpl.Class == "problem" {
			seenProblem = true
		}
		r := statutil.NewRNG(99, "tpl:"+tpl.Name)
		for i := 0; i < 5; i++ {
			q := tpl.Gen(r)
			if err := q.Validate(); err != nil {
				t.Fatalf("%s instance %d invalid: %v", tpl.Name, i, err)
			}
			plan, err := optimizer.BuildPlan(q, schema, 5, cfg)
			if err != nil {
				t.Fatalf("%s instance %d does not plan: %v\nSQL: %s", tpl.Name, i, err, q.Render())
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("%s instance %d bad plan: %v", tpl.Name, i, err)
			}
		}
	}
	if !seenProblem {
		t.Error("no problem templates found")
	}
}

func TestCustomerTemplatesGenerateValidQueries(t *testing.T) {
	schema := catalog.CustomerSchema()
	cfg := optimizer.DefaultConfig(4)
	templates := CustomerTemplates()
	if len(templates) != 8 {
		t.Fatalf("template count = %d, want 8", len(templates))
	}
	for _, tpl := range templates {
		if tpl.Class != "customer" {
			t.Errorf("%s class = %q", tpl.Name, tpl.Class)
		}
		r := statutil.NewRNG(7, "tpl:"+tpl.Name)
		for i := 0; i < 5; i++ {
			q := tpl.Gen(r)
			if err := q.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", tpl.Name, err)
			}
			if _, err := optimizer.BuildPlan(q, schema, 5, cfg); err != nil {
				t.Fatalf("%s does not plan: %v", tpl.Name, err)
			}
		}
	}
}

func TestTemplateSQLRoundTrips(t *testing.T) {
	// Every generated query's SQL text must parse back (the SQL-text
	// feature extractor depends on this).
	r := statutil.NewRNG(3, "roundtrip")
	for _, tpl := range append(TPCDSTemplates(), CustomerTemplates()...) {
		q := tpl.Gen(r)
		sql := q.Render()
		parsed, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("%s SQL does not parse: %v\n%s", tpl.Name, err, sql)
		}
		if parsed.Render() != sql {
			t.Errorf("%s render not stable", tpl.Name)
		}
	}
}

func TestTemplateConstantsVary(t *testing.T) {
	// The same template must produce textually different queries on
	// different draws (the paper's key observation about SQL-text
	// features depends on constants varying).
	tpl := TPCDSTemplates()[0]
	r := statutil.NewRNG(1, "vary")
	a := tpl.Gen(r).Render()
	b := tpl.Gen(r).Render()
	if a == b {
		t.Error("consecutive instances should differ in constants")
	}
}
