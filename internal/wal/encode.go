package wal

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/exec"
)

// appendObservation appends the JSON encoding of one ObservationRecord to
// dst and returns the extended slice — the allocation-free replacement for
// json.Marshal on the per-observe WAL append path. The output is
// byte-identical to encoding/json (same float formatting, same string
// escaping including HTML escapes and invalid-UTF-8 replacement), asserted
// exhaustively by TestAppendObservationMatchesMarshal, so records written by
// either encoder replay interchangeably.
//
// Like json.Marshal, it rejects NaN and ±Inf metric values with an error
// (and appends nothing useful to dst in that case — callers reset the
// buffer per record anyway).
func appendObservation(dst []byte, sql string, m exec.Metrics) ([]byte, error) {
	for _, v := range [...]float64{m.ElapsedSec, m.RecordsAccessed, m.RecordsUsed, m.DiskIOs, m.MessageCount, m.MessageBytes} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Same failure json.Marshal reports, so walAppendErrors counts
			// the same events either way.
			return dst, fmt.Errorf("json: unsupported value: %s", strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	dst = append(dst, `{"sql":`...)
	dst = appendJSONString(dst, sql)
	dst = append(dst, `,"metrics":{"ElapsedSec":`...)
	dst = appendJSONFloat(dst, m.ElapsedSec)
	dst = append(dst, `,"RecordsAccessed":`...)
	dst = appendJSONFloat(dst, m.RecordsAccessed)
	dst = append(dst, `,"RecordsUsed":`...)
	dst = appendJSONFloat(dst, m.RecordsUsed)
	dst = append(dst, `,"DiskIOs":`...)
	dst = appendJSONFloat(dst, m.DiskIOs)
	dst = append(dst, `,"MessageCount":`...)
	dst = appendJSONFloat(dst, m.MessageCount)
	dst = append(dst, `,"MessageBytes":`...)
	dst = appendJSONFloat(dst, m.MessageBytes)
	dst = append(dst, `}}`...)
	return dst, nil
}

// appendJSONFloat appends a float64 exactly as encoding/json does: shortest
// round-trip form, 'f' format in [1e-6, 1e21), 'e' outside it with the
// exponent's leading zero stripped (e-09 → e-9).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a JSON string literal exactly as encoding/json's
// default (HTML-escaping) encoder does: ", backslash and control characters
// escaped (\n \r \t \b \f named; the rest as \u00xx), the HTML characters
// <, > and & as \u003c / \u003e / \u0026, invalid UTF-8 bytes as the
// \ufffd escape, and U+2028/U+2029 (legal JSON, illegal JavaScript) as
// \u2028 / \u2029.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
