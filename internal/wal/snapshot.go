package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// Snapshot metrics.
var (
	walSnapshots     = obs.GetCounter("wal.snapshots")
	walSnapshotBytes = obs.GetHistogram("wal.snapshot.bytes")
	walSnapsCorrupt  = obs.GetCounter("wal.snapshots.corrupt")
)

const (
	// snapMagic opens every snapshot file; "001" is the format version.
	snapMagic = "QSNAP001"
	// snapHeaderLen: magic + appliedSeq + generation + payload CRC-32C.
	snapHeaderLen = len(snapMagic) + 8 + 8 + 4
	// keepSnapshots is how many snapshot files survive pruning: the newest
	// plus one fallback in case the newest is unreadable.
	keepSnapshots = 2
)

// ErrBadSnapshot marks a snapshot file that failed validation (short,
// wrong magic, or checksum mismatch). LatestSnapshot skips such files and
// falls back to older ones.
var ErrBadSnapshot = errors.New("wal: invalid snapshot file")

// Snapshot is a decoded point-in-time state file: the opaque payload (the
// serialized sliding-predictor state) plus the log position and model
// generation it covers.
type Snapshot struct {
	Path    string
	Seq     uint64 // last WAL sequence applied to this state
	Gen     uint64 // model generation installed when it was taken
	Payload []byte
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", seq))
}

// WriteSnapshot atomically persists a snapshot covering WAL sequence seq
// with model generation gen, then prunes all but the newest keepSnapshots
// files. The payload is opaque to this layer.
func WriteSnapshot(dir string, seq, gen uint64, payload []byte) (string, error) {
	buf := make([]byte, snapHeaderLen+len(payload))
	copy(buf, snapMagic)
	off := len(snapMagic)
	binary.LittleEndian.PutUint64(buf[off:], seq)
	binary.LittleEndian.PutUint64(buf[off+8:], gen)
	binary.LittleEndian.PutUint32(buf[off+16:], crc32.Checksum(payload, castagnoli))
	copy(buf[snapHeaderLen:], payload)
	path := snapshotPath(dir, seq)
	if err := WriteFileAtomic(path, buf, 0o644); err != nil {
		return "", err
	}
	walSnapshots.Inc()
	walSnapshotBytes.Observe(float64(len(buf)))
	if err := pruneSnapshots(dir); err != nil {
		return path, err
	}
	return path, nil
}

// ReadSnapshot decodes and validates one snapshot file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
	}
	if len(data) < snapHeaderLen || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrBadSnapshot, path)
	}
	off := len(snapMagic)
	seq := binary.LittleEndian.Uint64(data[off:])
	gen := binary.LittleEndian.Uint64(data[off+8:])
	crc := binary.LittleEndian.Uint32(data[off+16:])
	payload := data[snapHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrBadSnapshot, path)
	}
	return &Snapshot{Path: path, Seq: seq, Gen: gen, Payload: payload}, nil
}

// LatestSnapshot returns the newest valid snapshot in dir, or nil if none
// exists. Corrupt files (a crash mid-write leaves none thanks to
// WriteFileAtomic, but disks rot) are skipped in favor of older ones.
func LatestSnapshot(dir string) (*Snapshot, error) {
	names, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		snap, err := ReadSnapshot(names[i])
		if err == nil {
			return snap, nil
		}
		if errors.Is(err, ErrBadSnapshot) {
			walSnapsCorrupt.Inc()
			continue
		}
		return nil, err
	}
	return nil, nil
}

func listSnapshots(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, fmt.Errorf("wal: listing snapshots in %s: %w", dir, err)
	}
	sort.Strings(names) // zero-padded seq in the name: lexical = numeric
	return names, nil
}

// pruneSnapshots removes all but the newest keepSnapshots files.
func pruneSnapshots(dir string) error {
	names, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	if len(names) <= keepSnapshots {
		return nil
	}
	for _, path := range names[:len(names)-keepSnapshots] {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: pruning snapshot %s: %w", path, err)
		}
	}
	return SyncDir(dir)
}
