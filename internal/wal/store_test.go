package wal_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Shared fixture: one generated pool (generation dominates test time). The
// data seed is fixed so the store's replay planner and the tests' local
// planner produce identical plans for the same SQL.
const storeDataSeed = 77

var (
	storeOnce sync.Once
	storePool *dataset.Dataset
	storeErr  error
)

func storeFixture(t testing.TB) *dataset.Dataset {
	t.Helper()
	storeOnce.Do(func() {
		storePool, storeErr = dataset.Generate(dataset.GenConfig{
			Seed: 5, DataSeed: storeDataSeed, Machine: exec.Research4(),
			Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 160,
		})
	})
	if storeErr != nil {
		t.Fatal(storeErr)
	}
	return storePool
}

func storePlan() core.PlanFunc {
	return serve.PlannerFunc(catalog.TPCDS(1), storeDataSeed, exec.Research4())
}

// observations re-plans the first n pool queries exactly the way the
// /v1/observe handler does, attaching the measured metrics — the stream
// both the durable and the mirror predictor consume.
func observations(t testing.TB, n int) []*dataset.Query {
	t.Helper()
	pool := storeFixture(t)
	if n > len(pool.Queries) {
		t.Fatalf("fixture holds %d queries, need %d", len(pool.Queries), n)
	}
	plan := storePlan()
	qs := make([]*dataset.Query, n)
	for i := 0; i < n; i++ {
		src := pool.Queries[i]
		q, err := plan(src.SQL)
		if err != nil {
			t.Fatalf("planning %q: %v", src.SQL, err)
		}
		q.Metrics = src.Metrics
		q.Category = workload.Categorize(q.Metrics.ElapsedSec)
		qs[i] = q
	}
	return qs
}

const (
	testCapacity = 40
	testRetrain  = 10
)

func openStore(t testing.TB, dir string, snapEvery int) *wal.Store {
	t.Helper()
	st, err := wal.OpenStore(wal.StoreOptions{
		Dir: dir, Policy: wal.SyncNone, SnapshotEvery: snapEvery, Plan: storePlan(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newSliding(t testing.TB) *core.SlidingPredictor {
	t.Helper()
	s, err := core.NewSliding(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// feed applies one observation with the live observe loop's write-ahead
// discipline: log, apply, mark applied, snapshot when due. gen mirrors the
// serving slot's generation (one bump per completed retrain).
func feed(t testing.TB, st *wal.Store, s *core.SlidingPredictor, q *dataset.Query, gen *int64) {
	t.Helper()
	seq, err := st.Append(q.SQL, q.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Retrains()
	_ = s.Observe(q) // retrain errors keep the previous model, like the live loop
	if s.Retrains() != before {
		*gen++
	}
	st.Applied(seq)
	if err := st.MaybeSnapshot(s, *gen); err != nil {
		t.Fatal(err)
	}
}

// checkIdentical asserts two sliding predictors are observably the same
// model: identical bookkeeping and bit-identical predictions on held-out
// queries — the recovery acceptance criterion.
func checkIdentical(t testing.TB, got, want *core.SlidingPredictor) {
	t.Helper()
	if got.Retrains() != want.Retrains() {
		t.Fatalf("retrains %d, want %d", got.Retrains(), want.Retrains())
	}
	if got.WindowSize() != want.WindowSize() {
		t.Fatalf("window %d, want %d", got.WindowSize(), want.WindowSize())
	}
	pg, pw := got.Current(), want.Current()
	if (pg == nil) != (pw == nil) {
		t.Fatalf("readiness diverged: recovered %v, mirror %v", pg != nil, pw != nil)
	}
	if pg == nil {
		return
	}
	pool := storeFixture(t)
	for _, q := range pool.Queries[150:160] {
		a, errA := pg.PredictQuery(q)
		b, errB := pw.PredictQuery(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("prediction errors diverged: %v vs %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Metrics != b.Metrics || a.Confidence != b.Confidence || a.Category != b.Category {
			t.Fatalf("prediction diverged after recovery:\nrecovered %+v\nmirror    %+v", a, b)
		}
	}
}

// TestRecoverBitIdenticalAfterCrash is the end-to-end recovery contract: a
// process killed without any shutdown path (no final snapshot, no sync —
// SyncNone survives process death, just not power loss) recovers from its
// newest snapshot plus the WAL tail to the exact state of an uninterrupted
// mirror — and, crucially, continues to evolve identically, because the
// incremental retrainer's full state (maintained kernels, warm eigenbases)
// is restored rather than rebuilt.
func TestRecoverBitIdenticalAfterCrash(t *testing.T) {
	qs := observations(t, 40)
	dir := t.TempDir()

	// Live process: 27 observations (snapshots at 8, 16, 24; retrains at
	// 10, 20), then killed — the store is simply abandoned mid-flight.
	st := openStore(t, dir, 8)
	live := newSliding(t)
	var liveGen int64
	for _, q := range qs[:27] {
		feed(t, st, live, q, &liveGen)
	}

	// Mirror: the same stream, never interrupted.
	mirror := newSliding(t)
	var mirrorGen int64
	for _, q := range qs[:27] {
		before := mirror.Retrains()
		_ = mirror.Observe(q)
		if mirror.Retrains() != before {
			mirrorGen++
		}
	}

	// Restart: recover from disk.
	st2 := openStore(t, dir, 8)
	recovered, gen, err := st2.Recover(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, recovered, mirror)
	if gen != mirrorGen {
		t.Fatalf("recovered generation %d, mirror %d", gen, mirrorGen)
	}
	info := st2.Info()
	if !info.Recovered || info.SnapshotSeq != 24 || info.Replayed != 3 {
		t.Fatalf("recovery info %+v, want snapshot 24 + 3 replayed", info)
	}
	if info.TornTail {
		t.Fatal("clean crash reported a torn tail")
	}

	// The recovered process keeps evolving bit-identically across further
	// retrain boundaries (observations 28..40 cross retrains at 30 and 40).
	for _, q := range qs[27:] {
		feed(t, st2, recovered, q, &gen)
		before := mirror.Retrains()
		_ = mirror.Observe(q)
		if mirror.Retrains() != before {
			mirrorGen++
		}
	}
	checkIdentical(t, recovered, mirror)
	if gen != mirrorGen {
		t.Fatalf("post-recovery generation %d, mirror %d", gen, mirrorGen)
	}
}

// TestRecoverMidObserve kills between the WAL append and the in-memory
// apply — the write-ahead discipline's defining crash point. The logged
// record must be replayed on restart: recovery equals a process that
// observed it. The 10th observation is also a retrain trigger, so this
// doubles as the mid-retrain kill point: the retrain that never completed
// in the crashed process runs during replay instead.
func TestRecoverMidObserve(t *testing.T) {
	qs := observations(t, 10)
	dir := t.TempDir()

	st := openStore(t, dir, 100)
	live := newSliding(t)
	var liveGen int64
	for _, q := range qs[:9] {
		feed(t, st, live, q, &liveGen)
	}
	// Observation 10: logged, never applied — killed mid-observe, just
	// before the retrain it would have triggered.
	if _, err := st.Append(qs[9].SQL, qs[9].Metrics); err != nil {
		t.Fatal(err)
	}

	mirror := newSliding(t)
	for _, q := range qs {
		_ = mirror.Observe(q)
	}

	st2 := openStore(t, dir, 100)
	recovered, gen, err := st2.Recover(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, recovered, mirror)
	if info := st2.Info(); info.Replayed != 10 {
		t.Fatalf("replayed %d, want all 10 (WAL is the source of truth)", info.Replayed)
	}
	if gen != 1 {
		t.Fatalf("generation %d, want 1 (the replayed retrain)", gen)
	}
}

// TestRecoverTornTail kills mid-append: the last WAL record is half
// written. Recovery truncates the torn record and lands on the state of a
// process that never received that observation.
func TestRecoverTornTail(t *testing.T) {
	qs := observations(t, 15)
	dir := t.TempDir()

	st := openStore(t, dir, 100)
	live := newSliding(t)
	var liveGen int64
	for _, q := range qs {
		feed(t, st, live, q, &liveGen)
	}
	// Tear the tail: chop a few bytes off the last record's frame.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	mirror := newSliding(t)
	for _, q := range qs[:14] {
		_ = mirror.Observe(q)
	}

	st2 := openStore(t, dir, 100)
	recovered, _, err := st2.Recover(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, recovered, mirror)
	ri := st2.Info()
	if !ri.TornTail || ri.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", ri)
	}
	if ri.Replayed != 14 {
		t.Fatalf("replayed %d, want 14 (the valid prefix)", ri.Replayed)
	}
}

// TestRecoverCorruptSnapshotFallback kills mid-snapshot in effect: the
// newest snapshot is unreadable (WriteFileAtomic means a real crash leaves
// the old file, but disks rot and bytes flip). Recovery falls back to the
// previous snapshot and replays a longer tail — to the same state.
func TestRecoverCorruptSnapshotFallback(t *testing.T) {
	qs := observations(t, 30)
	dir := t.TempDir()

	st := openStore(t, dir, 8)
	live := newSliding(t)
	var liveGen int64
	for _, q := range qs {
		feed(t, st, live, q, &liveGen)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots, got %v (%v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mirror := newSliding(t)
	for _, q := range qs {
		_ = mirror.Observe(q)
	}

	st2 := openStore(t, dir, 8)
	recovered, _, err := st2.Recover(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, recovered, mirror)
	ri := st2.Info()
	if ri.SnapshotSeq != 16 || ri.Replayed != 14 {
		t.Fatalf("recovery info %+v, want fallback snapshot 16 + 14 replayed", ri)
	}
}

// TestCleanShutdownSnapshot: Close takes a final snapshot, so a clean
// restart replays nothing and keeps the generation moving forward.
func TestCleanShutdownSnapshot(t *testing.T) {
	qs := observations(t, 13)
	dir := t.TempDir()

	st := openStore(t, dir, 100)
	live := newSliding(t)
	var liveGen int64
	for _, q := range qs {
		feed(t, st, live, q, &liveGen)
	}
	if err := st.Close(live, liveGen); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, 100)
	recovered, gen, err := st2.Recover(testCapacity, testRetrain, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, recovered, live)
	if gen != liveGen {
		t.Fatalf("generation %d, want %d", gen, liveGen)
	}
	ri := st2.Info()
	if !ri.Recovered || ri.Replayed != 0 || ri.SnapshotSeq != 13 {
		t.Fatalf("clean restart replayed the tail anyway: %+v", ri)
	}
}

// TestRecoverConfigMismatch: a snapshot taken under one window
// configuration must refuse to restore under another.
func TestRecoverConfigMismatch(t *testing.T) {
	qs := observations(t, 13)
	dir := t.TempDir()
	st := openStore(t, dir, 100)
	live := newSliding(t)
	var gen int64
	for _, q := range qs {
		feed(t, st, live, q, &gen)
	}
	if err := st.Close(live, gen); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, 100)
	_, _, err := st2.Recover(testCapacity+10, testRetrain, core.DefaultOptions())
	if !errors.Is(err, core.ErrStateMismatch) {
		t.Fatalf("capacity mismatch: %v", err)
	}
}

func TestCheckManifest(t *testing.T) {
	dir := t.TempDir()
	want := wal.Manifest{Shards: 4, Partitioner: "hash", Capacity: 500, RetrainEvery: 100}
	if err := wal.CheckManifest(dir, want); err != nil {
		t.Fatalf("fresh dir: %v", err)
	}
	if err := wal.CheckManifest(dir, want); err != nil {
		t.Fatalf("same config: %v", err)
	}
	bad := want
	bad.Shards = 8
	if err := wal.CheckManifest(dir, bad); err == nil {
		t.Fatal("shard-count change accepted against an existing state dir")
	}
}
