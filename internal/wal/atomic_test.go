package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Overwrite: the old content is replaced in one rename, and no
	// temporary files are left behind.
	if err := WriteFileAtomic(path, []byte("v2 longer content"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("v2 longer content")) {
		t.Fatalf("read back %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.bin" {
		t.Fatalf("stray files after atomic write: %v", entries)
	}
}
