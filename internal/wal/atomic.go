package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic is the one atomic persistence primitive every durable
// write in the repository routes through (model files, state snapshots, the
// state-dir manifest): the data lands in a temporary file in the SAME
// directory as the destination, is fsynced, renamed over the destination,
// and the directory entry is fsynced too. A crash at any point leaves
// either the complete old file or the complete new file — never a torn one
// — because rename(2) within one directory is atomic and the fsyncs order
// the data before the name.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("wal: creating temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	// Any failure below must not leave the temp file behind.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: %s %s: %w", step, tmpName, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmodding", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("closing", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: renaming %s over %s: %w", tmpName, path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames, creations, and deletions inside it
// are durable before the caller proceeds.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s for sync: %w", dir, err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return cerr
}
