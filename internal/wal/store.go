package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Store-level metrics.
var (
	walAppendErrors = obs.GetCounter("wal.append.errors")
	walRecoveries   = obs.GetCounter("wal.recoveries")
	walReplaySecs   = obs.GetHistogram("wal.replay.seconds")
)

// DefaultSnapshotEvery is the default observation count between snapshots.
const DefaultSnapshotEvery = 500

// ObservationRecord is the WAL payload of one /v1/observe entry: exactly
// what the wire carried — the SQL (re-planned deterministically on replay)
// and the measured metrics. JSON keeps records greppable; Go's float64
// encoding is shortest-round-trip, so metric bits survive exactly.
type ObservationRecord struct {
	SQL     string       `json:"sql"`
	Metrics exec.Metrics `json:"metrics"`
}

// StoreOptions configure one partition's durable state.
type StoreOptions struct {
	// Dir is the partition's state directory (WAL segments + snapshots);
	// created if missing.
	Dir string
	// Policy/SyncEvery/SegmentBytes configure the log (see Options).
	Policy       SyncPolicy
	SyncEvery    int
	SegmentBytes int64
	// SnapshotEvery is how many applied observations trigger a snapshot
	// (default DefaultSnapshotEvery). Snapshots bound replay time: a
	// restart replays only the records behind the newest snapshot.
	SnapshotEvery int
	// Plan re-plans a record's SQL during replay — the same deterministic
	// parse + optimize pipeline the live observe path runs.
	Plan core.PlanFunc
}

// RecoveryInfo describes what a Store's Recover did, for GET /v1/model and
// the boot log.
type RecoveryInfo struct {
	// Recovered is true when any prior state (snapshot or WAL records) was
	// found and installed.
	Recovered bool
	// SnapshotSeq is the WAL sequence the installed snapshot covered (0 if
	// recovery started from an empty state).
	SnapshotSeq uint64
	// Replayed is how many WAL records were re-applied behind the
	// snapshot.
	Replayed int64
	// TornTail is true when the log's tail had to be truncated (the crash
	// signature), with TruncatedBytes discarded.
	TornTail       bool
	TruncatedBytes int64
	// ReplaySeconds is how long recovery took.
	ReplaySeconds float64
	// Generation is the model generation serving after recovery (0 when
	// cold).
	Generation int64
}

// Store is one partition's durable serving state: an observation WAL plus
// periodic snapshots of the sliding predictor. The owner's observe
// goroutine serializes Append/Applied/MaybeSnapshot; Recover runs before
// serving starts; Info is immutable after Recover.
type Store struct {
	opts StoreOptions
	log  *Log

	appliedSeq uint64 // last WAL seq applied to the sliding predictor
	loggedSeq  uint64 // last WAL seq appended
	sinceSnap  int

	// encBuf is the reusable observation-record encode buffer. The observe
	// goroutine serializes every Append (see the Store contract above), so a
	// plain single-owner buffer suffices — steady-state appends allocate
	// nothing.
	encBuf []byte

	info RecoveryInfo
}

// OpenStore opens (and repairs) the partition's WAL. Call Recover next to
// rebuild the sliding predictor from the newest snapshot plus the log
// tail.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("wal: store needs a plan function")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	l, err := Open(Options{
		Dir:          opts.Dir,
		SegmentBytes: opts.SegmentBytes,
		Policy:       opts.Policy,
		SyncEvery:    opts.SyncEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Store{opts: opts, log: l, loggedSeq: l.LastSeq()}, nil
}

// Recover rebuilds the partition's sliding predictor: install the newest
// valid snapshot (falling back to older ones if corrupt), then replay the
// WAL tail through the ordinary Observe path — including its incremental
// retrains — so the recovered state is bit-identical to a process that
// observed the same prefix without interruption. It returns the predictor
// and the model generation to seed the serving slot with (0 when cold).
//
// Replay cost scales with the tail behind the snapshot, not the log's
// history: whole covered segments are skipped without reading.
func (st *Store) Recover(capacity, retrainEvery int, opt core.Options) (*core.SlidingPredictor, int64, error) {
	start := time.Now()
	snap, err := LatestSnapshot(st.opts.Dir)
	if err != nil {
		return nil, 0, err
	}
	var sliding *core.SlidingPredictor
	var gen int64
	if snap != nil {
		sliding, err = core.RestoreSliding(bytes.NewReader(snap.Payload), capacity, retrainEvery, opt, st.opts.Plan)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: restoring snapshot %s: %w", snap.Path, err)
		}
		gen = int64(snap.Gen)
		st.appliedSeq = snap.Seq
		st.info.SnapshotSeq = snap.Seq
		st.info.Recovered = true
	} else {
		sliding, err = core.NewSliding(capacity, retrainEvery, opt)
		if err != nil {
			return nil, 0, err
		}
	}

	// Replay the tail through the ordinary observe path. Every record was
	// accepted (parsed + planned) by a live daemon, so a replay plan
	// failure means the schema/planner configuration changed — refuse to
	// serve a model quietly diverged from its history. Retrain errors are
	// tolerated exactly as the live loop tolerates them: the observation is
	// retained, the previous model keeps serving.
	retrainsBefore := sliding.Retrains()
	err = st.log.Replay(st.appliedSeq+1, func(seq uint64, payload []byte) error {
		var rec ObservationRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("wal: record %d: decoding observation: %w", seq, err)
		}
		q, err := st.opts.Plan(rec.SQL)
		if err != nil {
			return fmt.Errorf("wal: record %d: re-planning %q: %w", seq, rec.SQL, err)
		}
		q.Metrics = rec.Metrics
		q.Category = workload.Categorize(q.Metrics.ElapsedSec)
		_ = sliding.Observe(q) // retrain errors: keep previous model, like the live loop
		st.appliedSeq = seq
		st.info.Replayed++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if st.info.Replayed > 0 {
		st.info.Recovered = true
	}
	// Generation continuity: the snapshot's generation plus one per retrain
	// completed during replay, matching the swaps the live loop would have
	// published. A cold boot (no snapshot, no model yet) stays at 0.
	gen += int64(sliding.Retrains() - retrainsBefore)
	if gen == 0 && sliding.Ready() {
		gen = 1
	}
	st.info.TornTail, st.info.TruncatedBytes = st.log.TornTail()
	st.info.ReplaySeconds = time.Since(start).Seconds()
	st.info.Generation = gen
	if st.info.Recovered {
		walRecoveries.Inc()
		walReplaySecs.Observe(st.info.ReplaySeconds)
	}
	st.sinceSnap = 0
	return sliding, gen, nil
}

// Info returns what recovery did. Immutable after Recover.
func (st *Store) Info() RecoveryInfo { return st.info }

// Append logs one observation ahead of applying it. Returns the record's
// sequence; on failure the caller still applies the observation
// (availability over durability — the error is counted and the record is
// simply absent from a future replay).
func (st *Store) Append(sql string, m exec.Metrics) (uint64, error) {
	// Hand-rolled append encoder, byte-identical to json.Marshal on the
	// ObservationRecord wire shape but reusing st.encBuf instead of
	// allocating per record.
	payload, err := appendObservation(st.encBuf[:0], sql, m)
	st.encBuf = payload
	if err != nil {
		walAppendErrors.Inc()
		return 0, fmt.Errorf("wal: encoding observation: %w", err)
	}
	seq, err := st.log.Append(payload)
	if err != nil {
		walAppendErrors.Inc()
		return 0, err
	}
	st.loggedSeq = seq
	return seq, nil
}

// Applied marks a logged record as applied to the sliding predictor. The
// write-ahead discipline (log at seq k durable, apply k) means a crash
// between the two recovers to k applied — the WAL is the source of truth.
func (st *Store) Applied(seq uint64) {
	if seq == 0 {
		return
	}
	st.appliedSeq = seq
	st.sinceSnap++
}

// MaybeSnapshot takes a snapshot when enough observations have been
// applied since the last one.
func (st *Store) MaybeSnapshot(s *core.SlidingPredictor, gen int64) error {
	if st.sinceSnap < st.opts.SnapshotEvery {
		return nil
	}
	return st.Snapshot(s, gen)
}

// Snapshot persists the sliding predictor's full state (atomically), then
// truncates WAL segments the snapshot covers.
func (st *Store) Snapshot(s *core.SlidingPredictor, gen int64) error {
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		return err
	}
	if _, err := WriteSnapshot(st.opts.Dir, st.appliedSeq, uint64(gen), buf.Bytes()); err != nil {
		return err
	}
	st.sinceSnap = 0
	return st.log.TruncateBefore(st.appliedSeq + 1)
}

// Close takes a final snapshot (when a predictor is handed in and state
// has moved since the last one) and closes the log. Call after the observe
// loop has drained.
func (st *Store) Close(s *core.SlidingPredictor, gen int64) error {
	var err error
	if s != nil && st.sinceSnap > 0 {
		err = st.Snapshot(s, gen)
	}
	if cerr := st.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Manifest pins the fleet-level configuration a state directory was
// written under. Shard count and routing policy change which observations
// land in which partition's WAL, so restarting with different values would
// silently replay history into the wrong models; the manifest turns that
// into a boot-time error.
type Manifest struct {
	Shards       int    `json:"shards"`
	Partitioner  string `json:"partitioner"`
	Capacity     int    `json:"capacity"`
	RetrainEvery int    `json:"retrain_every"`
}

// CheckManifest verifies dir's manifest against want, writing it (via
// WriteFileAtomic) when the directory is fresh.
func CheckManifest(dir string, want Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: creating state dir %s: %w", dir, err)
	}
	path := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		out, merr := json.MarshalIndent(want, "", "  ")
		if merr != nil {
			return merr
		}
		return WriteFileAtomic(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		return fmt.Errorf("wal: reading manifest %s: %w", path, err)
	}
	var have Manifest
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("wal: decoding manifest %s: %w", path, err)
	}
	if have != want {
		return fmt.Errorf("wal: state dir %s was written under %+v, daemon configured %+v — "+
			"use a fresh -state-dir or restore the original flags", dir, have, want)
	}
	return nil
}

// championFile is the per-partition record of which model kind is champion,
// written on every promotion so a restart re-installs the promoted kind
// instead of silently reverting to the boot champion.
const championFile = "champion.json"

// championRecord is the champion.json schema.
type championRecord struct {
	Kind string `json:"kind"`
}

// SetChampion durably records the partition's champion model kind.
func (s *Store) SetChampion(kind string) error {
	out, err := json.Marshal(championRecord{Kind: kind})
	if err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(s.opts.Dir, championFile), append(out, '\n'), 0o644)
}

// ChampionKind returns the durably recorded champion kind, or "" when none
// was ever recorded (fresh directory, or a pre-zoo state dir).
func (s *Store) ChampionKind() string {
	return ReadChampionKind(s.opts.Dir)
}

// ReadChampionKind reads a state directory's recorded champion kind without
// opening the store ("" when absent or unreadable — the caller falls back
// to its configured champion).
func ReadChampionKind(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, championFile))
	if err != nil {
		return ""
	}
	var rec championRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return ""
	}
	return rec.Kind
}
