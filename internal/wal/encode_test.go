package wal

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/testutil"
)

// stubPlan satisfies StoreOptions.Plan for append-only fixtures that never
// call Recover.
func stubPlan(string) (*dataset.Query, error) { return nil, nil }

// edgeFloats exercise every branch of appendJSONFloat: zero and negative
// zero, the 'f'/'e' format boundaries at 1e-6 and 1e21, denormals, exponent
// leading-zero stripping (e-09 → e-9), and shortest-round-trip cases.
var edgeFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 123.456, -123.456,
	1e-6, 9.999999999999999e-7, 1e-7, 2.5e-9, 1e21, 9.999999999999999e20,
	-1e21, -1e-7, 5e-324, -5e-324, math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, 1.0 / 3.0, 0.1, 1e100, 1e-100,
	1234567890123456789, 3.0000000000000004,
}

// edgeStrings exercise every branch of appendJSONString: plain ASCII,
// every named escape, generic control characters, the HTML escapes,
// multi-byte runes, U+2028/U+2029, and invalid UTF-8 (lone and truncated
// sequences).
var edgeStrings = []string{
	"",
	"SELECT * FROM store_sales",
	`quote " backslash \ done`,
	"tab\there newline\nthere cr\rend bs\bff\f",
	"ctrl\x00\x01\x1f\x7fbytes",
	"html <b>&amp;</b> escapes",
	"unicode: héllo wörld — ツ 🚀",
	"line sep \u2028 para sep \u2029 end",
	"bad utf8 \xff\xfe mid \xe2\x80 tail \xc3",
	strings.Repeat("x", 300) + "\n" + strings.Repeat("é", 50),
}

func marshalRecord(t *testing.T, sql string, m exec.Metrics) ([]byte, error) {
	t.Helper()
	return json.Marshal(ObservationRecord{SQL: sql, Metrics: m})
}

// TestAppendObservationMatchesMarshal asserts the hand-rolled encoder is
// byte-identical to json.Marshal across the edge-case cross product plus a
// seeded random sweep — records written by either encoder must replay
// interchangeably.
func TestAppendObservationMatchesMarshal(t *testing.T) {
	check := func(sql string, m exec.Metrics) {
		t.Helper()
		want, err := marshalRecord(t, sql, m)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got, err := appendObservation(nil, sql, m)
		if err != nil {
			t.Fatalf("appendObservation(%q, %+v): %v", sql, m, err)
		}
		if string(got) != string(want) {
			t.Fatalf("encoding mismatch for sql=%q metrics=%+v\n got: %s\nwant: %s", sql, m, got, want)
		}
	}

	for _, sql := range edgeStrings {
		for i, f := range edgeFloats {
			m := exec.Metrics{
				ElapsedSec:      f,
				RecordsAccessed: edgeFloats[(i+1)%len(edgeFloats)],
				RecordsUsed:     edgeFloats[(i+2)%len(edgeFloats)],
				DiskIOs:         edgeFloats[(i+3)%len(edgeFloats)],
				MessageCount:    edgeFloats[(i+4)%len(edgeFloats)],
				MessageBytes:    edgeFloats[(i+5)%len(edgeFloats)],
			}
			check(sql, m)
		}
	}

	rng := rand.New(rand.NewSource(42))
	randFloat := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		case 1:
			return float64(rng.Int63n(1e12))
		case 2:
			return math.Float64frombits(rng.Uint64() &^ (0x7FF << 52)) // finite by construction
		default:
			return rng.ExpFloat64()
		}
	}
	randString := func() string {
		n := rng.Intn(64)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	for i := 0; i < 2000; i++ {
		m := exec.Metrics{
			ElapsedSec: randFloat(), RecordsAccessed: randFloat(), RecordsUsed: randFloat(),
			DiskIOs: randFloat(), MessageCount: randFloat(), MessageBytes: randFloat(),
		}
		check(randString(), m)
	}

	// Appending to a non-empty buffer extends it in place.
	prefix := []byte("prefix|")
	out, err := appendObservation(prefix, "SELECT 1", exec.Metrics{ElapsedSec: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), "prefix|{") {
		t.Fatalf("appendObservation did not extend dst: %s", out)
	}
}

// TestAppendObservationRejectsNonFinite asserts NaN and ±Inf fail with the
// same message json.Marshal reports, so walAppendErrors counts the same
// events whichever encoder runs.
func TestAppendObservationRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := exec.Metrics{ElapsedSec: 1, DiskIOs: bad}
		_, wantErr := marshalRecord(t, "q", m)
		if wantErr == nil {
			t.Fatalf("json.Marshal accepted %v", bad)
		}
		_, gotErr := appendObservation(nil, "q", m)
		if gotErr == nil {
			t.Fatalf("appendObservation accepted %v", bad)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("error mismatch for %v:\n got: %v\nwant: %v", bad, gotErr, wantErr)
		}
	}
}

var benchMetrics = exec.Metrics{
	ElapsedSec: 12.375, RecordsAccessed: 1.8e6, RecordsUsed: 42517,
	DiskIOs: 9031.25, MessageCount: 128, MessageBytes: 65536,
}

const benchSQL = `SELECT ss_item_sk, SUM(ss_net_paid) FROM store_sales WHERE ss_quantity < 42 GROUP BY ss_item_sk`

// BenchmarkObservationEncode is the before/after for the WAL encoder
// satellite: marshal is the old per-record json.Marshal, append is the
// pooled hand-rolled encoder (0 allocs/op steady state).
func BenchmarkObservationEncode(b *testing.B) {
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(ObservationRecord{SQL: benchSQL, Metrics: benchMetrics}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			out, err := appendObservation(buf[:0], benchSQL, benchMetrics)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}

// TestStoreAppendAllocs is the AllocsPerOp regression guard for the observe
// hot path: after warmup, Store.Append (encode + frame + write) must not
// allocate at all. The numeric bound is waived under -race, whose
// instrumentation allocates on its own.
func TestStoreAppendAllocs(t *testing.T) {
	st, err := OpenStore(StoreOptions{Dir: t.TempDir(), Policy: SyncNone, Plan: stubPlan})
	if err != nil {
		t.Fatal(err)
	}
	defer st.log.Close()

	for i := 0; i < 8; i++ { // warm the encode and frame buffers
		if _, err := st.Append(benchSQL, benchMetrics); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := st.Append(benchSQL, benchMetrics); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; skipping alloc bound (measured %.2f allocs/op)", allocs)
	}
	if allocs > 0 {
		t.Fatalf("Store.Append allocated %.2f allocs/op in steady state; want 0", allocs)
	}
}

// BenchmarkWALAppend measures the full observe-side durability path:
// encode, frame, and write one observation record (SyncNone isolates CPU
// cost from fsync).
func BenchmarkWALAppend(b *testing.B) {
	st, err := OpenStore(StoreOptions{Dir: b.TempDir(), Policy: SyncNone, Plan: stubPlan})
	if err != nil {
		b.Fatal(err)
	}
	defer st.log.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(benchSQL, benchMetrics); err != nil {
			b.Fatal(err)
		}
	}
}
