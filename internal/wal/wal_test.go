package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testPayload is a deterministic, variable-length record body.
func testPayload(seq uint64) []byte {
	return []byte(fmt.Sprintf("record-%d-%s", seq, bytes.Repeat([]byte{byte(seq)}, int(seq%37))))
}

// fill appends records 1..n and returns the log.
func fill(t *testing.T, dir string, n int, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		seq, err := l.Append(testPayload(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	return l
}

// collect replays the whole log into (seq, payload) pairs.
func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		if _, dup := got[seq]; dup {
			t.Fatalf("sequence %d replayed twice", seq)
		}
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// checkPrefix asserts got is exactly records 1..n with the right contents.
func checkPrefix(t *testing.T, got map[uint64][]byte, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if !bytes.Equal(got[uint64(i)], testPayload(uint64(i))) {
			t.Fatalf("record %d payload corrupted", i)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := fill(t, dir, 100, Options{Policy: SyncNone})
	if l.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d, want 100", l.LastSeq())
	}
	checkPrefix(t, collect(t, l, 1), 100)
	// Double replay is idempotent: the log is read-only during replay.
	checkPrefix(t, collect(t, l, 1), 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, appends continue the sequence.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 100 {
		t.Fatalf("reopened LastSeq = %d, want 100", l2.LastSeq())
	}
	if torn, _ := l2.TornTail(); torn {
		t.Fatal("clean log reported a torn tail")
	}
	seq, err := l2.Append(testPayload(101))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 101 {
		t.Fatalf("post-reopen append seq = %d, want 101", seq)
	}
	checkPrefix(t, collect(t, l2, 1), 101)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := fill(t, dir, 200, Options{Policy: SyncNone, SegmentBytes: 512})
	if l.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	checkPrefix(t, collect(t, l, 1), 200)
	l.Close()

	l2, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, collect(t, l2, 1), 200)

	// Replay from the middle: only the tail comes back.
	tail := collect(t, l2, 151)
	if len(tail) != 50 {
		t.Fatalf("tail replay returned %d records, want 50", len(tail))
	}
	for seq, p := range tail {
		if seq < 151 || !bytes.Equal(p, testPayload(seq)) {
			t.Fatalf("tail record %d wrong", seq)
		}
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l := fill(t, dir, 200, Options{Policy: SyncNone, SegmentBytes: 512})
	defer l.Close()
	before := l.Segments()
	if err := l.TruncateBefore(180); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("TruncateBefore removed nothing (%d -> %d segments)", before, l.Segments())
	}
	// Records >= 180 must survive; the append segment is never deleted.
	tail := collect(t, l, 180)
	for seq := uint64(180); seq <= 200; seq++ {
		if !bytes.Equal(tail[seq], testPayload(seq)) {
			t.Fatalf("record %d lost by truncation", seq)
		}
	}
	// Truncating everything still keeps the append segment functional.
	if err := l.TruncateBefore(10_000); err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 1 {
		t.Fatal("append segment deleted")
	}
	if _, err := l.Append(testPayload(201)); err != nil {
		t.Fatal(err)
	}
}

func TestAppendLimitsAndClose(t *testing.T) {
	l := fill(t, t.TempDir(), 1, Options{})
	if _, err := l.Append(nil); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("empty payload: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(testPayload(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Replay(1, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "none": SyncNone, "BATCH": SyncBatch} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSyncAlways(t *testing.T) {
	l := fill(t, t.TempDir(), 20, Options{Policy: SyncAlways})
	defer l.Close()
	checkPrefix(t, collect(t, l, 1), 20)
}

// lastSegment returns the path of the lexically last segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return names[len(names)-1]
}

// copyDir clones a log directory so each corruption case starts pristine.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailEveryOffset is the recovery property test: a log whose last
// segment is cut at EVERY possible byte offset must open without error and
// replay exactly the records that fit entirely before the cut — a valid
// prefix, never a panic, never a partial or reordered record. Re-opening
// the repaired log must be a no-op (repair is idempotent).
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	const total = 24
	l := fill(t, master, total, Options{Policy: SyncNone, SegmentBytes: 400})
	if l.Segments() < 2 {
		t.Fatalf("fixture needs >= 2 segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the record frame boundaries of the last segment to know
	// the expected valid prefix for each cut.
	lastPath := lastSegment(t, master)
	lastData, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	reopen, err := Open(Options{Dir: master})
	if err != nil {
		t.Fatal(err)
	}
	lastFirst := reopen.segs[len(reopen.segs)-1].firstSeq
	reopen.Close()

	boundaries := []int64{int64(segHeaderLen)} // offsets where a record ends
	off := int64(segHeaderLen)
	for seq := lastFirst; seq <= total; seq++ {
		off += int64(recHeaderLen + len(testPayload(seq)))
		boundaries = append(boundaries, off)
	}
	if off != int64(len(lastData)) {
		t.Fatalf("frame reconstruction drifted: %d != %d", off, len(lastData))
	}

	for cut := int64(0); cut <= int64(len(lastData)); cut++ {
		dir := copyDir(t, master)
		if err := os.Truncate(lastSegment(t, dir), cut); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		// Expected surviving records: everything before the last segment,
		// plus the last-segment records wholly below the cut. A cut inside
		// the segment header kills the whole file (and with it nothing
		// else — it is the final segment).
		want := int(lastFirst) - 1
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				want = int(lastFirst) - 1 + i
			}
		}
		got := collect(t, l, 1)
		checkPrefix(t, got, want)
		if l.LastSeq() != uint64(want) {
			t.Fatalf("cut %d: LastSeq = %d, want %d", cut, l.LastSeq(), want)
		}
		// The log must accept appends right after repair.
		if _, err := l.Append(testPayload(uint64(want + 1))); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l.Close()

		// Idempotence: opening the repaired log again finds nothing to fix.
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: second Open: %v", cut, err)
		}
		if torn, _ := l2.TornTail(); torn {
			t.Fatalf("cut %d: second Open repaired again", cut)
		}
		checkPrefix(t, collect(t, l2, 1), want+1)
		l2.Close()
	}
}

// TestBitFlipRecovery flips each byte of the last segment (one at a time)
// and checks recovery still yields a valid, CRC-clean prefix.
func TestBitFlipRecovery(t *testing.T) {
	master := t.TempDir()
	const total = 12
	l := fill(t, master, total, Options{Policy: SyncNone})
	l.Close()
	lastData, err := os.ReadFile(lastSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(lastData); pos++ {
		dir := copyDir(t, master)
		path := lastSegment(t, dir)
		mut := append([]byte(nil), lastData...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("flip at %d: Open: %v", pos, err)
		}
		got := collect(t, l, 1)
		// A flip may land in a payload byte whose record then fails CRC, or
		// in framing; either way the survivors must be a contiguous,
		// uncorrupted prefix.
		checkPrefix(t, got, len(got))
		if len(got) == total {
			t.Fatalf("flip at %d: corruption went undetected", pos)
		}
		l.Close()
	}
}

// TestCorruptEarlierSegmentDropsLaterOnes: the valid-prefix guarantee is
// global — a corrupt record in segment k discards segments k+1..n entirely,
// even if their contents are intact.
func TestCorruptEarlierSegmentDropsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	l := fill(t, dir, 200, Options{Policy: SyncNone, SegmentBytes: 512})
	if l.Segments() < 3 {
		t.Fatalf("need >= 3 segments, got %d", l.Segments())
	}
	firstPath := l.segs[0].path
	firstCount := l.segs[0].count
	l.Close()

	// Chop the first segment mid-record.
	info, err := os.Stat(firstPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(firstPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if torn, n := l2.TornTail(); !torn || n == 0 {
		t.Fatalf("TornTail = %v, %d", torn, n)
	}
	want := int(firstCount) - 1
	checkPrefix(t, collect(t, l2, 1), want)
	if l2.Segments() != 1 {
		t.Fatalf("later segments survived a mid-log corruption: %d segments", l2.Segments())
	}
	// And the sequence continues from the repaired point.
	seq, err := l2.Append(testPayload(uint64(want + 1)))
	if err != nil || seq != uint64(want+1) {
		t.Fatalf("append after repair: seq %d, err %v", seq, err)
	}
}

// TestReplayTailOnly100k: the acceptance bound — a log holding 100k
// observations replays only the records behind the snapshot position, in
// well under a second, because covered segments are skipped whole.
func TestReplayTailOnly100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-record log in -short mode")
	}
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncNone, SegmentBytes: 256 << 10}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"sql":"SELECT COUNT(*) FROM store_sales","metrics":{"elapsed_sec":1.5}}`)
	const total = 100_000
	for i := 0; i < total; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 5 {
		t.Fatalf("fixture too small: %d segments", l.Segments())
	}
	// Snapshot at 99_900 truncates covered segments…
	if err := l.TruncateBefore(99_901); err != nil {
		t.Fatal(err)
	}
	// …and replaying the tail touches only what remains.
	replayed := 0
	if err := l.Replay(99_901, func(seq uint64, _ []byte) error {
		if seq <= 99_900 {
			t.Fatalf("replayed covered record %d", seq)
		}
		replayed++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 100 {
		t.Fatalf("replayed %d records, want 100", replayed)
	}
}

// FuzzWALTail appends arbitrary bytes after a valid log prefix and checks
// the recovery contract: Open never fails on corruption (only real I/O
// errors), the valid prefix always survives, and repair is idempotent.
func FuzzWALTail(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("garbage tail"), uint8(3))
	f.Add(bytes.Repeat([]byte{0}, 64), uint8(7))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}, uint8(0))
	f.Fuzz(func(t *testing.T, tail []byte, cutBack uint8) {
		dir := t.TempDir()
		opts := Options{Dir: dir, Policy: SyncNone}
		l, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		const valid = 5
		for i := 1; i <= valid; i++ {
			if _, err := l.Append(testPayload(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		// Mutate the tail: cut back up to cutBack bytes, then append fuzz
		// data — a superset of torn appends, partial frames, and garbage.
		path := lastSegment(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if n := int(cutBack); n > 0 && n < len(data) {
			data = data[:len(data)-n]
		}
		data = append(data, tail...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		l1, err := Open(opts)
		if err != nil {
			t.Fatalf("Open on corrupt tail: %v", err)
		}
		got := map[uint64][]byte{}
		if err := l1.Replay(1, func(seq uint64, payload []byte) error {
			got[seq] = append([]byte(nil), payload...)
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		// Sequences must be a contiguous 1..n and every record untouched by
		// the fuzz data must match what was appended. (Fuzz bytes that form
		// a CRC-valid frame are legitimately replayed — indistinguishable
		// from a real append by design.)
		for i := 1; i <= len(got); i++ {
			p, ok := got[uint64(i)]
			if !ok {
				t.Fatalf("gap at sequence %d of %d", i, len(got))
			}
			if cutBack == 0 && i <= valid && !bytes.Equal(p, testPayload(uint64(i))) {
				t.Fatalf("intact record %d corrupted by recovery", i)
			}
		}
		count1 := len(got)
		l1.Close()

		// Idempotence: the repaired log reopens identically.
		l2, err := Open(opts)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if torn, _ := l2.TornTail(); torn {
			t.Fatal("second Open repaired again")
		}
		if int(l2.LastSeq()) != count1 {
			t.Fatalf("second Open sees %d records, first saw %d", l2.LastSeq(), count1)
		}
		l2.Close()
	})
}
