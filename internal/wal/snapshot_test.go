package wal

import (
	"bytes"
	"os"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("opaque sliding state")
	path, err := WriteSnapshot(dir, 42, 7, payload)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 42 || snap.Gen != 7 || !bytes.Equal(snap.Payload, payload) {
		t.Fatalf("round trip mangled snapshot: %+v", snap)
	}
	latest, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest == nil || latest.Seq != 42 {
		t.Fatalf("LatestSnapshot = %+v", latest)
	}
}

func TestLatestSnapshotEmpty(t *testing.T) {
	snap, err := LatestSnapshot(t.TempDir())
	if err != nil || snap != nil {
		t.Fatalf("empty dir: %+v, %v", snap, err)
	}
}

// TestLatestSnapshotFallback: a corrupt newest snapshot (bit rot, or a
// hypothetical partial write) is skipped in favor of the older one; with
// every snapshot corrupt, recovery falls back to a cold boot (nil).
func TestLatestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 10, 1, []byte("old state")); err != nil {
		t.Fatal(err)
	}
	newest, err := WriteSnapshot(dir, 20, 2, []byte("new state"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 10 || !bytes.Equal(snap.Payload, []byte("old state")) {
		t.Fatalf("fallback snapshot = %+v", snap)
	}

	// Corrupt the fallback too: recovery degrades to a cold boot.
	old, err := os.ReadFile(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	old[0] ^= 0xff
	if err := os.WriteFile(snap.Path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = LatestSnapshot(dir)
	if err != nil || snap != nil {
		t.Fatalf("all-corrupt dir: %+v, %v", snap, err)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(10); seq <= 50; seq += 10 {
		if _, err := WriteSnapshot(dir, seq, seq/10, []byte("state")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != keepSnapshots {
		t.Fatalf("%d snapshots survive pruning, want %d", len(names), keepSnapshots)
	}
	latest, err := LatestSnapshot(dir)
	if err != nil || latest == nil || latest.Seq != 50 {
		t.Fatalf("latest after pruning = %+v, %v", latest, err)
	}
}
