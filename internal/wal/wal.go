// Package wal makes qpredictd's serving state durable. It has three layers:
//
//   - Log: a segmented, append-only, length-prefixed, CRC-checksummed
//     record log with a configurable fsync policy. Opening a log validates
//     every record; a torn tail (the crash signature of an in-flight
//     append) is truncated back to the last complete record, and anything
//     after the first invalid byte is discarded, so recovery always yields
//     a valid prefix of what was written.
//   - Snapshots: checksummed point-in-time state files written atomically
//     (WriteFileAtomic), named by the log sequence number they cover, so a
//     restart installs the newest valid snapshot and replays only the log
//     tail behind it.
//   - Store: the observe-stream glue — one WAL + snapshot directory per
//     model partition, logging each /v1/observe record before it is
//     applied to the sliding retraining window and snapshotting installed
//     model generations via internal/core/serialize.
//
// The format discipline matches the model files: every container carries a
// magic string, a format version, and a CRC, so a truncated, bit-flipped,
// or different-build file fails fast with a clear error instead of
// decoding plausibly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// WAL metrics: append volume and fsync amplification on the write side,
// recovery behavior (replayed records, torn tails, discarded bytes) on the
// read side.
var (
	walAppends     = obs.GetCounter("wal.appends")
	walAppendBytes = obs.GetHistogram("wal.append.bytes")
	walFsyncs      = obs.GetCounter("wal.fsyncs")
	walRotations   = obs.GetCounter("wal.segment.rotations")
	walSegments    = obs.GetGauge("wal.segments")
	walReplayed    = obs.GetCounter("wal.records.replayed")
	walTornTails   = obs.GetCounter("wal.tail.truncations")
	walDiscarded   = obs.GetCounter("wal.truncated.bytes")
)

// Sentinel errors.
var (
	// ErrRecordTooLarge: an Append exceeded MaxRecordBytes (or was empty).
	ErrRecordTooLarge = errors.New("wal: record size out of range")
	// ErrClosed: the log was used after Close.
	ErrClosed = errors.New("wal: log is closed")
)

const (
	// segMagic opens every segment file, followed by the segment's first
	// record sequence number. The trailing "1" is the format version.
	segMagic = "QWALSEG1"
	// segHeaderLen is the segment header size: magic + first-seq.
	segHeaderLen = len(segMagic) + 8
	// recHeaderLen prefixes every record: uint32 payload length + uint32
	// CRC-32C of the payload, both little-endian.
	recHeaderLen = 8
	// MaxRecordBytes bounds one record's payload; larger length prefixes
	// on disk are treated as corruption.
	MaxRecordBytes = 16 << 20
	// DefaultSegmentBytes rotates segments at 8 MiB.
	DefaultSegmentBytes = 8 << 20
	// DefaultSyncEvery is the SyncBatch fsync cadence in appends.
	DefaultSyncEvery = 64
)

// castagnoli is the CRC-32C table used for record and snapshot checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncBatch fsyncs every SyncEvery appends and on rotation/close — the
	// default: bounded loss on power failure, no per-append fsync stall.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs every append before it is acknowledged.
	SyncAlways
	// SyncNone never fsyncs explicitly; the OS flushes on its own
	// schedule. Process crashes still lose nothing (the page cache
	// survives them); only power loss does.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses the -fsync flag values: always, batch, none.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want always, batch, or none)", s)
}

// Options configure a Log.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy is the fsync policy (default SyncBatch).
	Policy SyncPolicy
	// SyncEvery is the SyncBatch cadence in appends (default
	// DefaultSyncEvery).
	SyncEvery int
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
}

// segment is one on-disk log file holding records
// firstSeq..firstSeq+count-1.
type segment struct {
	path     string
	firstSeq uint64
	count    uint64
}

// Log is the append-only record log. It is not safe for concurrent use:
// the owner (a shard's observe goroutine) serializes access.
type Log struct {
	opts Options
	segs []segment
	f    *os.File // current (last) segment, open for append
	size int64    // current segment's byte size

	nextSeq  uint64 // sequence the next Append returns
	unsynced int    // appends since the last fsync (SyncBatch)
	closed   bool

	// frame is the reusable header+payload write buffer. The Log's owner
	// serializes Append calls (single-writer contract), and the bytes are
	// fully handed to the OS by Write before Append returns, so reuse is
	// safe and steady-state appends allocate nothing.
	frame []byte

	// Open-time repair stats, surfaced through the Store's RecoveryInfo.
	tornTail       bool
	truncatedBytes int64
}

// Open scans, validates, and repairs the log in dir, then positions it for
// appending. Every record of every segment is CRC-verified; the first
// invalid byte (torn append, bit flip, garbage) ends the log — the
// containing file is truncated back to its last valid record and any later
// segments are deleted, so the surviving records are always a valid prefix
// of what was appended. Opening an empty or missing directory creates a
// fresh log starting at sequence 1.
func Open(opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts, nextSeq: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openTail(); err != nil {
		return nil, err
	}
	walSegments.Set(int64(len(l.segs)))
	return l, nil
}

// scan validates all segments in name order, repairing the tail. Segment
// file names embed the zero-padded first sequence, so lexical order is
// sequence order.
func (l *Log) scan() error {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.seg"))
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", l.opts.Dir, err)
	}
	sort.Strings(names)
	for i, path := range names {
		seg, truncated, valid, err := l.scanSegment(path, l.nextSeq)
		if err != nil {
			return err
		}
		if !valid {
			// Unusable from its first byte (bad header, wrong magic, or a
			// sequence discontinuity): the log ends before this file.
			return l.discard(names[i:])
		}
		l.segs = append(l.segs, seg)
		l.nextSeq = seg.firstSeq + seg.count
		if truncated {
			// A torn or corrupt record ended this segment; nothing after
			// it can be trusted.
			return l.discard(names[i+1:])
		}
	}
	return nil
}

// scanSegment validates one segment file. valid=false means the file
// cannot contribute any records; truncated=true means an invalid record
// was found and the file was cut back to its last valid byte.
func (l *Log) scanSegment(path string, wantFirst uint64) (seg segment, truncated, valid bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return segment{}, false, false, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()

	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return segment{}, false, false, nil // short header: dead file
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return segment{}, false, false, nil
	}
	firstSeq := binary.LittleEndian.Uint64(hdr[len(segMagic):])
	if firstSeq != wantFirst {
		return segment{}, false, false, nil
	}

	r := &countingReader{r: f, n: int64(segHeaderLen)}
	goodEnd := r.n
	var count uint64
	recHdr := make([]byte, recHeaderLen)
	var payload []byte
	bad := false
	for {
		if _, err := io.ReadFull(r, recHdr); err != nil {
			bad = err != io.EOF
			break
		}
		length := binary.LittleEndian.Uint32(recHdr[:4])
		crc := binary.LittleEndian.Uint32(recHdr[4:])
		if length == 0 || length > MaxRecordBytes {
			bad = true
			break
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			bad = true
			break
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			bad = true
			break
		}
		count++
		goodEnd = r.n
	}
	seg = segment{path: path, firstSeq: firstSeq, count: count}
	if !bad {
		return seg, false, true, nil
	}
	// Torn or corrupt record: cut the file back to the last valid byte.
	info, err := os.Stat(path)
	if err != nil {
		return segment{}, false, false, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	l.noteRepair(info.Size() - goodEnd)
	if err := os.Truncate(path, goodEnd); err != nil {
		return segment{}, false, false, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	return seg, true, true, nil
}

// discard removes dead segment files found after the log's valid prefix.
func (l *Log) discard(names []string) error {
	for _, path := range names {
		if info, err := os.Stat(path); err == nil {
			l.noteRepair(info.Size())
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: removing dead segment %s: %w", path, err)
		}
	}
	if len(names) > 0 {
		return SyncDir(l.opts.Dir)
	}
	return nil
}

func (l *Log) noteRepair(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	l.tornTail = true
	l.truncatedBytes += bytes
	walTornTails.Inc()
	walDiscarded.Add(bytes)
}

// openTail opens the last segment for appending, creating the first
// segment for an empty log.
func (l *Log) openTail() error {
	if len(l.segs) == 0 {
		return l.newSegment()
	}
	last := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening tail segment %s: %w", last.path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat tail segment %s: %w", last.path, err)
	}
	l.f, l.size = f, info.Size()
	return nil
}

// newSegment starts a fresh segment whose first record will be nextSeq.
func (l *Log) newSegment() error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%020d.seg", l.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], l.nextSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header %s: %w", path, err)
	}
	walFsyncs.Inc()
	if err := SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, int64(segHeaderLen)
	l.segs = append(l.segs, segment{path: path, firstSeq: l.nextSeq})
	walSegments.Set(int64(len(l.segs)))
	return nil
}

// Append writes one record and returns its sequence number (1-based,
// monotonic across segments and restarts). Durability follows the fsync
// policy; Sync forces it.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) == 0 || len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	if need := recHeaderLen + len(payload); cap(l.frame) < need {
		l.frame = make([]byte, need)
	} else {
		l.frame = l.frame[:need]
	}
	frame := l.frame
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[recHeaderLen:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", l.nextSeq, err)
	}
	seq := l.nextSeq
	l.nextSeq++
	l.size += int64(len(frame))
	l.segs[len(l.segs)-1].count++
	walAppends.Inc()
	walAppendBytes.Observe(float64(len(frame)))

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.Sync(); err != nil {
			return seq, err
		}
	case SyncBatch:
		l.unsynced++
		if l.unsynced >= l.opts.SyncEvery {
			if err := l.Sync(); err != nil {
				return seq, err
			}
		}
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// rotate finalizes the current segment (fsync, close) and starts the next;
// newSegment's header fsync + dir fsync make the rotation itself durable.
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing rotated segment: %w", err)
	}
	walRotations.Inc()
	return l.newSegment()
}

// Sync forces appended records to stable storage.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	walFsyncs.Inc()
	l.unsynced = 0
	return nil
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LastSeq returns the sequence of the most recently appended (or
// recovered) record, 0 for an empty log.
func (l *Log) LastSeq() uint64 { return l.nextSeq - 1 }

// TornTail reports whether Open had to discard bytes, and how many — the
// crash signature recovery repaired.
func (l *Log) TornTail() (bool, int64) { return l.tornTail, l.truncatedBytes }

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int { return len(l.segs) }

// Replay streams records with sequence >= fromSeq, in order, to fn. Whole
// segments below fromSeq are skipped without reading, so replay cost
// scales with the tail behind the last snapshot, not the log's history.
// Records were already validated at Open; CRCs are re-checked while
// reading anyway. fn returning an error aborts the replay.
func (l *Log) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	if l.closed {
		return ErrClosed
	}
	for _, seg := range l.segs {
		if seg.count == 0 || seg.firstSeq+seg.count <= fromSeq {
			continue
		}
		if err := replaySegment(seg, fromSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg segment, fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: opening %s for replay: %w", seg.path, err)
	}
	defer f.Close()
	if _, err := f.Seek(int64(segHeaderLen), io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s: %w", seg.path, err)
	}
	recHdr := make([]byte, recHeaderLen)
	var payload []byte
	for i := uint64(0); i < seg.count; i++ {
		if _, err := io.ReadFull(f, recHdr); err != nil {
			return fmt.Errorf("wal: replaying %s record %d: %w", seg.path, i, err)
		}
		length := binary.LittleEndian.Uint32(recHdr[:4])
		crc := binary.LittleEndian.Uint32(recHdr[4:])
		if length == 0 || length > MaxRecordBytes {
			return fmt.Errorf("wal: replaying %s record %d: invalid length %d", seg.path, i, length)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: replaying %s record %d: %w", seg.path, i, err)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return fmt.Errorf("wal: replaying %s record %d: checksum mismatch", seg.path, i)
		}
		seq := seg.firstSeq + i
		if seq < fromSeq {
			continue
		}
		walReplayed.Inc()
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore deletes whole segments whose every record is below seq —
// the space bound applied after a snapshot covers them. The current
// (append) segment is never deleted.
func (l *Log) TruncateBefore(seq uint64) error {
	if l.closed {
		return ErrClosed
	}
	keep := make([]segment, 0, len(l.segs))
	removed := false
	for i, seg := range l.segs {
		last := i == len(l.segs)-1
		if !last && seg.firstSeq+seg.count <= seq {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: removing covered segment %s: %w", seg.path, err)
			}
			removed = true
			continue
		}
		keep = append(keep, seg)
	}
	if removed {
		l.segs = keep
		walSegments.Set(int64(len(l.segs)))
		return SyncDir(l.opts.Dir)
	}
	return nil
}

// countingReader tracks the byte offset of a sequential read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
