package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
type CholeskyFactor struct {
	L *Matrix
}

// Cholesky computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is read.
func Cholesky(a *Matrix) (*CholeskyFactor, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		diag := math.Sqrt(d)
		lrowj[j] = diag
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / diag
		}
	}
	return &CholeskyFactor{L: l}, nil
}

// SolveVec solves A x = b given the factorization A = L·Lᵀ.
func (c *CholeskyFactor) SolveVec(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: Cholesky SolveVec dimension mismatch")
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// Solve solves A X = B column by column.
func (c *CholeskyFactor) Solve(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic("linalg: Cholesky Solve dimension mismatch")
	}
	out := NewMatrix(n, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x := c.SolveVec(b.Col(j))
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out
}

// InvLower returns L⁻¹ (lower triangular).
func (c *CholeskyFactor) InvLower() *Matrix {
	n := c.L.Rows
	inv := NewMatrix(n, n)
	// Solve L X = I column by column with forward substitution.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			if i == j {
				s = 1.0
			}
			row := c.L.Row(i)
			for k := j; k < i; k++ {
				s -= row[k] * inv.At(k, j)
			}
			inv.Set(i, j, s/row[i])
		}
	}
	return inv
}

// LogDet returns log(det A) = 2·Σ log L[i][i].
func (c *CholeskyFactor) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
