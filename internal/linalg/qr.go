package linalg

import (
	"errors"
	"math"
)

// QRFactor holds a Householder QR factorization of an m x n matrix with
// m >= n. qr stores the Householder vectors below the diagonal and R above;
// rdiag stores the diagonal of R.
type QRFactor struct {
	qr    *Matrix
	rdiag []float64
}

// ErrRankDeficient is returned when a least squares system has a
// (numerically) rank-deficient coefficient matrix.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR computes the Householder QR factorization of a (m >= n). The input is
// not modified.
func QR(a *Matrix) *QRFactor {
	if a.Rows < a.Cols {
		panic("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply transformation to remaining columns.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QRFactor{qr: qr, rdiag: rdiag}
}

// FullRank reports whether R has no (numerically) zero diagonal entries.
func (f *QRFactor) FullRank() bool {
	const eps = 1e-12
	mx := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	tol := eps * mx * float64(len(f.rdiag))
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// SolveVec computes the least squares solution x minimizing ‖Ax − b‖₂.
func (f *QRFactor) SolveVec(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QR SolveVec dimension mismatch")
	}
	if !f.FullRank() {
		return nil, ErrRankDeficient
	}
	y := CloneVec(b)
	// Apply Householder reflections: y = Qᵀ b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution: R x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ‖Ax − b‖₂ via QR. It falls back to ridge-regularized
// normal equations when A is rank deficient.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return RidgeSolve(a, b, 1e-8)
	}
	f := QR(a)
	x, err := f.SolveVec(b)
	if err == nil {
		return x, nil
	}
	return RidgeSolve(a, b, 1e-8)
}

// RidgeSolve solves the ridge-regularized normal equations
// (AᵀA + λI) x = Aᵀ b via Cholesky.
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	ata := a.TMul(a)
	// Scale the ridge to the matrix magnitude so lambda is dimensionless.
	scale := 0.0
	for i := 0; i < ata.Rows; i++ {
		scale += ata.At(i, i)
	}
	if ata.Rows > 0 {
		scale /= float64(ata.Rows)
	}
	if scale == 0 {
		scale = 1
	}
	ata.AddDiag(lambda*scale + 1e-300)
	atb := a.TMulVec(b)
	ch, err := Cholesky(ata)
	if err != nil {
		// Increase regularization until the system is solvable.
		for boost := lambda * scale * 10; ; boost *= 10 {
			if boost == 0 {
				boost = 1e-12
			}
			ata.AddDiag(boost)
			if ch, err = Cholesky(ata); err == nil {
				break
			}
			if boost > 1e12*scale {
				return nil, err
			}
		}
	}
	return ch.SolveVec(atb), nil
}
