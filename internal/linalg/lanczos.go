package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// This file implements the top-rank eigensolver used by incremental KCCA
// retraining: a block subspace iteration with Rayleigh–Ritz extraction (the
// restarted-Lanczos family — one operator application per outer iteration,
// full reorthogonalization of a small basis). Unlike SymEig it never
// tridiagonalizes the full matrix, so computing the leading r eigenpairs of
// an n×n kernel costs O(iters · n² · b) with b = r + oversample instead of
// O(n³) — and with a warm start from the previous window's eigenvectors the
// iteration count collapses to a handful, because a sliding-window retrain
// changes the kernel by a single row/column.

// ErrNotConverged means the subspace iteration did not reach the requested
// residual tolerance within the iteration budget; callers fall back to the
// dense solver.
var ErrNotConverged = errors.New("linalg: subspace iteration did not converge")

// DefaultOversample is the default number of extra basis columns carried
// beyond the requested rank (EigenOptions.Oversample when zero). Exported so
// callers can size their "is the iteration worthwhile at this N" heuristics
// consistently with the solver.
const DefaultOversample = 8

// EigenOptions tunes TopEigenIterative. The zero value selects defaults.
type EigenOptions struct {
	// MaxIter bounds the outer iterations (default 200).
	MaxIter int
	// Tol is the relative residual tolerance: every returned eigenpair
	// satisfies ‖A·v − λ·v‖ ≤ Tol·max(λ₁, ε). The default is 1e-11 — tight,
	// because kernel-PCA whitening (Λ^{−1/2}) and the CCA solve amplify
	// eigenvector error by a few orders of magnitude on their way into
	// projection coordinates, and the consumers document 1e-6 equivalence.
	Tol float64
	// Oversample is the number of extra basis columns carried beyond the
	// requested rank; the slack dramatically improves convergence when the
	// spectrum plateaus near the cut (default 8).
	Oversample int
	// Warm, when non-nil, seeds the initial basis with its columns (the
	// previous retrain's eigenvectors). Extra columns are completed with a
	// deterministic pseudo-random fill.
	Warm *Matrix
	// Seed drives the deterministic pseudo-random basis completion.
	// Zero selects a fixed default, so repeated runs are identical.
	Seed uint64
	// DropBelow exempts Ritz pairs whose value is below DropBelow·λ₁ from
	// the residual requirement. Consumers that discard insignificant
	// components anyway (kernel PCA's keep threshold) set it to their
	// discard level, so an effectively rank-deficient operator — requested
	// rank far above the spectrum's numerical rank — still converges
	// instead of chasing tight residuals on near-null noise it will throw
	// away. Zero means no exemption.
	DropBelow float64
}

// TopEigenIterative computes the leading r eigenpairs (largest eigenvalues)
// of the symmetric positive-semidefinite operator represented by apply,
// which must write A·src into dst (both length n). It returns the
// eigenvalues in descending order with the matching eigenvectors as
// columns, exactly like TopEigen, or ErrNotConverged.
//
// The operator is only assumed symmetric PSD — the intended A is a centered
// kernel matrix, applied implicitly so the caller never materializes the
// centered matrix. Everything here is deterministic: the random basis fill
// is seeded, and all floating-point reductions run in fixed order.
func TopEigenIterative(n, r int, apply func(dst, src []float64), opt EigenOptions) ([]float64, *Matrix, error) {
	defer obs.Span("linalg.eigen_iter")()
	if n < 0 || r < 0 {
		return nil, nil, fmt.Errorf("linalg: TopEigenIterative invalid sizes n=%d r=%d", n, r)
	}
	if r > n {
		r = n
	}
	if r == 0 || n == 0 {
		return nil, NewMatrix(n, 0), nil
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-11
	}
	if opt.Oversample <= 0 {
		opt.Oversample = DefaultOversample
	}
	b := r + opt.Oversample
	if b > n {
		b = n
	}
	rng := newSplitMix(opt.Seed)

	// Initial basis: warm columns first, pseudo-random completion.
	v := NewMatrix(n, b)
	warmCols := 0
	if opt.Warm != nil && opt.Warm.Rows == n {
		warmCols = opt.Warm.Cols
		if warmCols > b {
			warmCols = b
		}
		for i := 0; i < n; i++ {
			copy(v.Row(i)[:warmCols], opt.Warm.Row(i)[:warmCols])
		}
	}
	for j := warmCols; j < b; j++ {
		fillColRandom(v, j, rng)
	}
	if err := orthonormalizeCols(v, rng); err != nil {
		return nil, nil, err
	}

	w := NewMatrix(n, b)
	src := make([]float64, n)
	dst := make([]float64, n)
	// Stall detection: on a near-flat spectrum (λ_b ≈ λ_r, e.g. a Gaussian
	// kernel much narrower than the inter-point distances, where K ≈ I) the
	// per-iteration contraction ratio approaches 1 and the tolerance is
	// unreachable. Track the best residual seen; bail out early when ten
	// iterations fail to halve it, so callers fall back to the dense solver
	// after O(10) operator applications instead of a full MaxIter budget.
	const stallWindow = 10
	bestRes := math.Inf(1)
	sinceImproved := 0
	for iter := 0; iter < opt.MaxIter; iter++ {
		// W = A·V, one column at a time (apply itself may parallelize).
		for j := 0; j < b; j++ {
			for i := 0; i < n; i++ {
				src[i] = v.At(i, j)
			}
			apply(dst, src)
			for i := 0; i < n; i++ {
				w.Set(i, j, dst[i])
			}
		}
		// Rayleigh quotient on span(V) and its Ritz decomposition.
		h := v.TMul(w)
		for i := 0; i < b; i++ {
			for j := i + 1; j < b; j++ {
				s := 0.5 * (h.At(i, j) + h.At(j, i))
				h.Set(i, j, s)
				h.Set(j, i, s)
			}
		}
		es, err := SymEig(h)
		if err != nil {
			return nil, nil, err
		}
		// Ritz vectors X = V·S and their images A·X = W·S share the rotation.
		vs := v.Mul(es.Vectors)
		ws := w.Mul(es.Vectors)
		scale := math.Max(math.Abs(es.Values[0]), 1e-300)
		// Every pair must meet the tight per-pair residual. No slack for
		// small eigenvalues: kernel-PCA whitening divides by √λ and the CCA
		// solve re-scales each component to unit variance, so residual error
		// on ANY kept pair — however small its eigenvalue — surfaces in the
		// final projections amplified by 1/λ. A spectrum whose kept range
		// contains a near-degenerate plateau therefore cannot be served by
		// this solver at all (the stall detector routes those to the dense
		// fallback) rather than served loosely.
		maxRes := 0.0
		for j := 0; j < r; j++ {
			if es.Values[j] < opt.DropBelow*scale {
				continue // consumer discards this pair; accuracy is moot
			}
			res := 0.0
			for i := 0; i < n; i++ {
				d := ws.At(i, j) - es.Values[j]*vs.At(i, j)
				res += d * d
			}
			if res = math.Sqrt(res); res > maxRes {
				maxRes = res
			}
		}
		if maxRes <= opt.Tol*scale {
			return append([]float64(nil), es.Values[:r]...), vs.SliceCols(0, r), nil
		}
		if maxRes <= 0.5*bestRes {
			bestRes = maxRes
			sinceImproved = 0
		} else if sinceImproved++; sinceImproved >= stallWindow {
			return nil, nil, fmt.Errorf("%w: residual stalled at %.3g after %d iterations",
				ErrNotConverged, maxRes/scale, iter+1)
		}
		// Power step: the next basis spans A·V (rotated — same span, but the
		// leading Ritz directions land in the leading columns, which keeps
		// the Gram–Schmidt pass numerically tame).
		v, ws = ws, v
		if err := orthonormalizeCols(v, rng); err != nil {
			return nil, nil, err
		}
	}
	return nil, nil, fmt.Errorf("%w after %d iterations", ErrNotConverged, opt.MaxIter)
}

// TopEigenWarm is TopEigenIterative over an explicit dense symmetric
// matrix, for callers that already hold A.
func TopEigenWarm(a *Matrix, r int, opt EigenOptions) ([]float64, *Matrix, error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: TopEigenWarm requires a square matrix")
	}
	return TopEigenIterative(a.Rows, r, func(dst, src []float64) {
		a.MulVecInto(dst, src)
	}, opt)
}

// orthonormalizeCols makes the columns of v orthonormal in place with
// modified Gram–Schmidt (two projection passes per column for stability).
// A column that collapses to numerical zero — the basis was rank-deficient
// — is replaced by a deterministic random draw and re-projected.
func orthonormalizeCols(v *Matrix, rng *splitMix) error {
	n, b := v.Rows, v.Cols
	for j := 0; j < b; j++ {
		for attempt := 0; ; attempt++ {
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < j; i++ {
					d := colDot(v, i, j)
					if d != 0 {
						colAxpy(v, -d, i, j)
					}
				}
			}
			nrm := math.Sqrt(colDot(v, j, j))
			if nrm > 1e-12 {
				inv := 1 / nrm
				for i := 0; i < n; i++ {
					v.Set(i, j, v.At(i, j)*inv)
				}
				break
			}
			if attempt >= 8 {
				return errors.New("linalg: could not build an orthonormal basis (operator rank too low)")
			}
			fillColRandom(v, j, rng)
		}
	}
	return nil
}

func colDot(v *Matrix, a, b int) float64 {
	s := 0.0
	for i := 0; i < v.Rows; i++ {
		s += v.At(i, a) * v.At(i, b)
	}
	return s
}

func colAxpy(v *Matrix, alpha float64, src, dst int) {
	for i := 0; i < v.Rows; i++ {
		v.Set(i, dst, v.At(i, dst)+alpha*v.At(i, src))
	}
}

func fillColRandom(v *Matrix, j int, rng *splitMix) {
	for i := 0; i < v.Rows; i++ {
		v.Set(i, j, rng.float64()-0.5)
	}
}

// splitMix is a tiny deterministic PRNG (splitmix64) for basis completion —
// quality requirements are minimal (any direction not inside a fixed
// subspace works), determinism is what matters.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &splitMix{state: seed}
}

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
