// Package linalg provides the dense linear algebra kernels used by the
// machine learning packages in this repository: matrix and vector
// arithmetic, Householder QR factorization and least squares, Cholesky
// factorization, symmetric eigendecomposition, and singular value
// decomposition. Everything is implemented from scratch on float64 and
// depends only on the standard library.
package linalg

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/parallel"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-valued r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r x c matrix from row-major data. The slice is
// used directly (not copied).
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// CheckShape verifies the structural invariant len(Data) == Rows*Cols with
// nonnegative dimensions. Matrices built by this package always satisfy it;
// matrices decoded from external bytes (gob model files) may not, and using
// a malformed one panics deep in the kernels — deserializers call this
// first to fail with an error instead.
func (m *Matrix) CheckShape() error {
	if m == nil {
		return fmt.Errorf("linalg: nil matrix")
	}
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("linalg: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.Data) != m.Rows*m.Cols {
		return fmt.Errorf("linalg: data length %d does not match %dx%d", len(m.Data), m.Rows, m.Cols)
	}
	return nil
}

// FromRows builds a matrix from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range ri {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	// ikj loop order for cache friendliness on row-major storage. Output
	// rows are independent, so row blocks go to the worker pool; each
	// element keeps the serial k-ascending summation order and the result
	// is exact at every worker count.
	parallel.For(m.Rows, parallel.GrainFor(m.Cols*b.Cols, 1<<15), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	return m.MulVecInto(make([]float64, m.Rows), v)
}

// MulVecInto computes m * v into the caller-owned out (length m.Rows) and
// returns it — the alloc-free variant for hot loops that apply the same
// operator repeatedly (the iterative eigensolver, centered kernel matvecs).
func (m *Matrix) MulVecInto(out, v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	if len(out) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec output has %d entries, want %d", len(out), m.Rows))
	}
	parallel.For(m.Rows, parallel.GrainFor(m.Cols, 1<<14), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(m.Row(i), v)
		}
	})
	return out
}

// TMulVec returns mᵀ * v without forming the transpose.
func (m *Matrix) TMulVec(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: TMulVec dimension mismatch %dx%d, vec %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Cols)
	// Parallel over disjoint column blocks; every out[j] accumulates over i
	// in the same ascending order as the serial loop, so results are exact.
	g := parallel.GrainFor(m.Rows, 1<<14)
	if g < 8 {
		g = 8
	}
	parallel.For(m.Cols, g, func(lo, hi int) {
		for i, vi := range v {
			if vi == 0 {
				continue
			}
			row := m.Row(i)[lo:hi]
			o := out[lo:hi]
			for j, mij := range row {
				o[j] += vi * mij
			}
		}
	})
	return out
}

// TMul returns mᵀ * b without forming the transpose.
func (m *Matrix) TMul(b *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: TMul dimension mismatch %dx%d ᵀ* %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Cols, b.Cols)
	// Parallel over disjoint column blocks of the output: each worker walks
	// the shared k rows but touches only its own columns of out, keeping the
	// serial k-ascending summation order per element (exact results).
	g := parallel.GrainFor(m.Rows*m.Cols, 1<<16)
	if g < 16 {
		g = 16
	}
	parallel.For(b.Cols, g, func(lo, hi int) {
		for k := 0; k < m.Rows; k++ {
			arow := m.Row(k)
			brow := b.Row(k)[lo:hi]
			for i, aki := range arow {
				if aki == 0 {
					continue
				}
				orow := out.Data[i*b.Cols+lo : i*b.Cols+hi]
				for j, bkj := range brow {
					orow[j] += aki * bkj
				}
			}
		}
	})
	return out
}

// MulT returns m * bᵀ without forming the transpose.
func (m *Matrix) MulT(b *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulT dimension mismatch %dx%d *ᵀ %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Rows)
	parallel.For(m.Rows, parallel.GrainFor(m.Cols*b.Rows, 1<<15), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddDiag adds v to every diagonal element in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("linalg: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	out := NewMatrix(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("linalg: SliceCols [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	out := NewMatrix(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SelectRows returns a copy of the given rows in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// Frob returns the Frobenius norm of the matrix.
func (m *Matrix) Frob() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and b have the same shape and all elements are
// within tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% 12.6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Matrix) checkSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// CenterColumns subtracts the column means in place and returns the means.
func (m *Matrix) CenterColumns() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}
