package linalg

import (
	"testing"

	"repro/internal/obs"
)

// TestEquivalenceWithObsEnabled re-runs the serial/parallel equivalence
// suite with instrumentation on: span timers in SymEig/SVD must not
// perturb bit-for-bit results.
func TestEquivalenceWithObsEnabled(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	t.Run("MatMul", TestMatMulParallelMatchesSerial)
	t.Run("SymEig", TestSymEigParallelMatchesSerial)
	t.Run("SVD", TestSVDParallelMatchesSerial)
}
