package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		r := x / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dist length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineDistance returns 1 - cos(a, b). Zero vectors are treated as
// maximally distant (distance 1) from everything, including each other.
func CosineDistance(a, b []float64) float64 {
	return CosineDistanceTo(a, b, Norm(b))
}

// CosineDistanceTo is CosineDistance(a, b) with b's norm precomputed: scan
// loops ranking many candidates a against one query b hoist Norm(b) out of
// the loop. The arithmetic is operation-for-operation the same as passing
// Norm(b) inline, so results are bit-identical to CosineDistance.
func CosineDistanceTo(a, b []float64, bNorm float64) float64 {
	na := Norm(a)
	if na == 0 || bNorm == 0 {
		return 1
	}
	c := Dot(a, b) / (na * bNorm)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Clone returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
