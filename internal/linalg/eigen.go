package linalg

import (
	"errors"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// EigenSym holds the eigendecomposition of a real symmetric matrix:
// A = V · diag(Values) · Vᵀ, with eigenvalues sorted in descending order and
// eigenvectors stored as the columns of Vectors.
type EigenSym struct {
	Values  []float64
	Vectors *Matrix
}

// SymEig computes the full eigendecomposition of the symmetric matrix a
// using Householder tridiagonalization followed by the implicit QL
// algorithm (the classic tred2/tql2 pair). Only the lower triangle of a is
// read. The result is sorted by descending eigenvalue.
func SymEig(a *Matrix) (*EigenSym, error) {
	defer obs.Span("linalg.eigen")()
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: SymEig requires a square matrix")
	}
	n := a.Rows
	if n == 0 {
		return &EigenSym{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}
	v := a.Clone()
	// Symmetrize from the lower triangle so callers may pass matrices with
	// tiny asymmetries from floating point accumulation.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v.Set(i, j, v.At(j, i))
		}
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, err
	}
	// Sort by descending eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool { return d[idx[p]] > d[idx[q]] })
	vals := make([]float64, n)
	vecs := NewMatrix(n, n)
	for c, j := range idx {
		vals[c] = d[j]
		for i := 0; i < n; i++ {
			vecs.Set(i, c, v.At(i, j))
		}
	}
	return &EigenSym{Values: vals, Vectors: vecs}, nil
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form using
// Householder similarity transformations, accumulating the transformations
// in v. On return d holds the diagonal and e the subdiagonal. This is a
// direct translation of the EISPACK routine.
func tred2(v *Matrix, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		scale := 0.0
		h := 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			// Column updates are independent (column j only reads d and e,
			// which are fixed here, plus its own entries), so they go to the
			// worker pool; the d refresh moves after the barrier because
			// column j's final entries are written only by its own worker.
			parallel.For(i, parallel.GrainFor(i/2+1, 1<<14), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					fj := d[j]
					gj := e[j]
					for k := j; k <= i-1; k++ {
						v.Set(k, j, v.At(k, j)-(fj*e[k]+gj*d[k]))
					}
				}
			})
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			// Independent per column j: reads column i+1 and d (both fixed),
			// writes only column j. Exact at every worker count.
			parallel.For(i+1, parallel.GrainFor(i+1, 1<<14), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					g := 0.0
					for k := 0; k <= i; k++ {
						g += v.At(k, i+1) * v.At(k, j)
					}
					for k := 0; k <= i; k++ {
						v.Set(k, j, v.At(k, j)-g*d[k])
					}
				}
			})
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 computes the eigendecomposition of the symmetric tridiagonal matrix
// (d, e) using the implicit QL algorithm, updating the accumulated
// transformations in v. Direct translation of the EISPACK routine.
func tql2(v *Matrix, d, e []float64) error {
	n := v.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f := 0.0
	tst1 := 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 50 {
					return errors.New("linalg: tql2 failed to converge")
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c := 1.0
				c2 := c
				c3 := c
				el1 := e[l+1]
				s := 0.0
				s2 := 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation: a Givens rotation of columns
					// (i, i+1), independent per row k. The grain keeps small
					// matrices on the exact serial path; h is shadowed so the
					// outer variable is untouched under parallel execution.
					cc, ss := c, s
					parallel.For(n, parallel.GrainFor(6, 1<<14), func(lo, hi int) {
						for k := lo; k < hi; k++ {
							hk := v.At(k, i+1)
							v.Set(k, i+1, ss*v.At(k, i)+cc*hk)
							v.Set(k, i, cc*v.At(k, i)-ss*hk)
						}
					})
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// TopEigen returns the leading r eigenpairs (largest eigenvalues) of the
// symmetric matrix a. It simply truncates a full decomposition; r is clamped
// to the matrix dimension.
func TopEigen(a *Matrix, r int) (vals []float64, vecs *Matrix, err error) {
	es, err := SymEig(a)
	if err != nil {
		return nil, nil, err
	}
	n := len(es.Values)
	if r > n {
		r = n
	}
	return es.Values[:r], es.Vectors.SliceCols(0, r), nil
}
