package linalg

import (
	"errors"
	"math"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// SVDFactor holds a thin singular value decomposition A = U · diag(S) · Vᵀ,
// with S sorted descending, U of size m x p and V of size n x p where
// p = min(m, n).
type SVDFactor struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of a. For matrices
// with more columns than rows the decomposition is computed on the
// transpose and the factors swapped.
func SVD(a *Matrix) (*SVDFactor, error) {
	defer obs.Span("linalg.svd")()
	if a.Rows >= a.Cols {
		return svdTall(a)
	}
	f, err := svdTall(a.T())
	if err != nil {
		return nil, err
	}
	return &SVDFactor{U: f.V, S: f.S, V: f.U}, nil
}

// svdTall implements the Golub-Reinsch algorithm (JAMA translation) for
// m >= n.
func svdTall(arg *Matrix) (*SVDFactor, error) {
	a := arg.Clone()
	m, n := a.Rows, a.Cols
	if n == 0 {
		return &SVDFactor{U: NewMatrix(m, 0), S: nil, V: NewMatrix(0, 0)}, nil
	}
	nu := n
	s := make([]float64, n+1)
	u := NewMatrix(m, nu)
	v := NewMatrix(n, n)
	e := make([]float64, n)
	work := make([]float64, m)

	// Reduce a to bidiagonal form, storing the diagonal elements in s and
	// the super-diagonal elements in e.
	nct := min(m-1, n)
	nrt := max(0, min(n-2, m))
	for k := 0; k < max(nct, nrt); k++ {
		if k < nct {
			// Compute the 2-norm of the k-th column of a below the diagonal.
			s[k] = 0
			for i := k; i < m; i++ {
				s[k] = math.Hypot(s[k], a.At(i, k))
			}
			if s[k] != 0 {
				if a.At(k, k) < 0 {
					s[k] = -s[k]
				}
				for i := k; i < m; i++ {
					a.Set(i, k, a.At(i, k)/s[k])
				}
				a.Set(k, k, a.At(k, k)+1)
			}
			s[k] = -s[k]
		}
		// Householder application is independent per column j > k (column k
		// is read-only here), so column blocks go to the worker pool.
		parallel.For(n-(k+1), parallel.GrainFor(2*(m-k)+1, 1<<14), func(lo, hi int) {
			for j := k + 1 + lo; j < k+1+hi; j++ {
				if k < nct && s[k] != 0 {
					// Apply the transformation.
					t := 0.0
					for i := k; i < m; i++ {
						t += a.At(i, k) * a.At(i, j)
					}
					t = -t / a.At(k, k)
					for i := k; i < m; i++ {
						a.Set(i, j, a.At(i, j)+t*a.At(i, k))
					}
				}
				e[j] = a.At(k, j)
			}
		})
		if k < nct {
			for i := k; i < m; i++ {
				u.Set(i, k, a.At(i, k))
			}
		}
		if k < nrt {
			// Compute the k-th row transformation.
			e[k] = 0
			for i := k + 1; i < n; i++ {
				e[k] = math.Hypot(e[k], e[i])
			}
			if e[k] != 0 {
				if e[k+1] < 0 {
					e[k] = -e[k]
				}
				for i := k + 1; i < n; i++ {
					e[i] /= e[k]
				}
				e[k+1]++
			}
			e[k] = -e[k]
			if k+1 < m && e[k] != 0 {
				for i := k + 1; i < m; i++ {
					work[i] = 0
				}
				for j := k + 1; j < n; j++ {
					for i := k + 1; i < m; i++ {
						work[i] += e[j] * a.At(i, j)
					}
				}
				for j := k + 1; j < n; j++ {
					t := -e[j] / e[k+1]
					for i := k + 1; i < m; i++ {
						a.Set(i, j, a.At(i, j)+t*work[i])
					}
				}
			}
			for i := k + 1; i < n; i++ {
				v.Set(i, k, e[i])
			}
		}
	}

	// Set up the final bidiagonal matrix of order p.
	p := min(n, m+1)
	if nct < n {
		s[nct] = a.At(nct, nct)
	}
	if m < p {
		s[p-1] = 0
	}
	if nrt+1 < p {
		e[nrt] = a.At(nrt, p-1)
	}
	e[p-1] = 0

	// Generate U.
	for j := nct; j < nu; j++ {
		for i := 0; i < m; i++ {
			u.Set(i, j, 0)
		}
		u.Set(j, j, 1)
	}
	for k := nct - 1; k >= 0; k-- {
		if s[k] != 0 {
			// Column k is only modified after this loop, so columns j > k
			// update independently.
			parallel.For(nu-(k+1), parallel.GrainFor(2*(m-k)+1, 1<<14), func(lo, hi int) {
				for j := k + 1 + lo; j < k+1+hi; j++ {
					t := 0.0
					for i := k; i < m; i++ {
						t += u.At(i, k) * u.At(i, j)
					}
					t = -t / u.At(k, k)
					for i := k; i < m; i++ {
						u.Set(i, j, u.At(i, j)+t*u.At(i, k))
					}
				}
			})
			for i := k; i < m; i++ {
				u.Set(i, k, -u.At(i, k))
			}
			u.Set(k, k, 1+u.At(k, k))
			for i := 0; i < k-1; i++ {
				u.Set(i, k, 0)
			}
		} else {
			for i := 0; i < m; i++ {
				u.Set(i, k, 0)
			}
			u.Set(k, k, 1)
		}
	}

	// Generate V.
	for k := n - 1; k >= 0; k-- {
		if k < nrt && e[k] != 0 {
			parallel.For(nu-(k+1), parallel.GrainFor(2*(n-k)+1, 1<<14), func(lo, hi int) {
				for j := k + 1 + lo; j < k+1+hi; j++ {
					t := 0.0
					for i := k + 1; i < n; i++ {
						t += v.At(i, k) * v.At(i, j)
					}
					t = -t / v.At(k+1, k)
					for i := k + 1; i < n; i++ {
						v.Set(i, j, v.At(i, j)+t*v.At(i, k))
					}
				}
			})
		}
		for i := 0; i < n; i++ {
			v.Set(i, k, 0)
		}
		v.Set(k, k, 1)
	}

	// Main iteration loop for the singular values.
	pp := p - 1
	iter := 0
	eps := math.Pow(2, -52)
	tiny := math.Pow(2, -966)
	for p > 0 {
		if iter > 500 {
			return nil, errors.New("linalg: SVD failed to converge")
		}
		var k, kase int
		// Determine the action to take.
		for k = p - 2; k >= -1; k-- {
			if k == -1 {
				break
			}
			if math.Abs(e[k]) <= tiny+eps*(math.Abs(s[k])+math.Abs(s[k+1])) {
				e[k] = 0
				break
			}
		}
		if k == p-2 {
			kase = 4
		} else {
			var ks int
			for ks = p - 1; ks >= k; ks-- {
				if ks == k {
					break
				}
				t := 0.0
				if ks != p {
					t += math.Abs(e[ks])
				}
				if ks != k+1 {
					t += math.Abs(e[ks-1])
				}
				if math.Abs(s[ks]) <= tiny+eps*t {
					s[ks] = 0
					break
				}
			}
			if ks == k {
				kase = 3
			} else if ks == p-1 {
				kase = 1
			} else {
				kase = 2
				k = ks
			}
		}
		k++

		switch kase {
		case 1: // Deflate negligible s(p).
			f := e[p-2]
			e[p-2] = 0
			for j := p - 2; j >= k; j-- {
				t := math.Hypot(s[j], f)
				cs := s[j] / t
				sn := f / t
				s[j] = t
				if j != k {
					f = -sn * e[j-1]
					e[j-1] = cs * e[j-1]
				}
				for i := 0; i < n; i++ {
					t = cs*v.At(i, j) + sn*v.At(i, p-1)
					v.Set(i, p-1, -sn*v.At(i, j)+cs*v.At(i, p-1))
					v.Set(i, j, t)
				}
			}
		case 2: // Split at negligible s(k).
			f := e[k-1]
			e[k-1] = 0
			for j := k; j < p; j++ {
				t := math.Hypot(s[j], f)
				cs := s[j] / t
				sn := f / t
				s[j] = t
				f = -sn * e[j]
				e[j] = cs * e[j]
				for i := 0; i < m; i++ {
					t = cs*u.At(i, j) + sn*u.At(i, k-1)
					u.Set(i, k-1, -sn*u.At(i, j)+cs*u.At(i, k-1))
					u.Set(i, j, t)
				}
			}
		case 3: // Perform one QR step.
			// Calculate the shift.
			scale := math.Max(math.Max(math.Max(math.Max(
				math.Abs(s[p-1]), math.Abs(s[p-2])), math.Abs(e[p-2])),
				math.Abs(s[k])), math.Abs(e[k]))
			sp := s[p-1] / scale
			spm1 := s[p-2] / scale
			epm1 := e[p-2] / scale
			sk := s[k] / scale
			ek := e[k] / scale
			b := ((spm1+sp)*(spm1-sp) + epm1*epm1) / 2
			c := (sp * epm1) * (sp * epm1)
			shift := 0.0
			if b != 0 || c != 0 {
				shift = math.Sqrt(b*b + c)
				if b < 0 {
					shift = -shift
				}
				shift = c / (b + shift)
			}
			f := (sk+sp)*(sk-sp) + shift
			g := sk * ek
			// Chase zeros.
			for j := k; j < p-1; j++ {
				t := math.Hypot(f, g)
				cs := f / t
				sn := g / t
				if j != k {
					e[j-1] = t
				}
				f = cs*s[j] + sn*e[j]
				e[j] = cs*e[j] - sn*s[j]
				g = sn * s[j+1]
				s[j+1] = cs * s[j+1]
				rotateCols(v, j, cs, sn)
				t = math.Hypot(f, g)
				cs = f / t
				sn = g / t
				s[j] = t
				f = cs*e[j] + sn*s[j+1]
				s[j+1] = -sn*e[j] + cs*s[j+1]
				g = sn * e[j+1]
				e[j+1] = cs * e[j+1]
				if j < m-1 {
					rotateCols(u, j, cs, sn)
				}
			}
			e[p-2] = f
			iter++
		case 4: // Convergence.
			// Make the singular values positive.
			if s[k] <= 0 {
				if s[k] < 0 {
					s[k] = -s[k]
				} else {
					s[k] = 0
				}
				for i := 0; i <= pp; i++ {
					v.Set(i, k, -v.At(i, k))
				}
			}
			// Order the singular values.
			for k < pp {
				if s[k] >= s[k+1] {
					break
				}
				s[k], s[k+1] = s[k+1], s[k]
				if k < n-1 {
					for i := 0; i < n; i++ {
						t := v.At(i, k+1)
						v.Set(i, k+1, v.At(i, k))
						v.Set(i, k, t)
					}
				}
				if k < m-1 {
					for i := 0; i < m; i++ {
						t := u.At(i, k+1)
						u.Set(i, k+1, u.At(i, k))
						u.Set(i, k, t)
					}
				}
				k++
			}
			iter = 0
			p--
		}
	}
	return &SVDFactor{U: u, S: s[:n], V: v}, nil
}

// rotateCols applies the Givens rotation (cs, sn) to columns (j, j+1) of a,
// splitting rows across the worker pool; each row is independent, so the
// result is exact at every worker count.
func rotateCols(a *Matrix, j int, cs, sn float64) {
	parallel.For(a.Rows, parallel.GrainFor(6, 1<<14), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := cs*a.At(i, j) + sn*a.At(i, j+1)
			a.Set(i, j+1, -sn*a.At(i, j)+cs*a.At(i, j+1))
			a.Set(i, j, t)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
