package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQRSolveProperty: for random well-conditioned systems, the least
// squares solution of a consistent system reproduces the planted solution.
func TestQRSolveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		p := 2 + rng.Intn(6)
		a := randMatrix(rng, n, p)
		xTrue := make([]float64, p)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64() * 5
		}
		b := a.MulVec(xTrue)
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCholeskySPDProperty: Cholesky succeeds on SPD matrices and its
// solutions satisfy the original system.
func TestCholeskySPDProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randSPD(rng, n)
		ch, err := Cholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.SolveVec(b)
		res := a.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEigenTraceProperty: the eigenvalue sum equals the trace and the
// eigenvalue product of an SPD matrix is positive.
func TestEigenTraceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randSPD(rng, n)
		es, err := SymEig(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += es.Values[i]
		}
		return math.Abs(trace-sum) <= 1e-7*(1+math.Abs(trace))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSVDNormProperty: the largest singular value equals the spectral norm
// bound check ‖Av‖ <= σ₁‖v‖ for random vectors, and the Frobenius norm
// equals sqrt(Σ σᵢ²).
func TestSVDNormProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(8)
		c := 2 + rng.Intn(8)
		a := randMatrix(rng, r, c)
		f, err := SVD(a)
		if err != nil {
			return false
		}
		// Frobenius identity.
		ss := 0.0
		p := min(r, c)
		for i := 0; i < p; i++ {
			ss += f.S[i] * f.S[i]
		}
		if math.Abs(math.Sqrt(ss)-a.Frob()) > 1e-8*(1+a.Frob()) {
			return false
		}
		// Spectral bound.
		v := make([]float64, c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		av := a.MulVec(v)
		return Norm(av) <= f.S[0]*Norm(v)*(1+1e-9)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCenterColumnsProperty: after centering, every column mean is zero
// and re-adding the means restores the original matrix.
func TestCenterColumnsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(12)
		c := 1 + rng.Intn(6)
		a := randMatrix(rng, r, c)
		orig := a.Clone()
		means := a.CenterColumns()
		for j := 0; j < c; j++ {
			if math.Abs(Mean(a.Col(j))) > 1e-10 {
				return false
			}
		}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if math.Abs(a.At(i, j)+means[j]-orig.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTriangleInequalityProperty for the distance helpers.
func TestTriangleInequalityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
