package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSPD(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n+3, n)
	spd := a.TMul(a)
	spd.AddDiag(0.5)
	return spd
}

func TestMatrixBasicOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})

	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}

	if s := a.Add(b).At(1, 1); s != 12 {
		t.Errorf("Add(1,1) = %v, want 12", s)
	}
	if s := b.Sub(a).At(0, 0); s != 4 {
		t.Errorf("Sub(0,0) = %v, want 4", s)
	}
	if s := a.Scale(2).At(1, 0); s != 6 {
		t.Errorf("Scale(1,0) = %v, want 6", s)
	}
	if tt := a.T(); tt.At(0, 1) != 3 {
		t.Errorf("T(0,1) = %v, want 3", tt.At(0, 1))
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := []float64{1, 0, -1}
	got := a.MulVec(v)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
	gt := a.TMulVec([]float64{1, 1})
	if gt[0] != 5 || gt[1] != 7 || gt[2] != 9 {
		t.Fatalf("TMulVec = %v, want [5 7 9]", gt)
	}
}

func TestTMulAndMulTMatchExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 7, 4)
	b := randMatrix(rng, 7, 5)
	if got, want := a.TMul(b), a.T().Mul(b); !got.Equal(want, 1e-10) {
		t.Errorf("TMul does not match explicit transpose")
	}
	c := randMatrix(rng, 6, 4)
	if got, want := a.MulT(c), a.Mul(c.T()); !got.Equal(want, 1e-10) {
		t.Errorf("MulT does not match explicit transpose")
	}
}

func TestMatrixSlicing(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := a.SliceRows(1, 3)
	if r.Rows != 2 || r.At(0, 0) != 4 || r.At(1, 2) != 9 {
		t.Errorf("SliceRows wrong: %v", r)
	}
	c := a.SliceCols(1, 2)
	if c.Cols != 1 || c.At(2, 0) != 8 {
		t.Errorf("SliceCols wrong: %v", c)
	}
	s := a.SelectRows([]int{2, 0})
	if s.At(0, 0) != 7 || s.At(1, 0) != 1 {
		t.Errorf("SelectRows wrong: %v", s)
	}
}

func TestCenterColumns(t *testing.T) {
	a := FromRows([][]float64{{1, 10}, {3, 30}})
	means := a.CenterColumns()
	if means[0] != 2 || means[1] != 20 {
		t.Fatalf("means = %v", means)
	}
	if a.At(0, 0) != -1 || a.At(1, 1) != 10 {
		t.Errorf("centered matrix wrong: %v", a)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := 2 + r.Intn(5)
		p := 2 + r.Intn(5)
		q := 2 + r.Intn(5)
		a := randMatrix(r, n, m)
		b := randMatrix(r, m, p)
		c := randMatrix(r, p, q)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 1+r.Intn(8), 1+r.Intn(8))
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if n := Norm(a); math.Abs(n-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", n)
	}
	if d := Dot(a, []float64{1, 2}); d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
	if d := Dist([]float64{0, 0}, a); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := CosineDistance(a, a); math.Abs(d) > 1e-12 {
		t.Errorf("CosineDistance(a,a) = %v, want 0", d)
	}
	if d := CosineDistance([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Errorf("CosineDistance(orth) = %v, want 1", d)
	}
	if d := CosineDistance([]float64{0, 0}, a); d != 1 {
		t.Errorf("CosineDistance(zero) = %v, want 1", d)
	}
	y := []float64{1, 1}
	Axpy(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance([]float64{1, 3}); v != 1 {
		t.Errorf("Variance = %v", v)
	}
}

func TestNormOverflowSafe(t *testing.T) {
	v := []float64{1e200, 1e200}
	if n := Norm(v); math.IsInf(n, 0) {
		t.Errorf("Norm overflowed: %v", n)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		a := randSPD(rng, n)
		ch, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky: %v", err)
		}
		// L·Lᵀ must reconstruct A.
		if got := ch.L.MulT(ch.L); !got.Equal(a, 1e-8) {
			t.Fatalf("L·Lᵀ != A")
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x := ch.SolveVec(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7 {
				t.Fatalf("solution mismatch at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestCholeskyInvLower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 6)
	ch, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.InvLower()
	if got := inv.Mul(ch.L); !got.Equal(Identity(6), 1e-8) {
		t.Error("L⁻¹·L != I")
	}
}

func TestQRLeastSquaresRecoversPlantedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, p := 60, 5
	a := randMatrix(rng, n, p)
	coef := []float64{2, -1, 0.5, 3, -2.5}
	b := a.MulVec(coef)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if math.Abs(x[i]-coef[i]) > 1e-8 {
			t.Fatalf("coef %d = %v, want %v", i, x[i], coef[i])
		}
	}
}

func TestQRLeastSquaresMinimizesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, p := 40, 4
	a := randMatrix(rng, n, p)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The residual must be orthogonal to the column space: Aᵀ(Ax−b) = 0.
	res := a.MulVec(x)
	for i := range res {
		res[i] -= b[i]
	}
	g := a.TMulVec(res)
	for i, v := range g {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("gradient %d = %v, want 0", i, v)
		}
	}
}

func TestRidgeSolveRankDeficient(t *testing.T) {
	// Duplicate columns make plain least squares rank deficient.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	for i := range pred {
		if math.Abs(pred[i]-b[i]) > 1e-3 {
			t.Fatalf("prediction %d = %v, want %v", i, pred[i], b[i])
		}
	}
}

func TestSymEigReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(12)
		a := randSPD(rng, n)
		es, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if es.Values[i] > es.Values[i-1]+1e-10 {
				t.Fatalf("eigenvalues not sorted: %v", es.Values)
			}
		}
		// V diag(λ) Vᵀ == A.
		d := NewMatrix(n, n)
		for i, v := range es.Values {
			d.Set(i, i, v)
		}
		rec := es.Vectors.Mul(d).MulT(es.Vectors)
		if !rec.Equal(a, 1e-7*a.MaxAbs()+1e-9) {
			t.Fatalf("reconstruction failed for n=%d", n)
		}
		// Orthonormal eigenvectors.
		if got := es.Vectors.TMul(es.Vectors); !got.Equal(Identity(n), 1e-8) {
			t.Fatalf("eigenvectors not orthonormal")
		}
	}
}

func TestSymEigKnownValues(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	es, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(es.Values[0]-3) > 1e-12 || math.Abs(es.Values[1]-1) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [3 1]", es.Values)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	es, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i, w := range want {
		if math.Abs(es.Values[i]-w) > 1e-12 {
			t.Errorf("value %d = %v, want %v", i, es.Values[i], w)
		}
	}
}

func TestTopEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(rng, 9)
	vals, vecs, err := TopEigen(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vecs.Cols != 3 {
		t.Fatalf("TopEigen sizes wrong: %d vals, %d cols", len(vals), vecs.Cols)
	}
	// Each returned pair must satisfy A v = λ v.
	for j := 0; j < 3; j++ {
		v := vecs.Col(j)
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-7 {
				t.Fatalf("pair %d violates A·v = λ·v", j)
			}
		}
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][2]int{{8, 5}, {5, 8}, {6, 6}, {10, 2}, {2, 10}, {1, 4}, {4, 1}}
	for _, sh := range shapes {
		a := randMatrix(rng, sh[0], sh[1])
		f, err := SVD(a)
		if err != nil {
			t.Fatalf("SVD %v: %v", sh, err)
		}
		p := min(sh[0], sh[1])
		if len(f.S) < p {
			t.Fatalf("SVD %v: only %d singular values", sh, len(f.S))
		}
		// Singular values nonnegative and sorted.
		for i := 0; i < p; i++ {
			if f.S[i] < 0 {
				t.Fatalf("negative singular value %v", f.S[i])
			}
			if i > 0 && f.S[i] > f.S[i-1]+1e-10 {
				t.Fatalf("singular values not sorted: %v", f.S[:p])
			}
		}
		// U·diag(S)·Vᵀ reconstructs A.
		d := NewMatrix(f.U.Cols, f.V.Cols)
		for i := 0; i < p; i++ {
			d.Set(i, i, f.S[i])
		}
		rec := f.U.Mul(d).MulT(f.V)
		if !rec.Equal(a, 1e-8) {
			t.Fatalf("SVD %v reconstruction failed", sh)
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 9, 5)
	f, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.U.TMul(f.U); !got.Equal(Identity(f.U.Cols), 1e-8) {
		t.Error("UᵀU != I")
	}
	if got := f.V.TMul(f.V); !got.Equal(Identity(f.V.Cols), 1e-8) {
		t.Error("VᵀV != I")
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// Singular values of A are sqrt of eigenvalues of AᵀA.
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 7, 4)
	f, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	es, err := SymEig(a.TMul(a))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := math.Sqrt(math.Max(es.Values[i], 0))
		if math.Abs(f.S[i]-want) > 1e-8 {
			t.Errorf("singular value %d = %v, want %v", i, f.S[i], want)
		}
	}
}
