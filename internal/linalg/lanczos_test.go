package linalg

import (
	"errors"
	"math"
	"testing"
)

// spdMatrix builds a deterministic symmetric PSD matrix with a decaying
// spectrum, the shape of a centered Gaussian kernel.
func spdMatrix(n int, seed uint64) *Matrix {
	rng := newSplitMix(seed)
	g := NewMatrix(n, n)
	for i := range g.Data {
		g.Data[i] = rng.float64() - 0.5
	}
	// A = G D Gᵀ with decaying diagonal: PSD, eigenvalues spread over
	// several orders of magnitude.
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, math.Pow(0.9, float64(i)))
	}
	return g.Mul(d).MulT(g)
}

func TestTopEigenIterativeMatchesDense(t *testing.T) {
	for _, n := range []int{24, 60, 150} {
		a := spdMatrix(n, uint64(n))
		r := n / 4
		vals, vecs, err := TopEigenIterative(n, r, func(dst, src []float64) {
			copy(dst, a.MulVec(src))
		}, EigenOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dVals, dVecs, err := TopEigen(a, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != r || vecs.Cols != r || vecs.Rows != n {
			t.Fatalf("n=%d: got %d values, %dx%d vectors", n, len(vals), vecs.Rows, vecs.Cols)
		}
		for j := 0; j < r; j++ {
			if rel := math.Abs(vals[j]-dVals[j]) / math.Max(dVals[0], 1e-300); rel > 1e-8 {
				t.Errorf("n=%d: eigenvalue %d: iterative %v dense %v (rel %g)", n, j, vals[j], dVals[j], rel)
			}
			// Eigenvectors match up to sign.
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += vecs.At(i, j) * dVecs.At(i, j)
			}
			if math.Abs(math.Abs(dot)-1) > 1e-6 {
				t.Errorf("n=%d: eigenvector %d: |<v_iter, v_dense>| = %v, want 1", n, j, math.Abs(dot))
			}
		}
	}
}

func TestTopEigenIterativeWarmStart(t *testing.T) {
	n, r := 120, 20
	a := spdMatrix(n, 7)
	vals, vecs, err := TopEigenWarm(a, r, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one row/column (the sliding-window shape) and re-solve warm.
	b := a.Clone()
	rng := newSplitMix(99)
	for i := 0; i < n; i++ {
		d := 0.01 * (rng.float64() - 0.5)
		b.Set(i, 3, b.At(i, 3)+d)
		b.Set(3, i, b.At(3, i)+d)
	}
	b.Set(3, 3, a.At(3, 3)) // keep symmetric exactly
	wVals, _, err := TopEigenWarm(b, r, EigenOptions{Warm: vecs})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	dVals, _, err := TopEigen(b, r)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < r; j++ {
		if rel := math.Abs(wVals[j]-dVals[j]) / math.Max(dVals[0], 1e-300); rel > 1e-8 {
			t.Errorf("warm eigenvalue %d: %v vs dense %v", j, wVals[j], dVals[j])
		}
	}
	_ = vals
}

func TestTopEigenIterativeDeterministic(t *testing.T) {
	n, r := 80, 12
	a := spdMatrix(n, 3)
	v1, m1, err := TopEigenWarm(a, r, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v2, m2, err := TopEigenWarm(a, r, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range v1 {
		if v1[j] != v2[j] {
			t.Fatalf("eigenvalue %d differs across runs: %v vs %v", j, v1[j], v2[j])
		}
	}
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatal("eigenvectors differ across identical runs")
		}
	}
}

func TestTopEigenIterativeEdgeCases(t *testing.T) {
	// r clamped to n; tiny matrices route through b == n.
	a := spdMatrix(6, 11)
	vals, vecs, err := TopEigenWarm(a, 10, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 6 || vecs.Cols != 6 {
		t.Fatalf("clamp: got %d values", len(vals))
	}
	if _, v, err := TopEigenIterative(0, 0, nil, EigenOptions{}); err != nil || v.Cols != 0 {
		t.Fatalf("empty: %v", err)
	}
	// Iteration budget of 1 on a slow-converging problem must report
	// ErrNotConverged, not wrong answers.
	n := 100
	slow := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		slow.Set(i, i, 1-1e-9*float64(i)) // nearly flat spectrum
	}
	rot := spdMatrix(n, 5)
	_ = rot
	if _, _, err := TopEigenIterative(n, 8, func(dst, src []float64) {
		copy(dst, slow.MulVec(src))
	}, EigenOptions{MaxIter: 1, Tol: 1e-14}); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
}
