package linalg

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/parallel"
	"repro/internal/statutil"
)

// Every parallelized linalg kernel partitions work so each output element
// keeps the serial loop's per-element arithmetic and summation order, so
// these tests demand exact equality with the one-worker path at every
// worker count — including the eigendecomposition and SVD, whose inner
// rotation/Householder loops were parallelized row- or column-wise.

func equivWorkerCounts() []int { return []int{1, 2, 7, runtime.NumCPU()} }

func randEquivMatrix(seed int64, r, c int) *Matrix {
	rng := statutil.NewRNG(seed, "linalg-equiv")
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Sprinkle exact zeros so the aik == 0 skip paths are exercised.
	for i := 0; i < len(m.Data); i += 13 {
		m.Data[i] = 0
	}
	return m
}

func exactEqual(t *testing.T, name string, w int, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s workers=%d: shape %dx%d, serial %dx%d", name, w, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] && !(math.IsNaN(v) && math.IsNaN(want.Data[i])) {
			t.Fatalf("%s workers=%d: element %d = %v, serial %v", name, w, i, v, want.Data[i])
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	shapes := [][3]int{{5, 4, 3}, {64, 32, 80}, {211, 97, 133}}
	for _, s := range shapes {
		a := randEquivMatrix(int64(s[0]), s[0], s[1])
		b := randEquivMatrix(int64(s[1]), s[1], s[2])
		bt := randEquivMatrix(int64(s[2]), s[2], s[1]) // for MulT: m.Cols == b.Cols
		at := randEquivMatrix(int64(s[0])+99, s[0], s[2])
		v := randEquivMatrix(77, 1, s[1]).Row(0)
		vr := randEquivMatrix(78, 1, s[0]).Row(0)

		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		wantMul := a.Mul(b)
		wantTMul := a.TMul(at)
		wantMulT := a.MulT(bt)
		wantMulVec := a.MulVec(v)
		wantTMulVec := a.TMulVec(vr)

		for _, w := range equivWorkerCounts() {
			parallel.SetMaxProcs(w)
			exactEqual(t, "Mul", w, a.Mul(b), wantMul)
			exactEqual(t, "TMul", w, a.TMul(at), wantTMul)
			exactEqual(t, "MulT", w, a.MulT(bt), wantMulT)
			for i, got := range a.MulVec(v) {
				if got != wantMulVec[i] {
					t.Fatalf("MulVec workers=%d: out[%d] = %v, serial %v", w, i, got, wantMulVec[i])
				}
			}
			for i, got := range a.TMulVec(vr) {
				if got != wantTMulVec[i] {
					t.Fatalf("TMulVec workers=%d: out[%d] = %v, serial %v", w, i, got, wantTMulVec[i])
				}
			}
		}
		parallel.SetMaxProcs(0)
	}
}

func TestSymEigParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{6, 40, 150} {
		x := randEquivMatrix(int64(n), n+10, n)
		spd := x.TMul(x)

		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		want, err := SymEig(spd)
		if err != nil {
			t.Fatal(err)
		}

		for _, w := range equivWorkerCounts() {
			parallel.SetMaxProcs(w)
			got, err := SymEig(spd)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.Values {
				if got.Values[i] != want.Values[i] {
					t.Fatalf("n=%d workers=%d: eigenvalue %d = %v, serial %v", n, w, i, got.Values[i], want.Values[i])
				}
			}
			exactEqual(t, "SymEig vectors", w, got.Vectors, want.Vectors)
		}
		parallel.SetMaxProcs(0)
	}
}

func TestSVDParallelMatchesSerial(t *testing.T) {
	shapes := [][2]int{{30, 8}, {90, 60}, {40, 70}}
	for _, s := range shapes {
		a := randEquivMatrix(int64(s[0]*100+s[1]), s[0], s[1])

		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		want, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}

		for _, w := range equivWorkerCounts() {
			parallel.SetMaxProcs(w)
			got, err := SVD(a)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.S {
				if got.S[i] != want.S[i] {
					t.Fatalf("%dx%d workers=%d: singular value %d = %v, serial %v", s[0], s[1], w, i, got.S[i], want.S[i])
				}
			}
			exactEqual(t, "SVD U", w, got.U, want.U)
			exactEqual(t, "SVD V", w, got.V, want.V)
		}
		parallel.SetMaxProcs(0)
	}
}
