// Package experiments reproduces every table and figure of the paper's
// evaluation (Secs. V-VII): the regression baselines of Figs. 3-4, the
// SQL-text feature study of Fig. 8, the design-decision Tables I-III, the
// four prediction experiments of Figs. 10-15, the 32-node configuration
// sweep of Fig. 16, and the optimizer-cost baseline of Fig. 17. Each
// experiment is a method on a Lab, which generates and caches the query
// pools; the cmd/experiments binary and the repository's benchmarks both
// drive these methods.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// Paper-matching workload sizes.
const (
	// Exp 1 training mix: 767 feathers, 230 golf balls, 30 bowling balls
	// (Sec. VII-A.1).
	Exp1TrainFeathers = 767
	Exp1TrainGolf     = 230
	Exp1TrainBowling  = 30
	// Test mix: 45 feathers, 7 golf balls, 9 bowling balls.
	TestFeathers = 45
	TestGolf     = 7
	TestBowling  = 9
	// Exp 2 balanced training mix (Sec. VII-A.2).
	Exp2PerType = 30
	// 32-node system splits (Sec. VII-B).
	ProdTrain = 917
	ProdTest  = 183
	// Customer-database test size (Sec. VII-A.4).
	CustomerTestSize = 45

	// researchPoolSize is how many TPC-DS queries are generated and run on
	// the research system to fill the category pools.
	researchPoolSize = 3200
)

// Lab generates, executes, and caches the query pools shared by the
// experiments. Everything is derived deterministically from Seed.
//
// The size fields default to the paper's workload sizes; tests and quick
// ablations may shrink them before the first experiment runs.
type Lab struct {
	Seed int64
	// PoolSize overrides the research pool size (0 = paper default).
	PoolSize int
	// TrainMix and TestMix override the Experiment 1 feather/golf/bowling
	// counts (zero values = paper defaults).
	TrainMix, TestMix [3]int
	// ProdSize overrides the production train+test pool size.
	ProdSize [2]int // {train, test}; zeros = paper defaults

	mu       sync.Mutex
	schema   *catalog.Schema
	custom   *catalog.Schema
	research *dataset.Dataset
	prod     map[int]*dataset.Dataset
	customer *dataset.Dataset
	baseProd *dataset.Dataset

	exp1Train []*dataset.Query
	exp1Test  []*dataset.Query
	exp1Model *core.Predictor
}

// NewLab returns a lab seeded for reproducible experiments.
func NewLab(seed int64) *Lab {
	return &Lab{Seed: seed, prod: map[int]*dataset.Dataset{}}
}

func (l *Lab) poolSize() int {
	if l.PoolSize > 0 {
		return l.PoolSize
	}
	return researchPoolSize
}

func (l *Lab) trainMix() [3]int {
	if l.TrainMix != [3]int{} {
		return l.TrainMix
	}
	return [3]int{Exp1TrainFeathers, Exp1TrainGolf, Exp1TrainBowling}
}

func (l *Lab) testMix() [3]int {
	if l.TestMix != [3]int{} {
		return l.TestMix
	}
	return [3]int{TestFeathers, TestGolf, TestBowling}
}

func (l *Lab) prodSizes() (int, int) {
	if l.ProdSize != [2]int{} {
		return l.ProdSize[0], l.ProdSize[1]
	}
	return ProdTrain, ProdTest
}

// Schema returns the TPC-DS schema used throughout.
func (l *Lab) Schema() *catalog.Schema {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.schema == nil {
		l.schema = catalog.TPCDS(1)
	}
	return l.schema
}

// CustomerDB returns the customer schema of Experiment 4.
func (l *Lab) CustomerDB() *catalog.Schema {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.custom == nil {
		l.custom = catalog.CustomerSchema()
	}
	return l.custom
}

// dataSeed is the data-realization seed for the TPC-DS database.
func (l *Lab) dataSeed() int64 { return l.Seed + 1000 }

// ResearchPool generates (once) the full TPC-DS query pool on the
// 4-processor research system: thousands of template instances sorted into
// feather / golf ball / bowling ball pools, as in Sec. IV-B.
func (l *Lab) ResearchPool() (*dataset.Dataset, error) {
	schema := l.Schema()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.research == nil {
		ds, err := dataset.Generate(dataset.GenConfig{
			Seed:      l.Seed,
			DataSeed:  l.dataSeed(),
			Machine:   exec.Research4(),
			Schema:    schema,
			Templates: workload.TPCDSTemplates(),
			Count:     l.poolSize(),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: research pool: %w", err)
		}
		l.research = ds
	}
	return l.research, nil
}

// Exp1Split returns the paper's canonical training and test sets: 1027
// training queries (767/230/30) and 61 test queries (45/7/9), disjoint.
func (l *Lab) Exp1Split() (train, test []*dataset.Query, err error) {
	ds, err := l.ResearchPool()
	if err != nil {
		return nil, nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.exp1Train == nil {
		r := statutil.NewRNG(l.Seed, "exp1mix")
		tm := l.testMix()
		test, err := ds.SampleMix(r, tm[0], tm[1], tm[2])
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: test mix: %w", err)
		}
		remaining := ds.Subset(ds.Split(test))
		trm := l.trainMix()
		train, err := remaining.SampleMix(r, trm[0], trm[1], trm[2])
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: train mix: %w", err)
		}
		l.exp1Train, l.exp1Test = train, test
	}
	return l.exp1Train, l.exp1Test, nil
}

// Exp1Model trains (once) the paper's main one-model KCCA predictor on the
// Exp 1 training set.
func (l *Lab) Exp1Model() (*core.Predictor, []*dataset.Query, []*dataset.Query, error) {
	train, test, err := l.Exp1Split()
	if err != nil {
		return nil, nil, nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.exp1Model == nil {
		p, err := core.Train(train, core.DefaultOptions())
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: Exp1 training: %w", err)
		}
		l.exp1Model = p
	}
	return l.exp1Model, train, test, nil
}

// prodBasePool generates (once) the benchmark-template query set reused
// across the 32-node configurations. Only benchmark-class templates are
// used: the paper notes all queries ran quickly on the production system.
func (l *Lab) prodBasePool() (*dataset.Dataset, error) {
	schema := l.Schema()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.baseProd == nil {
		var tpls []workload.Template
		for _, t := range workload.TPCDSTemplates() {
			if t.Class == "tpcds" {
				tpls = append(tpls, t)
			}
		}
		ds, err := dataset.Generate(dataset.GenConfig{
			Seed:      l.Seed + 7,
			DataSeed:  l.dataSeed(),
			Machine:   exec.Production32(32),
			Schema:    schema,
			Templates: tpls,
			Count:     func() int { a, b := l.prodSizes(); return a + b }(),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: production pool: %w", err)
		}
		l.baseProd = ds
	}
	return l.baseProd, nil
}

// ProdPool returns the production-system dataset re-planned and re-executed
// on the configuration using p of the 32 processors.
func (l *Lab) ProdPool(p int) (*dataset.Dataset, error) {
	base, err := l.prodBasePool()
	if err != nil {
		return nil, err
	}
	schema := l.Schema()
	l.mu.Lock()
	defer l.mu.Unlock()
	if ds, ok := l.prod[p]; ok {
		return ds, nil
	}
	ds, err := dataset.ReExecute(base, schema, l.dataSeed(), exec.Production32(p), l.Seed+int64(p))
	if err != nil {
		return nil, fmt.Errorf("experiments: production %d-cpu rerun: %w", p, err)
	}
	l.prod[p] = ds
	return ds, nil
}

// CustomerPool generates (once) the customer-database queries of
// Experiment 4: short-running queries against a schema the training set
// never saw.
func (l *Lab) CustomerPool() (*dataset.Dataset, error) {
	schema := l.CustomerDB()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.customer == nil {
		ds, err := dataset.Generate(dataset.GenConfig{
			Seed:      l.Seed + 13,
			DataSeed:  l.dataSeed() + 1, // a different database entirely
			Machine:   exec.Research4(),
			Schema:    schema,
			Templates: workload.CustomerTemplates(),
			Count:     CustomerTestSize,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: customer pool: %w", err)
		}
		l.customer = ds
	}
	return l.customer, nil
}

// splitProd splits a production dataset deterministically into
// ProdTrain/ProdTest.
func (l *Lab) splitProd(ds *dataset.Dataset) (train, test []*dataset.Query) {
	r := statutil.NewRNG(l.Seed, "prodsplit")
	_, nTest := l.prodSizes()
	idx := r.Perm(len(ds.Queries))
	for i, j := range idx {
		if i < nTest {
			test = append(test, ds.Queries[j])
		} else {
			train = append(train, ds.Queries[j])
		}
	}
	return train, test
}

// Evaluate runs the predictor over the test queries (batched across the
// worker pool) and returns per-metric prediction and actual series (indexed
// by exec metric constants).
func Evaluate(p *core.Predictor, test []*dataset.Query) (pred, act [exec.NumMetrics][]float64, err error) {
	prs, err := p.PredictBatch(test)
	if err != nil {
		return pred, act, err
	}
	for i, q := range test {
		pv := prs[i].Metrics.Vector()
		av := q.Metrics.Vector()
		for m := 0; m < exec.NumMetrics; m++ {
			pred[m] = append(pred[m], pv[m])
			act[m] = append(act[m], av[m])
		}
	}
	return pred, act, nil
}
