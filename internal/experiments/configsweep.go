package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exec"
)

// ConfigRow is one configuration column of the paper's Fig. 16 table.
type ConfigRow struct {
	Processors int
	Risk       [exec.NumMetrics]float64
	// TotalDiskIOs over the test queries; zero means the configuration's
	// memory held every table (the Null predictive-risk case).
	TotalDiskIOs float64
	MeanElapsed  float64
}

// ConfigSweepResult holds the Fig. 16 sweep over 4/8/16/32-processor
// configurations of the 32-node production system.
type ConfigSweepResult struct {
	Rows []ConfigRow
}

// ConfigSweep reproduces Fig. 16: for each configuration of the 32-node
// system, rerun the queries, train a model on 917 of them, and test on the
// remaining 183. Disk-I/O predictive risk is Null on configurations with
// enough memory to avoid I/O entirely.
func (l *Lab) ConfigSweep() (*ConfigSweepResult, error) {
	res := &ConfigSweepResult{}
	for _, procs := range []int{4, 8, 16, 32} {
		ds, err := l.ProdPool(procs)
		if err != nil {
			return nil, err
		}
		train, test := l.splitProd(ds)
		p, err := core.Train(train, core.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: %d-cpu training: %w", procs, err)
		}
		pred, act, err := Evaluate(p, test)
		if err != nil {
			return nil, err
		}
		row := ConfigRow{Processors: procs}
		for m := 0; m < exec.NumMetrics; m++ {
			row.Risk[m] = eval.PredictiveRisk(pred[m], act[m])
		}
		for i := range test {
			row.TotalDiskIOs += act[exec.MetricDiskIOs][i]
			row.MeanElapsed += act[exec.MetricElapsed][i]
		}
		row.MeanElapsed /= float64(len(test))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Report renders the sweep in the Fig. 16 layout (metrics as rows,
// configurations as columns).
func (r *ConfigSweepResult) Report() string {
	header := []string{"metric"}
	for _, row := range r.Rows {
		header = append(header, fmt.Sprintf("%d nodes", row.Processors))
	}
	var rows [][]string
	for m := 0; m < exec.NumMetrics; m++ {
		line := []string{exec.MetricNames[m]}
		for _, row := range r.Rows {
			line = append(line, eval.FormatRisk(row.Risk[m]))
		}
		rows = append(rows, line)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 16 — 32-node production system, %d train / %d test per configuration\n", ProdTrain, ProdTest)
	sb.WriteString(eval.Table(header, rows))
	sb.WriteString("  (Null disk-I/O risk = configuration held every table in memory; total test I/Os: ")
	for i, row := range r.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%dcpu=%.0f", row.Processors, row.TotalDiskIOs)
	}
	sb.WriteString(")\n")
	return sb.String()
}
