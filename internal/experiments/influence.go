package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/features"
)

// InfluenceResult holds the Sec. VII-C.2 feature-influence analysis.
type InfluenceResult struct {
	Top []core.FeatureInfluence
	// JoinFeatureRank is the best rank (1-based) of any join-operator
	// feature; the paper's cursory finding is that join counts and
	// cardinalities contribute the most.
	JoinFeatureRank int
}

// FeatureInfluences reproduces the Sec. VII-C.2 analysis: estimate each
// plan feature's role by comparing test queries' features with those of
// their nearest neighbors, against a random-pair baseline.
func (l *Lab) FeatureInfluences() (*InfluenceResult, error) {
	model, _, test, err := l.Exp1Model()
	if err != nil {
		return nil, err
	}
	inf, err := model.Influences(test, features.PlanFeatureNames())
	if err != nil {
		return nil, err
	}
	res := &InfluenceResult{Top: inf}
	res.JoinFeatureRank = len(inf)
	for rank, f := range inf {
		if strings.Contains(f.Name, "join") {
			res.JoinFeatureRank = rank + 1
			break
		}
	}
	return res, nil
}

// Report renders the influence ranking.
func (r *InfluenceResult) Report() string {
	var sb strings.Builder
	sb.WriteString("Sec. VII-C.2 — feature influence (neighbor-similarity excess over random pairs)\n")
	limit := 10
	if len(r.Top) < limit {
		limit = len(r.Top)
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(&sb, "  %2d. %-28s %.3f\n", i+1, r.Top[i].Name, r.Top[i].Score)
	}
	fmt.Fprintf(&sb, "  best join-operator feature rank: %d\n", r.JoinFeatureRank)
	return sb.String()
}
