package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/workload"
)

// The experiments are integration-tested on a scaled-down lab: smaller
// pools and mixes, same pipeline. Shape assertions mirror the paper's
// qualitative claims, not its absolute numbers.
var (
	labOnce sync.Once
	testLab *Lab
)

func lab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		l := NewLab(42)
		l.PoolSize = 800
		l.TrainMix = [3]int{150, 50, 12}
		l.TestMix = [3]int{20, 5, 3}
		l.ProdSize = [2]int{200, 50}
		testLab = l
	})
	return testLab
}

func TestQueryCensus(t *testing.T) {
	res, err := lab(t).QueryCensus()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 800 {
		t.Errorf("total = %d", res.Total)
	}
	seen := map[workload.Category]bool{}
	for _, row := range res.Rows {
		seen[row.Category] = true
		if row.Count <= 0 || row.MinSec > row.MaxSec || row.MeanSec < row.MinSec || row.MeanSec > row.MaxSec {
			t.Errorf("inconsistent census row: %+v", row)
		}
	}
	if !seen[workload.Feather] || !seen[workload.GolfBall] || !seen[workload.BowlingBall] {
		t.Error("census missing a core category")
	}
	if !strings.Contains(res.Report(), "census") {
		t.Error("report missing")
	}
}

func TestExp1SplitSizesAndDisjointness(t *testing.T) {
	train, test, err := lab(t).Exp1Split()
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 212 || len(test) != 28 {
		t.Fatalf("split sizes = %d/%d", len(train), len(test))
	}
	inTest := map[int]bool{}
	for _, q := range test {
		inTest[q.ID] = true
	}
	for _, q := range train {
		if inTest[q.ID] {
			t.Fatal("train and test overlap")
		}
	}
}

func TestRegressionBaselineShape(t *testing.T) {
	res, err := lab(t).RegressionElapsed()
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 || len(res.Pred) != res.N {
		t.Fatalf("bad result: %+v", res)
	}
	// The paper's headline failure: many predictions an order of
	// magnitude off.
	if res.OffBy10x < res.N/10 {
		t.Errorf("regression should be >=10x off for many queries, got %d/%d", res.OffBy10x, res.N)
	}
	if res.Report() == "" {
		t.Error("empty report")
	}
	rec, err := lab(t).RegressionRecords()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Metric != "records_used" {
		t.Errorf("metric = %q", rec.Metric)
	}
}

func TestExperiment1Shape(t *testing.T) {
	res, err := lab(t).Experiment1()
	if err != nil {
		t.Fatal(err)
	}
	if res.TestN != 28 {
		t.Errorf("test n = %d", res.TestN)
	}
	// Elapsed-time prediction must be clearly informative.
	if res.Risk[exec.MetricElapsed] < 0.3 {
		t.Errorf("Exp1 elapsed risk = %v, want informative predictions", res.Risk[exec.MetricElapsed])
	}
	if res.Within20[exec.MetricElapsed] < 0.5 {
		t.Errorf("Exp1 within-20%% = %v, want > 50%%", res.Within20[exec.MetricElapsed])
	}
	if !strings.Contains(res.Report(), "elapsed_time") {
		t.Error("report missing metrics")
	}
}

func TestSQLTextWorseThanPlanFeatures(t *testing.T) {
	res, err := lab(t).SQLTextKCCA()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 8 conclusion: SQL-text features are clearly worse.
	if res.SQLText.Within20[exec.MetricElapsed] >= res.PlanRef.Within20[exec.MetricElapsed] {
		t.Errorf("SQL-text within-20%% (%v) should be below plan features (%v)",
			res.SQLText.Within20[exec.MetricElapsed], res.PlanRef.Within20[exec.MetricElapsed])
	}
	if res.IdenticalVectorPairs == 0 {
		t.Error("expected textually identical queries with divergent runtimes")
	}
}

func TestDesignTables(t *testing.T) {
	t1, err := lab(t).DistanceMetricComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Cells) != 2 {
		t.Fatalf("Table I cells = %d", len(t1.Cells))
	}
	t2, err := lab(t).NeighborCountComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Cells) != 5 || t2.Cells[0].Option != "3NN" {
		t.Fatalf("Table II cells wrong: %+v", t2.Cells)
	}
	t3, err := lab(t).NeighborWeighting()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Cells) != 3 {
		t.Fatalf("Table III cells = %d", len(t3.Cells))
	}
	for _, res := range []*DesignTableResult{t1, t2, t3} {
		if !strings.Contains(res.Report(), "elapsed_time") {
			t.Error("table report missing metric rows")
		}
	}
}

func TestExperiment2WorseThanExperiment1(t *testing.T) {
	e1, err := lab(t).Experiment1()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := lab(t).Experiment2()
	if err != nil {
		t.Fatal(err)
	}
	if e2.TrainN >= e1.TrainN {
		t.Fatalf("Exp2 must train on fewer queries: %d vs %d", e2.TrainN, e1.TrainN)
	}
	// "More data in the training set is always better": the small
	// balanced set must not beat the full mix on the headline rate.
	if e2.Within20[exec.MetricElapsed] > e1.Within20[exec.MetricElapsed] {
		t.Errorf("Exp2 within-20%% (%v) should not exceed Exp1 (%v)",
			e2.Within20[exec.MetricElapsed], e1.Within20[exec.MetricElapsed])
	}
}

func TestExperiment3Runs(t *testing.T) {
	res, err := lab(t).Experiment3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Risk[exec.MetricElapsed] < 0 {
		t.Errorf("two-step elapsed risk = %v", res.Risk[exec.MetricElapsed])
	}
}

func TestExperiment4TwoStepBetter(t *testing.T) {
	res, err := lab(t).Experiment4()
	if err != nil {
		t.Fatal(err)
	}
	if res.OneModel.TestN != CustomerTestSize {
		t.Errorf("customer test size = %d", res.OneModel.TestN)
	}
	// The paper: one-model predictions are 1-3 orders of magnitude too
	// long; two-step is relatively more accurate.
	if res.OverpredictedOneModel == 0 {
		t.Error("expected substantial one-model overprediction on the customer schema")
	}
	if res.OverpredictedTwoStep > res.OverpredictedOneModel {
		t.Errorf("two-step (%d over) should not be worse than one-model (%d over)",
			res.OverpredictedTwoStep, res.OverpredictedOneModel)
	}
	if !strings.Contains(res.Report(), "two-step") {
		t.Error("report incomplete")
	}
}

func TestConfigSweepDiskIONull(t *testing.T) {
	res, err := lab(t).ConfigSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 4-cpu configuration does I/O; the larger ones hold everything in
	// memory, so their disk-I/O risk is Null (Fig. 16's exact pattern).
	if res.Rows[0].TotalDiskIOs == 0 {
		t.Error("4-cpu configuration should perform disk I/O")
	}
	if math.IsNaN(res.Rows[0].Risk[exec.MetricDiskIOs]) {
		t.Error("4-cpu disk risk should be defined")
	}
	for _, row := range res.Rows[1:] {
		if row.TotalDiskIOs != 0 {
			t.Errorf("%d-cpu configuration should do no I/O, got %v", row.Processors, row.TotalDiskIOs)
		}
		if !math.IsNaN(row.Risk[exec.MetricDiskIOs]) {
			t.Errorf("%d-cpu disk risk should be Null", row.Processors)
		}
	}
	// Elapsed-time prediction stays informative on every configuration.
	for _, row := range res.Rows {
		if row.Risk[exec.MetricElapsed] < 0.3 {
			t.Errorf("%d-cpu elapsed risk = %v", row.Processors, row.Risk[exec.MetricElapsed])
		}
	}
	if !strings.Contains(res.Report(), "Null") {
		t.Error("report should render Null cells")
	}
}

func TestOptimizerCostWorseThanKCCA(t *testing.T) {
	res, err := lab(t).OptimizerCostBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.CostAsPredictorRisk >= res.KCCARisk {
		t.Errorf("optimizer cost (risk %v) should be worse than KCCA (%v)",
			res.CostAsPredictorRisk, res.KCCARisk)
	}
	if res.CostWithin20 >= res.KCCAWithin20 {
		t.Errorf("optimizer cost within-20%% (%v) should be below KCCA (%v)",
			res.CostWithin20, res.KCCAWithin20)
	}
	if math.IsNaN(res.Slope) {
		t.Error("best fit not computed")
	}
}

func TestBaselinesShape(t *testing.T) {
	res, err := lab(t).Baselines()
	if err != nil {
		t.Fatal(err)
	}
	// Cluster structure in query space must not simply mirror cluster
	// structure in performance space.
	if res.KMeansAgreement > 0.9 {
		t.Errorf("k-means agreement = %v; query and performance clusters should diverge", res.KMeansAgreement)
	}
	// KCCA must lead on the headline within-20% accuracy.
	if res.KCCAWithin20 <= res.PCAWithin20-0.15 || res.KCCAWithin20 <= res.CCAWithin20-0.15 {
		t.Errorf("KCCA within-20%% (%v) should be at least competitive with PCA (%v) and CCA (%v)",
			res.KCCAWithin20, res.PCAWithin20, res.CCAWithin20)
	}
	if res.Report() == "" {
		t.Error("empty report")
	}
}

func TestFeatureInfluences(t *testing.T) {
	res, err := lab(t).FeatureInfluences()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) == 0 {
		t.Fatal("no influences")
	}
	// The paper's cursory finding: join counts and cardinalities
	// contribute the most. Ours: a join-related feature ranks highly.
	if res.JoinFeatureRank > 8 {
		t.Errorf("best join feature rank = %d, want near the top", res.JoinFeatureRank)
	}
	if !strings.Contains(res.Report(), "join") {
		t.Error("report missing join features")
	}
}

func TestWorkloadDrift(t *testing.T) {
	res, err := lab(t).WorkloadDrift()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrains == 0 {
		t.Error("sliding model never retrained")
	}
	if res.TailN == 0 {
		t.Fatal("no evaluated tail")
	}
	// The adapting model must beat the stale one on the shifted workload.
	if res.SlidingWithin20 <= res.StaticWithin20 {
		t.Errorf("sliding within-20%% (%v) should beat static (%v)",
			res.SlidingWithin20, res.StaticWithin20)
	}
	if res.SlidingRisk <= res.StaticRisk {
		t.Errorf("sliding risk (%v) should beat static (%v)", res.SlidingRisk, res.StaticRisk)
	}
}

func TestContentionWhatIf(t *testing.T) {
	res, err := lab(t).ContentionWhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || len(res.Rows) != 4 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	for i, row := range res.Rows {
		if row.PredictedMakespan <= 0 || row.ActualMakespan <= 0 {
			t.Errorf("row %d has nonpositive makespans: %+v", i, row)
		}
		// Predicted makespans must track the truth usefully.
		if row.RelativeError > 0.5 {
			t.Errorf("slots=%d relative error = %v, want < 50%%", row.Slots, row.RelativeError)
		}
		// More slots never lengthen the makespan.
		if i > 0 && row.ActualMakespan > res.Rows[i-1].ActualMakespan+1e-9 {
			t.Errorf("makespan grew with more slots: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Report(), "slots") {
		t.Error("report incomplete")
	}
}

func TestLabDeterministicAcrossInstances(t *testing.T) {
	// Two fresh labs with the same seed must produce bit-identical
	// experiment results — the property every "reproduce the paper" claim
	// in EXPERIMENTS.md rests on.
	mk := func() *Lab {
		l := NewLab(7)
		l.PoolSize = 400
		l.TrainMix = [3]int{80, 20, 6}
		l.TestMix = [3]int{10, 3, 2}
		return l
	}
	a, err := mk().Experiment1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Experiment1()
	if err != nil {
		t.Fatal(err)
	}
	if a.Risk != b.Risk || a.Within20 != b.Within20 {
		t.Errorf("experiment not deterministic:\n%v\n%v", a.Risk, b.Risk)
	}
}

func TestExperiment1CategoryIdentification(t *testing.T) {
	res, err := lab(t).Experiment1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: short and long-running queries are both
	// identified. Most test queries must land in the right category, and
	// gross misses (feather <-> bowling ball) must be rare.
	if res.CategoryCorrect < res.TestN*2/3 {
		t.Errorf("only %d/%d query types identified", res.CategoryCorrect, res.TestN)
	}
	total := 0
	for a := 0; a < workload.NumCategories; a++ {
		for p := 0; p < workload.NumCategories; p++ {
			total += res.Confusion[a][p]
		}
	}
	if total != res.TestN {
		t.Errorf("confusion total = %d, want %d", total, res.TestN)
	}
	if !strings.Contains(res.Report(), "identified correctly") {
		t.Error("report missing category identification")
	}
}
