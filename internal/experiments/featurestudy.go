package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exec"
)

// SQLTextResult holds the Fig. 8 SQL-text feature study alongside the plan
// feature reference.
type SQLTextResult struct {
	SQLText *PredictionResult
	PlanRef *PredictionResult
	// IdenticalVectorPairs counts test/train query pairs with identical
	// SQL-text vectors but elapsed times differing by at least 10x — the
	// paper's explanation for why text features fail.
	IdenticalVectorPairs int
}

// SQLTextKCCA reproduces Fig. 8: KCCA trained on SQL-text feature vectors
// instead of plan vectors. Accuracy collapses because textually identical
// queries can have dramatically different runtimes.
func (l *Lab) SQLTextKCCA() (*SQLTextResult, error) {
	train, test, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Features = core.SQLFeatures
	p, err := core.Train(train, opt)
	if err != nil {
		return nil, err
	}
	pred, act, err := Evaluate(p, test)
	if err != nil {
		return nil, err
	}
	res := &SQLTextResult{
		SQLText: buildPredictionResult("Fig. 8 — KCCA on SQL-text features", len(train), pred, act),
	}

	ref, err := l.Experiment1()
	if err != nil {
		return nil, err
	}
	res.PlanRef = ref

	// Count identical-text-vector pairs with >= 10x runtime difference.
	type sig [9]float64
	bySig := map[sig][]float64{}
	key := func(v []float64) sig {
		var s sig
		copy(s[:], v)
		return s
	}
	for _, q := range train {
		v, err := coreSQLVector(q.SQL)
		if err != nil {
			continue
		}
		bySig[key(v)] = append(bySig[key(v)], q.Metrics.ElapsedSec)
	}
	for _, q := range test {
		v, err := coreSQLVector(q.SQL)
		if err != nil {
			continue
		}
		for _, tTrain := range bySig[key(v)] {
			a, b := q.Metrics.ElapsedSec, tTrain
			if a > 0 && b > 0 && (a/b >= 10 || b/a >= 10) {
				res.IdenticalVectorPairs++
			}
		}
	}
	return res, nil
}

// Report renders the feature study.
func (r *SQLTextResult) Report() string {
	var sb strings.Builder
	sb.WriteString("Fig. 8 — SQL-text features vs query-plan features\n")
	fmt.Fprintf(&sb, "  SQL-text elapsed risk    %s (within 20%%: %.0f%%)\n",
		eval.FormatRisk(r.SQLText.Risk[exec.MetricElapsed]), r.SQLText.Within20[exec.MetricElapsed]*100)
	fmt.Fprintf(&sb, "  plan-vector elapsed risk %s (within 20%%: %.0f%%)\n",
		eval.FormatRisk(r.PlanRef.Risk[exec.MetricElapsed]), r.PlanRef.Within20[exec.MetricElapsed]*100)
	fmt.Fprintf(&sb, "  test/train pairs with identical text vectors but >=10x runtime gap: %d\n",
		r.IdenticalVectorPairs)
	sb.WriteString(eval.ScatterLogLog(r.SQLText.PredElapsed, r.SQLText.ActElapsed, 64, 20, "  SQL-text-predicted vs actual elapsed time"))
	return sb.String()
}
