package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/workload"
)

// PredictionResult holds one KCCA prediction experiment's accuracy over
// all six metrics, plus the elapsed-time series for plotting.
type PredictionResult struct {
	Name     string
	TrainN   int
	TestN    int
	Risk     [exec.NumMetrics]float64
	Trimmed  [exec.NumMetrics]float64 // risk with the worst outlier removed
	Within20 [exec.NumMetrics]float64

	PredElapsed, ActElapsed []float64

	// CategoryCorrect counts test queries whose runtime category
	// (feather / golf ball / bowling ball, by predicted elapsed time)
	// matches the actual category — the paper's headline claim that both
	// short and long-running queries are identified correctly.
	CategoryCorrect int
	// Confusion[actual][predicted] counts category outcomes.
	Confusion [workload.NumCategories][workload.NumCategories]int
}

func buildPredictionResult(name string, trainN int, pred, act [exec.NumMetrics][]float64) *PredictionResult {
	res := &PredictionResult{Name: name, TrainN: trainN, TestN: len(pred[0])}
	for m := 0; m < exec.NumMetrics; m++ {
		res.Risk[m] = eval.PredictiveRisk(pred[m], act[m])
		res.Trimmed[m] = eval.PredictiveRiskTrimmed(pred[m], act[m], 1)
		res.Within20[m] = eval.WithinFactor(pred[m], act[m], 0.2)
	}
	res.PredElapsed = pred[exec.MetricElapsed]
	res.ActElapsed = act[exec.MetricElapsed]
	for i := range res.ActElapsed {
		a := workload.Categorize(res.ActElapsed[i])
		p := workload.Categorize(res.PredElapsed[i])
		res.Confusion[a][p]++
		if a == p {
			res.CategoryCorrect++
		}
	}
	return res
}

// Report renders the experiment in the style of Figs. 10-15.
func (r *PredictionResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (train %d, test %d)\n", r.Name, r.TrainN, r.TestN)
	var rows [][]string
	for m := 0; m < exec.NumMetrics; m++ {
		rows = append(rows, []string{
			exec.MetricNames[m],
			eval.FormatRisk(r.Risk[m]),
			eval.FormatRisk(r.Trimmed[m]),
			fmt.Sprintf("%.0f%%", r.Within20[m]*100),
		})
	}
	sb.WriteString(eval.Table([]string{"metric", "risk", "risk(-1 outlier)", "within 20%"}, rows))
	fmt.Fprintf(&sb, "  query type identified correctly: %d/%d", r.CategoryCorrect, r.TestN)
	offByMoreThanOne := 0
	for a := 0; a < workload.NumCategories; a++ {
		for p := 0; p < workload.NumCategories; p++ {
			d := a - p
			if d < 0 {
				d = -d
			}
			if d > 1 {
				offByMoreThanOne += r.Confusion[a][p]
			}
		}
	}
	fmt.Fprintf(&sb, " (misses beyond an adjacent category: %d)\n", offByMoreThanOne)
	sb.WriteString(eval.ScatterLogLog(r.PredElapsed, r.ActElapsed, 64, 20, "  KCCA-predicted vs actual elapsed time"))
	return sb.String()
}

// Experiment1 reproduces Figs. 10-12: the one-model KCCA predictor trained
// on the realistic 1027-query mix, tested on 61 held-out queries.
func (l *Lab) Experiment1() (*PredictionResult, error) {
	model, train, test, err := l.Exp1Model()
	if err != nil {
		return nil, err
	}
	pred, act, err := Evaluate(model, test)
	if err != nil {
		return nil, err
	}
	return buildPredictionResult("Figs. 10-12 — Experiment 1: one-model KCCA, realistic training mix", len(train), pred, act), nil
}

// Experiment2 reproduces Fig. 13: training on only 30 queries of each type
// (90 total); accuracy degrades relative to Experiment 1, since "more data
// in the training set is always better".
func (l *Lab) Experiment2() (*PredictionResult, error) {
	ds, err := l.ResearchPool()
	if err != nil {
		return nil, err
	}
	_, test, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	// Balanced sample drawn from the pool minus the test queries.
	remaining := ds.Subset(ds.Split(test))
	r := newMixRNG(l.Seed, "exp2mix")
	train, err := remaining.SampleMix(r, Exp2PerType, Exp2PerType, Exp2PerType)
	if err != nil {
		return nil, err
	}
	p, err := core.Train(train, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pred, act, err := Evaluate(p, test)
	if err != nil {
		return nil, err
	}
	return buildPredictionResult("Fig. 13 — Experiment 2: balanced 30/30/30 training set", len(train), pred, act), nil
}

// Experiment3 reproduces Fig. 14: two-step prediction (classify the query
// type from the global model's neighbors, then use a type-specific model).
func (l *Lab) Experiment3() (*PredictionResult, error) {
	train, test, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.TwoStep = true
	p, err := core.Train(train, opt)
	if err != nil {
		return nil, err
	}
	pred, act, err := Evaluate(p, test)
	if err != nil {
		return nil, err
	}
	return buildPredictionResult("Fig. 14 — Experiment 3: two-step type-specific prediction", len(train), pred, act), nil
}

// Experiment4Result holds the Fig. 15 customer-database comparison.
type Experiment4Result struct {
	OneModel *PredictionResult
	TwoStep  *PredictionResult
	// OverpredictedOneModel counts one-model predictions at least 10x
	// above the actual elapsed time (the paper: "one to three orders of
	// magnitude longer").
	OverpredictedOneModel int
	OverpredictedTwoStep  int
}

// Experiment4 reproduces Fig. 15: train on TPC-DS, test on queries against
// the customer database (a different schema entirely); compare one-model
// and two-step prediction.
func (l *Lab) Experiment4() (*Experiment4Result, error) {
	cust, err := l.CustomerPool()
	if err != nil {
		return nil, err
	}
	test := cust.Queries

	one, train, _, err := l.Exp1Model()
	if err != nil {
		return nil, err
	}
	predOne, actOne, err := Evaluate(one, test)
	if err != nil {
		return nil, err
	}

	opt := core.DefaultOptions()
	opt.TwoStep = true
	two, err := core.Train(train, opt)
	if err != nil {
		return nil, err
	}
	predTwo, actTwo, err := Evaluate(two, test)
	if err != nil {
		return nil, err
	}

	res := &Experiment4Result{
		OneModel: buildPredictionResult("one-model KCCA on customer queries", len(train), predOne, actOne),
		TwoStep:  buildPredictionResult("two-step KCCA on customer queries", len(train), predTwo, actTwo),
	}
	countOver := func(pred, act []float64) int {
		n := 0
		for i := range pred {
			if act[i] > 0 && pred[i]/act[i] >= 10 {
				n++
			}
		}
		return n
	}
	res.OverpredictedOneModel = countOver(predOne[exec.MetricElapsed], actOne[exec.MetricElapsed])
	res.OverpredictedTwoStep = countOver(predTwo[exec.MetricElapsed], actTwo[exec.MetricElapsed])
	return res, nil
}

// Report renders Experiment 4 in the style of Fig. 15.
func (r *Experiment4Result) Report() string {
	var sb strings.Builder
	sb.WriteString("Fig. 15 — Experiment 4: TPC-DS-trained model on customer-database queries\n")
	fmt.Fprintf(&sb, "  one-model: elapsed risk %s, %d/%d predictions >= 10x too long\n",
		eval.FormatRisk(r.OneModel.Risk[exec.MetricElapsed]), r.OverpredictedOneModel, r.OneModel.TestN)
	fmt.Fprintf(&sb, "  two-step:  elapsed risk %s, %d/%d predictions >= 10x too long\n",
		eval.FormatRisk(r.TwoStep.Risk[exec.MetricElapsed]), r.OverpredictedTwoStep, r.TwoStep.TestN)
	sb.WriteString(eval.ScatterLogLog(r.OneModel.PredElapsed, r.OneModel.ActElapsed, 64, 16, "  one-model predicted vs actual"))
	sb.WriteString(eval.ScatterLogLog(r.TwoStep.PredElapsed, r.TwoStep.ActElapsed, 64, 16, "  two-step predicted vs actual"))
	return sb.String()
}
