package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/workload"
)

// DriftResult holds the Sec. VII-C.4 continuous-retraining study: a
// workload whose template mix shifts mid-stream, predicted by a static
// model trained before the shift versus a sliding-window model that keeps
// retraining on recent queries.
type DriftResult struct {
	// StaticRisk / SlidingRisk are elapsed-time predictive risks over the
	// post-shift tail of the stream.
	StaticRisk  float64
	SlidingRisk float64
	// StaticWithin20 / SlidingWithin20 are the corresponding headline
	// accuracy rates.
	StaticWithin20  float64
	SlidingWithin20 float64
	// Retrains counts the sliding model's retrainings.
	Retrains int
	// TailN is the number of evaluated post-shift queries.
	TailN int
}

// WorkloadDrift runs the continuous-retraining study. Phase 1 uses the
// benchmark-style templates only; phase 2 shifts the mix to include the
// heavy problem templates. The static model never sees phase 2; the
// sliding model observes each executed query and retrains periodically,
// exactly the enhancement Sec. VII-C.4 proposes ("maintain a sliding
// training set of data with a larger emphasis on more recently executed
// queries").
func (l *Lab) WorkloadDrift() (*DriftResult, error) {
	schema := l.Schema()
	var phase1Tpls, phase2Tpls []workload.Template
	for _, t := range workload.TPCDSTemplates() {
		if t.Class == "tpcds" {
			phase1Tpls = append(phase1Tpls, t)
		}
		phase2Tpls = append(phase2Tpls, t) // phase 2 runs everything
	}

	gen := func(seed int64, tpls []workload.Template, count int) (*dataset.Dataset, error) {
		return dataset.Generate(dataset.GenConfig{
			Seed: seed, DataSeed: l.dataSeed(), Machine: exec.Research4(),
			Schema: schema, Templates: tpls, Count: count,
		})
	}
	phase1, err := gen(l.Seed+101, phase1Tpls, 400)
	if err != nil {
		return nil, err
	}
	phase2, err := gen(l.Seed+102, phase2Tpls, 400)
	if err != nil {
		return nil, err
	}

	static, err := core.Train(phase1.Queries, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	sliding, err := core.NewSliding(400, 100, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, q := range phase1.Queries {
		if err := sliding.Observe(q); err != nil {
			return nil, err
		}
	}

	// Stream phase 2: predict each query BEFORE observing it (both
	// models see the same prefix), then record it into the sliding window.
	var staticPred, slidingPred, act []float64
	warmup := 200 // let the window slide into the new mix before scoring
	for i, q := range phase2.Queries {
		if i >= warmup {
			sp, err := static.PredictQuery(q)
			if err != nil {
				return nil, err
			}
			lp, err := sliding.PredictQuery(q)
			if err != nil {
				return nil, err
			}
			staticPred = append(staticPred, sp.Metrics.ElapsedSec)
			slidingPred = append(slidingPred, lp.Metrics.ElapsedSec)
			act = append(act, q.Metrics.ElapsedSec)
		}
		if err := sliding.Observe(q); err != nil {
			return nil, err
		}
	}

	return &DriftResult{
		StaticRisk:      eval.PredictiveRisk(staticPred, act),
		SlidingRisk:     eval.PredictiveRisk(slidingPred, act),
		StaticWithin20:  eval.WithinFactor(staticPred, act, 0.2),
		SlidingWithin20: eval.WithinFactor(slidingPred, act, 0.2),
		Retrains:        sliding.Retrains(),
		TailN:           len(act),
	}, nil
}

// Report renders the drift study.
func (r *DriftResult) Report() string {
	var sb strings.Builder
	sb.WriteString("Sec. VII-C.4 — continuous retraining under workload drift\n")
	fmt.Fprintf(&sb, "  post-shift tail: %d queries; sliding window retrained %d times\n", r.TailN, r.Retrains)
	fmt.Fprintf(&sb, "  static model (trained pre-shift):  risk %s, within 20%%: %.0f%%\n",
		eval.FormatRisk(r.StaticRisk), r.StaticWithin20*100)
	fmt.Fprintf(&sb, "  sliding-window model:              risk %s, within 20%%: %.0f%%\n",
		eval.FormatRisk(r.SlidingRisk), r.SlidingWithin20*100)
	return sb.String()
}
