package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/eval"
	"repro/internal/exec"
)

// OptimizerCostResult holds the Fig. 17 baseline: the query optimizer's
// scalar cost estimate versus actual elapsed time for the test queries.
type OptimizerCostResult struct {
	N int
	// Slope and Intercept describe the log-log line of best fit (optimizer
	// costs are not in time units, so only a fitted mapping is possible).
	Slope, Intercept float64
	// Off10x and Off100x are the fractions of queries whose cost sits at
	// least 10x / 100x away from the best-fit line (the paper annotates
	// exactly such points).
	Off10x, Off100x float64
	// CostAsPredictorRisk is the predictive risk when the fitted power law
	// converts cost to a time prediction; compare with KCCA's risk.
	CostAsPredictorRisk float64
	CostWithin20        float64
	// KCCARisk and KCCAWithin20 are the Experiment 1 references.
	KCCARisk     float64
	KCCAWithin20 float64

	Cost, Act []float64
}

// OptimizerCostBaseline reproduces Fig. 17: optimizer cost estimates
// plotted against actual elapsed times for the 61 test queries, with a
// line of best fit, plus the quantitative comparison against KCCA the
// paper discusses in Sec. VII-C.1.
func (l *Lab) OptimizerCostBaseline() (*OptimizerCostResult, error) {
	_, test, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	res := &OptimizerCostResult{N: len(test)}
	for _, q := range test {
		res.Cost = append(res.Cost, q.Plan.Cost)
		res.Act = append(res.Act, q.Metrics.ElapsedSec)
	}
	res.Slope, res.Intercept, res.Off10x, res.Off100x = eval.LogBestFit(res.Cost, res.Act)

	// Even granting the optimizer the best possible power-law conversion
	// from cost units to seconds, how well does cost predict time?
	pred := make([]float64, len(res.Cost))
	for i, c := range res.Cost {
		if c <= 0 {
			c = 1e-9
		}
		pred[i] = math.Pow(10, res.Slope*math.Log10(c)+res.Intercept)
	}
	res.CostAsPredictorRisk = eval.PredictiveRisk(pred, res.Act)
	res.CostWithin20 = eval.WithinFactor(pred, res.Act, 0.2)

	exp1, err := l.Experiment1()
	if err != nil {
		return nil, err
	}
	res.KCCARisk = exp1.Risk[exec.MetricElapsed]
	res.KCCAWithin20 = exp1.Within20[exec.MetricElapsed]
	return res, nil
}

// Report renders the optimizer-cost baseline in the style of Fig. 17.
func (r *OptimizerCostResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 17 — optimizer cost estimates vs actual elapsed time (%d test queries)\n", r.N)
	fmt.Fprintf(&sb, "  log-log best fit: log10(time) = %.2f*log10(cost) + %.2f\n", r.Slope, r.Intercept)
	fmt.Fprintf(&sb, "  >= 10x from best fit: %.0f%%   >= 100x: %.0f%%\n", r.Off10x*100, r.Off100x*100)
	fmt.Fprintf(&sb, "  cost as a time predictor: risk %s, within 20%%: %.0f%%\n",
		eval.FormatRisk(r.CostAsPredictorRisk), r.CostWithin20*100)
	fmt.Fprintf(&sb, "  KCCA (Experiment 1):      risk %s, within 20%%: %.0f%%\n",
		eval.FormatRisk(r.KCCARisk), r.KCCAWithin20*100)
	sb.WriteString(eval.ScatterLogLog(r.Cost, r.Act, 64, 20, "  optimizer cost (x) vs actual elapsed time (y)"))
	return sb.String()
}
