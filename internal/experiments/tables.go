package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/knn"
)

// DesignCell is one predictive-risk measurement in a design-study table.
type DesignCell struct {
	Option string
	Risk   [exec.NumMetrics]float64
}

// DesignTableResult holds one of Tables I-III.
type DesignTableResult struct {
	Name  string
	Cells []DesignCell
}

// Report renders the table in the paper's layout: one row per metric, one
// column per design option.
func (r *DesignTableResult) Report() string {
	header := []string{"metric"}
	for _, c := range r.Cells {
		header = append(header, c.Option)
	}
	var rows [][]string
	for m := 0; m < exec.NumMetrics; m++ {
		row := []string{exec.MetricNames[m]}
		for _, c := range r.Cells {
			row = append(row, eval.FormatRisk(c.Risk[m]))
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	sb.WriteString(r.Name + "\n")
	sb.WriteString(eval.Table(header, rows))
	return sb.String()
}

// designStudy evaluates the Exp 1 model under a set of kNN option
// variations without retraining.
func (l *Lab) designStudy(name string, options []knn.Options, labels []string) (*DesignTableResult, error) {
	model, _, test, err := l.Exp1Model()
	if err != nil {
		return nil, err
	}
	res := &DesignTableResult{Name: name}
	for i, opt := range options {
		p := model.WithKNN(opt)
		pred, act, err := Evaluate(p, test)
		if err != nil {
			return nil, err
		}
		cell := DesignCell{Option: labels[i]}
		for m := 0; m < exec.NumMetrics; m++ {
			cell.Risk[m] = eval.PredictiveRisk(pred[m], act[m])
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// DistanceMetricComparison reproduces Table I: Euclidean vs cosine
// distance for identifying nearest neighbors.
func (l *Lab) DistanceMetricComparison() (*DesignTableResult, error) {
	base := knn.DefaultOptions()
	cos := base
	cos.Distance = knn.Cosine
	return l.designStudy(
		"Table I — Euclidean vs cosine neighbor distance (predictive risk)",
		[]knn.Options{base, cos},
		[]string{"euclidean", "cosine"},
	)
}

// NeighborCountComparison reproduces Table II: varying the number of
// neighbors k from 3 to 7.
func (l *Lab) NeighborCountComparison() (*DesignTableResult, error) {
	var opts []knn.Options
	var labels []string
	for k := 3; k <= 7; k++ {
		o := knn.DefaultOptions()
		o.K = k
		opts = append(opts, o)
		labels = append(labels, fmt.Sprintf("%dNN", k))
	}
	return l.designStudy("Table II — number of neighbors (predictive risk)", opts, labels)
}

// NeighborWeighting reproduces Table III: equal vs 3:2:1 vs
// distance-proportional neighbor weighting.
func (l *Lab) NeighborWeighting() (*DesignTableResult, error) {
	mk := func(w knn.Weighting) knn.Options {
		o := knn.DefaultOptions()
		o.Weighting = w
		return o
	}
	return l.designStudy(
		"Table III — neighbor weighting (predictive risk)",
		[]knn.Options{mk(knn.EqualWeight), mk(knn.RankWeight), mk(knn.DistanceWeight)},
		[]string{"equal", "3:2:1", "distance"},
	)
}
