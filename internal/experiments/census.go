package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// CensusRow summarizes one query category (a row of the paper's Fig. 2).
type CensusRow struct {
	Category workload.Category
	Count    int
	MeanSec  float64
	MinSec   float64
	MaxSec   float64
}

// CensusResult is the Fig. 2 query census.
type CensusResult struct {
	Rows  []CensusRow
	Total int
}

// QueryCensus reproduces Fig. 2: the pool of candidate queries categorized
// by elapsed time on the 4-processor research system.
func (l *Lab) QueryCensus() (*CensusResult, error) {
	ds, err := l.ResearchPool()
	if err != nil {
		return nil, err
	}
	byCat := ds.ByCategory()
	res := &CensusResult{Total: len(ds.Queries)}
	for c := workload.Feather; c <= workload.WreckingBall; c++ {
		qs := byCat[c]
		if len(qs) == 0 {
			continue
		}
		var times []float64
		for _, q := range qs {
			times = append(times, q.Metrics.ElapsedSec)
		}
		s := statutil.Summarize(times)
		res.Rows = append(res.Rows, CensusRow{
			Category: c, Count: len(qs),
			MeanSec: s.Mean, MinSec: s.Min, MaxSec: s.Max,
		})
	}
	return res, nil
}

// Report renders the census in the style of Fig. 2.
func (r *CensusResult) Report() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Category.String(),
			fmt.Sprintf("%d", row.Count),
			fmtDuration(row.MeanSec),
			fmtDuration(row.MinSec),
			fmtDuration(row.MaxSec),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 2 — query census (%d queries on the 4-cpu research system)\n", r.Total)
	sb.WriteString(eval.Table([]string{"type", "count", "mean", "min", "max"}, rows))
	return sb.String()
}

// fmtDuration renders seconds as hh:mm:ss like the paper's Fig. 2.
func fmtDuration(sec float64) string {
	s := int(sec + 0.5)
	return fmt.Sprintf("%02d:%02d:%02d", s/3600, (s%3600)/60, s%60)
}
