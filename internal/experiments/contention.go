package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/statutil"
)

// ContentionRow is one multiprogramming level of the contention what-if.
type ContentionRow struct {
	Slots             int
	PredictedMakespan float64
	ActualMakespan    float64
	RelativeError     float64
}

// ContentionResult holds the contention what-if study.
type ContentionResult struct {
	Queries int
	Rows    []ContentionRow
}

// ContentionWhatIf closes the loop the paper motivates but does not
// evaluate: admission control needs to know what happens when queries run
// TOGETHER. We feed per-query solo-runtime predictions into a
// processor-sharing contention model (exec.SimulateConcurrent) and compare
// the predicted workload makespan against the makespan computed from the
// true solo runtimes, across multiprogramming levels.
func (l *Lab) ContentionWhatIf() (*ContentionResult, error) {
	model, _, test, err := l.Exp1Model()
	if err != nil {
		return nil, err
	}
	// Keep the short-to-medium queries: a workload manager would never
	// co-schedule wrecking balls into a shared interactive pool.
	var kept []*dataset.Query
	for _, q := range test {
		if q.Metrics.ElapsedSec <= 1800 {
			kept = append(kept, q)
		}
	}
	preds, err := model.PredictBatch(kept)
	if err != nil {
		return nil, err
	}
	var predSolo, actSolo []float64
	for i, q := range kept {
		predSolo = append(predSolo, math.Max(preds[i].Metrics.ElapsedSec, 1e-3))
		actSolo = append(actSolo, q.Metrics.ElapsedSec)
	}
	// Poisson-ish arrivals over ten minutes.
	r := statutil.NewRNG(l.Seed, "contention")
	arrivals := make([]float64, len(predSolo))
	tm := 0.0
	for i := range arrivals {
		tm += r.Uniform(0, 20)
		arrivals[i] = tm
	}

	res := &ContentionResult{Queries: len(predSolo)}
	const interference = 0.7
	slots := []int{1, 2, 4, 8}
	scenarios := make([]exec.Scenario, len(slots))
	for i, s := range slots {
		scenarios[i] = exec.Scenario{MaxConcurrent: s, Interference: interference}
	}
	predOuts, err := exec.SimulateScenarios(arrivals, predSolo, scenarios)
	if err != nil {
		return nil, err
	}
	actOuts, err := exec.SimulateScenarios(arrivals, actSolo, scenarios)
	if err != nil {
		return nil, err
	}
	for i, s := range slots {
		relErr := math.Abs(predOuts[i].Makespan-actOuts[i].Makespan) / actOuts[i].Makespan
		res.Rows = append(res.Rows, ContentionRow{
			Slots:             s,
			PredictedMakespan: predOuts[i].Makespan,
			ActualMakespan:    actOuts[i].Makespan,
			RelativeError:     relErr,
		})
	}
	return res, nil
}

// Report renders the contention study.
func (r *ContentionResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Contention what-if — workload makespan from predicted vs true solo runtimes (%d queries)\n", r.Queries)
	fmt.Fprintf(&sb, "  %6s %16s %16s %10s\n", "slots", "pred makespan", "true makespan", "rel err")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %6d %15.0fs %15.0fs %9.0f%%\n",
			row.Slots, row.PredictedMakespan, row.ActualMakespan, row.RelativeError*100)
	}
	return sb.String()
}
