package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cca"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/knn"
	"repro/internal/pca"
	"repro/internal/sqlparse"
	"repro/internal/statutil"
)

// newMixRNG returns the deterministic stream used for sampling mixes.
func newMixRNG(seed int64, purpose string) *statutil.RNG {
	return statutil.NewRNG(seed, purpose)
}

// coreSQLVector computes the SQL-text feature vector.
func coreSQLVector(sql string) ([]float64, error) {
	ts, err := sqlparse.TextStats(sql)
	if err != nil {
		return nil, err
	}
	return ts.Vector(), nil
}

// BaselinesResult quantifies the Sec. V arguments for rejecting the
// simpler techniques on the real workload.
type BaselinesResult struct {
	// KMeansAgreement is the Rand agreement between clustering queries by
	// plan features and clustering the same queries by performance
	// features. Values near 0.5 mean query-space clusters carry little
	// information about performance-space clusters (Sec. V-B).
	KMeansAgreement float64
	// PCARisk and CCARisk are elapsed-time predictive risks when kNN runs
	// in a PCA projection of raw query features (Sec. V-C) or a classical
	// CCA projection of raw features (Sec. V-D) instead of the KCCA
	// projection. The within-20%% rates expose what the risk metric hides:
	// Euclidean similarity on raw cardinalities matches only the very
	// largest queries and is useless at every other scale.
	PCARisk     float64
	PCAWithin20 float64
	CCARisk     float64
	CCAWithin20 float64
	// KCCARisk is the Experiment 1 reference.
	KCCARisk     float64
	KCCAWithin20 float64
}

// Baselines runs the Sec. V comparisons: K-means cluster agreement, and
// kNN prediction in PCA and classical-CCA projections of the RAW feature
// vectors (classical CCA is restricted to Euclidean dot products of the
// raw features — exactly the limitation Sec. V-D describes).
func (l *Lab) Baselines() (*BaselinesResult, error) {
	train, test, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	var xRaw, perfKern, perfRaw [][]float64
	for _, q := range train {
		xRaw = append(xRaw, features.PlanVectorRaw(q.Plan))
		perfKern = append(perfKern, features.PerfKernelVector(q.Metrics))
		perfRaw = append(perfRaw, features.PerfRawVector(q.Metrics))
	}
	x := features.Matrices(xRaw)
	yKern := features.Matrices(perfKern)
	yRaw := features.Matrices(perfRaw)

	res := &BaselinesResult{}

	// K-means: cluster by query features and by performance features,
	// then measure agreement.
	r := statutil.NewRNG(l.Seed, "kmeansbase")
	qc, err := cluster.KMeans(x, 4, r, 100)
	if err != nil {
		return nil, err
	}
	pc, err := cluster.KMeans(yKern, 4, r, 100)
	if err != nil {
		return nil, err
	}
	res.KMeansAgreement = cluster.AgreementScore(qc.Assign, pc.Assign)

	// Shared kNN evaluation: project train and test, predict elapsed time
	// by averaging 3 neighbors' raw metrics.
	evalProjection := func(trainProj [][]float64, project func(q []float64) []float64) (float64, float64) {
		pts := features.Matrices(trainProj)
		var pred, act []float64
		opt := knn.DefaultOptions()
		for _, q := range test {
			f := features.PlanVectorRaw(q.Plan)
			p, _, err := knn.Predict(pts, yRaw, project(f), opt)
			if err != nil {
				return 0, 0
			}
			pred = append(pred, p[exec.MetricElapsed])
			act = append(act, q.Metrics.ElapsedSec)
		}
		return eval.PredictiveRisk(pred, act), eval.WithinFactor(pred, act, 0.2)
	}

	// PCA of query features only.
	pm, err := pca.Fit(x, 8)
	if err != nil {
		return nil, err
	}
	var pcaTrain [][]float64
	for i := 0; i < x.Rows; i++ {
		pcaTrain = append(pcaTrain, pm.Project(x.Row(i)))
	}
	res.PCARisk, res.PCAWithin20 = evalProjection(pcaTrain, pm.Project)

	// Classical CCA between raw query features and performance features.
	cm, err := cca.Fit(x, yKern, 6, 1e-3)
	if err != nil {
		return nil, err
	}
	var ccaTrain [][]float64
	for i := 0; i < x.Rows; i++ {
		ccaTrain = append(ccaTrain, cm.ProjectX(x.Row(i)))
	}
	res.CCARisk, res.CCAWithin20 = evalProjection(ccaTrain, cm.ProjectX)

	exp1, err := l.Experiment1()
	if err != nil {
		return nil, err
	}
	res.KCCARisk = exp1.Risk[exec.MetricElapsed]
	res.KCCAWithin20 = exp1.Within20[exec.MetricElapsed]
	return res, nil
}

// Report renders the Sec. V baseline comparison.
func (r *BaselinesResult) Report() string {
	var sb strings.Builder
	sb.WriteString("Sec. V — why the simpler techniques were rejected (elapsed-time prediction)\n")
	fmt.Fprintf(&sb, "  K-means query-vs-performance cluster agreement (Rand): %.2f (1.0 = clusters correspond)\n", r.KMeansAgreement)
	fmt.Fprintf(&sb, "  kNN in PCA projection of raw features:  risk %s, within 20%%: %.0f%%\n", eval.FormatRisk(r.PCARisk), r.PCAWithin20*100)
	fmt.Fprintf(&sb, "  kNN in classical CCA projection:        risk %s, within 20%%: %.0f%%\n", eval.FormatRisk(r.CCARisk), r.CCAWithin20*100)
	fmt.Fprintf(&sb, "  kNN in KCCA projection (Experiment 1):  risk %s, within 20%%: %.0f%%\n", eval.FormatRisk(r.KCCARisk), r.KCCAWithin20*100)
	return sb.String()
}
