package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/regress"
)

// RegressionResult holds the Fig. 3 / Fig. 4 linear-regression baseline
// outcome for one metric.
type RegressionResult struct {
	Metric string
	// N is the number of (training) queries plotted, as in the paper's
	// figures, which plot the training set itself.
	N int
	// Negatives counts physically impossible negative predictions (the
	// paper: 76 negative elapsed times, 105 negative record counts).
	Negatives int
	// MostNegative is the worst negative prediction (the paper quotes
	// −82 seconds and −1.8 million records).
	MostNegative float64
	// OffBy10x counts predictions at least an order of magnitude off.
	OffBy10x int
	Risk     float64

	Pred, Act []float64
}

// regressionBaseline fits one linear model per metric on the raw plan
// feature vectors (counts and cardinality sums, exactly the paper's
// covariates) and evaluates on the same training queries, as Figs. 3-4 do.
func (l *Lab) regressionBaseline(metric int, name string) (*RegressionResult, error) {
	train, _, err := l.Exp1Split()
	if err != nil {
		return nil, err
	}
	var xRows [][]float64
	var y []float64
	for _, q := range train {
		xRows = append(xRows, features.PlanVectorRaw(q.Plan))
		y = append(y, q.Metrics.Vector()[metric])
	}
	x := features.Matrices(xRows)
	m, err := regress.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("experiments: regression fit: %w", err)
	}
	pred := m.PredictAll(x)
	res := &RegressionResult{
		Metric:   name,
		N:        len(y),
		Risk:     eval.PredictiveRisk(pred, y),
		OffBy10x: eval.OrdersOfMagnitudeOff(pred, y, 10),
		Pred:     pred,
		Act:      y,
	}
	for _, p := range pred {
		if p < 0 {
			res.Negatives++
			if p < res.MostNegative {
				res.MostNegative = p
			}
		}
	}
	return res, nil
}

// RegressionElapsed reproduces Fig. 3: regression-predicted vs actual
// elapsed times for the training queries.
func (l *Lab) RegressionElapsed() (*RegressionResult, error) {
	return l.regressionBaseline(0, "elapsed_time")
}

// RegressionRecords reproduces Fig. 4: regression-predicted vs actual
// records used.
func (l *Lab) RegressionRecords() (*RegressionResult, error) {
	return l.regressionBaseline(2, "records_used")
}

// Report renders the regression baseline in the style of Figs. 3-4.
func (r *RegressionResult) Report() string {
	var sb strings.Builder
	fig := "Fig. 3"
	if r.Metric == "records_used" {
		fig = "Fig. 4"
	}
	fmt.Fprintf(&sb, "%s — linear regression baseline for %s (%d training queries)\n", fig, r.Metric, r.N)
	fmt.Fprintf(&sb, "  predictive risk          %s\n", eval.FormatRisk(r.Risk))
	fmt.Fprintf(&sb, "  negative predictions     %d (most negative: %.3g)\n", r.Negatives, r.MostNegative)
	fmt.Fprintf(&sb, "  >= 10x off               %d / %d\n", r.OffBy10x, r.N)
	sb.WriteString(eval.ScatterLogLog(r.Pred, r.Act, 64, 20, "  regression-predicted vs actual"))
	return sb.String()
}
