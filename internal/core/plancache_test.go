package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// testPlanFunc is the deterministic parse + optimize pipeline the serving
// layer runs, rebuilt here so the core tests exercise the cache against the
// real planner without importing the serve package.
func testPlanFunc() PlanFunc {
	schema := catalog.TPCDS(1)
	planCfg := optimizer.DefaultConfig(exec.Research4().Processors)
	return func(sql string) (*dataset.Query, error) {
		ast, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		plan, err := optimizer.BuildPlan(ast, schema, 3, planCfg)
		if err != nil {
			return nil, err
		}
		return &dataset.Query{SQL: sql, AST: ast, Plan: plan}, nil
	}
}

func TestPlanCacheBasic(t *testing.T) {
	c := NewPlanCache(8, testPlanFunc())
	sql := pool(t).Queries[0].SQL
	missesBefore, hitsBefore := planMisses.Value(), planHits.Value()
	q1, err := c.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q1.PlanFeat == nil {
		t.Fatal("miss did not memoize the plan feature vector")
	}
	if planMisses.Value() != missesBefore+1 {
		t.Error("first Plan did not count a miss")
	}
	q2, err := c.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if planHits.Value() != hitsBefore+1 {
		t.Error("second Plan did not count a hit")
	}
	if q2 == q1 {
		t.Fatal("hit returned the same *Query — callers would share Metrics/Category")
	}
	if q2.Plan != q1.Plan || q2.AST != q1.AST {
		t.Error("hit did not share the immutable plan/AST")
	}
	if !equalBits(q1.PlanFeat, q2.PlanFeat) {
		t.Errorf("feature vectors differ across hit: %v vs %v", q1.PlanFeat, q2.PlanFeat)
	}
	// The observe path mutates its copy; the prototype must stay clean.
	q2.Metrics = exec.Metrics{ElapsedSec: 42}
	q2.Category = workload.WreckingBall
	q3, err := c.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Metrics != (exec.Metrics{}) || q3.Category != workload.Category(0) {
		t.Error("a caller's mutation leaked into the cached prototype")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	qs := pool(t).Queries
	c := NewPlanCache(2, testPlanFunc())
	sqls := []string{qs[0].SQL, qs[1].SQL, qs[2].SQL}
	for _, s := range sqls[:2] {
		if _, err := c.Plan(s); err != nil {
			t.Fatal(err)
		}
	}
	// Touch sqls[0] so sqls[1] becomes the eviction victim.
	if _, err := c.Plan(sqls[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(sqls[2]); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	misses := planMisses.Value()
	if _, err := c.Plan(sqls[1]); err != nil {
		t.Fatal(err)
	}
	if planMisses.Value() != misses+1 {
		t.Error("evicted entry should miss")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := NewPlanCache(-1, testPlanFunc())
	if c.Enabled() {
		t.Fatal("negative capacity should disable the cache")
	}
	sql := pool(t).Queries[0].SQL
	q, err := c.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.PlanFeat != nil {
		t.Error("disabled cache must not memoize features (honest uncached baseline)")
	}
	if _, err := c.Plan(sql); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache Len = %d, want 0", c.Len())
	}
}

func TestPlanCacheErrorsNotCached(t *testing.T) {
	calls := 0
	c := NewPlanCache(8, func(sql string) (*dataset.Query, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	})
	for want := 1; want <= 3; want++ {
		_, err := c.Plan("SELECT broken")
		if err == nil {
			t.Fatal("expected error")
		}
		if calls != want {
			t.Fatalf("call %d: plan func ran %d times (error was cached?)", want, calls)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after errors, want 0", c.Len())
	}
}

// TestPlanCachePredictionEquivalence is the headline contract: a prediction
// made from a cache-hit query is bit-identical to one made from a freshly
// planned query — same metrics bits, confidence, category, neighbors.
func TestPlanCachePredictionEquivalence(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlanFunc()
	c := NewPlanCache(0, plan)
	for _, q := range test {
		fresh, err := plan(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Plan(q.SQL); err != nil { // populate
			t.Fatal(err)
		}
		hit, err := c.Plan(q.SQL) // served from cache
		if err != nil {
			t.Fatal(err)
		}
		prFresh, err := p.PredictQuery(fresh)
		if err != nil {
			t.Fatal(err)
		}
		prHit, err := p.PredictQuery(hit)
		if err != nil {
			t.Fatal(err)
		}
		if !metricsBitsEqual(prFresh.Metrics, prHit.Metrics) {
			t.Errorf("%s: cached prediction metrics differ: %+v vs %+v", q.Template, prFresh.Metrics, prHit.Metrics)
		}
		if math.Float64bits(prFresh.Confidence) != math.Float64bits(prHit.Confidence) {
			t.Errorf("%s: confidence differs: %v vs %v", q.Template, prFresh.Confidence, prHit.Confidence)
		}
		if prFresh.Category != prHit.Category {
			t.Errorf("%s: category differs: %v vs %v", q.Template, prFresh.Category, prHit.Category)
		}
		for i := range prFresh.Neighbors {
			if prFresh.Neighbors[i] != prHit.Neighbors[i] {
				t.Errorf("%s: neighbor %d differs", q.Template, i)
			}
		}
	}
}

// TestPlanCacheObserveEquivalence feeds two sliding predictors the same
// observation stream — one through cache-planned queries, one through fresh
// plans — and checks the published models predict bit-identically after the
// same retrains. The cache is generation-independent: it survives every hot
// swap untouched.
func TestPlanCacheObserveEquivalence(t *testing.T) {
	ds := pool(t)
	plan := testPlanFunc()
	c := NewPlanCache(0, plan)

	mk := func() *SlidingPredictor {
		s, err := NewSliding(60, 30, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cached, fresh := mk(), mk()
	for i, q := range ds.Queries[:90] {
		qc, err := c.Plan(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		qf, err := plan(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			s *SlidingPredictor
			q *dataset.Query
		}{{cached, qc}, {fresh, qf}} {
			pair.q.Metrics = q.Metrics
			pair.q.Category = workload.Categorize(q.Metrics.ElapsedSec)
			if err := pair.s.Observe(pair.q); err != nil {
				t.Fatalf("observe %d: %v", i, err)
			}
		}
	}
	if cached.Retrains() != fresh.Retrains() {
		t.Fatalf("retrain counts diverge: %d vs %d", cached.Retrains(), fresh.Retrains())
	}
	if cached.Retrains() < 2 {
		t.Fatalf("want ≥2 retrains (hot swaps) during the stream, got %d", cached.Retrains())
	}
	for _, q := range ds.Queries[90:110] {
		qq, err := c.Plan(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		prC, err := cached.PredictQuery(qq)
		if err != nil {
			t.Fatal(err)
		}
		prF, err := fresh.PredictQuery(qq)
		if err != nil {
			t.Fatal(err)
		}
		if !metricsBitsEqual(prC.Metrics, prF.Metrics) {
			t.Errorf("post-swap predictions diverge for %s: %+v vs %+v", q.Template, prC.Metrics, prF.Metrics)
		}
	}
}

// TestPlanCacheConcurrent hammers one cache from concurrent predict-style
// and observe-style users while a sliding predictor retrains — the -race
// exercise for the "one cache serves every path" design.
func TestPlanCacheConcurrent(t *testing.T) {
	ds := pool(t)
	c := NewPlanCache(16, testPlanFunc()) // small: force concurrent evictions
	s, err := NewSliding(60, 30, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:30] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // predictors
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q, err := c.Plan(ds.Queries[(w*17+i)%len(ds.Queries)].SQL)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.PredictQuery(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // observer: drives retrains (hot swaps) under load
		defer wg.Done()
		for _, src := range ds.Queries[30:150] {
			q, err := c.Plan(src.SQL)
			if err != nil {
				t.Error(err)
				return
			}
			q.Metrics = src.Metrics
			q.Category = workload.Categorize(q.Metrics.ElapsedSec)
			if err := s.Observe(q); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Retrains() < 3 {
		t.Errorf("want retrains under concurrent load, got %d", s.Retrains())
	}
}

func metricsBitsEqual(a, b exec.Metrics) bool {
	av := []float64{a.ElapsedSec, a.RecordsAccessed, a.RecordsUsed, a.DiskIOs, a.MessageCount, a.MessageBytes}
	bv := []float64{b.ElapsedSec, b.RecordsAccessed, b.RecordsUsed, b.DiskIOs, b.MessageCount, b.MessageBytes}
	return equalBits(av, bv)
}

// BenchmarkPlanCache measures the SQL → planned-query pipeline with the
// cache hitting versus disabled — the per-request planning cost the serving
// hot path pays. Feeds BENCH_serve.json.
func BenchmarkPlanCache(b *testing.B) {
	sql := pool(b).Queries[0].SQL
	b.Run("hit", func(b *testing.B) {
		c := NewPlanCache(0, testPlanFunc())
		if _, err := c.Plan(sql); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Plan(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		c := NewPlanCache(-1, testPlanFunc())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Plan(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}
