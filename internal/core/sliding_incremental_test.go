package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// kccaFull / kccaInc mirror the kcca layer's retrain-path counters; the
// tests below assert on their deltas (the counters are process-global).
var (
	kccaFull = obs.GetCounter("kcca.retrain.full")
	kccaInc  = obs.GetCounter("kcca.retrain.incremental")
)

// TestSlidingIncrementalMatchesFull is the core-level equivalence test for
// the incremental retrain path: every time the sliding predictor serves a
// retrain incrementally, its predictions must match a from-scratch
// core.Train on the identical window (at the same frozen kernel scales —
// the τ-drift guard separately bounds how far those may sit from fresh
// heuristics) within the documented 1e-6 relative tolerance. When the guard
// fires, the sliding predictor runs the full path, which is bit-identical
// to core.Train by construction (kcca.TrainFull ≡ kcca.Train).
func TestSlidingIncrementalMatchesFull(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(120, 20, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	probes := ds.Queries[400:420]

	incRounds := 0
	for i, q := range ds.Queries[:400] {
		before := s.Retrains()
		incBefore := kccaInc.Value()
		if err := s.Observe(q); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		if s.Retrains() == before || kccaInc.Value() == incBefore {
			continue // no retrain, or it went down the full path
		}
		incRounds++
		// Reference: a full training on the same window with the kernel
		// scales pinned to the frozen ones the incremental path used.
		m := s.Current().Model()
		refOpt := DefaultOptions()
		refOpt.Incremental = false
		refOpt.KCCA.TauX, refOpt.KCCA.TauY = m.TauX, m.TauY
		ref, err := Train(s.Window(), refOpt)
		if err != nil {
			t.Fatalf("observe %d: reference train: %v", i, err)
		}
		for pi, tq := range probes {
			got, err := s.PredictQuery(tq)
			if err != nil {
				t.Fatalf("observe %d: incremental predict: %v", i, err)
			}
			want, err := ref.PredictQuery(tq)
			if err != nil {
				t.Fatalf("observe %d: reference predict: %v", i, err)
			}
			gv := features.PerfRawVector(got.Metrics)
			wv := features.PerfRawVector(want.Metrics)
			for k := range wv {
				scale := math.Abs(wv[k])
				if scale < 1 {
					scale = 1
				}
				if rel := math.Abs(gv[k]-wv[k]) / scale; rel > 1e-6 {
					t.Fatalf("observe %d, probe %d, metric %d: incremental %v vs full %v (rel %v)",
						i, pi, k, gv[k], wv[k], rel)
				}
			}
		}
	}
	// The steady-state slides must actually exercise the incremental path —
	// otherwise this test verified nothing.
	if incRounds < 2 {
		t.Fatalf("only %d incremental retrains over 400 observations; the incremental path is not engaging", incRounds)
	}
}

// TestSlidingRetrainCounters asserts the full/incremental split via the
// kcca obs counters: the growing window forces full trains, the
// steady-state slides go incremental, and the sum accounts for every
// retrain the sliding predictor reports.
func TestSlidingRetrainCounters(t *testing.T) {
	ds := pool(t)
	fullBefore, incBefore := kccaFull.Value(), kccaInc.Value()
	s, err := NewSliding(100, 25, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range ds.Queries[:350] {
		if err := s.Observe(q); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	full := kccaFull.Value() - fullBefore
	inc := kccaInc.Value() - incBefore
	if got := full + inc; got != int64(s.Retrains()) {
		t.Errorf("counters account for %d retrains (%d full + %d incremental), predictor reports %d",
			got, full, inc, s.Retrains())
	}
	if full < 1 {
		t.Error("expected at least one full training (the growing window cannot retrain incrementally)")
	}
	if inc < 1 {
		t.Error("expected at least one incremental retrain in steady state")
	}
}

// TestSlidingPredictsDuringRetrains is the race test for the
// lock-free serving contract: queries keep being answered (by the previous
// model generation) while observations drive retrains, with no data races
// (run under -race in CI next to the hot-swap suite) and no prediction ever
// failing once the first model exists.
func TestSlidingPredictsDuringRetrains(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(60, 15, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:60] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Ready() {
		t.Fatal("not ready after priming")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := ds.Queries[(w*37+i)%len(ds.Queries)]
				if _, err := s.PredictQuery(q); err != nil {
					t.Errorf("worker %d: predict: %v", w, err)
					return
				}
			}
		}(w)
	}
	for i, q := range ds.Queries[60:300] {
		if err := s.Observe(q); err != nil {
			t.Errorf("observe %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if s.Retrains() < 10 {
		t.Errorf("only %d retrains; the predictors were not racing anything", s.Retrains())
	}
}
