package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/statutil"
)

// FeatureInfluence quantifies how much each query feature contributes to
// the performance model, using the paper's Sec. VII-C.2 technique: since
// reversing the KCCA projection is computationally difficult, compare the
// similarity of each feature of a test query with the corresponding
// features of its nearest neighbors. Features that are consistently close
// between a query and its neighbors are the ones the model effectively
// matches on; the paper found "the counts and cardinalities of the join
// operators contribute the most".
type FeatureInfluence struct {
	// Name is the feature's name.
	Name string
	// Score in [0, 1]: mean similarity between test queries and their
	// neighbors on this feature, where 1 means the feature is always
	// (near-)identical between a query and its neighbors.
	Score float64
}

// Influences computes feature influences over a set of probe queries.
// Features whose values never vary across the training set are reported
// with score 0 (they cannot influence neighbor selection).
func (p *Predictor) Influences(probe []*dataset.Query, names []string) ([]FeatureInfluence, error) {
	if len(probe) == 0 {
		return nil, errors.New("core: no probe queries")
	}
	nf := p.model.X.Cols
	if len(names) != nf {
		return nil, errors.New("core: feature name count does not match model features")
	}
	// Per-feature scale: standard deviation over the training set.
	scales := make([]float64, nf)
	varying := make([]bool, nf)
	for j := 0; j < nf; j++ {
		col := p.model.X.Col(j)
		sd := math.Sqrt(linalg.Variance(col))
		scales[j] = sd
		varying[j] = sd > 1e-12
	}

	// For each probe query, measure per-feature similarity to its actual
	// neighbors AND to randomly drawn training queries. The influence of a
	// feature is the excess neighbor similarity over the random baseline:
	// features the model matches on are much closer among neighbors than
	// among arbitrary pairs, while features that are globally near-constant
	// (or ignored) show no excess.
	nbSums := make([]float64, nf)
	randSums := make([]float64, nf)
	nbCount, randCount := 0, 0
	r := statutil.NewRNG(29, "influence")
	n := p.model.N()
	for _, q := range probe {
		f, err := queryFeature(q, p.opt.Features)
		if err != nil {
			return nil, err
		}
		pred, err := p.PredictVector(f)
		if err != nil {
			return nil, err
		}
		accumulate := func(row []float64, sums []float64) {
			for j := 0; j < nf; j++ {
				if !varying[j] {
					continue
				}
				d := math.Abs(f[j]-row[j]) / scales[j]
				sums[j] += math.Exp(-d)
			}
		}
		for _, nb := range pred.Neighbors {
			accumulate(p.model.X.Row(nb.Index), nbSums)
			nbCount++
		}
		for k := 0; k < len(pred.Neighbors); k++ {
			accumulate(p.model.X.Row(r.Intn(n)), randSums)
			randCount++
		}
	}
	if nbCount == 0 || randCount == 0 {
		return nil, errors.New("core: no neighbors found")
	}
	out := make([]FeatureInfluence, nf)
	for j := 0; j < nf; j++ {
		score := 0.0
		if varying[j] {
			score = nbSums[j]/float64(nbCount) - randSums[j]/float64(randCount)
			if score < 0 {
				score = 0
			}
		}
		out[j] = FeatureInfluence{Name: names[j], Score: score}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}
