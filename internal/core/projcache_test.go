package core

import (
	"testing"
)

func TestProjCacheBasic(t *testing.T) {
	c := newProjCache(4)
	f := []float64{1, 2, 3}
	if _, _, ok := c.get(f); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(f, []float64{9, 8}, 0.5)
	proj, maxK, ok := c.get(f)
	if !ok || maxK != 0.5 || len(proj) != 2 || proj[0] != 9 {
		t.Fatalf("get = %v, %v, %v", proj, maxK, ok)
	}
	// A different vector of the same length must miss.
	if _, _, ok := c.get([]float64{1, 2, 4}); ok {
		t.Fatal("hit for a vector that was never cached")
	}
}

func TestProjCacheLRUEviction(t *testing.T) {
	c := newProjCache(3)
	vecs := [][]float64{{1}, {2}, {3}, {4}}
	for i, f := range vecs[:3] {
		c.put(f, []float64{float64(i)}, 1)
	}
	// Touch {1} so {2} becomes the eviction victim.
	if _, _, ok := c.get(vecs[0]); !ok {
		t.Fatal("expected hit for {1}")
	}
	c.put(vecs[3], []float64{3}, 1)
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, _, ok := c.get(vecs[1]); ok {
		t.Fatal("{2} should have been evicted as least recently used")
	}
	for _, f := range [][]float64{vecs[0], vecs[2], vecs[3]} {
		if _, _, ok := c.get(f); !ok {
			t.Fatalf("expected %v to survive eviction", f)
		}
	}
}

func TestProjCacheNilSafe(t *testing.T) {
	var c *projCache
	c.put([]float64{1}, []float64{2}, 3) // must not panic
	if _, _, ok := c.get([]float64{1}); ok {
		t.Fatal("nil cache cannot hit")
	}
}

// TestPredictCacheEquivalence checks the user-visible contract: repeating a
// prediction must return identical results served from the cache, and the
// hit counter must move.
func TestPredictCacheEquivalence(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := test[0]
	first, err := p.PredictQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := projHits.Value()
	second, err := p.PredictQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if projHits.Value() == hitsBefore {
		t.Error("repeated prediction did not hit the projection cache")
	}
	if first.Metrics != second.Metrics || first.Confidence != second.Confidence ||
		first.Category != second.Category {
		t.Errorf("cached prediction differs: %+v vs %+v", first, second)
	}
	if len(first.Neighbors) != len(second.Neighbors) {
		t.Fatalf("neighbor counts differ: %d vs %d", len(first.Neighbors), len(second.Neighbors))
	}
	for i := range first.Neighbors {
		if first.Neighbors[i] != second.Neighbors[i] {
			t.Errorf("neighbor %d differs: %+v vs %+v", i, first.Neighbors[i], second.Neighbors[i])
		}
	}
}

// TestRetrainSwapsCacheGeneration checks that a retrain publishes a new
// predictor with its own (empty) cache — stale projections from the old
// model generation can never serve against the new one.
func TestRetrainSwapsCacheGeneration(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(60, 30, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:30] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	gen1 := s.Current()
	if _, err := s.PredictQuery(ds.Queries[100]); err != nil {
		t.Fatal(err)
	}
	if gen1.cache.len() == 0 {
		t.Fatal("prediction did not populate the generation's cache")
	}
	for _, q := range ds.Queries[30:60] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	gen2 := s.Current()
	if gen2 == gen1 {
		t.Fatal("retrain did not publish a new predictor generation")
	}
	if gen2.cache == gen1.cache {
		t.Fatal("new generation shares the old generation's projection cache")
	}
	if gen2.cache.len() != 0 {
		t.Errorf("new generation's cache should start empty, has %d entries", gen2.cache.len())
	}
}

// BenchmarkPredictVector measures single-query prediction with the
// projection cache hitting (repeated plan) versus disabled (every call pays
// the O(N·d) kernel cross vector). Feeds BENCH_retrain.json.
func BenchmarkPredictVector(b *testing.B) {
	train, test := trainTest(b)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	f, err := queryFeature(test[0], PlanFeatures)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		if _, err := p.PredictVector(f); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.PredictVector(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		bare := *p
		bare.cache = nil
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bare.PredictVector(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}
