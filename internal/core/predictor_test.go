package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/knn"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// testPool is shared across tests (generation dominates test time).
var testPool *dataset.Dataset

func pool(t testing.TB) *dataset.Dataset {
	t.Helper()
	if testPool == nil {
		ds, err := dataset.Generate(dataset.GenConfig{
			Seed: 11, DataSeed: 3, Machine: exec.Research4(),
			Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 480,
		})
		if err != nil {
			t.Fatal(err)
		}
		testPool = ds
	}
	return testPool
}

func trainTest(t testing.TB) (train, test []*dataset.Query) {
	t.Helper()
	ds := pool(t)
	r := statutil.NewRNG(4, "coretest")
	test, err := ds.SampleMix(r, 20, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(test), test
}

func TestTrainAndPredict(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != len(train) {
		t.Errorf("N = %d, want %d", p.N(), len(train))
	}
	var pred, act []float64
	for _, q := range test {
		pr, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Metrics.ElapsedSec < 0 {
			t.Errorf("negative elapsed prediction: %v", pr.Metrics.ElapsedSec)
		}
		if pr.Confidence <= 0 || pr.Confidence > 1 {
			t.Errorf("confidence out of range: %v", pr.Confidence)
		}
		if len(pr.Neighbors) != 3 {
			t.Errorf("neighbors = %d, want 3", len(pr.Neighbors))
		}
		pred = append(pred, pr.Metrics.ElapsedSec)
		act = append(act, q.Metrics.ElapsedSec)
	}
	// With a dedicated pool the risk should be clearly positive.
	if risk := eval.PredictiveRisk(pred, act); risk < 0.3 {
		t.Errorf("elapsed predictive risk = %v, want reasonable accuracy", risk)
	}
}

func TestPredictionsAreNonNegativeAcrossMetrics(t *testing.T) {
	// kNN averaging of nonnegative metrics can never go negative — the
	// structural advantage over linear regression.
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range test {
		pr, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range pr.Metrics.Vector() {
			if v < 0 {
				t.Fatalf("metric %d negative: %v", i, v)
			}
		}
	}
}

func TestTwoStepPredict(t *testing.T) {
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.TwoStep = true
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	correctCat := 0
	for _, q := range test {
		pr, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Category
		if want == workload.WreckingBall {
			want = workload.BowlingBall
		}
		if pr.Category == want {
			correctCat++
		}
	}
	if correctCat < len(test)*2/3 {
		t.Errorf("two-step classified only %d/%d query types correctly", correctCat, len(test))
	}
}

func TestSQLFeaturePredictor(t *testing.T) {
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.Features = SQLFeatures
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.PredictQuery(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if pr.Metrics.ElapsedSec < 0 {
		t.Error("negative prediction")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultOptions()); err == nil {
		t.Error("empty training set accepted")
	}
	train, _ := trainTest(t)
	bad := &dataset.Query{ID: 999, SQL: "SELECT"}
	opt := DefaultOptions()
	if _, err := Train(append([]*dataset.Query{bad}, train[:10]...), opt); err == nil {
		t.Error("query without plan accepted under plan features")
	}
}

func TestConfidenceDropsForAnomalousQueries(t *testing.T) {
	// A feature vector far outside the training distribution must get
	// lower confidence than a typical training query (Sec. VII-C.3).
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	typical, err := p.PredictQuery(test[0])
	if err != nil {
		t.Fatal(err)
	}
	// Build an absurd feature vector: everything large.
	weird := make([]float64, len(mustFeature(t, test[0])))
	for i := range weird {
		weird[i] = 500
	}
	anomalous, err := p.PredictVector(weird)
	if err != nil {
		t.Fatal(err)
	}
	if anomalous.Confidence >= typical.Confidence {
		t.Errorf("anomalous confidence %v should be below typical %v",
			anomalous.Confidence, typical.Confidence)
	}
}

func mustFeature(t *testing.T, q *dataset.Query) []float64 {
	t.Helper()
	f, err := queryFeature(q, PlanFeatures)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFeatureKindString(t *testing.T) {
	if PlanFeatures.String() != "query-plan" || SQLFeatures.String() != "sql-text" {
		t.Error("feature kind names wrong")
	}
}

func TestInfluences(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0)
	for i := 0; i < 24; i++ {
		names = append(names, "f")
	}
	// Wrong name count is rejected.
	if _, err := p.Influences(test, names[:3]); err == nil {
		t.Error("short name list accepted")
	}
	// Real feature names.
	inf, err := p.Influences(test, featureNamesForTest())
	if err != nil {
		t.Fatal(err)
	}
	if len(inf) == 0 {
		t.Fatal("no influences")
	}
	for i := 1; i < len(inf); i++ {
		if inf[i].Score > inf[i-1].Score {
			t.Fatal("influences not sorted")
		}
	}
	for _, f := range inf {
		if f.Score < 0 || f.Score > 1 {
			t.Errorf("score out of range: %+v", f)
		}
	}
	// Cardinality features must dominate: the top feature should be a
	// cardinality sum, not an operator count.
	if inf[0].Score == 0 {
		t.Error("top influence is zero")
	}
	if _, err := p.Influences(nil, featureNamesForTest()); err == nil {
		t.Error("empty probe accepted")
	}
}

func featureNamesForTest() []string {
	return features.PlanFeatureNames()
}

func TestWithKNNVariants(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Model() == nil {
		t.Fatal("Model() returned nil")
	}
	// Varying kNN options must not require retraining and must change
	// behaviour sensibly.
	k5 := p.WithKNN(knn.Options{K: 5, Distance: knn.Euclidean, Weighting: knn.EqualWeight})
	pred5, err := k5.PredictQuery(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pred5.Neighbors) != 5 {
		t.Errorf("neighbors = %d, want 5", len(pred5.Neighbors))
	}
	cos := p.WithKNN(knn.Options{K: 3, Distance: knn.Cosine, Weighting: knn.DistanceWeight})
	if _, err := cos.PredictQuery(test[0]); err != nil {
		t.Fatal(err)
	}
	// Zero-valued options fall back to defaults.
	def := p.WithKNN(knn.Options{})
	predDef, err := def.PredictQuery(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(predDef.Neighbors) != 3 {
		t.Errorf("default neighbors = %d, want 3", len(predDef.Neighbors))
	}
	// The underlying predictor is untouched.
	orig, err := p.PredictQuery(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Neighbors) != 3 {
		t.Error("WithKNN mutated the original predictor")
	}
}

func TestTwoStepTieBreaking(t *testing.T) {
	// With k=2 neighbors a category tie is guaranteed whenever the two
	// nearest neighbors have different types; the vote must break toward
	// the nearer neighbor's category (exercising nearestRank).
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.TwoStep = true
	opt.KNN = knn.Options{K: 2, Distance: knn.Euclidean, Weighting: knn.EqualWeight}
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range test {
		pred, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Category < workload.Feather || pred.Category > workload.BowlingBall {
			t.Errorf("two-step category out of range: %v", pred.Category)
		}
	}
}
