package core

import (
	"testing"

	"repro/internal/obs"
)

// TestEquivalenceWithObsEnabled re-runs the end-to-end batch equivalence
// test with instrumentation on: latency histograms and span timers across
// train/predict must not perturb bit-for-bit predictions.
func TestEquivalenceWithObsEnabled(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	t.Run("PredictBatch", TestPredictBatchMatchesSerialLoop)
}
