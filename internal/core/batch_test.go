package core

import (
	"runtime"
	"testing"

	"repro/internal/parallel"
)

// TestPredictBatchMatchesSerialLoop is the end-to-end equivalence test for
// the Fig. 7 pipeline: batch prediction across worker counts must be
// positionally bit-identical to a one-worker PredictQuery loop — metrics,
// category, confidence, and the neighbor lists themselves.
func TestPredictBatchMatchesSerialLoop(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
	want := make([]*Prediction, len(test))
	for i, q := range test {
		pr, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pr
	}

	for _, w := range []int{1, 2, 7, runtime.NumCPU()} {
		parallel.SetMaxProcs(w)
		got, err := p.PredictBatch(test)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d predictions, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i].Metrics != want[i].Metrics {
				t.Fatalf("workers=%d query %d: metrics %+v, serial %+v", w, i, got[i].Metrics, want[i].Metrics)
			}
			if got[i].Category != want[i].Category {
				t.Fatalf("workers=%d query %d: category %v, serial %v", w, i, got[i].Category, want[i].Category)
			}
			if got[i].Confidence != want[i].Confidence {
				t.Fatalf("workers=%d query %d: confidence %v, serial %v", w, i, got[i].Confidence, want[i].Confidence)
			}
			if len(got[i].Neighbors) != len(want[i].Neighbors) {
				t.Fatalf("workers=%d query %d: %d neighbors, serial %d", w, i, len(got[i].Neighbors), len(want[i].Neighbors))
			}
			for j := range got[i].Neighbors {
				if got[i].Neighbors[j] != want[i].Neighbors[j] {
					t.Fatalf("workers=%d query %d: neighbor %d = %+v, serial %+v", w, i, j, got[i].Neighbors[j], want[i].Neighbors[j])
				}
			}
		}
	}
	parallel.SetMaxProcs(0)
}

// TestTrainDeterministicAcrossWorkerCounts retrains the full KCCA model at
// several worker counts and checks the training projections are identical:
// parallel training must not perturb the model itself.
func TestTrainDeterministicAcrossWorkerCounts(t *testing.T) {
	train, _ := trainTest(t)
	sub := train[:60]

	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
	ref, err := Train(sub, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{2, runtime.NumCPU()} {
		parallel.SetMaxProcs(w)
		p, err := Train(sub, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !p.Model().QueryProj.Equal(ref.Model().QueryProj, 0) {
			t.Fatalf("workers=%d: query projection differs from serial training", w)
		}
		if !p.Model().PerfProj.Equal(ref.Model().PerfProj, 0) {
			t.Fatalf("workers=%d: performance projection differs from serial training", w)
		}
	}
	parallel.SetMaxProcs(0)
}

// TestPredictBatchEmpty covers the degenerate batch.
func TestPredictBatchEmpty(t *testing.T) {
	train, _ := trainTest(t)
	p, err := Train(train[:40], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d predictions", len(got))
	}
}
