package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// FuzzLoad feeds arbitrary (and mutated-valid) byte streams to Load. The
// contract under test: Load either returns a working predictor or an
// error — it must never panic, whatever the bytes, and a predictor it does
// accept must survive prediction and a save round trip.
func FuzzLoad(f *testing.F) {
	train, _ := trainTest(f)
	p, err := Train(train[:40], DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := p.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add(valid.Bytes()[:16])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	// Framed-format seeds: a bare header, a CRC-corrupted frame, and the
	// pre-v2 raw-gob layout (must be rejected, not mis-decoded).
	f.Add(valid.Bytes()[:frameHeaderLen])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	if w, err := p.toWire(); err == nil {
		var legacy bytes.Buffer
		if gob.NewEncoder(&legacy).Encode(w) == nil {
			f.Add(legacy.Bytes())
		}
	}

	inputDims := p.Model().X.Cols
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything Load accepts must be usable.
		if loaded.N() < 1 {
			t.Fatal("loaded predictor has no training rows")
		}
		if loaded.Model().X.Cols == inputDims {
			if _, err := loaded.PredictVector(make([]float64, inputDims)); err != nil {
				t.Fatalf("accepted predictor cannot predict: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := loaded.Save(&buf); err != nil {
			t.Fatalf("accepted predictor cannot re-save: %v", err)
		}
	})
}
