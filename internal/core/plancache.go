package core

import (
	"container/list"
	"sync"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/obs"
)

// Plan-cache metrics: hit rate is the headline number for template
// workloads, where the same SQL text recurs across requests (and every hit
// skips a full parse + optimize pipeline).
var (
	planHits   = obs.GetCounter("core.plancache.hits")
	planMisses = obs.GetCounter("core.plancache.misses")
)

// defaultPlanCacheCap bounds the plan cache. Entries are one parsed AST plus
// one plan tree plus one feature vector (a few KiB); template workloads
// cycle through a bounded set of rendered SQL strings, so this comfortably
// covers them while bounding adversarial churn.
const defaultPlanCacheCap = 4096

// PlanCache memoizes the deterministic SQL → planned-query pipeline — the
// most expensive per-request work left on the serving hot path now that
// prediction itself is microseconds. Parsing and planning a query is pure in
// (SQL, schema, data seed, planner config), so the cache needs no
// invalidation: unlike the per-generation projection cache, it survives hot
// swaps untouched (plans don't change when the model does) and one cache
// serves the predict path, the observe path, WAL replay, and the shadow
// scorer alike.
//
// A hit returns a shallow copy of the cached prototype: SQL, AST, Plan, and
// the memoized PlanFeat vector are shared read-only, while the struct itself
// is fresh so callers can set Metrics and Category (the observe path does)
// without touching the cache. The prototype's PlanFeat is extracted once at
// insert, so every downstream feature extraction — prediction, window
// retrains, fingerprint routing — skips the plan walk too.
//
// Lookup is by 64-bit FNV-1a over the SQL text, guarded by an exact string
// compare so a fingerprint collision degrades to a miss rather than a wrong
// plan. Plan failures are never cached (errors stay as cheap or expensive as
// the pipeline makes them, and the bounded LRU is not churned by garbage).
// Safe for concurrent use.
type PlanCache struct {
	plan PlanFunc
	// disabled is the capacity<0 passthrough: every Plan call runs the
	// pipeline, nothing is memoized (the honest no-cache baseline).
	disabled bool

	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *planEntry
	byFP  map[uint64]*list.Element
}

type planEntry struct {
	fp  uint64
	sql string
	// proto is the immutable prototype: exactly what the plan pipeline
	// returned, with PlanFeat memoized. Hits hand out shallow copies.
	proto *dataset.Query
}

// NewPlanCache wraps a deterministic plan pipeline in a bounded LRU.
// capacity 0 selects the default; a negative capacity disables caching
// entirely (Plan becomes a passthrough — the uncached baseline for
// benchmarks). The PlanFunc must be pure in the SQL text and must return a
// freshly planned, unexecuted query (Metrics and Category unset), which is
// what every planner in this repository does.
func NewPlanCache(capacity int, plan PlanFunc) *PlanCache {
	c := &PlanCache{plan: plan}
	if capacity < 0 {
		c.disabled = true
		return c
	}
	if capacity == 0 {
		capacity = defaultPlanCacheCap
	}
	c.cap = capacity
	c.order = list.New()
	c.byFP = make(map[uint64]*list.Element)
	return c
}

// Plan returns the planned query for sql, from cache when possible. It is
// itself a PlanFunc, so a cache drops into every seam that takes one (WAL
// replay, snapshot restore, the serving handlers).
func (c *PlanCache) Plan(sql string) (*dataset.Query, error) {
	if c.disabled {
		return c.plan(sql)
	}
	fp := fingerprintString(sql)
	c.mu.Lock()
	if el, found := c.byFP[fp]; found {
		e := el.Value.(*planEntry)
		if e.sql == sql {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			planHits.Inc()
			q := *e.proto
			return &q, nil
		}
		// Fingerprint collision: never serve another query's plan.
	}
	c.mu.Unlock()
	planMisses.Inc()
	q, err := c.plan(sql)
	if err != nil {
		return nil, err
	}
	if q.PlanFeat == nil && q.Plan != nil {
		q.PlanFeat = features.PlanVector(q.Plan)
	}
	proto := *q
	c.put(fp, sql, &proto)
	return q, nil
}

// put inserts a prototype, evicting the least recently used entry at
// capacity. At most one SQL string per fingerprint is cached; a colliding
// insert overwrites (the newer query is the one traffic is sending).
func (c *PlanCache) put(fp uint64, sql string, proto *dataset.Query) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.byFP[fp]; found {
		e := el.Value.(*planEntry)
		e.sql = sql
		e.proto = proto
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byFP, oldest.Value.(*planEntry).fp)
	}
	e := &planEntry{fp: fp, sql: sql, proto: proto}
	c.byFP[fp] = c.order.PushFront(e)
}

// Len reports the current entry count (0 when disabled).
func (c *PlanCache) Len() int {
	if c.disabled {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Enabled reports whether the cache memoizes (false for the capacity<0
// passthrough).
func (c *PlanCache) Enabled() bool { return !c.disabled }

// Cap reports the entry bound (0 when disabled).
func (c *PlanCache) Cap() int {
	if c.disabled {
		return 0
	}
	return c.cap
}

// fingerprintString is FNV-1a over the bytes of a string — the string-keyed
// sibling of Fingerprint, used by the plan cache to key SQL text.
func fingerprintString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
