package core

import (
	"math"

	"repro/internal/dataset"
)

// Fingerprint is the repository's one template-fingerprint function: 64-bit
// FNV-1a over the IEEE-754 bit patterns of a feature vector. Two queries
// that differ only in constants the feature vector does not encode (the
// recurring-template case) fingerprint identically, which is exactly what
// both consumers want:
//
//   - the per-generation projection cache keys cached projections by it
//     (guarded by an exact vector compare, so a collision degrades to a
//     cache miss, never a wrong prediction);
//   - the consistent-hash shard partitioner keys ring lookups by it, so a
//     template's traffic — and therefore its training observations — stick
//     to one shard.
//
// Hashing bit patterns rather than values means 0.0 and −0.0 fingerprint
// apart; every consumer that needs equality semantics pairs the fingerprint
// with the same bit-level comparison. The function is a pure deterministic
// map with no process state: the same vector fingerprints identically
// across runs, hosts, and packages (asserted by the cross-package
// determinism test in internal/shard).
func Fingerprint(f []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range f {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// QueryFingerprint extracts the feature vector of a planned query (per the
// given feature kind) and returns its Fingerprint. It fails exactly when
// feature extraction does (ErrNoPlan for plan features on an unplanned
// query, parse errors for SQL-text features).
func QueryFingerprint(q *dataset.Query, kind FeatureKind) (uint64, error) {
	f, err := queryFeature(q, kind)
	if err != nil {
		return 0, err
	}
	return Fingerprint(f), nil
}
