package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != p.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), p.N())
	}
	// Predictions must be bit-identical.
	for _, q := range test {
		a, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics != b.Metrics || a.Confidence != b.Confidence || a.Category != b.Category {
			t.Fatalf("prediction changed after round trip:\n%+v\n%+v", a, b)
		}
	}
}

func TestSaveLoadTwoStep(t *testing.T) {
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.TwoStep = true
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.sub) != len(p.sub) {
		t.Fatalf("sub-models = %d, want %d", len(loaded.sub), len(p.sub))
	}
	for _, q := range test[:5] {
		a, _ := p.PredictQuery(q)
		b, _ := loaded.PredictQuery(q)
		if a.Metrics != b.Metrics || a.Category != b.Category {
			t.Fatal("two-step prediction changed after round trip")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// TestLoadRejectsCorruptWire hand-corrupts each validated field of the wire
// form and checks Load fails with an error instead of panicking later.
func TestLoadRejectsCorruptWire(t *testing.T) {
	train, _ := trainTest(t)
	p, err := Train(train[:40], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.toWire()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(w *predictorWire) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		corrupt func(w *predictorWire)
	}{
		{"truncated metric data", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Data = m.Data[:len(m.Data)-3]
			w.PerfRaw = &m
		}},
		{"metric rows disagree with model", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Rows--
			m.Data = m.Data[:m.Rows*m.Cols]
			w.PerfRaw = &m
		}},
		{"wrong metric column count", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Cols = 2
			m.Data = m.Data[:m.Rows*m.Cols]
			w.PerfRaw = &m
		}},
		{"missing categories", func(w *predictorWire) { w.Cats = w.Cats[:3] }},
		{"nonpositive confidence scale", func(w *predictorWire) { w.ConfScale = 0 }},
		{"NaN kernel scale", func(w *predictorWire) { w.KernelScale = math.NaN() }},
		{"truncated nested model bytes", func(w *predictorWire) { w.ModelBytes = w.ModelBytes[:len(w.ModelBytes)/2] }},
		{"empty nested model bytes", func(w *predictorWire) { w.ModelBytes = nil }},
	}
	for _, tc := range cases {
		w := *base
		tc.corrupt(&w)
		if _, err := Load(bytes.NewReader(encode(&w))); err == nil {
			t.Errorf("%s: corrupted model loaded without error", tc.name)
		}
	}
	// The uncorrupted wire must still load (the cases above fail for the
	// right reason, not because of the re-encoding).
	if _, err := Load(bytes.NewReader(encode(base))); err != nil {
		t.Fatalf("pristine re-encoded model rejected: %v", err)
	}
}
