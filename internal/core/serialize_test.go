package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != p.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), p.N())
	}
	// Predictions must be bit-identical.
	for _, q := range test {
		a, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics != b.Metrics || a.Confidence != b.Confidence || a.Category != b.Category {
			t.Fatalf("prediction changed after round trip:\n%+v\n%+v", a, b)
		}
	}
}

func TestSaveLoadTwoStep(t *testing.T) {
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.TwoStep = true
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.sub) != len(p.sub) {
		t.Fatalf("sub-models = %d, want %d", len(loaded.sub), len(p.sub))
	}
	for _, q := range test[:5] {
		a, _ := p.PredictQuery(q)
		b, _ := loaded.PredictQuery(q)
		if a.Metrics != b.Metrics || a.Category != b.Category {
			t.Fatal("two-step prediction changed after round trip")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// TestLoadRejectsCorruptWire hand-corrupts each validated field of the wire
// form and checks Load fails with an error instead of panicking later.
func TestLoadRejectsCorruptWire(t *testing.T) {
	train, _ := trainTest(t)
	p, err := Train(train[:40], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.toWire()
	if err != nil {
		t.Fatal(err)
	}
	// encode produces a well-framed v2 model file around the (possibly
	// corrupted) wire payload, so these cases exercise the semantic
	// validation behind an intact frame.
	encode := func(w *predictorWire) []byte {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(w); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, modelMagic, payload.Bytes()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		corrupt func(w *predictorWire)
	}{
		{"truncated metric data", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Data = m.Data[:len(m.Data)-3]
			w.PerfRaw = &m
		}},
		{"metric rows disagree with model", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Rows--
			m.Data = m.Data[:m.Rows*m.Cols]
			w.PerfRaw = &m
		}},
		{"wrong metric column count", func(w *predictorWire) {
			m := *w.PerfRaw
			m.Cols = 2
			m.Data = m.Data[:m.Rows*m.Cols]
			w.PerfRaw = &m
		}},
		{"missing categories", func(w *predictorWire) { w.Cats = w.Cats[:3] }},
		{"nonpositive confidence scale", func(w *predictorWire) { w.ConfScale = 0 }},
		{"NaN kernel scale", func(w *predictorWire) { w.KernelScale = math.NaN() }},
		{"truncated nested model bytes", func(w *predictorWire) { w.ModelBytes = w.ModelBytes[:len(w.ModelBytes)/2] }},
		{"empty nested model bytes", func(w *predictorWire) { w.ModelBytes = nil }},
	}
	for _, tc := range cases {
		w := *base
		tc.corrupt(&w)
		if _, err := Load(bytes.NewReader(encode(&w))); err == nil {
			t.Errorf("%s: corrupted model loaded without error", tc.name)
		}
	}
	// The uncorrupted wire must still load (the cases above fail for the
	// right reason, not because of the re-encoding).
	if _, err := Load(bytes.NewReader(encode(base))); err != nil {
		t.Fatalf("pristine re-encoded model rejected: %v", err)
	}
}

// TestLoadRejectsCorruptFrame corrupts the v2 container itself — magic,
// version, length, payload bytes, CRC — and checks every case fails with
// ErrBadModelFile instead of a decode panic or a silently wrong model.
func TestLoadRejectsCorruptFrame(t *testing.T) {
	train, _ := trainTest(t)
	p, err := Train(train[:40], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var saved bytes.Buffer
	if err := p.Save(&saved); err != nil {
		t.Fatal(err)
	}
	valid := saved.Bytes()
	clone := func() []byte { return append([]byte(nil), valid...) }

	legacy := func() []byte {
		// The pre-v2 format: a raw gob stream with no header at all.
		w, err := p.toWire()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:frameHeaderLen-1]},
		{"pre-v2 raw gob", legacy},
		{"bad magic", func() []byte { b := clone(); b[0] ^= 0xff; return b }()},
		{"future version", func() []byte {
			b := clone()
			binary.LittleEndian.PutUint32(b[8:12], ModelFormatVersion+1)
			return b
		}()},
		{"oversized length", func() []byte {
			b := clone()
			binary.LittleEndian.PutUint64(b[12:20], maxFramePayload+1)
			return b
		}()},
		{"truncated payload", valid[:len(valid)-1]},
		{"payload bit flip", func() []byte {
			b := clone()
			b[frameHeaderLen+len(b)/2] ^= 0x01
			return b
		}()},
		{"crc bit flip", func() []byte {
			b := clone()
			b[frameHeaderLen-1] ^= 0x01
			return b
		}()},
		{"wrong magic kind", func() []byte {
			// A sliding-state frame is not a model file, even if intact.
			b := clone()
			copy(b[:8], stateMagic)
			return b
		}()},
	}
	for _, tc := range cases {
		_, err := Load(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: corrupt frame loaded without error", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadModelFile) {
			t.Errorf("%s: error %v is not ErrBadModelFile", tc.name, err)
		}
	}
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}
}
