package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != p.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), p.N())
	}
	// Predictions must be bit-identical.
	for _, q := range test {
		a, err := p.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics != b.Metrics || a.Confidence != b.Confidence || a.Category != b.Category {
			t.Fatalf("prediction changed after round trip:\n%+v\n%+v", a, b)
		}
	}
}

func TestSaveLoadTwoStep(t *testing.T) {
	train, test := trainTest(t)
	opt := DefaultOptions()
	opt.TwoStep = true
	p, err := Train(train, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.sub) != len(p.sub) {
		t.Fatalf("sub-models = %d, want %d", len(loaded.sub), len(p.sub))
	}
	for _, q := range test[:5] {
		a, _ := p.PredictQuery(q)
		b, _ := loaded.PredictQuery(q)
		if a.Metrics != b.Metrics || a.Category != b.Category {
			t.Fatal("two-step prediction changed after round trip")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}
