package core

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/obs"
)

// Projection-cache metrics: hit rate is the headline number for template
// workloads, where the same plan feature vector recurs across queries that
// differ only in constants the plan vector does not encode.
var (
	projHits   = obs.GetCounter("core.projcache.hits")
	projMisses = obs.GetCounter("core.projcache.misses")
)

// defaultProjCacheCap bounds the projection cache. Entries are one feature
// vector plus one coordinate vector (a few hundred bytes); template
// workloads have at most a few hundred distinct plan shapes, so this
// comfortably covers them while bounding adversarial churn.
const defaultProjCacheCap = 1024

// projCache memoizes the expensive front half of prediction: feature vector
// → (canonical projection, max raw kernel similarity). Projecting a query is
// O(N·d) in the training-set size (the kernel cross vector dominates), while
// a cache hit is a hash of the feature vector — so repeated plans skip the
// kernel work entirely.
//
// Each cache belongs to exactly one model generation: it is created with its
// Predictor and never survives a retrain, because the projection space
// itself changes when the model does (generation swap = cache invalidation;
// the serving layer's generation counter documents this contract). Lookup is
// by 64-bit FNV-1a over the feature vector's bit patterns, guarded by an
// exact vector comparison so a fingerprint collision degrades to a miss
// rather than a wrong prediction. Bounded LRU, safe for concurrent use.
type projCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *projEntry
	byFP  map[uint64]*list.Element
}

type projEntry struct {
	fp   uint64
	key  []float64 // the feature vector, copied at insert
	proj []float64 // cached canonical coordinates (read-only once cached)
	maxK float64
}

func newProjCache(capacity int) *projCache {
	if capacity <= 0 {
		capacity = defaultProjCacheCap
	}
	return &projCache{cap: capacity, order: list.New(), byFP: make(map[uint64]*list.Element)}
}

// get returns the cached projection for f, if present. Keys are the shared
// template Fingerprint (bit patterns, not values — so 0.0 and −0.0 hash
// apart; the exact compare below uses the same equality, keeping hit/miss
// decisions consistent). The returned slices are shared and must be treated
// as read-only by callers.
func (c *projCache) get(f []float64) (proj []float64, maxK float64, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	fp := Fingerprint(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.byFP[fp]
	if !found {
		projMisses.Inc()
		return nil, 0, false
	}
	e := el.Value.(*projEntry)
	if !equalBits(e.key, f) {
		// Fingerprint collision: never serve another vector's projection.
		projMisses.Inc()
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	projHits.Inc()
	return e.proj, e.maxK, true
}

// put inserts the projection of f, evicting the least recently used entry
// at capacity. proj is stored as given (the caller hands over ownership);
// f is copied.
func (c *projCache) put(f, proj []float64, maxK float64) {
	if c == nil {
		return
	}
	fp := Fingerprint(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.byFP[fp]; found {
		// Already present (or a colliding fingerprint — overwrite either
		// way; at most one vector per fingerprint is cached).
		e := el.Value.(*projEntry)
		e.key = append(e.key[:0], f...)
		e.proj = proj
		e.maxK = maxK
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byFP, oldest.Value.(*projEntry).fp)
	}
	e := &projEntry{fp: fp, key: append([]float64(nil), f...), proj: proj, maxK: maxK}
	c.byFP[fp] = c.order.PushFront(e)
}

// len reports the current entry count (for tests).
func (c *projCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
