package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kcca"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// TestSentinelErrors is the errors.Is table for the prediction stack: every
// failure mode callers branch on (and the serving layer maps to HTTP
// statuses) must wrap its exported sentinel.
func TestSentinelErrors(t *testing.T) {
	train, _ := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	coldSliding, err := NewSliding(10, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		got  func() error
		want error
	}{
		{
			"train with too few queries",
			func() error { _, err := Train(train[:3], DefaultOptions()); return err },
			ErrTooFewQueries,
		},
		{
			"predict a planless query",
			func() error { _, err := p.PredictQuery(&dataset.Query{SQL: "SELECT 1"}); return err },
			ErrNoPlan,
		},
		{
			"predict a wrong-dimension vector",
			func() error { _, err := p.PredictVector([]float64{1, 2, 3}); return err },
			ErrDimension,
		},
		{
			"predict an empty request",
			func() error { return p.Predict(Request{})[0].Err },
			ErrEmptyRequest,
		},
		{
			"predict before sliding trains",
			func() error { _, err := coldSliding.PredictQuery(train[0]); return err },
			ErrNotTrained,
		},
		{
			"force-retrain an underfilled window",
			func() error { return coldSliding.Retrain() },
			ErrEmptyWindow,
		},
		{
			"knn with no points",
			func() error {
				_, err := knn.Nearest(linalg.NewMatrix(0, 2), []float64{1, 2}, 3, knn.Euclidean)
				return err
			},
			knn.ErrNoPoints,
		},
		{
			"knn with nonpositive k",
			func() error {
				_, err := knn.Nearest(linalg.NewMatrix(2, 2), []float64{1, 2}, 0, knn.Euclidean)
				return err
			},
			knn.ErrBadK,
		},
		{
			"knn with mismatched dimensions",
			func() error {
				_, err := knn.Nearest(linalg.NewMatrix(2, 2), []float64{1, 2, 3}, 1, knn.Euclidean)
				return err
			},
			knn.ErrDimension,
		},
		{
			"kcca with mismatched row counts",
			func() error {
				_, err := kcca.Train(linalg.NewMatrix(6, 2), linalg.NewMatrix(5, 2), kcca.DefaultOptions())
				return err
			},
			kcca.ErrRowMismatch,
		},
		{
			"kcca with too few rows",
			func() error {
				_, err := kcca.Train(linalg.NewMatrix(3, 2), linalg.NewMatrix(3, 2), kcca.DefaultOptions())
				return err
			},
			kcca.ErrTooFew,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.got()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("error %q does not wrap %q", err, c.want)
			}
		})
	}
}

// TestPredictPerRequestErrors checks the Request/Result contract: a bad
// request fails alone, in position, without voiding its neighbors — and
// the good neighbors match the single-query wrappers bit for bit.
func TestPredictPerRequestErrors(t *testing.T) {
	train, test := trainTest(t)
	p, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results := p.Predict(
		Request{Query: test[0]},
		Request{Query: &dataset.Query{SQL: "no plan here"}},
		Request{Vector: []float64{1}},
		Request{},
		Request{Query: test[1]},
	)
	if len(results) != 5 {
		t.Fatalf("%d results, want 5", len(results))
	}
	for i, want := range map[int]error{1: ErrNoPlan, 2: ErrDimension, 3: ErrEmptyRequest} {
		if !errors.Is(results[i].Err, want) {
			t.Errorf("result %d: error %v, want %v", i, results[i].Err, want)
		}
		if results[i].Prediction != nil {
			t.Errorf("result %d: prediction set alongside error", i)
		}
	}
	for _, i := range []int{0, 4} {
		if results[i].Err != nil {
			t.Fatalf("result %d: unexpected error %v", i, results[i].Err)
		}
		want, err := p.PredictQuery(test[map[int]int{0: 0, 4: 1}[i]])
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Prediction.Metrics != want.Metrics ||
			results[i].Prediction.Confidence != want.Confidence ||
			results[i].Prediction.Category != want.Category {
			t.Errorf("result %d diverges from PredictQuery", i)
		}
	}
}
