package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/statutil"
)

// CrossValidateTauFrac selects the query-side Gaussian kernel scale
// fraction by k-fold cross-validation on the training set, scoring
// elapsed-time within-20% accuracy. The paper fixed the fractions (0.1
// query side, 0.2 performance side) but notes "the scaling factors τx and
// τy can be set by cross-validation" — this is that procedure.
//
// It returns the winning fraction and the per-candidate mean scores
// (aligned with fracs).
func CrossValidateTauFrac(train []*dataset.Query, fracs []float64, folds int, opt Options) (float64, []float64, error) {
	if len(fracs) == 0 {
		return 0, nil, errors.New("core: no candidate fractions")
	}
	if folds < 2 {
		return 0, nil, errors.New("core: need at least 2 folds")
	}
	if len(train) < folds*5 {
		return 0, nil, fmt.Errorf("core: %d training queries is too few for %d folds", len(train), folds)
	}

	// Deterministic fold assignment.
	r := statutil.NewRNG(23, "crossval")
	perm := r.Perm(len(train))
	foldOf := make([]int, len(train))
	for i, p := range perm {
		foldOf[p] = i % folds
	}

	scores := make([]float64, len(fracs))
	for fi, frac := range fracs {
		if frac <= 0 {
			return 0, nil, fmt.Errorf("core: nonpositive fraction %v", frac)
		}
		total, count := 0.0, 0
		for fold := 0; fold < folds; fold++ {
			var fit, held []*dataset.Query
			for i, q := range train {
				if foldOf[i] == fold {
					held = append(held, q)
				} else {
					fit = append(fit, q)
				}
			}
			o := opt
			o.KCCA.TauFracX = frac
			p, err := Train(fit, o)
			if err != nil {
				return 0, nil, fmt.Errorf("core: fold %d with frac %v: %w", fold, frac, err)
			}
			var pred, act []float64
			for _, q := range held {
				pr, err := p.PredictQuery(q)
				if err != nil {
					return 0, nil, err
				}
				pred = append(pred, pr.Metrics.ElapsedSec)
				act = append(act, q.Metrics.ElapsedSec)
			}
			w := eval.WithinFactor(pred, act, 0.2)
			total += w
			count++
		}
		scores[fi] = total / float64(count)
	}

	bestIdx := 0
	for i, s := range scores {
		if s > scores[bestIdx] {
			bestIdx = i
		}
	}
	return fracs[bestIdx], scores, nil
}
