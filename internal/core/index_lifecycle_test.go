package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/knn"
)

// TestIndexGenerationLifecycle is the generation-lifecycle proof for the
// per-generation KD-tree index: while retrains hot-swap model generations
// under live predict traffic,
//
//  1. every prediction is served by a consistent (model, index) pair —
//     asserted by recomputing each prediction through a flat-scan mirror on
//     the generation the predictor handed out, bit-identical;
//  2. the index is swapped atomically with its generation (the index a
//     Predictor carries always covers exactly its own training points);
//  3. a retired generation's index is never read again once the swap has
//     landed (its search counters freeze).
//
// CI runs it under -race, which additionally proves the lock-free reads.
func TestIndexGenerationLifecycle(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(120, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:40] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	p1 := s.Current()
	if p1 == nil {
		t.Fatal("no model after first retrain")
	}
	idx1 := p1.Index()
	if idx1 == nil {
		t.Fatal("generation 1 has no index")
	}
	// 40 < DefaultIndexMinPoints: the young window serves via the exact flat
	// fallback; once the window grows past the threshold, later generations
	// must switch to a real tree.
	if !idx1.Flat() {
		t.Fatalf("index over %d points should be a flat fallback (threshold %d)", p1.N(), knn.DefaultIndexMinPoints)
	}

	// mirror recomputes a prediction against one pinned generation with the
	// package-level flat scan — no index anywhere on the path.
	mirror := func(p *Predictor, f []float64) *Prediction {
		proj, maxK := p.model.ProjectQueryKernel(f)
		nbs, err := knn.Nearest(p.model.QueryProj, proj, p.opt.KNN.K, p.opt.KNN.Distance)
		if err != nil {
			t.Fatal(err)
		}
		return p.combine(maxK, nbs)
	}

	// Predict workers race against the observer's retrains. Each iteration
	// pins whatever generation the atomic pointer holds and checks the
	// served prediction bit-for-bit against that generation's mirror.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qi := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := ds.Queries[qi%len(ds.Queries)]
				qi += 5
				p := s.Current()
				if p.Index().Len() != p.N() {
					t.Errorf("index covers %d points for a %d-point generation (torn swap)", p.Index().Len(), p.N())
					return
				}
				f, err := queryFeature(q, p.opt.Features)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := p.predictVector(f)
				if err != nil {
					t.Error(err)
					return
				}
				want := mirror(p, f)
				if math.Float64bits(got.Metrics.ElapsedSec) != math.Float64bits(want.Metrics.ElapsedSec) ||
					math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) {
					t.Errorf("prediction diverged from flat-scan mirror: got %+v want %+v", got.Metrics, want.Metrics)
					return
				}
				if len(got.Neighbors) != len(want.Neighbors) {
					t.Errorf("neighbor count %d vs mirror %d", len(got.Neighbors), len(want.Neighbors))
					return
				}
				for i := range got.Neighbors {
					if got.Neighbors[i] != want.Neighbors[i] {
						t.Errorf("neighbor %d = %+v, mirror %+v", i, got.Neighbors[i], want.Neighbors[i])
						return
					}
				}
			}
		}(w)
	}
	for _, q := range ds.Queries[40:440] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	pN := s.Current()
	if pN == p1 {
		t.Fatal("no hot swap happened")
	}
	idxN := pN.Index()
	if idxN == idx1 {
		t.Fatal("new generation reuses the retired generation's index")
	}
	if idxN.Flat() {
		t.Fatalf("full window (%d points) should serve from a tree", pN.N())
	}
	if idxN.Len() != pN.N() {
		t.Fatalf("current index covers %d points for a %d-point model", idxN.Len(), pN.N())
	}

	// Retirement: once the swap has landed, nothing reads the old index. Its
	// counters must freeze while the current generation's advance.
	reads := func(ix *knn.Index) int64 {
		st := ix.Stats()
		return st.Searches + st.FlatSearches
	}
	oldReads, curReads := reads(idx1), reads(idxN)
	for i := 0; i < 50; i++ {
		if _, err := s.PredictQuery(ds.Queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := reads(idx1); got != oldReads {
		t.Fatalf("retired index was read %d more times after the swap", got-oldReads)
	}
	if got := reads(idxN); got < curReads+50 {
		t.Fatalf("current index served %d of 50 post-swap predictions", got-curReads)
	}
}
