package core

import "errors"

// Sentinel errors for the conditions callers routinely branch on. Every
// failure returned by this package wraps one of these (or an error from a
// lower layer that itself exports sentinels, like knn and kcca), so callers
// use errors.Is rather than string matching. The serving layer maps them to
// HTTP status codes: not-trained is a 503 (retry once a model exists), the
// rest of these are caller mistakes (400-class).
var (
	// ErrNotTrained means prediction was requested before any model was
	// trained (for example a SlidingPredictor that has not yet observed
	// enough queries to fit its first model).
	ErrNotTrained = errors.New("core: model not trained")
	// ErrTooFewQueries means a training set was below the five-query
	// minimum KCCA needs.
	ErrTooFewQueries = errors.New("core: too few training queries")
	// ErrEmptyWindow means a sliding retrain was forced while the window
	// held too few observations to train from.
	ErrEmptyWindow = errors.New("core: sliding window holds too few observations")
	// ErrNoPlan means plan features were requested for a query that was
	// never planned.
	ErrNoPlan = errors.New("core: query has no plan")
	// ErrDimension means a raw feature vector's length does not match the
	// trained model's feature dimensionality.
	ErrDimension = errors.New("core: feature dimension mismatch")
	// ErrEmptyRequest means a Request carried neither a query nor a vector.
	ErrEmptyRequest = errors.New("core: empty request (no query and no vector)")
)
