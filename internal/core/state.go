package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/kcca"
	"repro/internal/workload"
)

// PlanFunc turns SQL text back into a planned query — the deterministic
// parse + optimize pipeline the serving layer runs on every /v1/observe.
// Restoring sliding state re-plans each retained query through it: plans
// and feature vectors are pure functions of (SQL, schema, data seed,
// planner config), so persisting the SQL alone reproduces them exactly.
type PlanFunc func(sql string) (*dataset.Query, error)

// ErrStateMismatch: a sliding-state snapshot was produced under a
// different configuration (capacity, retrain interval, or options) than
// the one restoring it. Matched with errors.Is.
var ErrStateMismatch = errors.New("core: saved sliding state does not match configuration")

// observationWire is one retained window entry: the SQL (re-planned on
// restore) and the measured metrics. Stored in ring-slot order — slot
// alignment with the maintained kernel rows is load-bearing.
type observationWire struct {
	SQL     string
	Metrics exec.Metrics
}

// slidingWire is the gob-encodable mirror of SlidingPredictor.
type slidingWire struct {
	Capacity     int
	RetrainEvery int
	Opt          Options
	Head         int
	Slots        []observationWire
	SinceTrain   int
	Retrains     int
	// ModelBytes is the published predictor in Save's framed format, nil
	// before the first training.
	ModelBytes []byte
	// IncState is the incremental retrainer's full state (maintained
	// kernels, warm eigenbases), nil when incremental retraining is off or
	// nothing has been observed. Restoring it — instead of forcing the
	// next retrain down the full path — is what keeps post-recovery
	// retrains, and therefore predictions, bit-identical to an
	// uninterrupted process.
	IncState *kcca.IncrementalState
}

// SaveState serializes the complete sliding-predictor state — window
// contents, retrain bookkeeping, published model, and incremental kernel
// state — in the framed, checksummed container Load uses for models. It
// locks out Observe/Retrain for the duration (predictions are unaffected;
// they read an atomic pointer).
func (s *SlidingPredictor) SaveState(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wire := slidingWire{
		Capacity:     s.capacity,
		RetrainEvery: s.retrainEvery,
		Opt:          s.opt,
		Head:         s.head,
		SinceTrain:   s.sinceTrain,
		Retrains:     s.retrains,
	}
	wire.Slots = make([]observationWire, s.size)
	for i := 0; i < s.size; i++ {
		wire.Slots[i] = observationWire{SQL: s.buf[i].SQL, Metrics: s.buf[i].Metrics}
	}
	if p := s.current.Load(); p != nil {
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			return err
		}
		wire.ModelBytes = buf.Bytes()
	}
	if s.inc != nil {
		wire.IncState = s.inc.State()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		return fmt.Errorf("core: encoding sliding state: %w", err)
	}
	return writeFrame(w, stateMagic, buf.Bytes())
}

// RestoreSliding rebuilds a SlidingPredictor from a SaveState snapshot.
// The caller passes its own configuration — which must match the one the
// snapshot was taken under (ErrStateMismatch otherwise; a daemon restarted
// with different flags must not silently serve a model trained under the
// old ones) — and a PlanFunc that re-plans each retained query through the
// same deterministic pipeline the observe path used.
func RestoreSliding(r io.Reader, capacity, retrainEvery int, opt Options, plan PlanFunc) (*SlidingPredictor, error) {
	payload, err := readFrame(r, stateMagic)
	if err != nil {
		return nil, err
	}
	var wire slidingWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding sliding state: %v", ErrBadModelFile, err)
	}
	opt = normalizeOptions(opt)
	if wire.Capacity != capacity || wire.RetrainEvery != retrainEvery {
		return nil, fmt.Errorf("%w: snapshot window %d/%d, configured %d/%d",
			ErrStateMismatch, wire.Capacity, wire.RetrainEvery, capacity, retrainEvery)
	}
	if wire.Opt != opt {
		return nil, fmt.Errorf("%w: snapshot options %+v, configured %+v", ErrStateMismatch, wire.Opt, opt)
	}
	s, err := NewSliding(capacity, retrainEvery, opt)
	if err != nil {
		return nil, err
	}
	if len(wire.Slots) > capacity {
		return nil, fmt.Errorf("%w: snapshot holds %d queries for capacity %d",
			ErrBadModelFile, len(wire.Slots), capacity)
	}
	if wire.Head < 0 || (capacity > 0 && wire.Head >= capacity) {
		return nil, fmt.Errorf("%w: snapshot head %d out of range", ErrBadModelFile, wire.Head)
	}
	for i, ow := range wire.Slots {
		q, err := plan(ow.SQL)
		if err != nil {
			return nil, fmt.Errorf("core: re-planning restored query %d: %w", i, err)
		}
		q.Metrics = ow.Metrics
		q.Category = workload.Categorize(q.Metrics.ElapsedSec)
		s.buf[i] = q
	}
	s.size = len(wire.Slots)
	s.head = wire.Head
	s.sinceTrain = wire.SinceTrain
	s.retrains = wire.Retrains
	if s.inc != nil {
		if err := s.inc.RestoreState(wire.IncState); err != nil {
			return nil, err
		}
	}
	if wire.ModelBytes != nil {
		p, err := Load(bytes.NewReader(wire.ModelBytes))
		if err != nil {
			return nil, fmt.Errorf("core: restoring published model: %w", err)
		}
		s.current.Store(p)
	}
	return s, nil
}
