package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/exec"
	"repro/internal/kcca"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/workload"
)

// Model files carry a self-describing container so a truncated,
// bit-flipped, or different-format file fails fast with ErrBadModelFile
// instead of erroring opaquely deep inside gob decode (or decoding
// plausibly): an 8-byte magic, a format version, the payload length, and a
// CRC-32C of the payload, followed by the gob payload itself. Version 2 is
// the first framed format; version-1 files (raw gob, pre-header) are
// rejected with a migration hint.
const (
	modelMagic = "QPREDMDL"
	// ModelFormatVersion is the current model-file format. Bump on any
	// incompatible wire change.
	ModelFormatVersion = 2
	// stateMagic frames sliding-predictor state payloads (snapshots) in
	// the same container discipline, distinguished by magic.
	stateMagic = "QPREDST1"
	// frameHeaderLen: magic + uint32 version + uint64 length + uint32 CRC.
	frameHeaderLen = 8 + 4 + 8 + 4
	// maxFramePayload bounds a frame's declared payload length; anything
	// larger is treated as corruption rather than an allocation request.
	maxFramePayload = 1 << 30
)

// ErrBadModelFile marks a model or state file that failed container
// validation: missing/mismatched magic, unsupported format version, short
// payload, checksum mismatch, or an undecodable payload. Matched with
// errors.Is.
var ErrBadModelFile = errors.New("core: invalid model file")

var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// writeFrame writes one header-framed payload.
func writeFrame(w io.Writer, magic string, payload []byte) error {
	hdr := make([]byte, frameHeaderLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], ModelFormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(payload, frameCRCTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: writing model payload: %w", err)
	}
	return nil
}

// readFrame reads and validates one header-framed payload.
func readFrame(r io.Reader, magic string) ([]byte, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadModelFile, err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (pre-v2 raw-gob files must be re-saved with this build)",
			ErrBadModelFile, hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != ModelFormatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d",
			ErrBadModelFile, version, ModelFormatVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[12:])
	if length > maxFramePayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d limit",
			ErrBadModelFile, length, maxFramePayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrBadModelFile, err)
	}
	crc := binary.LittleEndian.Uint32(hdr[20:])
	if crc32.Checksum(payload, frameCRCTable) != crc {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadModelFile)
	}
	return payload, nil
}

// predictorWire is the gob-encodable mirror of Predictor. The KCCA model
// is nested as its own Save() bytes so its unexported internals stay
// encapsulated.
type predictorWire struct {
	Opt         Options
	ModelBytes  []byte
	PerfRaw     *linalg.Matrix
	Cats        []workload.Category
	ConfScale   float64
	KernelScale float64
	Subs        map[workload.Category][]byte
}

// Save serializes the trained predictor (including two-step sub-models)
// so a vendor-trained model can be shipped to customer sites, as in the
// paper's Fig. 1 deployment. The output is framed with a magic header,
// format version, and payload CRC (nested sub-models recursively carry
// their own frames), so Load detects truncation and corruption instead of
// trusting whatever gob makes of the bytes.
func (p *Predictor) Save(w io.Writer) error {
	wire, err := p.toWire()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("core: encoding predictor: %w", err)
	}
	return writeFrame(w, modelMagic, buf.Bytes())
}

func (p *Predictor) toWire() (*predictorWire, error) {
	var modelBuf bytes.Buffer
	if err := p.model.Save(&modelBuf); err != nil {
		return nil, err
	}
	wire := &predictorWire{
		Opt:         p.opt,
		ModelBytes:  modelBuf.Bytes(),
		PerfRaw:     p.perfRaw,
		Cats:        p.cats,
		ConfScale:   p.confScale,
		KernelScale: p.kernelScale,
	}
	if p.sub != nil {
		wire.Subs = map[workload.Category][]byte{}
		for c, sp := range p.sub {
			var buf bytes.Buffer
			if err := sp.Save(&buf); err != nil {
				return nil, err
			}
			wire.Subs[c] = buf.Bytes()
		}
	}
	return wire, nil
}

// Load deserializes a predictor written by Save. Container violations
// (magic, version, truncation, checksum, undecodable gob) report
// ErrBadModelFile; a well-formed file whose decoded content breaks a model
// invariant reports a descriptive validation error.
func Load(r io.Reader) (*Predictor, error) {
	payload, err := readFrame(r, modelMagic)
	if err != nil {
		return nil, err
	}
	var wire predictorWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding predictor: %v", ErrBadModelFile, err)
	}
	return fromWire(&wire)
}

func fromWire(wire *predictorWire) (*Predictor, error) {
	model, err := kcca.Load(bytes.NewReader(wire.ModelBytes))
	if err != nil {
		return nil, err
	}
	// Validate everything PredictVector touches: the raw metric matrix must
	// be structurally sound and row-aligned with the model, the category
	// slice must cover every neighbor index the two-step vote can produce,
	// and the confidence scales are divided by (so they must be positive
	// and finite). A hand-edited or truncated file fails here with an
	// error instead of panicking deep in linalg.
	if err := wire.PerfRaw.CheckShape(); err != nil {
		return nil, fmt.Errorf("core: decoded predictor: performance matrix: %w", err)
	}
	if wire.PerfRaw.Rows != model.N() {
		return nil, fmt.Errorf("core: decoded predictor has %d metric rows for %d training queries",
			wire.PerfRaw.Rows, model.N())
	}
	if wire.PerfRaw.Cols != exec.NumMetrics {
		return nil, fmt.Errorf("core: decoded predictor has %d metric columns, want %d",
			wire.PerfRaw.Cols, exec.NumMetrics)
	}
	if len(wire.Cats) != model.N() {
		return nil, fmt.Errorf("core: decoded predictor has %d categories for %d training queries",
			len(wire.Cats), model.N())
	}
	if !(wire.ConfScale > 0) || math.IsInf(wire.ConfScale, 0) ||
		!(wire.KernelScale > 0) || math.IsInf(wire.KernelScale, 0) {
		return nil, fmt.Errorf("core: decoded predictor confidence scales (%v, %v) must be positive and finite",
			wire.ConfScale, wire.KernelScale)
	}
	p := &Predictor{
		opt:         wire.Opt,
		model:       model,
		perfRaw:     wire.PerfRaw,
		cats:        wire.Cats,
		confScale:   wire.ConfScale,
		kernelScale: wire.KernelScale,
		cache:       newProjCache(0),
		index:       knn.NewIndex(model.QueryProj, wire.Opt.KNN.Distance),
	}
	if wire.Subs != nil {
		p.sub = map[workload.Category]*Predictor{}
		for c, raw := range wire.Subs {
			sp, err := Load(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			p.sub[c] = sp
		}
	}
	return p, nil
}
