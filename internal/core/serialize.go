package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/exec"
	"repro/internal/kcca"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/workload"
)

// predictorWire is the gob-encodable mirror of Predictor. The KCCA model
// is nested as its own Save() bytes so its unexported internals stay
// encapsulated.
type predictorWire struct {
	Opt         Options
	ModelBytes  []byte
	PerfRaw     *linalg.Matrix
	Cats        []workload.Category
	ConfScale   float64
	KernelScale float64
	Subs        map[workload.Category][]byte
}

// Save serializes the trained predictor (including two-step sub-models)
// so a vendor-trained model can be shipped to customer sites, as in the
// paper's Fig. 1 deployment.
func (p *Predictor) Save(w io.Writer) error {
	wire, err := p.toWire()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: encoding predictor: %w", err)
	}
	return nil
}

func (p *Predictor) toWire() (*predictorWire, error) {
	var modelBuf bytes.Buffer
	if err := p.model.Save(&modelBuf); err != nil {
		return nil, err
	}
	wire := &predictorWire{
		Opt:         p.opt,
		ModelBytes:  modelBuf.Bytes(),
		PerfRaw:     p.perfRaw,
		Cats:        p.cats,
		ConfScale:   p.confScale,
		KernelScale: p.kernelScale,
	}
	if p.sub != nil {
		wire.Subs = map[workload.Category][]byte{}
		for c, sp := range p.sub {
			var buf bytes.Buffer
			if err := sp.Save(&buf); err != nil {
				return nil, err
			}
			wire.Subs[c] = buf.Bytes()
		}
	}
	return wire, nil
}

// Load deserializes a predictor written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var wire predictorWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	return fromWire(&wire)
}

func fromWire(wire *predictorWire) (*Predictor, error) {
	model, err := kcca.Load(bytes.NewReader(wire.ModelBytes))
	if err != nil {
		return nil, err
	}
	// Validate everything PredictVector touches: the raw metric matrix must
	// be structurally sound and row-aligned with the model, the category
	// slice must cover every neighbor index the two-step vote can produce,
	// and the confidence scales are divided by (so they must be positive
	// and finite). A hand-edited or truncated file fails here with an
	// error instead of panicking deep in linalg.
	if err := wire.PerfRaw.CheckShape(); err != nil {
		return nil, fmt.Errorf("core: decoded predictor: performance matrix: %w", err)
	}
	if wire.PerfRaw.Rows != model.N() {
		return nil, fmt.Errorf("core: decoded predictor has %d metric rows for %d training queries",
			wire.PerfRaw.Rows, model.N())
	}
	if wire.PerfRaw.Cols != exec.NumMetrics {
		return nil, fmt.Errorf("core: decoded predictor has %d metric columns, want %d",
			wire.PerfRaw.Cols, exec.NumMetrics)
	}
	if len(wire.Cats) != model.N() {
		return nil, fmt.Errorf("core: decoded predictor has %d categories for %d training queries",
			len(wire.Cats), model.N())
	}
	if !(wire.ConfScale > 0) || math.IsInf(wire.ConfScale, 0) ||
		!(wire.KernelScale > 0) || math.IsInf(wire.KernelScale, 0) {
		return nil, fmt.Errorf("core: decoded predictor confidence scales (%v, %v) must be positive and finite",
			wire.ConfScale, wire.KernelScale)
	}
	p := &Predictor{
		opt:         wire.Opt,
		model:       model,
		perfRaw:     wire.PerfRaw,
		cats:        wire.Cats,
		confScale:   wire.ConfScale,
		kernelScale: wire.KernelScale,
		cache:       newProjCache(0),
		index:       knn.NewIndex(model.QueryProj, wire.Opt.KNN.Distance),
	}
	if wire.Subs != nil {
		p.sub = map[workload.Category]*Predictor{}
		for c, raw := range wire.Subs {
			sp, err := Load(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			p.sub[c] = sp
		}
	}
	return p, nil
}
