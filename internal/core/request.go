package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Request describes one prediction to make. Exactly one input form is
// used: a planned query (whose configured feature vector is extracted
// automatically) or a raw feature vector. When both are set the vector
// wins, so callers that already extracted features never pay for a second
// extraction.
//
// Request/Result is the canonical prediction surface: the serving layer,
// the CLIs, and the historical PredictQuery/PredictVector/PredictBatch
// wrappers all funnel through Predict.
type Request struct {
	// Query is a planned (not executed) query; its feature vector is
	// extracted per the predictor's FeatureKind.
	Query *dataset.Query
	// Vector is a raw query feature vector, used as-is when non-nil.
	Vector []float64
}

// Result is the outcome of one Request: either a Prediction or the error
// that request failed with. Batch callers get one Result per Request,
// positionally, so a single malformed query never voids its neighbors'
// answers.
type Result struct {
	Prediction *Prediction
	Err        error
}

// Predict evaluates every request and returns one Result per request, in
// order. Requests fan out across the shared worker pool (a trained
// Predictor is immutable, so concurrent predictions are safe); results are
// positionally bit-identical to evaluating each request alone. A single
// request takes the serial path with no pool traffic.
func (p *Predictor) Predict(reqs ...Request) []Result {
	defer obs.Span("core.predict_batch")()
	batchSize.Observe(float64(len(reqs)))
	out := make([]Result, len(reqs))
	parallel.For(len(reqs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i].Prediction, out[i].Err = p.predictOne(reqs[i])
		}
	})
	return out
}

// predictOne resolves a request's feature vector and predicts from it.
func (p *Predictor) predictOne(r Request) (*Prediction, error) {
	f := r.Vector
	if f == nil {
		if r.Query == nil {
			return nil, ErrEmptyRequest
		}
		var err error
		f, err = queryFeature(r.Query, p.opt.Features)
		if err != nil {
			return nil, err
		}
	}
	if want := p.model.X.Cols; len(f) != want {
		return nil, fmt.Errorf("%w: vector has %d features, model was trained with %d", ErrDimension, len(f), want)
	}
	return p.predictVector(f)
}
