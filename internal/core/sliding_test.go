package core

import (
	"testing"

	"repro/internal/workload"
)

func TestNewSlidingValidation(t *testing.T) {
	if _, err := NewSliding(3, 1, DefaultOptions()); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := NewSliding(10, 0, DefaultOptions()); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSliding(10, 20, DefaultOptions()); err == nil {
		t.Error("interval beyond capacity accepted")
	}
	if _, err := NewSliding(50, 10, DefaultOptions()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSlidingObserveAndRetrain(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(120, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Error("fresh predictor should not be ready")
	}
	if _, err := s.PredictQuery(ds.Queries[0]); err == nil {
		t.Error("prediction before training accepted")
	}

	for i, q := range ds.Queries[:40] {
		if err := s.Observe(q); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !s.Ready() || s.Retrains() != 1 {
		t.Fatalf("expected one retraining after 40 observations, got %d", s.Retrains())
	}
	if s.WindowSize() != 40 {
		t.Errorf("window = %d", s.WindowSize())
	}

	pred, err := s.PredictQuery(ds.Queries[200])
	if err != nil {
		t.Fatal(err)
	}
	if pred.Metrics.ElapsedSec < 0 {
		t.Error("negative prediction")
	}
}

func TestSlidingWindowEvicts(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(60, 30, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:200] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if s.WindowSize() != 60 {
		t.Errorf("window = %d, want capacity 60", s.WindowSize())
	}
	// 200 observations / 30 per retrain = 6 trainings.
	if s.Retrains() != 6 {
		t.Errorf("retrains = %d, want 6", s.Retrains())
	}
	// The window holds the 60 MOST RECENT queries.
	if s.window[len(s.window)-1].ID != ds.Queries[199].ID {
		t.Error("window tail is not the latest query")
	}
	if s.window[0].ID != ds.Queries[140].ID {
		t.Errorf("window head = %d, want 140", s.window[0].ID)
	}
}

func TestSlidingAdaptsToRecentWorkload(t *testing.T) {
	// After the window slides entirely past an early workload phase, the
	// model must reflect the recent phase: predictions for a recent-phase
	// query should use recent neighbors.
	ds := pool(t)
	byCat := map[workload.Category][]int{}
	for i, q := range ds.Queries {
		byCat[q.Category] = append(byCat[q.Category], i)
	}
	s, err := NewSliding(80, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:300] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Ready() {
		t.Fatal("not ready")
	}
	// The trained model's size equals the window, not the full history.
	if s.current.N() != 80 {
		t.Errorf("model N = %d, want 80", s.current.N())
	}
}

func TestCrossValidateTauFrac(t *testing.T) {
	ds := pool(t)
	train := ds.Queries[:150]
	best, scores, err := CrossValidateTauFrac(train, []float64{0.05, 0.1, 0.4}, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	found := false
	bestScore := 0.0
	for i, f := range []float64{0.05, 0.1, 0.4} {
		if f == best {
			found = true
			bestScore = scores[i]
		}
		if scores[i] < 0 || scores[i] > 1 {
			t.Errorf("score %d out of range: %v", i, scores[i])
		}
	}
	if !found {
		t.Fatalf("best frac %v not among candidates", best)
	}
	for _, s := range scores {
		if s > bestScore {
			t.Error("best fraction does not have the best score")
		}
	}
}

func TestCrossValidateTauFracErrors(t *testing.T) {
	ds := pool(t)
	train := ds.Queries[:60]
	if _, _, err := CrossValidateTauFrac(train, nil, 3, DefaultOptions()); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := CrossValidateTauFrac(train, []float64{0.1}, 1, DefaultOptions()); err == nil {
		t.Error("single fold accepted")
	}
	if _, _, err := CrossValidateTauFrac(train[:8], []float64{0.1}, 3, DefaultOptions()); err == nil {
		t.Error("too-small training set accepted")
	}
	if _, _, err := CrossValidateTauFrac(train, []float64{-1}, 3, DefaultOptions()); err == nil {
		t.Error("negative fraction accepted")
	}
}
