package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/workload"
)

func TestNewSlidingValidation(t *testing.T) {
	if _, err := NewSliding(3, 1, DefaultOptions()); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := NewSliding(10, 0, DefaultOptions()); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSliding(10, 20, DefaultOptions()); err == nil {
		t.Error("interval beyond capacity accepted")
	}
	if _, err := NewSliding(50, 10, DefaultOptions()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSlidingObserveAndRetrain(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(120, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Error("fresh predictor should not be ready")
	}
	if _, err := s.PredictQuery(ds.Queries[0]); err == nil {
		t.Error("prediction before training accepted")
	}

	for i, q := range ds.Queries[:40] {
		if err := s.Observe(q); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !s.Ready() || s.Retrains() != 1 {
		t.Fatalf("expected one retraining after 40 observations, got %d", s.Retrains())
	}
	if s.WindowSize() != 40 {
		t.Errorf("window = %d", s.WindowSize())
	}

	pred, err := s.PredictQuery(ds.Queries[200])
	if err != nil {
		t.Fatal(err)
	}
	if pred.Metrics.ElapsedSec < 0 {
		t.Error("negative prediction")
	}
}

func TestSlidingWindowEvicts(t *testing.T) {
	ds := pool(t)
	s, err := NewSliding(60, 30, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:200] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if s.WindowSize() != 60 {
		t.Errorf("window = %d, want capacity 60", s.WindowSize())
	}
	// 200 observations / 30 per retrain = 6 trainings.
	if s.Retrains() != 6 {
		t.Errorf("retrains = %d, want 6", s.Retrains())
	}
	// The window holds the 60 MOST RECENT queries, oldest first.
	w := s.Window()
	if w[len(w)-1].ID != ds.Queries[199].ID {
		t.Error("window tail is not the latest query")
	}
	if w[0].ID != ds.Queries[140].ID {
		t.Errorf("window head = %d, want 140", w[0].ID)
	}
}

// TestSlidingRingMatchesNaive is the regression test for the ring-buffer
// eviction rewrite: window contents/order and retrain cadence must match
// the original copy-down implementation exactly at every step.
func TestSlidingRingMatchesNaive(t *testing.T) {
	ds := pool(t)
	const capacity, retrainEvery = 12, 12
	s, err := NewSliding(capacity, retrainEvery, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Naive reference: the pre-ring semantics.
	var ref []*dataset.Query
	refSince, refRetrains := 0, 0
	for step, q := range ds.Queries[:150] {
		if err := s.Observe(q); err != nil {
			t.Fatalf("observe %d: %v", step, err)
		}
		if len(ref) == capacity {
			copy(ref, ref[1:])
			ref[len(ref)-1] = q
		} else {
			ref = append(ref, q)
		}
		refSince++
		if refSince >= retrainEvery && len(ref) >= 5 {
			refSince = 0
			refRetrains++
		}
		w := s.Window()
		if len(w) != len(ref) {
			t.Fatalf("step %d: window size %d, reference %d", step, len(w), len(ref))
		}
		for i := range ref {
			if w[i] != ref[i] {
				t.Fatalf("step %d: window[%d] = query %d, reference query %d", step, i, w[i].ID, ref[i].ID)
			}
		}
		if s.Retrains() != refRetrains {
			t.Fatalf("step %d: retrains %d, reference %d", step, s.Retrains(), refRetrains)
		}
	}
	// The trained model must see the window oldest→newest; its size is the
	// window size at the last retrain.
	if !s.Ready() || s.Current().N() != capacity {
		t.Fatalf("model N = %d, want %d", s.Current().N(), capacity)
	}
}

func TestSlidingAdaptsToRecentWorkload(t *testing.T) {
	// After the window slides entirely past an early workload phase, the
	// model must reflect the recent phase: predictions for a recent-phase
	// query should use recent neighbors.
	ds := pool(t)
	byCat := map[workload.Category][]int{}
	for i, q := range ds.Queries {
		byCat[q.Category] = append(byCat[q.Category], i)
	}
	s, err := NewSliding(80, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:300] {
		if err := s.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Ready() {
		t.Fatal("not ready")
	}
	// The trained model's size equals the window, not the full history.
	if s.Current().N() != 80 {
		t.Errorf("model N = %d, want 80", s.Current().N())
	}
}

func TestCrossValidateTauFrac(t *testing.T) {
	ds := pool(t)
	train := ds.Queries[:150]
	best, scores, err := CrossValidateTauFrac(train, []float64{0.05, 0.1, 0.4}, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	found := false
	bestScore := 0.0
	for i, f := range []float64{0.05, 0.1, 0.4} {
		if f == best {
			found = true
			bestScore = scores[i]
		}
		if scores[i] < 0 || scores[i] > 1 {
			t.Errorf("score %d out of range: %v", i, scores[i])
		}
	}
	if !found {
		t.Fatalf("best frac %v not among candidates", best)
	}
	for _, s := range scores {
		if s > bestScore {
			t.Error("best fraction does not have the best score")
		}
	}
}

func TestCrossValidateTauFracErrors(t *testing.T) {
	ds := pool(t)
	train := ds.Queries[:60]
	if _, _, err := CrossValidateTauFrac(train, nil, 3, DefaultOptions()); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := CrossValidateTauFrac(train, []float64{0.1}, 1, DefaultOptions()); err == nil {
		t.Error("single fold accepted")
	}
	if _, _, err := CrossValidateTauFrac(train[:8], []float64{0.1}, 3, DefaultOptions()); err == nil {
		t.Error("too-small training set accepted")
	}
	if _, _, err := CrossValidateTauFrac(train, []float64{-1}, 3, DefaultOptions()); err == nil {
		t.Error("negative fraction accepted")
	}
}
