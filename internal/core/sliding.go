package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/kcca"
	"repro/internal/obs"
)

// Sliding-window metrics (visible in obs snapshots next to the predict
// latency histograms, so retrain cadence and window churn can be watched
// in production). The full-vs-incremental split of retrains is counted by
// the kcca layer (kcca.retrain.full / kcca.retrain.incremental).
var (
	slidingObserved = obs.GetCounter("core.sliding.observed")
	slidingEvicted  = obs.GetCounter("core.sliding.evicted")
	slidingRetrains = obs.GetCounter("core.sliding.retrains")
)

// SlidingPredictor maintains a bounded window of the most recently
// executed queries and periodically retrains the predictor from it — the
// paper's Sec. VII-C.4 enhancement: "maintain a sliding training set of
// data with a larger emphasis on more recently executed queries", making
// the model adapt to workload drift without the cubic cost of retraining
// after every query.
//
// Two retrain paths exist. The incremental path (Options.Incremental, on by
// default) keeps maintained kernel matrices keyed to the window's ring
// slots: each observation patches one kernel row/column in O(N·d), and a
// retrain recomputes only the top-rank eigenpairs warm-started from the
// previous retrain (kcca.Incremental). The full path trains from scratch on
// a window snapshot taken under the lock, with the actual training running
// OUTSIDE the lock so concurrent PredictQuery/Observe calls never stall
// behind an O(N³) solve. The incremental path falls back to the full path
// whenever kcca's τ-drift guard fires, the window is still growing, or the
// iterative eigensolver declines to converge — so correctness never depends
// on the incremental machinery.
//
// SlidingPredictor is safe for concurrent use: Observe/Retrain serialize on
// an internal mutex, while PredictQuery/Current read the published model
// through an atomic pointer and never block on retraining.
type SlidingPredictor struct {
	opt Options
	// capacity bounds the training window.
	capacity int
	// retrainEvery is the number of newly observed queries between
	// retrainings.
	retrainEvery int

	// mu guards the window state below. The published model is NOT behind
	// mu — readers load it atomically.
	mu sync.Mutex
	// The window is a ring buffer: once full, each observation overwrites
	// the oldest entry in place. buf[head] is the oldest retained query;
	// the newest is size-1 positions after it, modulo capacity. Ring slot i
	// is also row i of the incremental trainer's maintained kernel state
	// (both training paths train in slot order, so model rows, metric rows,
	// and kernel rows all share one indexing).
	buf        []*dataset.Query
	head, size int

	sinceTrain int
	// version counts window mutations; a full train snapshotted at version
	// v only installs its maintained kernel seed if the window is still at
	// v when it finishes (the model itself is still published either way —
	// it is the freshest completed training).
	version uint64
	// inc is the incremental KCCA retrainer, nil when Options.Incremental
	// is off or TwoStep forces full trainings.
	inc *kcca.Incremental
	// retrains counts completed trainings (visible for tests/metrics).
	retrains int

	current atomic.Pointer[Predictor]
}

// NewSliding returns a sliding predictor that keeps up to capacity recent
// queries and retrains after every retrainEvery observations. Training
// first happens once the window holds at least max(retrainEvery, 5)
// queries.
func NewSliding(capacity, retrainEvery int, opt Options) (*SlidingPredictor, error) {
	if capacity < 5 {
		return nil, errors.New("core: sliding window capacity must be at least 5")
	}
	if retrainEvery < 1 {
		return nil, errors.New("core: retrain interval must be positive")
	}
	if retrainEvery > capacity {
		return nil, fmt.Errorf("core: retrain interval %d exceeds capacity %d", retrainEvery, capacity)
	}
	opt = normalizeOptions(opt)
	s := &SlidingPredictor{
		opt:          opt,
		capacity:     capacity,
		retrainEvery: retrainEvery,
		buf:          make([]*dataset.Query, capacity),
	}
	if opt.Incremental && !opt.TwoStep {
		s.inc = kcca.NewIncremental(opt.KCCA, capacity)
	}
	return s, nil
}

// Observe records one executed query (with measured metrics) into the
// window, evicting the oldest entry when full, and retrains when due.
// Eviction is O(1); with incremental retraining on, the observation also
// patches the maintained kernel matrices in O(N·d).
func (s *SlidingPredictor) Observe(q *dataset.Query) error {
	slidingObserved.Inc()
	s.mu.Lock()
	var slot int
	if s.size == s.capacity {
		// Overwrite the oldest entry; the next-oldest becomes the head.
		slot = s.head
		s.buf[s.head] = q
		s.head = (s.head + 1) % s.capacity
		slidingEvicted.Inc()
	} else {
		slot = (s.head + s.size) % s.capacity
		s.buf[slot] = q
		s.size++
	}
	s.version++
	s.syncIncremental(slot, q)
	s.sinceTrain++
	due := s.sinceTrain >= s.retrainEvery && s.size >= 5
	s.mu.Unlock()
	if due {
		return s.Retrain()
	}
	return nil
}

// syncIncremental mirrors the window mutation at slot into the maintained
// kernel state (mu held). A query whose features cannot be extracted poisons
// the maintained state; the next retrain then takes the full path, which
// reports the error through the usual training channel.
func (s *SlidingPredictor) syncIncremental(slot int, q *dataset.Query) {
	if s.inc == nil {
		return
	}
	f, err := queryFeature(q, s.opt.Features)
	if err != nil {
		s.inc.Invalidate()
		return
	}
	y := features.PerfKernelVector(q.Metrics)
	if slot < s.inc.N() {
		s.inc.Replace(slot, f, y)
	} else {
		s.inc.Append(f, y)
	}
}

// Retrain rebuilds the predictor from the current window: incrementally
// when the maintained kernel state can serve (steady-state slides at frozen
// τ), otherwise with a full training on a window snapshot, run outside the
// lock so serving and observing continue during the O(N³) solve.
func (s *SlidingPredictor) Retrain() error {
	s.mu.Lock()
	if s.size < 5 {
		n := s.size
		s.mu.Unlock()
		return fmt.Errorf("%w: have %d, need at least 5", ErrEmptyWindow, n)
	}

	if s.inc != nil && !s.inc.NeedsFull() {
		// Incremental retrain: cheap enough to run under the lock (top-rank
		// warm-started eigensolve; predictions don't block — they read the
		// atomic pointer). Non-convergence falls through to the full path.
		model, err := s.inc.Retrain()
		if err == nil {
			_, _, rawRows, cats, ferr := extractFeatures(s.slotWindow(), s.opt.Features)
			if ferr != nil {
				s.mu.Unlock()
				return ferr
			}
			s.finishLocked(newPredictor(model, rawRows, cats, s.opt))
			s.mu.Unlock()
			return nil
		}
		if !errors.Is(err, kcca.ErrNeedFull) {
			s.mu.Unlock()
			return err
		}
	}

	// Full path: snapshot the window under the lock, train outside it.
	qs := s.slotWindow()
	version := s.version
	s.mu.Unlock()

	p, seed, err := s.trainFull(qs)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.inc != nil && seed != nil {
		if s.version == version {
			s.inc.Install(seed)
		} else {
			// The window moved while training ran: the seed's kernel state
			// no longer matches the live window, so the next retrain must
			// go full again. The model below is still the freshest
			// completed training and is published regardless.
			s.inc.Invalidate()
		}
	}
	s.finishLocked(p)
	s.mu.Unlock()
	return nil
}

// finishLocked publishes a freshly trained predictor (mu held). Publishing
// swaps the model generation, which retires the previous generation's
// projection cache wholesale.
func (s *SlidingPredictor) finishLocked(p *Predictor) {
	s.current.Store(p)
	s.sinceTrain = 0
	s.retrains++
	slidingRetrains.Inc()
}

// trainFull trains from scratch on a window snapshot. With incremental
// retraining enabled it routes through kcca's TrainFull — bit-identical to
// kcca.Train, plus a maintained-kernel seed for subsequent incremental
// retrains; otherwise (or for TwoStep) it is exactly core.Train.
func (s *SlidingPredictor) trainFull(qs []*dataset.Query) (*Predictor, *kcca.Seed, error) {
	if s.inc == nil {
		p, err := Train(qs, s.opt)
		return p, nil, err
	}
	x, y, rawRows, cats, err := extractFeatures(qs, s.opt.Features)
	if err != nil {
		return nil, nil, err
	}
	model, seed, err := s.inc.TrainFull(x, y)
	if err != nil {
		return nil, nil, fmt.Errorf("core: KCCA training: %w", err)
	}
	return newPredictor(model, rawRows, cats, s.opt), seed, nil
}

// slotWindow returns the retained queries in ring-slot order (mu held):
// buf[0..size-1]. During the grow phase this equals observation order; once
// the ring wraps it is a rotation of it. Both training paths consume this
// order so model rows stay aligned with the maintained kernel rows — KCCA
// training and k-NN prediction are invariant under row permutation.
func (s *SlidingPredictor) slotWindow() []*dataset.Query {
	out := make([]*dataset.Query, s.size)
	copy(out, s.buf[:s.size])
	return out
}

// Ready reports whether a model has been trained.
func (s *SlidingPredictor) Ready() bool { return s.current.Load() != nil }

// PredictQuery predicts with the most recently trained model. It never
// blocks on an in-flight retrain: the model is read through an atomic
// pointer, so predictions proceed against the previous generation until the
// new one is published.
func (s *SlidingPredictor) PredictQuery(q *dataset.Query) (*Prediction, error) {
	p := s.current.Load()
	if p == nil {
		return nil, fmt.Errorf("%w: sliding predictor has not observed enough queries", ErrNotTrained)
	}
	return p.PredictQuery(q)
}

// Current returns the most recently trained predictor, or nil before the
// first training. The serving layer publishes this into its hot-swap slot
// after each retrain.
func (s *SlidingPredictor) Current() *Predictor { return s.current.Load() }

// Window returns the retained queries in observation order, oldest first.
func (s *SlidingPredictor) Window() []*dataset.Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*dataset.Query, s.size)
	for i := 0; i < s.size; i++ {
		out[i] = s.buf[(s.head+i)%s.capacity]
	}
	return out
}

// WindowSize returns the number of queries currently held.
func (s *SlidingPredictor) WindowSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Retrains returns how many trainings have completed.
func (s *SlidingPredictor) Retrains() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retrains
}
