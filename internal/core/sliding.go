package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// SlidingPredictor maintains a bounded window of the most recently
// executed queries and periodically retrains the predictor from it — the
// paper's Sec. VII-C.4 enhancement: "maintain a sliding training set of
// data with a larger emphasis on more recently executed queries", making
// the model adapt to workload drift without the cubic cost of retraining
// after every query.
type SlidingPredictor struct {
	opt Options
	// capacity bounds the training window.
	capacity int
	// retrainEvery is the number of newly observed queries between
	// retrainings.
	retrainEvery int

	window     []*dataset.Query
	sinceTrain int
	current    *Predictor
	// retrains counts completed trainings (visible for tests/metrics).
	retrains int
}

// NewSliding returns a sliding predictor that keeps up to capacity recent
// queries and retrains after every retrainEvery observations. Training
// first happens once the window holds at least max(retrainEvery, 5)
// queries.
func NewSliding(capacity, retrainEvery int, opt Options) (*SlidingPredictor, error) {
	if capacity < 5 {
		return nil, errors.New("core: sliding window capacity must be at least 5")
	}
	if retrainEvery < 1 {
		return nil, errors.New("core: retrain interval must be positive")
	}
	if retrainEvery > capacity {
		return nil, fmt.Errorf("core: retrain interval %d exceeds capacity %d", retrainEvery, capacity)
	}
	return &SlidingPredictor{opt: opt, capacity: capacity, retrainEvery: retrainEvery}, nil
}

// Observe records one executed query (with measured metrics) into the
// window, evicting the oldest entry when full, and retrains when due.
func (s *SlidingPredictor) Observe(q *dataset.Query) error {
	if len(s.window) == s.capacity {
		copy(s.window, s.window[1:])
		s.window[len(s.window)-1] = q
	} else {
		s.window = append(s.window, q)
	}
	s.sinceTrain++
	if s.sinceTrain >= s.retrainEvery && len(s.window) >= 5 {
		return s.Retrain()
	}
	return nil
}

// Retrain rebuilds the predictor from the current window immediately.
func (s *SlidingPredictor) Retrain() error {
	if len(s.window) < 5 {
		return errors.New("core: too few observed queries to train")
	}
	p, err := Train(s.window, s.opt)
	if err != nil {
		return err
	}
	s.current = p
	s.sinceTrain = 0
	s.retrains++
	return nil
}

// Ready reports whether a model has been trained.
func (s *SlidingPredictor) Ready() bool { return s.current != nil }

// PredictQuery predicts with the most recently trained model.
func (s *SlidingPredictor) PredictQuery(q *dataset.Query) (*Prediction, error) {
	if s.current == nil {
		return nil, errors.New("core: sliding predictor has not trained yet")
	}
	return s.current.PredictQuery(q)
}

// WindowSize returns the number of queries currently held.
func (s *SlidingPredictor) WindowSize() int { return len(s.window) }

// Retrains returns how many trainings have completed.
func (s *SlidingPredictor) Retrains() int { return s.retrains }
