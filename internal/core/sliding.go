package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// Sliding-window metrics (visible in obs snapshots next to the predict
// latency histograms, so retrain cadence and window churn can be watched
// in production).
var (
	slidingObserved = obs.GetCounter("core.sliding.observed")
	slidingEvicted  = obs.GetCounter("core.sliding.evicted")
	slidingRetrains = obs.GetCounter("core.sliding.retrains")
)

// SlidingPredictor maintains a bounded window of the most recently
// executed queries and periodically retrains the predictor from it — the
// paper's Sec. VII-C.4 enhancement: "maintain a sliding training set of
// data with a larger emphasis on more recently executed queries", making
// the model adapt to workload drift without the cubic cost of retraining
// after every query.
type SlidingPredictor struct {
	opt Options
	// capacity bounds the training window.
	capacity int
	// retrainEvery is the number of newly observed queries between
	// retrainings.
	retrainEvery int

	// The window is a ring buffer: once full, each observation overwrites
	// the oldest entry in place. (It used to be a slice evicted with
	// copy(window, window[1:]) — O(capacity) per observation, quadratic
	// over a run.) buf[head] is the oldest retained query; the newest is
	// size-1 positions after it, modulo capacity.
	buf        []*dataset.Query
	head, size int

	sinceTrain int
	current    *Predictor
	// retrains counts completed trainings (visible for tests/metrics).
	retrains int
}

// NewSliding returns a sliding predictor that keeps up to capacity recent
// queries and retrains after every retrainEvery observations. Training
// first happens once the window holds at least max(retrainEvery, 5)
// queries.
func NewSliding(capacity, retrainEvery int, opt Options) (*SlidingPredictor, error) {
	if capacity < 5 {
		return nil, errors.New("core: sliding window capacity must be at least 5")
	}
	if retrainEvery < 1 {
		return nil, errors.New("core: retrain interval must be positive")
	}
	if retrainEvery > capacity {
		return nil, fmt.Errorf("core: retrain interval %d exceeds capacity %d", retrainEvery, capacity)
	}
	return &SlidingPredictor{
		opt:          opt,
		capacity:     capacity,
		retrainEvery: retrainEvery,
		buf:          make([]*dataset.Query, capacity),
	}, nil
}

// Observe records one executed query (with measured metrics) into the
// window, evicting the oldest entry when full, and retrains when due.
// Eviction is O(1).
func (s *SlidingPredictor) Observe(q *dataset.Query) error {
	slidingObserved.Inc()
	if s.size == s.capacity {
		// Overwrite the oldest entry; the next-oldest becomes the head.
		s.buf[s.head] = q
		s.head = (s.head + 1) % s.capacity
		slidingEvicted.Inc()
	} else {
		s.buf[(s.head+s.size)%s.capacity] = q
		s.size++
	}
	s.sinceTrain++
	if s.sinceTrain >= s.retrainEvery && s.size >= 5 {
		return s.Retrain()
	}
	return nil
}

// Retrain rebuilds the predictor from the current window immediately.
func (s *SlidingPredictor) Retrain() error {
	if s.size < 5 {
		return fmt.Errorf("%w: have %d, need at least 5", ErrEmptyWindow, s.size)
	}
	p, err := Train(s.Window(), s.opt)
	if err != nil {
		return err
	}
	s.current = p
	s.sinceTrain = 0
	s.retrains++
	slidingRetrains.Inc()
	return nil
}

// Ready reports whether a model has been trained.
func (s *SlidingPredictor) Ready() bool { return s.current != nil }

// PredictQuery predicts with the most recently trained model.
func (s *SlidingPredictor) PredictQuery(q *dataset.Query) (*Prediction, error) {
	if s.current == nil {
		return nil, fmt.Errorf("%w: sliding predictor has not observed enough queries", ErrNotTrained)
	}
	return s.current.PredictQuery(q)
}

// Current returns the most recently trained predictor, or nil before the
// first training. The serving layer publishes this into its hot-swap slot
// after each retrain.
func (s *SlidingPredictor) Current() *Predictor { return s.current }

// Window returns the retained queries in observation order, oldest first —
// the exact training order Retrain uses.
func (s *SlidingPredictor) Window() []*dataset.Query {
	out := make([]*dataset.Query, s.size)
	for i := 0; i < s.size; i++ {
		out[i] = s.buf[(s.head+i)%s.capacity]
	}
	return out
}

// WindowSize returns the number of queries currently held.
func (s *SlidingPredictor) WindowSize() int { return s.size }

// Retrains returns how many trainings have completed.
func (s *SlidingPredictor) Retrains() int { return s.retrains }
