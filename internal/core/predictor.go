// Package core is the library's primary public surface: the query
// performance predictor of the paper. A Predictor is trained from executed
// queries (their plans or SQL text on the feature side, their measured
// metrics on the performance side) and predicts all six performance
// metrics for unseen queries using only pre-execution information,
// following the KCCA + k-nearest-neighbor pipeline of Secs. VI and VII.
//
// Both prediction strategies from the paper are provided: the one-model
// predictor (Experiment 1) and the two-step predictor (Experiment 3) that
// first classifies a query as feather / golf ball / bowling ball using the
// global model's neighbors and then predicts with a query-type-specific
// model. Each prediction carries a confidence derived from neighbor
// distance (Sec. VII-C.3).
package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/kcca"
	"repro/internal/kernels"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// FeatureKind selects the query-side feature vector.
type FeatureKind int

const (
	// PlanFeatures is the Fig. 9 query plan vector — the paper's choice.
	PlanFeatures FeatureKind = iota
	// SQLFeatures is the Sec. VI-D.1 SQL text vector — shown inferior in
	// Fig. 8.
	SQLFeatures
)

func (f FeatureKind) String() string {
	if f == SQLFeatures {
		return "sql-text"
	}
	return "query-plan"
}

// Options configures predictor training.
type Options struct {
	Features FeatureKind
	KCCA     kcca.Options
	KNN      knn.Options
	// TwoStep enables the Experiment 3 strategy: classify the query type
	// from the global model's neighbors, then predict with a
	// type-specific model.
	TwoStep bool
	// MinTypeModel is the smallest per-type training set for which a
	// type-specific model is built (smaller types fall back to the global
	// model). Zero selects a default.
	MinTypeModel int
	// Incremental enables maintained-kernel incremental retraining in the
	// sliding predictor: steady-state window slides patch the kernel
	// matrices in O(N·d) and recompute only the top-rank eigenpairs with
	// warm starts, instead of the full O(N²·d) rebuild + O(N³) dense solve.
	// DefaultOptions turns it on; it is ignored (always full) when TwoStep
	// is set, since type-specific sub-models need full per-type trainings
	// anyway. One-shot Train is unaffected.
	Incremental bool
}

// DefaultOptions returns the paper's final configuration: plan features,
// Gaussian kernels with the 0.1/0.2 scale fractions, k = 3 Euclidean
// neighbors with equal weighting, one-model prediction.
func DefaultOptions() Options {
	return Options{
		Features:    PlanFeatures,
		KCCA:        kcca.DefaultOptions(),
		KNN:         knn.DefaultOptions(),
		Incremental: true,
	}
}

// Prediction is the result of predicting one query.
type Prediction struct {
	// Metrics are the predicted performance metrics.
	Metrics exec.Metrics
	// Category is the predicted query type (by predicted elapsed time for
	// one-model prediction; by neighbor vote for two-step).
	Category workload.Category
	// Confidence in (0, 1]: low values flag anomalous queries whose
	// neighbors are far away (Sec. VII-C.3).
	Confidence float64
	// Neighbors are the training-set indexes used.
	Neighbors []knn.Neighbor
}

// Predictor predicts query performance metrics before execution.
type Predictor struct {
	opt Options

	model     *kcca.Model
	perfRaw   *linalg.Matrix // raw metrics, one row per training query
	cats      []workload.Category
	confScale float64
	// kernelScale is the typical leave-one-out maximum kernel similarity
	// among training queries, used to calibrate the in-distribution factor
	// of confidence scores.
	kernelScale float64

	// Two-step: per-category sub-models (nil entries fall back to the
	// global model).
	sub map[workload.Category]*Predictor

	// cache memoizes feature vector → (projection, max kernel) for this
	// model generation; it dies with the Predictor, so a hot-swap to a new
	// generation implicitly invalidates every cached projection.
	cache *projCache

	// index is the exact KD-tree over this generation's projected training
	// points (knn.Index): built once alongside the model, immutable, and
	// retired with the Predictor on hot swap exactly like the projection
	// cache. It degrades to the flat scan for small windows, so predictions
	// are bit-identical either way.
	index *knn.Index
}

// Train/predict metrics: latency distributions for the public entry points
// and a count of predictions served. Latency histograms only populate when
// obs timing is enabled; counters always do.
var (
	trainSeconds   = obs.GetHistogram("core.train.seconds")
	predictSeconds = obs.GetHistogram("core.predict.seconds")
	batchSize      = obs.GetHistogram("core.predict_batch.size")
	predictCount   = obs.GetCounter("core.predict.count")
)

// queryFeature extracts the configured feature vector for one query.
func queryFeature(q *dataset.Query, kind FeatureKind) ([]float64, error) {
	switch kind {
	case SQLFeatures:
		return features.SQLVector(q.SQL)
	default:
		if q.PlanFeat != nil {
			// Memoized by the plan cache: PlanVector is a pure function of
			// the plan, so the shared slice is bit-identical to extracting
			// fresh. Treated as read-only everywhere downstream.
			return q.PlanFeat, nil
		}
		if q.Plan == nil {
			return nil, ErrNoPlan
		}
		return features.PlanVector(q.Plan), nil
	}
}

// normalizeOptions fills defaulted option fields; Train and the sliding
// predictor's training paths share it so every Predictor sees identical
// resolved options.
func normalizeOptions(opt Options) Options {
	if opt.KNN.K <= 0 {
		opt.KNN = knn.DefaultOptions()
	}
	if opt.MinTypeModel <= 0 {
		opt.MinTypeModel = 12
	}
	return opt
}

// extractFeatures builds the KCCA training inputs from executed queries:
// query-side features x, performance kernel features y, raw metric rows for
// neighbor combination, and the observed categories — all row-aligned with
// the input order.
func extractFeatures(train []*dataset.Query, kind FeatureKind) (x, y *linalg.Matrix, rawRows [][]float64, cats []workload.Category, err error) {
	xRows := make([][]float64, len(train))
	yRows := make([][]float64, len(train))
	rawRows = make([][]float64, len(train))
	cats = make([]workload.Category, len(train))
	for i, q := range train {
		f, ferr := queryFeature(q, kind)
		if ferr != nil {
			return nil, nil, nil, nil, fmt.Errorf("core: query %d: %w", q.ID, ferr)
		}
		xRows[i] = f
		yRows[i] = features.PerfKernelVector(q.Metrics)
		rawRows[i] = features.PerfRawVector(q.Metrics)
		cats[i] = q.Category
	}
	return features.Matrices(xRows), features.Matrices(yRows), rawRows, cats, nil
}

// newPredictor assembles a Predictor around an already-trained KCCA model:
// the raw metric matrix and categories (row-aligned with the model),
// calibrated confidence scales, and a fresh projection cache for this model
// generation. Shared by one-shot Train and both sliding retrain paths.
func newPredictor(model *kcca.Model, rawRows [][]float64, cats []workload.Category, opt Options) *Predictor {
	p := &Predictor{
		opt:     opt,
		model:   model,
		perfRaw: features.Matrices(rawRows),
		cats:    cats,
		cache:   newProjCache(0),
		index:   knn.NewIndex(model.QueryProj, opt.KNN.Distance),
	}
	p.confScale, p.kernelScale = p.referenceScales()
	return p
}

// Train fits a predictor on executed training queries.
func Train(train []*dataset.Query, opt Options) (*Predictor, error) {
	defer obs.Span("core.train")()
	defer trainSeconds.Time()()
	if len(train) < 5 {
		return nil, fmt.Errorf("%w: need at least 5, have %d", ErrTooFewQueries, len(train))
	}
	opt = normalizeOptions(opt)

	x, y, rawRows, cats, err := extractFeatures(train, opt.Features)
	if err != nil {
		return nil, err
	}
	model, err := kcca.Train(x, y, opt.KCCA)
	if err != nil {
		return nil, fmt.Errorf("core: KCCA training: %w", err)
	}
	p := newPredictor(model, rawRows, cats, opt)

	if opt.TwoStep {
		p.sub = map[workload.Category]*Predictor{}
		byCat := map[workload.Category][]*dataset.Query{}
		for _, q := range train {
			// Wrecking balls share the bowling-ball model, as in the
			// paper's pools.
			c := q.Category
			if c == workload.WreckingBall {
				c = workload.BowlingBall
			}
			byCat[c] = append(byCat[c], q)
		}
		subOpt := opt
		subOpt.TwoStep = false
		for c, qs := range byCat {
			if len(qs) < opt.MinTypeModel {
				continue // fall back to the global model for this type
			}
			sp, err := Train(qs, subOpt)
			if err != nil {
				continue
			}
			p.sub[c] = sp
		}
	}
	return p, nil
}

// referenceScales estimates, from a training sample, the typical
// nearest-neighbor distance in the query projection and the typical
// leave-one-out maximum kernel similarity. Both are used to calibrate
// confidence so that ordinary in-distribution queries score near 1.
func (p *Predictor) referenceScales() (distScale, kernelScale float64) {
	n := p.model.N()
	sample := n
	if sample > 60 {
		sample = 60
	}
	r := statutil.NewRNG(17, "confscale")
	idx := r.SampleInts(n, sample)
	dists := make([]float64, 0, sample)
	maxKs := make([]float64, 0, sample)
	k := p.opt.KNN.K
	if k < 1 {
		k = 3
	}
	for _, i := range idx {
		row := p.model.QueryProj.Row(i)
		// Mean distance to the k nearest other training points — the same
		// statistic Confidence computes for a prediction.
		var all []float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			all = append(all, linalg.Dist(row, p.model.QueryProj.Row(j)))
		}
		sort.Float64s(all)
		kk := k
		if kk > len(all) {
			kk = len(all)
		}
		if kk > 0 {
			dists = append(dists, linalg.Mean(all[:kk]))
		}
		bestK := 0.0
		xi := p.model.X.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if kv := kernels.Gaussian(xi, p.model.X.Row(j), p.model.TauX); kv > bestK {
				bestK = kv
			}
		}
		maxKs = append(maxKs, bestK)
	}
	distScale = 3 * statutil.Quantile(dists, 0.9)
	if !(distScale > 0) {
		distScale = 1
	}
	kernelScale = statutil.Quantile(maxKs, 0.5)
	if !(kernelScale > 0) {
		kernelScale = 1
	}
	return distScale, kernelScale
}

// PredictQuery predicts the metrics of a planned (but not executed) query.
// It is a thin wrapper over Predict — the canonical Request/Result
// entrypoint — kept for callers with exactly one planned query in hand.
func (p *Predictor) PredictQuery(q *dataset.Query) (*Prediction, error) {
	r := p.Predict(Request{Query: q})[0]
	return r.Prediction, r.Err
}

// PredictBatch predicts many queries at once. It is a thin wrapper over
// Predict that keeps the historical all-or-nothing contract: results are
// positionally identical to calling PredictQuery in a loop, and the first
// error encountered (by query order) voids the whole batch. Callers that
// want per-query errors use Predict directly.
func (p *Predictor) PredictBatch(qs []*dataset.Query) ([]*Prediction, error) {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = Request{Query: q}
	}
	results := p.Predict(reqs...)
	preds := make([]*Prediction, len(qs))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, r.Err)
		}
		preds[i] = r.Prediction
	}
	return preds, nil
}

// PredictVector predicts from a raw query feature vector. It is a thin
// wrapper over Predict kept for callers that extract features themselves.
func (p *Predictor) PredictVector(f []float64) (*Prediction, error) {
	r := p.Predict(Request{Vector: f})[0]
	return r.Prediction, r.Err
}

// predictVector is the Fig. 7 pipeline on a validated feature vector:
// project into the canonical space, find neighbors, combine (directly or
// via the two-step type-specific model).
func (p *Predictor) predictVector(f []float64) (*Prediction, error) {
	defer predictSeconds.Time()()
	predictCount.Inc()
	// The projection and the max kernel similarity both come from the same
	// O(N·d) kernel cross vector, computed once — and skipped entirely when
	// this generation's cache has seen the feature vector before (repeated
	// plans in template workloads).
	proj, maxK, ok := p.cache.get(f)
	if !ok {
		proj, maxK = p.model.ProjectQueryKernel(f)
		p.cache.put(f, proj, maxK)
	}
	// Neighbor search goes through this generation's KD-tree index — exact,
	// so bit-identical to knn.Nearest on the projection matrix, but
	// (near-)independent of the window size N instead of the flat O(N·rank).
	nbs, err := p.index.Nearest(proj, p.opt.KNN.K)
	if err != nil {
		return nil, err
	}

	if p.opt.TwoStep {
		cat := p.voteCategory(nbs)
		if sub, ok := p.sub[cat]; ok {
			pred, err := sub.predictVector(f)
			if err == nil {
				pred.Category = cat
				return pred, nil
			}
		}
		// Fall back to the global model but keep the voted category.
		pred := p.combine(maxK, nbs)
		pred.Category = cat
		return pred, nil
	}

	pred := p.combine(maxK, nbs)
	pred.Category = workload.Categorize(pred.Metrics.ElapsedSec)
	return pred, nil
}

// combine merges the neighbors' raw metrics and scores confidence. maxK is
// the query's largest raw kernel similarity against the training set,
// already computed by the projection step (or served from the cache).
func (p *Predictor) combine(maxK float64, nbs []knn.Neighbor) *Prediction {
	vals := knn.Combine(p.perfRaw, nbs, p.opt.KNN.Weighting)
	// Confidence combines projection-space neighbor distance with the raw
	// kernel similarity: a query far outside the training distribution has
	// a numerically zero kernel vector, so its projection coordinates are
	// meaningless even when they happen to land near a cluster. The kernel
	// factor is calibrated against the training set's own leave-one-out
	// similarities, so ordinary queries score near 1.
	kfac := maxK / p.kernelScale
	if kfac > 1 {
		kfac = 1
	}
	conf := knn.Confidence(nbs, p.confScale) * kfac
	return &Prediction{
		Metrics:    exec.MetricsFromVector(vals),
		Confidence: conf,
		Neighbors:  nbs,
	}
}

// voteCategory classifies the query type by majority vote over the
// neighbors' categories (ties broken toward the nearer neighbor's type),
// with wrecking balls counted as bowling balls.
func (p *Predictor) voteCategory(nbs []knn.Neighbor) workload.Category {
	votes := map[workload.Category]int{}
	for _, nb := range nbs {
		c := p.cats[nb.Index]
		if c == workload.WreckingBall {
			c = workload.BowlingBall
		}
		votes[c]++
	}
	type kv struct {
		c workload.Category
		n int
	}
	var list []kv
	for c, n := range votes {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		// Tie: prefer the category of the nearest neighbor among the tied.
		return p.nearestRank(nbs, list[i].c) < p.nearestRank(nbs, list[j].c)
	})
	return list[0].c
}

func (p *Predictor) nearestRank(nbs []knn.Neighbor, c workload.Category) int {
	for rank, nb := range nbs {
		nc := p.cats[nb.Index]
		if nc == workload.WreckingBall {
			nc = workload.BowlingBall
		}
		if nc == c {
			return rank
		}
	}
	return len(nbs)
}

// WithKNN returns a predictor sharing this one's trained model but using
// different nearest-neighbor options — the Tables I-III design studies vary
// the distance metric, neighbor count, and weighting without retraining.
func (p *Predictor) WithKNN(opt knn.Options) *Predictor {
	clone := *p
	clone.opt.KNN = opt
	if opt.K <= 0 {
		clone.opt.KNN = knn.DefaultOptions()
	}
	// The index depends only on the point set and the metric: a changed
	// metric needs a rebuild (cheap — O(N log N) on the ≤15-dim projection),
	// while k and weighting changes reuse the shared tree.
	if clone.opt.KNN.Distance != p.opt.KNN.Distance {
		clone.index = knn.NewIndex(p.model.QueryProj, clone.opt.KNN.Distance)
	}
	return &clone
}

// N returns the number of training queries.
func (p *Predictor) N() int { return p.model.N() }

// Options returns the options the predictor was trained with.
func (p *Predictor) Options() Options { return p.opt }

// Model exposes the underlying KCCA model (for inspection and plots).
func (p *Predictor) Model() *kcca.Model { return p.model }

// Index exposes this generation's k-nearest-neighbor index (for serving
// metadata and tests). It is immutable and scoped to this Predictor: a hot
// swap to a new generation retires it together with the projection cache.
func (p *Predictor) Index() *knn.Index { return p.index }
