package kernels

import (
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/statutil"
)

// The parallel kernel paths promise bit-for-bit equality with the serial
// path at every worker count: each matrix element is computed by exactly
// one worker with arithmetic identical to the serial loop. These tests hold
// them to exact equality (stronger than the 1e-12 budget the non-order-
// preserving kernels are allowed).

func equivWorkerCounts() []int { return []int{1, 2, 7, runtime.NumCPU()} }

func randMatrix(seed int64, r, c int) *linalg.Matrix {
	rng := statutil.NewRNG(seed, "kernels-equiv")
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 5
	}
	return m
}

func TestMatrixParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{3, 17, 120, 333} {
		x := randMatrix(int64(n), n, 9)
		tau := ScaleHeuristic(x, 0.1)

		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		want := Matrix(x, tau)

		for _, w := range equivWorkerCounts() {
			parallel.SetMaxProcs(w)
			got := Matrix(x, tau)
			for i, v := range got.Data {
				if v != want.Data[i] {
					t.Fatalf("n=%d workers=%d: element %d = %v, serial %v", n, w, i, v, want.Data[i])
				}
			}
		}
		parallel.SetMaxProcs(0)
	}
}

func TestCrossVectorParallelMatchesSerial(t *testing.T) {
	x := randMatrix(7, 513, 12)
	q := randMatrix(8, 1, 12).Row(0)
	tau := ScaleHeuristic(x, 0.1)

	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
	want := CrossVector(x, q, tau)

	for _, w := range equivWorkerCounts() {
		parallel.SetMaxProcs(w)
		got := CrossVector(x, q, tau)
		for i, v := range got {
			if v != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial %v", w, i, v, want[i])
			}
		}
	}
	parallel.SetMaxProcs(0)
}

func TestCenterParallelMatchesSerial(t *testing.T) {
	x := randMatrix(9, 201, 7)
	k := Matrix(x, ScaleHeuristic(x, 0.1))

	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
	wantC, wantRM, wantGM := Center(k)

	for _, w := range equivWorkerCounts() {
		parallel.SetMaxProcs(w)
		gotC, gotRM, gotGM := Center(k)
		if gotGM != wantGM {
			t.Fatalf("workers=%d: grand mean %v, serial %v", w, gotGM, wantGM)
		}
		for i := range gotRM {
			if gotRM[i] != wantRM[i] {
				t.Fatalf("workers=%d: row mean %d = %v, serial %v", w, i, gotRM[i], wantRM[i])
			}
		}
		for i, v := range gotC.Data {
			if v != wantC.Data[i] {
				t.Fatalf("workers=%d: centered element %d = %v, serial %v", w, i, v, wantC.Data[i])
			}
		}
	}
	parallel.SetMaxProcs(0)
}
