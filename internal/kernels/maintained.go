package kernels

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Maintained kernel-state metrics: row replacements applied in O(N·d),
// full O(N²·d) rebuilds, and exact row-sum refreshes.
var (
	maintainedReplaces = obs.GetCounter("kernels.maintained.replaces")
	maintainedRebuilds = obs.GetCounter("kernels.maintained.rebuilds")
	maintainedRefresh  = obs.GetCounter("kernels.maintained.refreshes")
)

// sumRefreshEvery bounds floating-point drift in the incrementally
// maintained row sums: after this many row replacements they are recomputed
// exactly from the kernel matrix (an O(N²) sweep, amortized to O(N²/64) per
// replacement — far below the O(N·d) kernel-row cost it rides along with).
const sumRefreshEvery = 64

// Maintained is a Gaussian kernel matrix kept keyed to a mutating row set —
// the sliding retraining window's ring buffer. Steady-state window slides
// replace one row, so the kernel matrix changes in exactly one row/column:
// Replace recomputes that row in O(N·d) instead of the O(N²·d) full
// rebuild, and keeps the per-row sums (centering state) and per-row norms
// (scale-heuristic state) current along the way.
//
// The kernel scale τ is frozen at the last rebuild. Each replacement moves
// the scale the heuristic *would* choose; Drifted reports when it has moved
// beyond a relative tolerance, and the owner then triggers Rebuild — the
// τ-drift guard that bounds how far an incrementally maintained kernel may
// wander from the one a from-scratch train would produce.
//
// Maintained is not safe for concurrent use; the owner (kcca.Incremental,
// under the sliding predictor's mutex) serializes access.
type Maintained struct {
	// X holds the current rows (n×d). Row index == ring-buffer slot.
	X *linalg.Matrix
	// K is the raw (uncentered) n×n kernel matrix of X at scale Tau.
	K *linalg.Matrix
	// Tau is the frozen kernel scale K was built with.
	Tau float64

	frac        float64 // heuristic fraction (ScaleHeuristic)
	tauOverride float64 // >0 pins τ and disables the drift guard

	norms    []float64 // ‖xᵢ‖ per row, for the scale heuristic
	rowSums  []float64 // Σⱼ K[i][j] per row, for centering
	replaces int       // replacements since the last exact row-sum refresh
	synced   bool      // K/Tau reflect X (false after Append until Rebuild)
}

// NewMaintained returns an empty maintained state for rows of dimension d,
// growing up to capacity rows. frac is the scale-heuristic fraction;
// tauOverride, when positive, pins the kernel scale (disabling the drift
// guard), mirroring kcca.Options.TauX/TauY.
func NewMaintained(d, capacity int, frac, tauOverride float64) *Maintained {
	if d < 1 || capacity < 1 {
		panic(fmt.Sprintf("kernels: invalid maintained dims d=%d capacity=%d", d, capacity))
	}
	return &Maintained{
		X:           &linalg.Matrix{Rows: 0, Cols: d, Data: make([]float64, 0, d*capacity)},
		frac:        frac,
		tauOverride: tauOverride,
		norms:       make([]float64, 0, capacity),
	}
}

// N returns the current row count.
func (m *Maintained) N() int { return m.X.Rows }

// Synced reports whether K and Tau currently reflect X. Appending rows
// desynchronizes (the matrix changes dimension); Rebuild resynchronizes.
func (m *Maintained) Synced() bool { return m.synced }

// Append adds a row during the grow phase. The kernel matrix is NOT grown
// incrementally — growth changes every row's contribution to the scale
// heuristic anyway, so the next Rebuild (a full retrain) resynchronizes.
func (m *Maintained) Append(row []float64) {
	if len(row) != m.X.Cols {
		panic(fmt.Sprintf("kernels: appended row has %d features, want %d", len(row), m.X.Cols))
	}
	m.X.Data = append(m.X.Data, row...)
	m.X.Rows++
	m.norms = append(m.norms, linalg.Norm(row))
	m.synced = false
}

// Replace swaps the row at slot for a new one and, when synced, patches the
// kernel matrix in O(N·d): one fresh kernel row mirrored to its column,
// with the row sums updated incrementally (and refreshed exactly every
// sumRefreshEvery replacements to bound floating-point drift).
func (m *Maintained) Replace(slot int, row []float64) {
	if slot < 0 || slot >= m.X.Rows {
		panic(fmt.Sprintf("kernels: replace slot %d out of range [0,%d)", slot, m.X.Rows))
	}
	if len(row) != m.X.Cols {
		panic(fmt.Sprintf("kernels: replacement row has %d features, want %d", len(row), m.X.Cols))
	}
	copy(m.X.Row(slot), row)
	m.norms[slot] = linalg.Norm(row)
	if !m.synced {
		return
	}
	defer obs.Span("kernels.maintained.replace")()
	maintainedReplaces.Inc()
	n := m.X.Rows
	kq := GetScratch(n)
	defer PutScratch(kq)
	CrossVectorInto(*kq, m.X, row, m.Tau)
	(*kq)[slot] = 1 // k(x, x) exactly, matching Matrix's diagonal
	slotSum := 0.0
	for i, v := range *kq {
		m.rowSums[i] += v - m.K.At(i, slot)
		m.K.Set(i, slot, v)
		m.K.Set(slot, i, v)
		slotSum += v
	}
	m.rowSums[slot] = slotSum // exact: the whole row is fresh
	m.replaces++
	if m.replaces >= sumRefreshEvery {
		m.refreshSums()
	}
}

// Rebuild recomputes τ from the heuristic (unless pinned) and the full
// kernel matrix and row sums from the current rows — the O(N²·d) path taken
// at first training, after window growth, and when the τ-drift guard fires.
// The N×N buffer is reused across rebuilds of the same size.
func (m *Maintained) Rebuild() {
	maintainedRebuilds.Inc()
	n := m.X.Rows
	if m.tauOverride > 0 {
		m.Tau = m.tauOverride
	} else {
		m.Tau = scaleFromNorms(m.norms, m.frac)
	}
	if m.K == nil || m.K.Rows != n {
		m.K = linalg.NewMatrix(n, n)
		m.rowSums = make([]float64, n)
	}
	MatrixInto(m.K, m.X, m.Tau)
	m.refreshSums()
	m.synced = true
}

// refreshSums recomputes the row sums exactly from K.
func (m *Maintained) refreshSums() {
	maintainedRefresh.Inc()
	for i := range m.rowSums {
		m.rowSums[i] = 0
		for _, v := range m.K.Row(i) {
			m.rowSums[i] += v
		}
	}
	m.replaces = 0
}

// TauCandidate returns the scale the heuristic would choose for the current
// rows — the value a full retrain would use.
func (m *Maintained) TauCandidate() float64 {
	if m.tauOverride > 0 {
		return m.tauOverride
	}
	return scaleFromNorms(m.norms, m.frac)
}

// Drifted reports whether the frozen τ has moved beyond the relative
// tolerance of the value the heuristic would now choose — the trigger for a
// full rebuild. A pinned τ never drifts.
func (m *Maintained) Drifted(tol float64) bool {
	if !m.synced {
		return true
	}
	if m.tauOverride > 0 {
		return false
	}
	cand := m.TauCandidate()
	d := cand - m.Tau
	if d < 0 {
		d = -d
	}
	return d > tol*m.Tau
}

// RowMeans copies the per-row kernel means (centering state) into a fresh
// slice, with the grand mean — exactly what Center returns for K.
func (m *Maintained) RowMeans() (rowMeans []float64, grandMean float64) {
	n := m.X.Rows
	rowMeans = make([]float64, n)
	inv := 1.0 / float64(n)
	total := 0.0
	for i, s := range m.rowSums {
		rowMeans[i] = s * inv
		total += rowMeans[i]
	}
	return rowMeans, total * inv
}

// ApplyCentered writes (I−1/n)·K·(I−1/n)·src into dst — the centered-kernel
// operator applied implicitly, so the iterative eigensolver never needs the
// centered matrix materialized. dst and src must have length N and must not
// alias.
func (m *Maintained) ApplyCentered(dst, src []float64) {
	n := m.X.Rows
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("kernels: ApplyCentered buffers have %d/%d entries, want %d", len(dst), len(src), n))
	}
	t := GetScratch(n)
	defer PutScratch(t)
	mean := linalg.Mean(src)
	for i, v := range src {
		(*t)[i] = v - mean
	}
	m.K.MulVecInto(dst, *t)
	uMean := linalg.Mean(dst)
	for i := range dst {
		dst[i] -= uMean
	}
}

// XClone returns a deep copy of the current rows (for embedding in an
// immutable trained model while the maintained rows keep mutating).
func (m *Maintained) XClone() *linalg.Matrix { return m.X.Clone() }
