// Package kernels implements the kernel functions and kernel matrices used
// by KCCA: the Gaussian (RBF) kernel of Eq. (1) of the paper, the paper's
// scale heuristic (τ set to a fixed fraction of the empirical variance of
// the data-point norms), and kernel matrix centering.
package kernels

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Gaussian returns exp(−‖a−b‖²/τ), the paper's Eq. (1).
func Gaussian(a, b []float64, tau float64) float64 {
	if tau <= 0 {
		panic("kernels: nonpositive scale")
	}
	d := 0.0
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return math.Exp(-d / tau)
}

// ScaleHeuristic returns τ = frac · Var(‖xᵢ‖), the paper's choice of kernel
// scale: "a fixed fraction of the empirical variance of the norms of the
// data points" (0.1 for query vectors, 0.2 for performance vectors). A
// positive floor keeps degenerate datasets usable.
func ScaleHeuristic(rows *linalg.Matrix, frac float64) float64 {
	norms := make([]float64, rows.Rows)
	for i := 0; i < rows.Rows; i++ {
		norms[i] = linalg.Norm(rows.Row(i))
	}
	return scaleFromNorms(norms, frac)
}

// scaleFromNorms is the heuristic on precomputed data-point norms. The
// Maintained kernel state keeps per-row norms incrementally and re-derives
// its τ-drift candidate through this exact function, so a drift-triggered
// full rebuild lands on bit-identical scales to a from-scratch train.
func scaleFromNorms(norms []float64, frac float64) float64 {
	tau := frac * linalg.Variance(norms)
	if tau <= 1e-12 {
		// All norms (nearly) identical: fall back to the mean squared norm
		// so the kernel still discriminates by direction.
		m := linalg.Mean(norms)
		tau = frac * (m*m + 1)
	}
	return tau
}

// Matrix computes the N×N Gaussian kernel matrix of the rows of x. Rows are
// partitioned across the shared worker pool; element (i, j) with i < j is
// computed exactly once (by the worker owning row i, which mirrors it to
// (j, i)), so the result is identical to the serial loop at every worker
// count.
func Matrix(x *linalg.Matrix, tau float64) *linalg.Matrix {
	return MatrixInto(linalg.NewMatrix(x.Rows, x.Rows), x, tau)
}

// MatrixInto computes the kernel matrix of x into the caller-owned k (which
// must be x.Rows square) and returns it. Rebuild paths that already hold an
// N×N buffer (the Maintained state) reuse it instead of reallocating.
func MatrixInto(k *linalg.Matrix, x *linalg.Matrix, tau float64) *linalg.Matrix {
	defer obs.Span("kernels.matrix")()
	n := x.Rows
	if k.Rows != n || k.Cols != n {
		panic(fmt.Sprintf("kernels: MatrixInto target is %dx%d, want %dx%d", k.Rows, k.Cols, n, n))
	}
	parallel.For(n, parallel.GrainFor(n*x.Cols/2+1, 1<<15), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k.Set(i, i, 1)
			ri := x.Row(i)
			for j := i + 1; j < n; j++ {
				v := Gaussian(ri, x.Row(j), tau)
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
	})
	return k
}

// crossScratch pools the per-call kernel vectors of the prediction hot path
// (one float64 slice per in-flight CrossVector-using caller).
var crossScratch = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}

// GetScratch leases a float64 buffer of length n from the package pool;
// pair with PutScratch. Hot paths that consume a kernel vector and discard
// it (projection, maintained row updates) use it to keep per-prediction
// allocations flat.
func GetScratch(n int) *[]float64 {
	p := crossScratch.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a leased buffer to the pool.
func PutScratch(p *[]float64) { crossScratch.Put(p) }

// CrossVector computes the kernel evaluations k(q, xᵢ) of one query point
// against every row of x.
func CrossVector(x *linalg.Matrix, q []float64, tau float64) []float64 {
	return CrossVectorInto(make([]float64, x.Rows), x, q, tau)
}

// CrossVectorInto is CrossVector into a caller-owned buffer of length
// x.Rows (commonly leased from GetScratch), returning it.
func CrossVectorInto(out []float64, x *linalg.Matrix, q []float64, tau float64) []float64 {
	defer obs.Span("kernels.cross_vector")()
	if len(q) != x.Cols {
		panic(fmt.Sprintf("kernels: query has %d features, want %d", len(q), x.Cols))
	}
	if len(out) != x.Rows {
		panic(fmt.Sprintf("kernels: cross-vector buffer has %d entries, want %d", len(out), x.Rows))
	}
	parallel.For(x.Rows, parallel.GrainFor(x.Cols, 1<<14), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Gaussian(x.Row(i), q, tau)
		}
	})
	return out
}

// Center double-centers the kernel matrix in feature space:
// K' = (I − 1/n) K (I − 1/n). It returns the centered matrix together with
// the row means and grand mean needed to center out-of-sample kernel
// vectors consistently.
func Center(k *linalg.Matrix) (centered *linalg.Matrix, rowMeans []float64, grandMean float64) {
	defer obs.Span("kernels.center")()
	n := k.Rows
	rowMeans = make([]float64, n)
	grain := parallel.GrainFor(n, 1<<15)
	parallel.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rowMeans[i] = linalg.Mean(k.Row(i))
		}
	})
	grandMean = linalg.Mean(rowMeans)
	centered = linalg.NewMatrix(n, n)
	parallel.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				centered.Set(i, j, k.At(i, j)-rowMeans[i]-rowMeans[j]+grandMean)
			}
		}
	})
	return centered, rowMeans, grandMean
}

// CenterCross centers an out-of-sample kernel vector kq (evaluations of the
// new point against the training points) consistently with Center:
// k'ᵢ = kᵢ − mean(kq) − rowMeansᵢ + grandMean.
func CenterCross(kq, rowMeans []float64, grandMean float64) []float64 {
	return CenterCrossInto(make([]float64, len(kq)), kq, rowMeans, grandMean)
}

// CenterCrossInto is CenterCross into a caller-owned buffer; dst may alias
// kq, letting hot paths center a leased kernel vector in place.
func CenterCrossInto(dst, kq, rowMeans []float64, grandMean float64) []float64 {
	m := linalg.Mean(kq)
	for i, v := range kq {
		dst[i] = v - m - rowMeans[i] + grandMean
	}
	return dst
}

// MedianSqDist returns the median squared Euclidean distance between rows
// of x (subsampled for large inputs) — the standard "median heuristic" for
// choosing a Gaussian kernel scale when the norm-variance heuristic
// degenerates (e.g. compact feature spaces where norms barely vary).
func MedianSqDist(x *linalg.Matrix) float64 {
	n := x.Rows
	if n < 2 {
		return 1
	}
	// Deterministic subsample: stride through the rows.
	maxPairs := 2000
	var dists []float64
	stride := 1
	if n*(n-1)/2 > maxPairs {
		stride = n * (n - 1) / 2 / maxPairs
		if stride < 1 {
			stride = 1
		}
	}
	count := 0
	for i := 0; i < n && len(dists) < maxPairs; i++ {
		for j := i + 1; j < n && len(dists) < maxPairs; j++ {
			if count%stride == 0 {
				d := 0.0
				ri, rj := x.Row(i), x.Row(j)
				for k := range ri {
					v := ri[k] - rj[k]
					d += v * v
				}
				dists = append(dists, d)
			}
			count++
		}
	}
	sort.Float64s(dists)
	m := dists[len(dists)/2]
	if m <= 0 {
		return 1
	}
	return m
}
