package kernels

import (
	"fmt"

	"repro/internal/linalg"
)

// MaintainedState is the exported wire form of Maintained, for the durable
// serving state snapshots (internal/wal). It captures the complete state —
// including the replacement counter, whose value gates when the next exact
// row-sum refresh happens, so a restored instance produces bit-identical
// row sums to one that never restarted.
type MaintainedState struct {
	X           *linalg.Matrix
	K           *linalg.Matrix
	Tau         float64
	Frac        float64
	TauOverride float64
	Norms       []float64
	RowSums     []float64
	Replaces    int
	Synced      bool
}

// State captures the current state for serialization. The returned struct
// shares the receiver's backing arrays: callers must encode it before the
// owner mutates again (the sliding predictor snapshots under its lock).
func (m *Maintained) State() *MaintainedState {
	return &MaintainedState{
		X:           m.X,
		K:           m.K,
		Tau:         m.Tau,
		Frac:        m.frac,
		TauOverride: m.tauOverride,
		Norms:       m.norms,
		RowSums:     m.rowSums,
		Replaces:    m.replaces,
		Synced:      m.synced,
	}
}

// MaintainedFromState reconstructs a Maintained from a decoded state,
// validating every shape invariant Replace/Rebuild/ApplyCentered rely on so
// a corrupt or hand-edited snapshot fails here instead of panicking later.
func MaintainedFromState(st *MaintainedState) (*Maintained, error) {
	if st == nil {
		return nil, fmt.Errorf("kernels: nil maintained state")
	}
	if err := st.X.CheckShape(); err != nil {
		return nil, fmt.Errorf("kernels: restored state: X: %w", err)
	}
	n := st.X.Rows
	if len(st.Norms) != n {
		return nil, fmt.Errorf("kernels: restored state has %d norms for %d rows", len(st.Norms), n)
	}
	if st.Synced {
		if err := st.K.CheckShape(); err != nil {
			return nil, fmt.Errorf("kernels: restored state: K: %w", err)
		}
		if st.K.Rows != n || st.K.Cols != n {
			return nil, fmt.Errorf("kernels: restored state kernel is %dx%d for %d rows", st.K.Rows, st.K.Cols, n)
		}
		if len(st.RowSums) != n {
			return nil, fmt.Errorf("kernels: restored state has %d row sums for %d rows", len(st.RowSums), n)
		}
		if !(st.Tau > 0) {
			return nil, fmt.Errorf("kernels: restored state kernel scale is %v, want positive", st.Tau)
		}
	}
	return &Maintained{
		X:           st.X,
		K:           st.K,
		Tau:         st.Tau,
		frac:        st.Frac,
		tauOverride: st.TauOverride,
		norms:       st.Norms,
		rowSums:     st.RowSums,
		replaces:    st.Replaces,
		synced:      st.Synced,
	}, nil
}
