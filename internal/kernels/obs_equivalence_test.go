package kernels

import (
	"testing"

	"repro/internal/obs"
)

// TestEquivalenceWithObsEnabled re-runs the serial/parallel equivalence
// suite with instrumentation on: span timers and histogram observations in
// the hot paths must not perturb bit-for-bit results.
func TestEquivalenceWithObsEnabled(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	t.Run("Matrix", TestMatrixParallelMatchesSerial)
	t.Run("CrossVector", TestCrossVectorParallelMatchesSerial)
	t.Run("Center", TestCenterParallelMatchesSerial)
}
