package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randMat(seed int64, r, c int) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGaussianProperties(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 0, 3}
	if k := Gaussian(a, a, 1.5); math.Abs(k-1) > 1e-12 {
		t.Errorf("k(a,a) = %v, want 1", k)
	}
	kab := Gaussian(a, b, 1.5)
	kba := Gaussian(b, a, 1.5)
	if kab != kba {
		t.Error("kernel must be symmetric")
	}
	if kab <= 0 || kab >= 1 {
		t.Errorf("k(a,b) = %v, want in (0,1)", kab)
	}
	// Known value: ‖a−b‖² = 1+4+0 = 5.
	if want := math.Exp(-5 / 1.5); math.Abs(kab-want) > 1e-12 {
		t.Errorf("k(a,b) = %v, want %v", kab, want)
	}
	// Larger tau → larger kernel value (less decay).
	if Gaussian(a, b, 10) <= Gaussian(a, b, 1) {
		t.Error("kernel should grow with tau")
	}
}

func TestGaussianPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for tau <= 0")
		}
	}()
	Gaussian([]float64{1}, []float64{2}, 0)
}

func TestScaleHeuristic(t *testing.T) {
	x := randMat(1, 50, 4)
	tau := ScaleHeuristic(x, 0.1)
	if tau <= 0 {
		t.Errorf("tau = %v, want positive", tau)
	}
	// Doubling the fraction doubles tau.
	if tau2 := ScaleHeuristic(x, 0.2); math.Abs(tau2-2*tau) > 1e-9 {
		t.Errorf("tau not linear in fraction: %v vs %v", tau, tau2)
	}
	// Degenerate data (all identical norms) still yields positive tau.
	same := linalg.FromRows([][]float64{{1, 0}, {0, 1}, {-1, 0}, {0, -1}})
	if tau := ScaleHeuristic(same, 0.1); tau <= 0 {
		t.Errorf("degenerate tau = %v", tau)
	}
}

func TestMatrixSymmetricUnitDiagonal(t *testing.T) {
	x := randMat(2, 20, 3)
	k := Matrix(x, 2.0)
	for i := 0; i < k.Rows; i++ {
		if k.At(i, i) != 1 {
			t.Fatalf("diagonal not 1 at %d", i)
		}
		for j := 0; j < k.Cols; j++ {
			if k.At(i, j) != k.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if k.At(i, j) < 0 || k.At(i, j) > 1 {
				t.Fatalf("out of range at (%d,%d): %v", i, j, k.At(i, j))
			}
		}
	}
}

func TestMatrixPositiveSemiDefinite(t *testing.T) {
	x := randMat(3, 15, 3)
	k := Matrix(x, 1.0)
	es, err := linalg.SymEig(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range es.Values {
		if v < -1e-9 {
			t.Fatalf("negative eigenvalue %v: Gaussian kernel must be PSD", v)
		}
	}
}

func TestCrossVectorMatchesMatrix(t *testing.T) {
	x := randMat(4, 10, 3)
	k := Matrix(x, 1.3)
	for i := 0; i < x.Rows; i++ {
		kv := CrossVector(x, x.Row(i), 1.3)
		for j := range kv {
			if math.Abs(kv[j]-k.At(i, j)) > 1e-12 {
				t.Fatalf("cross vector mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCenterZeroesMeans(t *testing.T) {
	x := randMat(5, 12, 3)
	k := Matrix(x, 1.0)
	c, rowMeans, grand := Center(k)
	if len(rowMeans) != k.Rows || math.IsNaN(grand) {
		t.Fatal("centering metadata broken")
	}
	// Every row (and column) of the centered matrix sums to ~0.
	for i := 0; i < c.Rows; i++ {
		if s := linalg.Mean(c.Row(i)); math.Abs(s) > 1e-10 {
			t.Fatalf("row %d mean = %v, want 0", i, s)
		}
	}
}

func TestCenterCrossConsistent(t *testing.T) {
	// Centering the kernel vector of a TRAINING point must reproduce the
	// corresponding row of the centered kernel matrix — this is what makes
	// out-of-sample projection consistent with training.
	x := randMat(6, 9, 4)
	k := Matrix(x, 2.0)
	c, rowMeans, grand := Center(k)
	for i := 0; i < x.Rows; i++ {
		kv := CrossVector(x, x.Row(i), 2.0)
		cv := CenterCross(kv, rowMeans, grand)
		for j := range cv {
			if math.Abs(cv[j]-c.At(i, j)) > 1e-10 {
				t.Fatalf("centered cross vector mismatch at (%d,%d): %v vs %v", i, j, cv[j], c.At(i, j))
			}
		}
	}
}

func TestMedianSqDist(t *testing.T) {
	// Two clusters at distance 10: the median pairwise squared distance
	// should be on the order of the between-cluster distance (most pairs
	// cross clusters for balanced sizes) or at least strictly positive.
	x := linalg.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 0}, {10.1, 0}, {10, 0.1},
	})
	m := MedianSqDist(x)
	if m < 50 || m > 150 {
		t.Errorf("median sq dist = %v, want near 100", m)
	}
	// Degenerate inputs stay usable.
	if MedianSqDist(linalg.NewMatrix(1, 3)) != 1 {
		t.Error("single row should fall back to 1")
	}
	if MedianSqDist(linalg.NewMatrix(5, 3)) != 1 {
		t.Error("identical rows should fall back to 1")
	}
	// Subsampling path: large input still returns a sane value.
	big := randMat(9, 200, 4)
	if m := MedianSqDist(big); m <= 0 {
		t.Errorf("large-input median = %v", m)
	}
}
