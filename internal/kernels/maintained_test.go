package kernels

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/statutil"
)

func randRow(r *statutil.RNG, d int, scale float64) []float64 {
	row := make([]float64, d)
	for i := range row {
		row[i] = scale * r.NormFloat64()
	}
	return row
}

// TestMaintainedMatchesFullRebuild drives a Maintained state through the
// sliding-window life cycle — grow, rebuild, a long run of replacements —
// and checks the kernel matrix, row means, and τ candidate against a
// from-scratch computation at every step.
func TestMaintainedMatchesFullRebuild(t *testing.T) {
	const d, capacity = 7, 40
	r := statutil.NewRNG(3, "maintained")
	m := NewMaintained(d, capacity, 0.1, 0)

	for i := 0; i < capacity; i++ {
		m.Append(randRow(r, d, 1))
	}
	if m.Synced() {
		t.Fatal("synced before first rebuild")
	}
	m.Rebuild()
	if !m.Synced() {
		t.Fatal("not synced after rebuild")
	}
	if want := ScaleHeuristic(m.X, 0.1); m.Tau != want {
		t.Fatalf("rebuild tau %v, want heuristic %v", m.Tau, want)
	}

	slot := 0
	for step := 0; step < 3*sumRefreshEvery; step++ {
		m.Replace(slot, randRow(r, d, 1))
		slot = (slot + 1) % capacity
	}

	// The raw kernel matrix must be bit-identical to a fresh build at the
	// frozen τ: each entry is the same Gaussian of the same inputs.
	want := Matrix(m.X, m.Tau)
	for i := range want.Data {
		if m.K.Data[i] != want.Data[i] {
			t.Fatalf("kernel entry %d: maintained %v, fresh %v", i, m.K.Data[i], want.Data[i])
		}
	}
	// Row means track the exact centering state within refresh drift.
	_, rowMeans, grand := Center(want)
	gotMeans, gotGrand := m.RowMeans()
	for i := range rowMeans {
		if math.Abs(gotMeans[i]-rowMeans[i]) > 1e-12 {
			t.Fatalf("row mean %d: maintained %v, fresh %v", i, gotMeans[i], rowMeans[i])
		}
	}
	if math.Abs(gotGrand-grand) > 1e-12 {
		t.Fatalf("grand mean: maintained %v, fresh %v", gotGrand, grand)
	}
	// τ candidate is the exact heuristic value.
	if want := ScaleHeuristic(m.X, 0.1); m.TauCandidate() != want {
		t.Fatalf("tau candidate %v, want %v", m.TauCandidate(), want)
	}
}

func TestMaintainedApplyCentered(t *testing.T) {
	const d, n = 5, 30
	r := statutil.NewRNG(9, "applycentered")
	m := NewMaintained(d, n, 0.1, 0)
	for i := 0; i < n; i++ {
		m.Append(randRow(r, d, 1))
	}
	m.Rebuild()
	centered, _, _ := Center(m.K)
	v := randRow(r, n, 1)
	got := make([]float64, n)
	m.ApplyCentered(got, v)
	want := centered.MulVec(v)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*float64(n) {
			t.Fatalf("ApplyCentered[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestMaintainedDriftGuard(t *testing.T) {
	const d, n = 4, 25
	r := statutil.NewRNG(21, "drift")
	m := NewMaintained(d, n, 0.1, 0)
	for i := 0; i < n; i++ {
		m.Append(randRow(r, d, 1))
	}
	m.Rebuild()
	if m.Drifted(0.1) {
		t.Fatal("drifted immediately after rebuild")
	}
	// Replace rows with ever-larger-norm rows until the heuristic moves.
	scale := 1.0
	fired := false
	for step := 0; step < 200; step++ {
		scale *= 1.1
		m.Replace(step%n, randRow(r, d, scale))
		if m.Drifted(0.1) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("drift guard never fired under norm inflation")
	}
	m.Rebuild()
	if m.Drifted(0.1) {
		t.Fatal("still drifted after rebuild")
	}
}

func TestMaintainedTauOverride(t *testing.T) {
	const d, n = 4, 20
	r := statutil.NewRNG(5, "override")
	m := NewMaintained(d, n, 0.1, 3.5)
	for i := 0; i < n; i++ {
		m.Append(randRow(r, d, 1))
	}
	m.Rebuild()
	if m.Tau != 3.5 {
		t.Fatalf("tau = %v, want pinned 3.5", m.Tau)
	}
	for step := 0; step < 50; step++ {
		m.Replace(step%n, randRow(r, d, float64(step+2)))
	}
	if m.Drifted(0.01) {
		t.Fatal("pinned tau reported drift")
	}
	if m.K.At(0, 1) != Gaussian(m.X.Row(0), m.X.Row(1), 3.5) {
		t.Fatal("kernel not at pinned scale")
	}
}

// TestMaintainedUnsyncedReplace covers replacement during the grow phase:
// rows and norms update, kernel state stays invalid until Rebuild.
func TestMaintainedUnsyncedReplace(t *testing.T) {
	const d = 3
	r := statutil.NewRNG(8, "unsynced")
	m := NewMaintained(d, 10, 0.1, 0)
	for i := 0; i < 6; i++ {
		m.Append(randRow(r, d, 1))
	}
	row := randRow(r, d, 2)
	m.Replace(2, row)
	if m.Synced() {
		t.Fatal("synced without rebuild")
	}
	for j, v := range row {
		if m.X.At(2, j) != v {
			t.Fatal("row not stored")
		}
	}
	if m.norms[2] != linalg.Norm(row) {
		t.Fatal("norm not updated")
	}
	m.Rebuild()
	want := Matrix(m.X, m.Tau)
	for i := range want.Data {
		if m.K.Data[i] != want.Data[i] {
			t.Fatal("rebuild kernel mismatch")
		}
	}
}
