// Package dataset assembles labeled query datasets: it instantiates
// workload templates, plans each query with the optimizer, executes the
// plan on a simulated machine, and records the SQL text, plan, performance
// metrics, and runtime category. Datasets feed the feature extractors and
// the experiments.
package dataset

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlgen"
	"repro/internal/statutil"
	"repro/internal/workload"
)

// Query is one executed query with everything the experiments need.
type Query struct {
	ID       int
	Template string
	Class    string
	SQL      string
	AST      *sqlgen.Query
	Plan     *optimizer.Plan
	Metrics  exec.Metrics
	Category workload.Category
	// PlanFeat, when non-nil, memoizes features.PlanVector(Plan) — the plan
	// feature vector is a pure function of the plan, so it can be computed
	// once and shared. The slice is read-only: consumers must copy before
	// mutating, and shallow Query copies (the plan cache's hit path) share
	// it safely. Nil means "not yet extracted", never "no features".
	PlanFeat []float64
}

// Dataset is a set of queries executed on one machine configuration
// against one schema.
type Dataset struct {
	SchemaName string
	Machine    exec.Machine
	Queries    []*Query
}

// GenConfig controls dataset generation.
type GenConfig struct {
	// Seed drives template parameter draws and execution noise. The data
	// realization seed (optimizer surprises) is DataSeed.
	Seed     int64
	DataSeed int64
	Machine  exec.Machine
	Schema   *catalog.Schema
	// Templates to instantiate, visited round-robin.
	Templates []workload.Template
	// Count is the total number of query instances to generate.
	Count int
}

// Generate builds a dataset by instantiating Count queries round-robin
// from the templates, planning each against the schema, and executing it
// on the machine.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("dataset: nonpositive count %d", cfg.Count)
	}
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("dataset: no templates")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("dataset: nil schema")
	}
	ds := &Dataset{SchemaName: cfg.Schema.Name, Machine: cfg.Machine}
	planCfg := optimizer.DefaultConfig(cfg.Machine.Processors)
	paramRNG := make([]*statutil.RNG, len(cfg.Templates))
	for i, tpl := range cfg.Templates {
		paramRNG[i] = statutil.NewRNG(cfg.Seed, "params:"+tpl.Name)
	}
	noise := statutil.NewRNG(cfg.Seed, "execnoise")
	for i := 0; i < cfg.Count; i++ {
		ti := i % len(cfg.Templates)
		tpl := cfg.Templates[ti]
		ast := tpl.Gen(paramRNG[ti])
		plan, err := optimizer.BuildPlan(ast, cfg.Schema, cfg.DataSeed, planCfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: planning %s instance %d: %w", tpl.Name, i, err)
		}
		met := exec.Execute(plan, cfg.Machine, noise)
		ds.Queries = append(ds.Queries, &Query{
			ID:       i,
			Template: tpl.Name,
			Class:    tpl.Class,
			SQL:      ast.Render(),
			AST:      ast,
			Plan:     plan,
			Metrics:  met,
			Category: workload.Categorize(met.ElapsedSec),
		})
	}
	return ds, nil
}

// ReExecute re-plans and re-executes every query of d on a different
// machine configuration (plans legitimately differ across configurations,
// as the paper observed on the 32-node system). The data realization seed
// must match the one used at generation time.
func ReExecute(d *Dataset, schema *catalog.Schema, dataSeed int64, m exec.Machine, noiseSeed int64) (*Dataset, error) {
	out := &Dataset{SchemaName: d.SchemaName, Machine: m}
	planCfg := optimizer.DefaultConfig(m.Processors)
	noise := statutil.NewRNG(noiseSeed, "execnoise:"+m.Name)
	for _, q := range d.Queries {
		plan, err := optimizer.BuildPlan(q.AST, schema, dataSeed, planCfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: re-planning query %d: %w", q.ID, err)
		}
		met := exec.Execute(plan, m, noise)
		out.Queries = append(out.Queries, &Query{
			ID:       q.ID,
			Template: q.Template,
			Class:    q.Class,
			SQL:      q.SQL,
			AST:      q.AST,
			Plan:     plan,
			Metrics:  met,
			Category: workload.Categorize(met.ElapsedSec),
		})
	}
	return out, nil
}

// ByCategory partitions the dataset's queries by runtime category.
func (d *Dataset) ByCategory() map[workload.Category][]*Query {
	out := map[workload.Category][]*Query{}
	for _, q := range d.Queries {
		out[q.Category] = append(out[q.Category], q)
	}
	return out
}

// CategoryCounts returns the number of queries in each category.
func (d *Dataset) CategoryCounts() map[workload.Category]int {
	out := map[workload.Category]int{}
	for _, q := range d.Queries {
		out[q.Category]++
	}
	return out
}

// Subset returns a dataset holding the given queries.
func (d *Dataset) Subset(queries []*Query) *Dataset {
	return &Dataset{SchemaName: d.SchemaName, Machine: d.Machine, Queries: queries}
}

// SampleMix draws, without replacement, the requested number of feathers,
// golf balls, and bowling balls (wrecking balls count as bowling balls for
// sampling, mirroring the paper's pools). It returns an error if the
// dataset cannot supply the mix.
func (d *Dataset) SampleMix(r *statutil.RNG, feathers, golf, bowling int) ([]*Query, error) {
	byCat := d.ByCategory()
	pools := [][]*Query{
		byCat[workload.Feather],
		byCat[workload.GolfBall],
		append(byCat[workload.BowlingBall], byCat[workload.WreckingBall]...),
	}
	wants := []int{feathers, golf, bowling}
	names := []string{"feathers", "golf balls", "bowling balls"}
	var out []*Query
	for i, want := range wants {
		if want > len(pools[i]) {
			return nil, fmt.Errorf("dataset: need %d %s, pool has %d", want, names[i], len(pools[i]))
		}
		idx := r.SampleInts(len(pools[i]), want)
		for _, j := range idx {
			out = append(out, pools[i][j])
		}
	}
	return out, nil
}

// Split removes the queries in test (by ID) from d and returns the
// remaining training queries.
func (d *Dataset) Split(test []*Query) (train []*Query) {
	inTest := map[int]bool{}
	for _, q := range test {
		inTest[q.ID] = true
	}
	for _, q := range d.Queries {
		if !inTest[q.ID] {
			train = append(train, q)
		}
	}
	return train
}
