package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := smallDataset(t, 24)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ds.Queries) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ds.Queries))
	}
	for i, row := range rows {
		q := ds.Queries[i]
		if row.ID != q.ID || row.Template != q.Template || row.SQL != q.SQL {
			t.Fatalf("row %d identity mismatch", i)
		}
		if row.Metrics != q.Metrics {
			t.Fatalf("row %d metrics mismatch: %v vs %v", i, row.Metrics, q.Metrics)
		}
		if row.Category != q.Category.String() {
			t.Fatalf("row %d category mismatch", i)
		}
		if row.OptimizerCost != q.Plan.Cost {
			t.Fatalf("row %d cost mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,valid,header\n",
		strings.Join(csvHeader, ",") + "\nnot-a-number,t,c,cat,1,1,1,1,1,1,1,sql\n",
		strings.Join(csvHeader, ",") + "\n1,t,c,cat,xx,1,1,1,1,1,1,sql\n",
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
