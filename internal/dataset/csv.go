package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/exec"
)

// csvHeader is the column layout of the dataset CSV format.
var csvHeader = []string{
	"id", "template", "class", "category", "optimizer_cost",
	"elapsed_sec", "records_accessed", "records_used",
	"disk_ios", "message_count", "message_bytes", "sql",
}

// WriteCSV writes the dataset in a flat CSV format: identification,
// category, optimizer cost, the six measured metrics, and the SQL text.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, q := range d.Queries {
		cost := 0.0
		if q.Plan != nil {
			cost = q.Plan.Cost
		}
		rec := []string{
			strconv.Itoa(q.ID),
			q.Template,
			q.Class,
			q.Category.String(),
			f(cost),
			f(q.Metrics.ElapsedSec),
			f(q.Metrics.RecordsAccessed),
			f(q.Metrics.RecordsUsed),
			f(q.Metrics.DiskIOs),
			f(q.Metrics.MessageCount),
			f(q.Metrics.MessageBytes),
			q.SQL,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Row is one record of the CSV format: everything except the plan (which
// must be recreated by re-planning the SQL against a schema).
type Row struct {
	ID            int
	Template      string
	Class         string
	Category      string
	OptimizerCost float64
	Metrics       exec.Metrics
	SQL           string
}

// ReadCSV parses a dataset CSV written by WriteCSV.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("dataset: CSV header column %d is %q, want %q", i, header[i], h)
		}
	}
	var rows []Row
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad id %q", line, rec[0])
		}
		nums := make([]float64, 7)
		for i := range nums {
			nums[i], err = strconv.ParseFloat(rec[4+i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: bad number %q", line, rec[4+i])
			}
		}
		rows = append(rows, Row{
			ID:            id,
			Template:      rec[1],
			Class:         rec[2],
			Category:      rec[3],
			OptimizerCost: nums[0],
			Metrics: exec.Metrics{
				ElapsedSec:      nums[1],
				RecordsAccessed: nums[2],
				RecordsUsed:     nums[3],
				DiskIOs:         nums[4],
				MessageCount:    nums[5],
				MessageBytes:    nums[6],
			},
			SQL: rec[11],
		})
	}
}
