package dataset

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/statutil"
	"repro/internal/workload"
)

func smallDataset(t *testing.T, count int) *Dataset {
	t.Helper()
	ds, err := Generate(GenConfig{
		Seed: 5, DataSeed: 1, Machine: exec.Research4(),
		Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateBasics(t *testing.T) {
	ds := smallDataset(t, 48)
	if len(ds.Queries) != 48 {
		t.Fatalf("query count = %d", len(ds.Queries))
	}
	for i, q := range ds.Queries {
		if q.ID != i {
			t.Errorf("ID %d != index %d", q.ID, i)
		}
		if q.Plan == nil || q.AST == nil || q.SQL == "" {
			t.Errorf("query %d incomplete", i)
		}
		if q.Metrics.ElapsedSec <= 0 {
			t.Errorf("query %d has nonpositive elapsed time", i)
		}
		if q.Category != workload.Categorize(q.Metrics.ElapsedSec) {
			t.Errorf("query %d category mismatch", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallDataset(t, 24)
	b := smallDataset(t, 24)
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatal("same seed must generate the same SQL")
		}
		if a.Queries[i].Metrics != b.Queries[i].Metrics {
			t.Fatal("same seed must produce the same metrics")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	base := GenConfig{Seed: 1, Machine: exec.Research4(), Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates()}

	cfg := base
	cfg.Count = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("count=0 accepted")
	}
	cfg = base
	cfg.Count = 5
	cfg.Templates = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("no templates accepted")
	}
	cfg = base
	cfg.Count = 5
	cfg.Schema = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestByCategoryAndCounts(t *testing.T) {
	ds := smallDataset(t, 96)
	byCat := ds.ByCategory()
	counts := ds.CategoryCounts()
	total := 0
	for c, qs := range byCat {
		if counts[c] != len(qs) {
			t.Errorf("count mismatch for %v", c)
		}
		total += len(qs)
	}
	if total != 96 {
		t.Errorf("total = %d", total)
	}
	if counts[workload.Feather] == 0 {
		t.Error("expected some feathers")
	}
}

func TestSampleMixAndSplit(t *testing.T) {
	ds := smallDataset(t, 240)
	r := statutil.NewRNG(2, "mix")
	counts := ds.CategoryCounts()
	if counts[workload.GolfBall] < 3 {
		t.Skip("pool too small for mix test")
	}
	test, err := ds.SampleMix(r, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 8 {
		t.Fatalf("mix size = %d", len(test))
	}
	train := ds.Split(test)
	if len(train) != 240-8 {
		t.Fatalf("train size = %d", len(train))
	}
	inTest := map[int]bool{}
	for _, q := range test {
		inTest[q.ID] = true
	}
	for _, q := range train {
		if inTest[q.ID] {
			t.Fatal("train/test overlap")
		}
	}
	// Impossible mixes error.
	if _, err := ds.SampleMix(r, 100000, 0, 0); err == nil {
		t.Error("oversized mix accepted")
	}
}

func TestReExecuteChangesMachine(t *testing.T) {
	ds := smallDataset(t, 24)
	big, err := ReExecute(ds, catalog.TPCDS(1), 1, exec.Production32(32), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Queries) != len(ds.Queries) {
		t.Fatal("query count changed")
	}
	faster := 0
	for i := range big.Queries {
		if big.Queries[i].SQL != ds.Queries[i].SQL {
			t.Fatal("SQL must be preserved")
		}
		if big.Queries[i].Metrics.ElapsedSec < ds.Queries[i].Metrics.ElapsedSec {
			faster++
		}
	}
	// The 32-processor machine should be faster for most queries.
	if faster < len(big.Queries)*2/3 {
		t.Errorf("only %d/%d queries faster on 32 cpus", faster, len(big.Queries))
	}
}

func TestSubset(t *testing.T) {
	ds := smallDataset(t, 24)
	sub := ds.Subset(ds.Queries[:5])
	if len(sub.Queries) != 5 || sub.SchemaName != ds.SchemaName {
		t.Error("subset wrong")
	}
}

// TestTemplateCategoryCalibration pins the workload calibration: the
// textual-twin templates must always be feathers, and the problem
// templates must actually produce long-running queries. If a change to the
// simulator or estimator shifts these bands, the paper-mix sampling in the
// experiments breaks — this test catches that early.
func TestTemplateCategoryCalibration(t *testing.T) {
	ds := smallDataset(t, 360)
	cats := map[string]map[workload.Category]int{}
	for _, q := range ds.Queries {
		if cats[q.Template] == nil {
			cats[q.Template] = map[workload.Category]int{}
		}
		cats[q.Template][q.Category]++
	}
	// The twins share text statistics with heavy templates but must stay
	// sub-second feathers.
	for _, twin := range []string{"floorspace_check", "page_returns_profile"} {
		for cat := range cats[twin] {
			if cat != workload.Feather {
				t.Errorf("twin %s produced a %v", twin, cat)
			}
		}
	}
	// Problem templates must reach beyond feathers somewhere in the pool.
	heavyReached := 0
	for tpl, byCat := range cats {
		if len(tpl) > 3 && tpl[:3] == "pb_" {
			for cat := range byCat {
				if cat != workload.Feather {
					heavyReached++
					break
				}
			}
		}
	}
	if heavyReached < 5 {
		t.Errorf("only %d problem templates produced long-running queries", heavyReached)
	}
	// Benchmark-class templates must supply a healthy feather pool.
	feathers := 0
	for _, q := range ds.Queries {
		if q.Class == "tpcds" && q.Category == workload.Feather {
			feathers++
		}
	}
	if feathers < 150 {
		t.Errorf("feather pool too small: %d", feathers)
	}
}
