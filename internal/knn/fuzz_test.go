package knn

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/linalg"
)

// FuzzKDTree feeds arbitrary float bit patterns through index build and
// search. The invariants under fuzz:
//
//  1. build/search never panic, whatever the coordinates (NaN, ±Inf,
//     subnormals, huge magnitudes);
//  2. every returned neighbor's distance verifies against a direct
//     recomputation with the same metric (bit-identical);
//  3. the returned set is sorted under the total (distance, index) order;
//  4. the full result is bit-identical to the flat-scan oracle.
//
// The seed corpus under testdata/fuzz/FuzzKDTree pins clouds with NaN
// rows, infinities, duplicate points, zero vectors (cosine stragglers),
// and magnitudes beyond the tree's overflow gate.
func FuzzKDTree(f *testing.F) {
	add := func(vals []float64, k, dim uint8, cosine bool) {
		buf := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		f.Add(buf, k, dim, cosine)
	}
	add([]float64{0.5, -1, 1, 2, 3, -4, 0.25, 8, 1e-3}, 3, 2, false)
	add([]float64{1, 1, math.NaN(), 2, 1, 1, math.Inf(1), 0, 1e200, -1e200, 0, 0}, 2, 2, true)
	add([]float64{0, 0, 0, 0, 1e-300, -1e-300, 5e151, 2, 1, 1, 1, 1}, 4, 2, true)

	f.Fuzz(func(t *testing.T, data []byte, kRaw, dimRaw uint8, cosine bool) {
		dim := 1 + int(dimRaw)%8
		nFloats := len(data) / 8
		if nFloats < 2*dim {
			return // need at least a query and one point
		}
		vals := make([]float64, nFloats)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		q := vals[:dim]
		n := (nFloats - dim) / dim
		points := linalg.NewMatrixFrom(n, dim, vals[dim:dim+n*dim])
		k := 1 + int(kRaw)%(n+2) // sometimes exceeds n: must clamp, not panic

		metric := Euclidean
		if cosine {
			metric = Cosine
		}
		// Tiny thresholds force a real tree on even the smallest inputs.
		ix := NewIndexWith(points, metric, IndexConfig{MinPoints: 1, LeafSize: 2})
		got, err := ix.Nearest(q, k)
		if err != nil {
			t.Fatalf("index search failed on valid input: %v", err)
		}
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("got %d neighbors, want %d", len(got), wantLen)
		}
		var qn float64
		if metric == Cosine {
			qn = linalg.Norm(q)
		}
		for i, nb := range got {
			if nb.Index < 0 || nb.Index >= n {
				t.Fatalf("neighbor %d has out-of-range index %d", i, nb.Index)
			}
			direct := pointDistance(points.Row(nb.Index), q, qn, metric)
			if math.Float64bits(direct) != math.Float64bits(nb.Distance) {
				t.Fatalf("neighbor %d reports distance %v, direct recomputation %v", i, nb.Distance, direct)
			}
			if i > 0 && less(nb, got[i-1]) {
				t.Fatalf("neighbors %d and %d violate the (distance, index) total order", i-1, i)
			}
		}
		want, err := Nearest(points, q, k, metric)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Index != want[i].Index ||
				math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
				t.Fatalf("neighbor %d = {%d %v}, flat oracle {%d %v}",
					i, got[i].Index, got[i].Distance, want[i].Index, want[i].Distance)
			}
		}
	})
}
